"""The paper's §4 relay-selection study: random sets of k of 35 relays.

Duke, Italy and Sweden each run transfer sessions against eBay where the
candidate relay set is a uniformly random k-subset of 35 intermediate
nodes, probed sequentially (n preliminary download tests).  Regenerates
Figure 6 (average improvement vs set size) and Table III (utilisation vs
improvement for Duke).

Run:
    python examples/relay_selection.py [repetitions] [seed]

The paper used 720 repetitions per configuration (6 hours at one transfer
every 30 s); the default here is 40 for a ~1 minute run.
"""

import sys

from repro import Scenario, ScenarioSpec, Section4Study
from repro.analysis import (
    random_set_curves,
    render_fig6,
    render_table3,
    saturation_point,
    utilization_improvement_correlation,
    utilization_vs_improvement,
)

SET_SIZES = (1, 2, 4, 6, 10, 16, 24, 35)


def main() -> None:
    repetitions = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 2007

    scenario = Scenario.build(ScenarioSpec.section4(), seed=seed)
    print(f"clients: {scenario.client_names}  relays: {len(scenario.relay_names)}")
    print(f"running the k-sweep {SET_SIZES} with {repetitions} transfers each ...")

    study = Section4Study(scenario, repetitions=repetitions)
    store = study.run_random_set_sweep(SET_SIZES)
    print(f"collected {len(store)} paired measurements\n")

    curves = random_set_curves(store)
    print(render_fig6(curves))
    print()
    for client, curve in sorted(curves.items()):
        k = saturation_point(curve)
        print(f"{client}: ~90% of the attainable improvement at k = {k}")
    print()

    rows = utilization_vs_improvement(store, "Duke")
    print(render_table3(rows, client="Duke"))
    corr = utilization_improvement_correlation(rows)
    print(f"\nutilization/improvement correlation (Duke): {corr:+.2f} "
          "(positive but imperfect, as in the paper)")


if __name__ == "__main__":
    main()
