"""The paper's §6 future work, implemented: utilisation-weighted selection.

"If a client uses the utilization data to weight the likelihood of a node
appearing in the random set, the better nodes will be chosen more often."

This example runs the §4 test-bed with three policies of equal candidate
budget k and compares their mean improvement and per-relay focus:

* uniform random k-subset (the paper's Fig. 6 policy),
* utilisation-weighted sampling (the §6 suggestion, a smoothed win-rate
  bandit),
* the trace-peeking oracle (upper bound, always offers the best relay).

Run:
    python examples/adaptive_weighted.py [repetitions] [k] [seed]
"""

import sys

import numpy as np

from repro import Scenario, ScenarioSpec, Section4Study
from repro.core import UniformRandomSetPolicy, UtilizationWeightedPolicy
from repro.core.oracle import OracleBestRelayPolicy
from repro.util import render_table


def main() -> None:
    repetitions = int(sys.argv[1]) if len(sys.argv) > 1 else 80
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    seed = int(sys.argv[3]) if len(sys.argv) > 3 else 2007

    scenario = Scenario.build(ScenarioSpec.section4(), seed=seed)
    study = Section4Study(scenario, repetitions=repetitions)
    client = "Duke"

    policies = {
        "uniform random set": UniformRandomSetPolicy(k),
        "utilization weighted": UtilizationWeightedPolicy(k),
        "oracle best relay": OracleBestRelayPolicy(scenario.builder, "eBay"),
    }

    rows = []
    for name, policy in policies.items():
        store = study.run_policy(policy, clients=[client], study=name)
        imps = store.column("improvement_percent")
        util = float(np.mean(store.column("used_indirect")))
        rows.append((name, float(np.mean(imps)), float(np.median(imps)), 100 * util))
        print(f"ran {name:24s} ({len(store)} transfers)")

    print()
    print(
        render_table(
            ["policy", "mean improvement %", "median %", "indirect used %"],
            rows,
            title=f"{client}, k={k}, {repetitions} transfers per policy",
        )
    )

    weighted = policies["utilization weighted"]
    weights = sorted(
        ((weighted.weight(client, r), r) for r in scenario.relay_names),
        reverse=True,
    )
    print("\nlearned top relays (weighted policy):")
    for w, relay in weights[:5]:
        print(f"  {relay:14s} weight={w:.2f}")


if __name__ == "__main__":
    main()
