"""The paper's §2-3 measurement campaign, end to end.

Runs the Section 2 study (each of the 22 international clients downloads the
file repeatedly, with a rotating candidate relay) and regenerates the
paper's aggregate artefacts: Figure 1, Table I, Table II, Figure 4, Figure 5
and the §6 headline rates.

Run:
    python examples/planetlab_study.py [repetitions] [seed]

The paper used 100 repetitions per client (10 hours at one transfer every
6 minutes); the default here is 30 to keep the example snappy (~10 s).
"""

import sys

from repro import Scenario, ScenarioSpec, Section2Study
from repro.analysis import (
    headline_stats,
    improvement_histogram,
    indirect_throughput_series,
    penalty_table,
    render_fig1,
    render_fig4,
    render_fig5,
    render_headline,
    render_table1,
    render_table2,
    top_relays_per_client,
    total_utilization_stats,
)
from repro.workloads.planetlab import CLIENT_CATALOG, RELAY_CATALOG


def main() -> None:
    repetitions = int(sys.argv[1]) if len(sys.argv) > 1 else 30
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 2007

    print("deployment (paper Tables IV & V):")
    print(f"  {len(CLIENT_CATALOG)} international clients, "
          f"{len(RELAY_CATALOG)} US intermediate nodes, destination eBay")
    scenario = Scenario.build(ScenarioSpec.section2(sites=("eBay",)), seed=seed)

    print(f"running {repetitions} paired transfers per client ...")
    study = Section2Study(scenario, repetitions=repetitions)
    store = study.run(sites=["eBay"])
    print(f"collected {len(store)} paired measurements\n")

    print(render_headline(headline_stats(store)))
    print()
    print(render_fig1(improvement_histogram(store)))
    print()
    print(render_table1(penalty_table(store)))
    print()
    print(render_table2(top_relays_per_client(store)))
    print()
    some_clients = ["Italy", "Sweden", "France", "Korea"]
    print(render_fig4(indirect_throughput_series(store, clients=some_clients)))
    print()
    stats = total_utilization_stats(store)
    fig5_relays = [r for r in ("Berkeley", "UCSD", "UIUC", "Duke", "Stanford",
                               "Texas", "Georgia Tech", "Princeton", "UCLA")
                   if r in stats]  # short runs may not rotate every relay in
    print(render_fig5(stats, relays=fig5_relays))


if __name__ == "__main__":
    main()
