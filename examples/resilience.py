"""Resilience demo: failure masking and mid-transfer adaptive switching.

Two scenarios beyond the paper's throughput study, both inherited from its
mechanism:

1. **Failure masking** (the RON/MONET lineage): outages strike the direct
   WAN path; the probe race routes around them while the direct-only
   control waits out each outage.
2. **Mid-transfer collapse**: the direct path dies *after* being selected;
   the adaptive session's watchdog notices the stall, re-probes from the
   current byte offset, and finishes over a relay.

Run:
    python examples/resilience.py [seed]
"""

import sys

from repro import Scenario, ScenarioSpec
from repro.core.adaptive import AdaptiveConfig, AdaptiveTransferSession
from repro.core.session import TransferSession
from repro.net.failures import Outage, OutageGenerator
from repro.net.topology import wan_link_name
from repro.workloads.experiment import STUDY_SESSION_CONFIG
from repro.workloads.failures import FailureStudy


def failure_masking(scenario) -> None:
    print("== failure masking (outages on the direct path) ==")
    study = FailureStudy(
        scenario,
        generator=OutageGenerator(mtbf=600.0, mean_duration=150.0),
        repetitions=10,
    )
    records = study.run(clients=["Italy", "Sweden", "Korea"])
    stats = study.masking_stats(records)
    print(f"transfers: {stats.n_transfers}, outage-affected: {stats.n_affected}")
    print(f"masked (<=70% of control time): {stats.n_masked} "
          f"(rate {stats.masking_rate:.0%})")
    print(f"mean speedup on affected transfers: {stats.mean_affected_speedup:.1f}x")
    print("(MONET, the paper's ref [12], reports avoiding 60-94% of failures)\n")


def adaptive_switching(scenario, seed: int) -> None:
    print("== mid-transfer collapse and adaptive recovery ==")
    client, site = "Italy", "eBay"
    # A good relay wins the probe race; then its overlay hop dies six
    # seconds into the transfer, for five minutes.  The adaptive watchdog
    # should fall back to the (slower but alive) direct path.
    relay = scenario.good_static_relay(client)
    degraded = scenario.with_outages(
        {wan_link_name(relay, client): [Outage(6.0, 300.0)]}
    )

    plain_u = degraded.universe(0.0, config=STUDY_SESSION_CONFIG)
    plain = TransferSession(
        plain_u.network, degraded.builder, STUDY_SESSION_CONFIG
    ).download(client, site, degraded.resource, [relay])

    adaptive_u = degraded.universe(0.0, config=STUDY_SESSION_CONFIG)
    adaptive = AdaptiveTransferSession(
        adaptive_u.network,
        degraded.builder,
        AdaptiveConfig(session=STUDY_SESSION_CONFIG, stall_threshold=0.6),
    ).download(client, site, degraded.resource, [relay])

    print(f"plain session:    selected {plain.selected_via or 'direct'}, "
          f"finished in {plain.duration:.0f}s")
    print(f"adaptive session: path sequence {' -> '.join(adaptive.path_sequence)}, "
          f"{adaptive.switches} switch(es), finished in {adaptive.duration:.0f}s")
    if adaptive.duration < plain.duration:
        print(f"adaptive finished {plain.duration / adaptive.duration:.1f}x faster")


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 2007
    scenario = Scenario.build(ScenarioSpec.section2(sites=("eBay",)), seed=seed)
    failure_masking(scenario)
    adaptive_switching(scenario, seed)


if __name__ == "__main__":
    main()
