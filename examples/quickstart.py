"""Quickstart: one probe-based indirect-routing transfer.

Builds the paper's §2 test-bed (22 PlanetLab clients, 21 US relays, eBay as
the destination), then runs a single *paired measurement*: a control client
downloads an 8 MB file over the direct path while the selecting client
probes the direct path and one relay with 100 KB range requests and fetches
the remainder over the winner.

Run:
    python examples/quickstart.py [seed]
"""

import sys

from repro import Scenario, ScenarioSpec, run_paired_transfer
from repro.util import bytes_per_s_to_mbps


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 2007
    print("building the PlanetLab-like scenario ...")
    scenario = Scenario.build(ScenarioSpec.section2(sites=("eBay",)), seed=seed)

    client = "Italy"
    relay = scenario.good_static_relay(client)  # "a good one, a priori"
    print(f"client={client}  candidate relay={relay}  server=eBay")

    record = run_paired_transfer(
        scenario,
        study="quickstart",
        client=client,
        site="eBay",
        repetition=0,
        start_time=0.0,
        offered=[relay],
    )

    direct = bytes_per_s_to_mbps(record.direct_throughput)
    selected = bytes_per_s_to_mbps(record.selected_throughput)
    choice = record.selected_via or "the direct path"
    print()
    print(f"probe decision ........ {choice}")
    print(f"probe overhead ........ {record.probe_overhead:.2f} s")
    print(f"direct control ........ {direct:.2f} Mbps")
    print(f"selected path ......... {selected:.2f} Mbps")
    print(f"improvement ........... {record.improvement_percent:+.1f}%")
    if record.is_penalty:
        print(f"(a penalty: the prediction was wrong by {record.penalty_percent:.0f}%)")


if __name__ == "__main__":
    main()
