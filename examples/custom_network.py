"""Using the library on your own network, beyond the paper's scenario.

Builds a custom three-relay topology from scratch with explicit capacity
processes (one congested direct path, relays of varying quality), then
drives the public API directly: probe engine, transfer session, and the
fluid network - including a demonstration of the "shared bottleneck"
penalty scenario the paper discusses in §3.1.
"""

import numpy as np

from repro.core import ProbeEngine, SessionConfig, TransferSession
from repro.http import TcpParams, WebServer
from repro.net import (
    CapacityTrace,
    MarkovModulatedCapacity,
    Node,
    NodeKind,
    Topology,
)
from repro.overlay import OverlayPathBuilder, RelayRegistry
from repro.sim import Simulator
from repro.tcp import FluidNetwork
from repro.util import bytes_per_s_to_mbps, mb, mbps_to_bytes_per_s


def build_world(seed: int = 7):
    rng = np.random.default_rng(seed)
    topo = Topology()
    topo.add_node(Node("laptop", NodeKind.CLIENT, region="europe"))
    topo.add_node(Node("origin", NodeKind.SERVER, region="us"))
    for relay in ("relay-east", "relay-west", "relay-south"):
        topo.add_node(Node(relay, NodeKind.RELAY, region="us"))

    M = mbps_to_bytes_per_s
    topo.add_access_link("laptop", CapacityTrace.constant(M(10.0)))
    topo.add_access_link("origin", CapacityTrace.constant(M(100.0)))

    # A congested, bursty direct path: 2 Mbps base with deep dips.
    direct = MarkovModulatedCapacity(
        base=M(2.0),
        multipliers=(1.0, 0.3, 1.5),
        stationary=(0.5, 0.3, 0.2),
        mean_holding=(60.0, 30.0, 30.0),
    )
    topo.add_wan_link("origin", "laptop", direct.sample(3600.0, rng))

    overlay_mbps = {"relay-east": 4.0, "relay-west": 2.5, "relay-south": 1.0}
    for relay, rate in overlay_mbps.items():
        topo.add_access_link(relay, CapacityTrace.constant(M(50.0)))
        topo.add_wan_link("origin", relay, CapacityTrace.constant(M(30.0)))
        topo.add_wan_link(relay, "laptop", CapacityTrace.constant(M(rate)))

    server = WebServer("origin")
    server.publish("/dataset.bin", int(mb(6)))
    registry = RelayRegistry()
    for relay in overlay_mbps:
        registry.deploy(relay)
    registry.register_origin_everywhere(server)
    topo.validate()
    return OverlayPathBuilder(topo, registry, {"origin": server}), server


def main() -> None:
    builder, server = build_world()
    config = SessionConfig(tcp=TcpParams(max_window=262_144.0))

    # 1. Raw probe: race the direct path against every relay.
    sim = Simulator()
    net = FluidNetwork(sim)
    engine = ProbeEngine(net, tcp=config.tcp)
    paths = [builder.direct("laptop", "origin")] + builder.all_indirect(
        "laptop", "origin"
    )
    outcome = engine.run(paths, "/dataset.bin")
    print("probe race winner:", outcome.winner.label)
    print(f"probe phase took {outcome.overhead_seconds:.2f} s, "
          f"moved {outcome.total_probe_bytes / 1000:.0f} KB total")

    # 2. Full session: probe + remainder fetch.
    sim2 = Simulator()
    net2 = FluidNetwork(sim2)
    session = TransferSession(net2, builder, config)
    result = session.download(
        "laptop", "origin", "/dataset.bin",
        ["relay-east", "relay-west", "relay-south"],
    )
    print(f"\nsession selected: {result.selected_via or 'direct'}")
    print(f"bulk throughput:  {bytes_per_s_to_mbps(result.transfer_throughput):.2f} Mbps")
    print(f"end-to-end:       {bytes_per_s_to_mbps(result.end_to_end_throughput):.2f} Mbps")

    # 3. The shared-bottleneck hazard (paper §3.1): when the client's own
    # access pipe is the bottleneck, the indirect path cannot help - it
    # shares that link with the direct path.
    direct_route = builder.direct("laptop", "origin").route
    for relay in ("relay-east", "relay-west", "relay-south"):
        ind = builder.indirect("laptop", relay, "origin").route
        shared = ind.shares_link_with(direct_route)
        print(f"{relay}: shares a link with the direct path -> {shared} "
              "(the client access pipe)")


if __name__ == "__main__":
    main()
