"""Setuptools shim.

Kept alongside pyproject.toml so ``pip install -e .`` works in offline
environments whose setuptools lacks PEP 660 editable-wheel support (no
``wheel`` package available): pip can fall back to the legacy
``setup.py develop`` code path there.
"""

from setuptools import setup

setup()
