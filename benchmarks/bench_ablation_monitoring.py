"""A9: per-transfer probing (the paper) vs background monitoring (RON).

Two ways to know which path is fast *right now*:

* the paper's design measures at transfer time (fresh but costs one probe
  phase per transfer);
* RON's design probes continuously in the background and routes from the
  table (no per-transfer cost, but estimates are up to one period stale
  and the small background probes rank paths less precisely).

This bench runs both on the same scenario and schedule.  Expected shape:
per-transfer probing realises more improvement (freshness wins in a
Markov-modulated world); monitoring still clearly beats never routing
indirectly.
"""

import numpy as np

from repro.trace.store import TraceStore
from repro.util import render_table
from repro.core.probe import ProbeMode
from repro.core.session import SessionConfig
from repro.http.transfer import TcpParams
from repro.util.units import kb
from repro.workloads.experiment import run_paired_transfer

#: Noise-free sequential probing: the monitor measures without jitter in
#: this model, so the probing arms must too for a clean freshness-vs-breadth
#: comparison (measurement noise is studied separately in A1/Table III).
SEQ_NOISELESS = SessionConfig(
    probe_mode=ProbeMode.SEQUENTIAL, tcp=TcpParams(max_window=131_072.0)
)
from repro.workloads.monitored import MonitoredStudy

CLIENTS = ("Italy", "Sweden", "Korea", "Brazil")
REPS = 10
INTERVAL = 360.0


def _probe_based(scenario, n_candidates, study):
    store = TraceStore()
    for client in CLIENTS:
        rotation = list(scenario.relay_names)
        rng = scenario.bank.generator("a9-rotation", client)
        rng.shuffle(rotation)
        for j in range(REPS):
            store.append(
                run_paired_transfer(
                    scenario,
                    study=study,
                    client=client,
                    site="eBay",
                    repetition=j,
                    start_time=j * INTERVAL,
                    offered=rotation[:n_candidates],
                    # Sequential probing: racing many concurrent probes
                    # would hit the access-link contention failure mode (A3).
                    config=SEQ_NOISELESS,
                )
            )
    return store


def _run_all(scenario):
    budget4 = _probe_based(scenario, 4, "a9-probe4")
    full = _probe_based(scenario, len(scenario.relay_names), "a9-probe-all")
    monitored = MonitoredStudy(
        scenario,
        repetitions=REPS,
        interval=INTERVAL,
        monitor_period=180.0,
        # Monitoring probes must outlast slow start too, or the table is
        # biased toward the low-latency direct path (the A1 lesson).
        monitor_probe_bytes=kb(100),
    ).run(clients=list(CLIENTS))
    return budget4, full, monitored


def test_ablation_monitoring(benchmark, s2_scenario, save_artifact):
    budget4, full, monitored = benchmark.pedantic(
        _run_all, args=(s2_scenario,), rounds=1, iterations=1
    )

    def stats(store):
        imps = store.column("improvement_percent")
        indirect = store.column("used_indirect")
        return (
            float(np.mean(imps)),
            float(np.median(imps)),
            100.0 * float(np.mean(indirect)),
            float(np.mean(store.column("probe_overhead"))),
        )

    b_mean, b_med, b_util, b_ovh = stats(budget4)
    f_mean, f_med, f_util, f_ovh = stats(full)
    m_mean, m_med, m_util, m_ovh = stats(monitored)

    # Every design beats never-indirect on average.
    assert b_mean > 0.0 and f_mean > 0.0 and m_mean > 0.0
    # Breadth wins: surveying the full set (fresh or stale) beats a random
    # 4-candidate budget.
    assert f_mean >= b_mean - 5.0
    assert m_mean >= b_mean - 5.0
    # Freshness wins at equal breadth: probing all relays at transfer time
    # realises at least as much improvement as the stale monitor table.
    assert f_mean >= m_mean - 8.0
    # Overheads order as expected: probing everything per transfer costs
    # far more wall time than a 4-candidate probe.
    assert f_ovh >= 3.0 * b_ovh

    rows = [
        ("probe 4 random (paper Fig.6 budget)", b_mean, b_med, b_util, b_ovh),
        ("probe all 21 per transfer", f_mean, f_med, f_util, f_ovh),
        ("background monitor, all 21 (RON)", m_mean, m_med, m_util, m_ovh),
    ]
    text = render_table(
        ["design", "mean imp %", "median imp %", "indirect %", "overhead s/transfer"],
        rows,
        title="A9 - freshness vs breadth vs overhead in path selection",
    )
    save_artifact("ablation_monitoring", text)
