"""A12: calibration sensitivity - do the conclusions depend on the knobs?

Perturbs the calibrated generative model along its main axes (overlay-hop
quality, relay heterogeneity, dynamics speed) and re-runs a §2 campaign
slice at each point.  The paper's qualitative story - substantial indirect
utilisation, mostly-positive selections, positive mean improvement - must
hold everywhere; only the magnitudes may move.
"""

from repro.util import render_table
from repro.workloads.sweeps import calibration_sensitivity, default_variants

CLIENTS = ("Italy", "Sweden", "Korea", "Brazil", "Greece", "Norway",
           "Denmark", "Russia")


def test_ablation_calibration_sensitivity(benchmark, bench_seed, save_artifact):
    points = benchmark.pedantic(
        calibration_sensitivity,
        args=(default_variants(),),
        kwargs=dict(seed=bench_seed, clients=list(CLIENTS), repetitions=10),
        rounds=1,
        iterations=1,
    )

    assert len(points) == 7
    for p in points:
        assert p.conclusion_holds, (
            f"qualitative conclusion broke at calibration point {p.label!r}: "
            f"util={p.utilization:.2f} pos={p.positive_given_indirect:.2f} "
            f"mean={p.mean_improvement:.1f}"
        )

    # Directional sanity: better overlay hops -> more utilisation.
    by_label = {p.label: p for p in points}
    assert (
        by_label["overlay +15%"].utilization
        >= by_label["overlay -15%"].utilization - 0.05
    )

    rows = [
        (
            p.label,
            100.0 * p.utilization,
            100.0 * p.positive_given_indirect,
            p.mean_improvement,
            p.median_improvement,
            100.0 * p.penalty_fraction,
        )
        for p in points
    ]
    text = render_table(
        ["calibration point", "indirect %", "positive %", "mean imp %",
         "median imp %", "penalty %"],
        rows,
        title="A12 - calibration sensitivity (conclusions hold at every point)",
    )
    save_artifact("ablation_sensitivity", text)
