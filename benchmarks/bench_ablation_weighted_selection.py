"""A2: utilisation-weighted vs uniform random sets (paper §6 future work).

Paper: "if a client uses the utilization data to weight the likelihood of a
node appearing in the random set, the better nodes will be chosen more
often" - i.e. weighted sampling should match or beat the uniform random set
at equal candidate budget, and concentrate on good relays.
"""

import numpy as np

from repro.core import UniformRandomSetPolicy, UtilizationWeightedPolicy
from repro.util import render_table

K = 4
CLIENT = "Duke"


def _run(study):
    uniform = study.run_policy(UniformRandomSetPolicy(K), clients=[CLIENT])
    weighted_policy = UtilizationWeightedPolicy(K)
    weighted = study.run_policy(weighted_policy, clients=[CLIENT], study="weighted")
    return uniform, weighted, weighted_policy


def test_ablation_weighted_selection(benchmark, s4_study, s4_scenario, save_artifact):
    uniform, weighted, policy = benchmark.pedantic(
        _run, args=(s4_study,), rounds=1, iterations=1
    )

    mu = float(np.mean(uniform.column("improvement_percent")))
    mw = float(np.mean(weighted.column("improvement_percent")))
    # Weighted sampling does not lose to uniform (allowing simulation noise).
    assert mw >= mu - 12.0

    # The learned weights concentrate: top relay clearly above the median.
    weights = sorted(
        (policy.weight(CLIENT, r) for r in s4_scenario.relay_names), reverse=True
    )
    assert weights[0] >= 1.5 * float(np.median(weights))

    rows = [
        ("uniform random set", mu, float(np.median(uniform.column("improvement_percent")))),
        ("utilization weighted", mw, float(np.median(weighted.column("improvement_percent")))),
    ]
    text = render_table(
        ["policy", "mean improvement %", "median improvement %"],
        rows,
        title=f"A2 - weighted vs uniform candidate sampling ({CLIENT}, k={K})",
    )
    save_artifact("ablation_weighted_selection", text)
