"""A11: measurement methodology - isolated universes vs on-node interference.

The paper's control and selecting processes ran concurrently on the same
PlanetLab node, sharing its access link; the measurements therefore carry
self-interference the authors could not remove.  Our simulator can run the
pair in isolated universes (identical conditions, zero interference) or in
one shared universe (the deployed methodology).  This bench quantifies the
difference - the paper's qualitative conclusions should survive either way,
with the interfering mode depressing both sides' absolute throughput.
"""

import numpy as np

from repro.util import render_table
from repro.workloads.experiment import run_interfering_pair, run_paired_transfer

CLIENTS = ("Italy", "Sweden", "Korea", "Brazil", "Greece")
REPS = 10
INTERVAL = 360.0


def _run(scenario):
    isolated, interfering = [], []
    for client in CLIENTS:
        rotation = list(scenario.relay_names)
        rng = scenario.bank.generator("a11-rotation", client)
        rng.shuffle(rotation)
        for j in range(REPS):
            kw = dict(
                client=client,
                site="eBay",
                repetition=j,
                start_time=j * INTERVAL,
                offered=[rotation[j % len(rotation)]],
            )
            isolated.append(run_paired_transfer(scenario, study="a11-iso", **kw))
            interfering.append(
                run_interfering_pair(scenario, study="a11-int", **kw)
            )
    return isolated, interfering


def test_ablation_interference(benchmark, s2_scenario, save_artifact):
    isolated, interfering = benchmark.pedantic(
        _run, args=(s2_scenario,), rounds=1, iterations=1
    )

    def stats(records):
        imps = np.array([r.improvement_percent for r in records])
        indirect = np.array([r.used_indirect for r in records])
        chosen = imps[indirect] if indirect.any() else np.array([0.0])
        direct = np.array([r.direct_throughput for r in records])
        return (
            100.0 * float(np.mean(indirect)),
            float(np.mean(chosen)),
            float(np.median(chosen)),
            float(np.mean(direct)) * 8 / 1e6,
        )

    iso_util, iso_mean, iso_med, iso_direct = stats(isolated)
    int_util, int_mean, int_med, int_direct = stats(interfering)

    # Interference depresses the control's measured direct throughput (it
    # shares the access link with the selector's activity).
    assert int_direct <= iso_direct * 1.02
    # The qualitative conclusions survive the methodology change: the
    # indirect path is still selected a substantial fraction of the time
    # with solidly positive conditional improvement.
    assert int_util >= 20.0
    assert int_mean >= 10.0
    # And both modes agree within a reasonable band.
    assert abs(int_util - iso_util) <= 25.0

    rows = [
        ("isolated universes (ours)", iso_util, iso_mean, iso_med, iso_direct),
        ("shared node (paper's deployment)", int_util, int_mean, int_med, int_direct),
    ]
    text = render_table(
        ["methodology", "indirect %", "mean imp %", "median imp %",
         "mean direct Mbps"],
        rows,
        title="A11 - isolated vs interfering paired measurement",
    )
    save_artifact("ablation_interference", text)
