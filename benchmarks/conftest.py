"""Benchmark fixtures: shared campaign data and artefact persistence.

Each bench regenerates one of the paper's tables/figures.  The simulated
campaigns are session-scoped fixtures so the (timed) analysis kernels and
the artefact rendering reuse one data set per session.

Scale knobs (environment variables):

``REPRO_BENCH_S2_REPS``
    Repetitions per client for the §2 campaign (default 30; paper: 100).
``REPRO_BENCH_S4_REPS``
    Repetitions per configuration for the §4 sweep (default 20; paper: 720).
``REPRO_BENCH_SEED``
    Root seed (default 2007).
``REPRO_BENCH_JOBS``
    Worker processes for campaign generation (default 1).  Campaign output
    is byte-identical for every value (see :mod:`repro.runner`), so this is
    purely a wall-clock knob for multi-core runners.

Rendered artefacts are written to ``results/`` at the repository root.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro import Scenario, ScenarioSpec, Section2Study, Section4Study

#: The §4 sweep's set sizes (paper Fig. 6 sweeps 1..35).
SET_SIZES = (1, 2, 4, 6, 10, 16, 24, 35)


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


@pytest.fixture(scope="session")
def bench_seed() -> int:
    return _env_int("REPRO_BENCH_SEED", 2007)


@pytest.fixture(scope="session")
def bench_jobs() -> int:
    return max(_env_int("REPRO_BENCH_JOBS", 1), 1)


@pytest.fixture(scope="session")
def s2_scenario(bench_seed):
    """The §2 deployment (eBay only; the paper's detailed data set)."""
    return Scenario.build(ScenarioSpec.section2(sites=("eBay",)), seed=bench_seed)


@pytest.fixture(scope="session")
def s2_store(s2_scenario, bench_jobs):
    """The §2 campaign: all 22 clients, rotating relays."""
    reps = _env_int("REPRO_BENCH_S2_REPS", 30)
    return Section2Study(s2_scenario, repetitions=reps).run(
        sites=["eBay"], jobs=bench_jobs
    )


@pytest.fixture(scope="session")
def s4_scenario(bench_seed):
    """The §4 deployment: Duke/Italy/Sweden, 35 relays."""
    return Scenario.build(ScenarioSpec.section4(), seed=bench_seed)


@pytest.fixture(scope="session")
def s4_study(s4_scenario):
    reps = _env_int("REPRO_BENCH_S4_REPS", 20)
    return Section4Study(s4_scenario, repetitions=reps)


@pytest.fixture(scope="session")
def s4_store(s4_study, bench_jobs):
    """The §4 random-set sweep over all set sizes."""
    return s4_study.run_random_set_sweep(SET_SIZES, jobs=bench_jobs)


@pytest.fixture(scope="session")
def multisite_store(bench_seed, bench_jobs):
    """A four-site §2 campaign (reduced client count for bench runtime)."""
    scenario = Scenario.build(ScenarioSpec.section2(), seed=bench_seed)
    reps = max(_env_int("REPRO_BENCH_S2_REPS", 30) // 3, 4)
    study = Section2Study(scenario, repetitions=reps)
    return study.run(clients=scenario.client_names[:12], jobs=bench_jobs)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    path = Path(__file__).resolve().parent.parent / "results"
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture(scope="session")
def save_artifact(results_dir):
    """Persist a rendered table/figure and echo it to the terminal."""

    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[saved to results/{name}.txt]")

    return _save


@pytest.fixture(scope="session")
def save_svg(results_dir):
    """Persist an SVG figure next to its text artefact."""

    def _save(name: str, svg: str) -> None:
        (results_dir / f"{name}.svg").write_text(svg, encoding="utf-8")
        print(f"[figure saved to results/{name}.svg]")

    return _save
