"""E10 / §2.2 text: average improvement per destination web site.

Paper: "Indirect routing produces a throughput improvement ... ranging from
33% to 49% on average, depending on the Web site."
"""

import numpy as np

from repro.analysis import mean_improvement_by_site
from repro.util import render_table


def test_sites_improvement_band(benchmark, multisite_store, save_artifact):
    by_site = benchmark(mean_improvement_by_site, multisite_store)

    assert set(by_site) == {"eBay", "Google", "Microsoft", "Yahoo"}
    values = np.array(list(by_site.values()))
    # Every site shows a solidly positive average improvement, in a band
    # comparable to the paper's 33-49%.
    assert np.all(values > 10.0)
    assert np.all(values < 100.0)
    # The sites differ, but not wildly (same mechanism, same clients).
    assert values.max() - values.min() <= 60.0

    rows = [(site, imp) for site, imp in sorted(by_site.items())]
    text = render_table(
        ["site", "mean improvement % (indirect selected)"],
        rows,
        title="Per-site average improvement (paper: 33-49% band)",
    )
    save_artifact("sites_improvement_band", text)
