"""A8: failure masking - the availability property inherited from RON/MONET.

The paper measures throughput only, but its mechanism masks path failures
as a side effect: a dead direct path cannot finish (or win) the probe race,
so the transfer proceeds via the relay while the direct-only control waits
out the outage.  MONET (paper ref [12]) reports avoiding 60-94% of observed
failures; this bench measures the comparable masking rate here.
"""

from repro.net.failures import OutageGenerator
from repro.util import render_kv
from repro.workloads.failures import FailureStudy

CLIENTS = ("Italy", "Sweden", "Korea", "Brazil", "Greece")
REPS = 12


def _run(scenario):
    study = FailureStudy(
        scenario,
        generator=OutageGenerator(mtbf=600.0, mean_duration=150.0),
        repetitions=REPS,
    )
    records = study.run(clients=list(CLIENTS))
    return study, records


def test_ablation_failure_masking(benchmark, s2_scenario, save_artifact):
    study, records = benchmark.pedantic(
        _run, args=(s2_scenario,), rounds=1, iterations=1
    )
    stats = study.masking_stats(records)

    assert stats.n_transfers == len(CLIENTS) * REPS
    assert stats.n_affected >= 5, "outage regime too light to measure masking"
    # The mechanism masks the majority of outage-affected transfers -
    # the same band MONET reports for overlay-assisted recovery.
    assert 0.5 <= stats.masking_rate <= 1.0
    # Affected transfers complete dramatically faster with selection.
    assert stats.mean_affected_speedup >= 1.5

    text = render_kv(
        [
            ("transfers", stats.n_transfers),
            ("outage-affected", stats.n_affected),
            ("masked (finished in <=70% of control time)", stats.n_masked),
            ("masking rate", stats.masking_rate),
            ("mean speedup on affected transfers", stats.mean_affected_speedup),
        ],
        title="A8 - failure masking under direct-path outages "
        "(MONET reports 60-94% avoidance)",
    )
    save_artifact("ablation_failure_masking", text)
