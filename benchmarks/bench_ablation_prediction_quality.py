"""A5: probe prediction quality against simulator ground truth.

The paper infers the probe's imperfection indirectly (penalties, Table III
noise).  With counterfactual universes we can measure it directly: for each
transfer, a forced-indirect world reveals what the untaken path would have
carried, giving decision accuracy, regret, and the fraction of the oracle's
achievable improvement the mechanism captures.
"""

from repro.analysis.prediction import prediction_quality
from repro.util import render_kv
from repro.workloads.counterfactual import run_counterfactual_study

CLIENTS = ("Italy", "Sweden", "Korea", "Brazil", "Greece", "Norway", "Russia")
REPS = 12


def test_ablation_prediction_quality(benchmark, s2_scenario, save_artifact):
    records = benchmark.pedantic(
        run_counterfactual_study,
        args=(s2_scenario,),
        kwargs=dict(clients=list(CLIENTS), repetitions=REPS),
        rounds=1,
        iterations=1,
    )
    quality = prediction_quality(records)

    assert quality.n_transfers == len(CLIENTS) * REPS
    # The 100 KB probe is a good-but-imperfect predictor: it picks the truly
    # faster path most of the time (the paper's 88% positive-improvement rate
    # implies roughly this accuracy) but not always.
    assert 0.65 <= quality.accuracy <= 1.0
    assert quality.mean_regret <= 0.20
    # The mechanism captures a large share of the oracle's improvement.
    assert quality.capture_ratio >= 0.5

    text = render_kv(
        [
            ("transfers", quality.n_transfers),
            ("decision accuracy", quality.accuracy),
            ("mean regret (fraction of best)", quality.mean_regret),
            ("max regret", quality.max_regret),
            ("oracle mean improvement (%)", quality.oracle_mean_improvement),
            ("realised mean improvement (%)", quality.realised_mean_improvement),
            ("capture ratio", quality.capture_ratio),
        ],
        title="A5 - probe prediction quality vs counterfactual ground truth",
    )
    save_artifact("ablation_prediction_quality", text)
