"""E2 / Figure 2: per-client improvement histograms.

Paper: most clients' distributions roughly resemble the aggregate (mass in
[0, 100]%, peak near ~50%), with occasional outliers (France).
"""

import numpy as np

from repro.analysis import per_client_histograms, render_fig2


def test_fig2_per_client_histograms(benchmark, s2_store, save_artifact):
    hists = benchmark(per_client_histograms, s2_store)

    assert len(hists) == 22  # every Table IV client present
    populated = [h for h in hists.values() if h.n_points >= 5]
    assert len(populated) >= 10, "too few clients selected the indirect path"

    # Most populated clients resemble the aggregate: majority of mass in
    # [0, 100] percent.
    resembling = sum(1 for h in populated if h.fraction_0_to_100 >= 0.5)
    assert resembling >= 0.7 * len(populated)

    # Median of per-client medians sits in the paper's improvement band.
    medians = [h.median for h in populated]
    assert 10.0 <= float(np.median(medians)) <= 70.0

    save_artifact("fig2_per_client_histograms", render_fig2(hists))
