"""E1 / Figure 1: histogram of throughput improvements over all clients.

Paper: mean ~49%, median ~37%, 84% of mass in [0, 100]%, ~12% negative,
conditioned on the indirect path being selected.
"""

from repro.analysis import improvement_histogram, render_fig1
from repro.util.svg import svg_histogram


def test_fig1_improvement_histogram(benchmark, s2_store, save_artifact, save_svg):
    hist = benchmark(improvement_histogram, s2_store)

    assert hist.n_points > 50, "campaign produced too few indirect selections"
    # Paper bands (generous: our substrate is a simulator, shape must hold).
    assert 25.0 <= hist.mean <= 70.0, f"mean {hist.mean} outside paper band"
    assert 20.0 <= hist.median <= 55.0, f"median {hist.median} outside paper band"
    assert 0.04 <= hist.fraction_negative <= 0.22
    assert hist.fraction_0_to_100 >= 0.60
    # The bulk of the distribution peaks between 0 and 100% (paper Fig. 2
    # says "peaks somewhere near 50%").
    lo, hi = hist.peak_bin()
    assert 0.0 <= lo and hi <= 100.0

    save_artifact("fig1_improvement_histogram", render_fig1(hist))
    save_svg(
        "fig1_improvement_histogram",
        svg_histogram(
            hist.percentages,
            hist.edges,
            title="Figure 1: throughput improvements, all clients",
        ),
    )
