"""E4 / Table II: each client's top three intermediate nodes.

Paper: "among the top three intermediate nodes for each client, there is a
fair amount of overlap" - a handful of relays serve many clients well.
"""

from collections import Counter

from repro.analysis import render_table2, top_relays_per_client


def test_table2_top_relays_per_client(benchmark, s2_store, save_artifact):
    top = benchmark(top_relays_per_client, s2_store)

    assert len(top) == 22
    assert all(1 <= len(relays) <= 3 for relays in top.values())
    assert all(0.0 <= u <= 1.0 for relays in top.values() for _, u in relays)

    # The paper's overlap claim: 22 clients x 3 slots = 66 entries but far
    # fewer distinct relays, with the most popular serving several clients.
    entries = [relay for relays in top.values() for relay, _ in relays]
    counts = Counter(entries)
    assert len(counts) < len(entries) * 0.6
    assert counts.most_common(1)[0][1] >= 4

    save_artifact("table2_top_relays", render_table2(top))
