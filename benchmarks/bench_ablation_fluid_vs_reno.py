"""A4: fluid transport model vs round-based TCP Reno.

The study's substrate is a fluid flow model with a slow-start ramp and a
window cap.  This bench validates that idealisation against the packet-epoch
Reno reference on single-bottleneck transfers across file sizes and
capacities: transfer-time ratios stay within a small constant factor, and
both models rank paths identically (which is all the probe mechanism needs).
"""

import numpy as np

from repro.net.link import Link
from repro.net.route import Route
from repro.net.trace import CapacityTrace
from repro.sim.simulator import Simulator
from repro.tcp.fluid import FluidNetwork
from repro.tcp.model import SlowStartRamp
from repro.tcp.reno import RenoConfig, simulate_reno_transfer
from repro.util import render_table
from repro.util.units import mb, mbps_to_bytes_per_s

CASES = [
    # (size bytes, capacity Mbps, rtt s)
    (mb(0.1), 1.0, 0.1),
    (mb(1), 1.0, 0.1),
    (mb(8), 1.0, 0.1),
    (mb(1), 4.0, 0.05),
    (mb(8), 4.0, 0.2),
]


def _fluid_time(size, cap_mbps, rtt):
    sim = Simulator()
    net = FluidNetwork(sim)
    cap = mbps_to_bytes_per_s(cap_mbps)
    route = Route([Link("l", "s", "c", CapacityTrace.constant(cap), rtt / 2)])
    ramp = SlowStartRamp(rtt=rtt, initial_window=2920.0, max_window=1e12)
    flow = net.start_flow(route, size, ramp=ramp, activation_delay=rtt)
    net.run_to_completion(flow)
    return flow.duration()


def _compare():
    rows = []
    for size, cap_mbps, rtt in CASES:
        fluid = _fluid_time(size, cap_mbps, rtt)
        reno = simulate_reno_transfer(
            size,
            RenoConfig(
                capacity=mbps_to_bytes_per_s(cap_mbps),
                rtt=rtt,
                buffer_bytes=64_000.0,
            ),
        ).duration
        rows.append((size / 1e6, cap_mbps, rtt, fluid, reno, reno / fluid))
    return rows


def test_ablation_fluid_vs_reno(benchmark, save_artifact):
    rows = benchmark(_compare)

    ratios = np.array([r[5] for r in rows])
    # The fluid idealisation tracks Reno within a factor of two everywhere.
    assert np.all(ratios >= 0.5) and np.all(ratios <= 2.0), ratios

    # Both models rank the cases identically by transfer time.
    fluid_order = np.argsort([r[3] for r in rows]).tolist()
    reno_order = np.argsort([r[4] for r in rows]).tolist()
    assert fluid_order == reno_order

    text = render_table(
        ["size MB", "capacity Mbps", "RTT s", "fluid s", "Reno s", "Reno/fluid"],
        rows,
        title="A4 - fluid model vs TCP Reno reference (single bottleneck)",
        float_fmt=".2f",
    )
    save_artifact("ablation_fluid_vs_reno", text)
