"""E6 / Figure 4: indirect-path throughput vs time.

Paper: "Indirect path throughputs do not show any discernable uptrend or
downtrend over time.  However, there are a few small jumps that do occur."
We quantify "no discernible trend" with the Mann-Kendall test.
"""

from repro.analysis import indirect_throughput_series, render_fig4
from repro.util.svg import svg_line_chart


def test_fig4_indirect_throughput_over_time(benchmark, s2_store, save_artifact, save_svg):
    series = benchmark(indirect_throughput_series, s2_store)

    populated = {n: s for n, s in series.items() if s.n_points >= 8}
    assert len(populated) >= 8, "too few clients with indirect selections"

    # Most clients show no significant monotone trend (alpha = 0.05 admits
    # ~5% false positives by construction).
    trendless = sum(1 for s in populated.values() if not s.has_trend)
    assert trendless >= 0.7 * len(populated)

    # Indirect throughput is comparatively stable: relative std below ~50%
    # for the typical client (jumps allowed, drifts not).
    import numpy as np

    rel_stds = [
        float(np.std(s.throughput_mbps) / np.mean(s.throughput_mbps))
        for s in populated.values()
    ]
    assert float(np.median(rel_stds)) <= 0.5

    save_artifact("fig4_indirect_over_time", render_fig4(series))
    shown = sorted(populated, key=lambda n: -populated[n].n_points)[:4]
    save_svg(
        "fig4_indirect_over_time",
        svg_line_chart(
            {
                name: (
                    (populated[name].times / 3600.0).tolist(),
                    populated[name].throughput_mbps.tolist(),
                )
                for name in shown
            },
            title="Figure 4: indirect-path throughput vs time",
            xlabel="time (hours)",
            ylabel="throughput (Mbps)",
        ),
    )
