"""A1: probe-size ablation.

Paper §2.1: x must be "large enough to allow the connection to last beyond
and marginalize the initial effects of TCP slow-start ... We experimentally
determined that x = 100KB produces good estimates."

This bench sweeps x and measures (a) the mean improvement actually realised
and (b) the penalty rate, showing that tiny probes (slow-start-dominated)
select worse paths while larger probes only add overhead.
"""

import numpy as np

from repro.core.probe import ProbeMode
from repro.core.session import SessionConfig
from repro.http.transfer import TcpParams
from repro.util import kb, render_table
from repro.workloads.experiment import run_paired_transfer

PROBE_SIZES_KB = (5, 20, 100, 400)
CLIENTS = ("Italy", "Sweden", "Korea", "Brazil", "Greece", "Norway")
REPS = 8


def _sweep(scenario):
    rows = []
    for x_kb in PROBE_SIZES_KB:
        config = SessionConfig(
            probe_bytes=kb(x_kb),
            probe_mode=ProbeMode.CONCURRENT,
            tcp=TcpParams(max_window=131_072.0),
        )
        records = []
        for client in CLIENTS:
            rotation = scenario.relay_names
            for j in range(REPS):
                records.append(
                    run_paired_transfer(
                        scenario,
                        study=f"probe{x_kb}",
                        client=client,
                        site="eBay",
                        repetition=j,
                        start_time=j * 360.0,
                        offered=[rotation[j % len(rotation)]],
                        config=config,
                    )
                )
        imps = np.array([r.improvement_percent for r in records])
        indirect = np.array([r.used_indirect for r in records])
        overhead = float(np.mean([r.probe_overhead for r in records]))
        rows.append(
            (
                x_kb,
                float(np.mean(imps)),  # realised gain over ALL transfers
                100.0 * float(np.mean(indirect)),
                overhead,
            )
        )
    return rows


def test_ablation_probe_size(benchmark, s2_scenario, save_artifact):
    rows = benchmark.pedantic(_sweep, args=(s2_scenario,), rounds=1, iterations=1)

    by_x = {r[0]: r for r in rows}
    # Probe overhead grows with x.
    overheads = [r[3] for r in rows]
    assert overheads == sorted(overheads)
    # Tiny probes are slow-start/latency dominated: the lower-RTT direct
    # path wins races it should lose, so the indirect path is under-selected
    # and realised improvement is left on the table.
    assert by_x[5][2] < by_x[100][2], "5 KB probe should under-select indirect"
    assert by_x[100][1] >= by_x[5][1] - 3.0
    # Going far beyond 100 KB buys little additional improvement - the
    # paper's "x = 100 KB produces good estimates".
    assert by_x[400][1] <= by_x[100][1] + 25.0

    text = render_table(
        [
            "probe x (KB)",
            "mean improvement % (all transfers)",
            "indirect selected %",
            "probe overhead s",
        ],
        rows,
        title="A1 - probe size ablation (paper picked x = 100 KB)",
    )
    save_artifact("ablation_probe_size", text)
