"""E9 / Table III: relay utilisation vs throughput improvement (Duke).

Paper: "For the most part, the nodes that provide the highest throughput
are the nodes that are selected the most ... this correlation is not
perfect" (prediction error from sampling the first 100 KB).
"""

from repro.analysis import (
    render_table3,
    utilization_improvement_correlation,
    utilization_vs_improvement,
)


def test_table3_utilization_vs_improvement(benchmark, s4_store, save_artifact):
    rows = benchmark(utilization_vs_improvement, s4_store, "Duke")

    # A meaningful subset of the 35 relays has non-zero utilisation (the
    # paper shows 22 of 35).
    assert 8 <= len(rows) <= 35
    # Sorted descending by utilisation.
    utils = [r.utilization_percent for r in rows]
    assert utils == sorted(utils, reverse=True)
    # Spread: the favourite relay is clearly ahead of the long tail.
    assert utils[0] >= 3.0 * utils[-1]

    corr = utilization_improvement_correlation(rows)
    # Positive but imperfect (paper: Texas at the top, Michigan anomalous).
    assert 0.05 <= corr <= 0.98, f"correlation {corr:.2f}"

    text = render_table3(rows, client="Duke")
    text += f"\n\nutilization/improvement correlation: {corr:+.2f}"
    text += "\n(paper: positive, but 'this correlation is not perfect')"
    save_artifact("table3_utilization_vs_improvement", text)
