"""E11 / §6 headline rates.

Paper: the indirect path is selected ~45% of the time; when selected,
improvement is positive 88% of the time; so throughput diversity is
exploited ~40% of the time overall.
"""

from repro.analysis import headline_stats, render_headline


def test_headline_rates(benchmark, s2_store, save_artifact):
    stats = benchmark(headline_stats, s2_store)

    assert stats.n_transfers == len(s2_store)
    # Paper: 45% utilisation.
    assert 0.30 <= stats.utilization <= 0.60
    # Paper: 88% positive given indirect.
    assert 0.75 <= stats.positive_given_indirect <= 0.98
    # Paper: ~40% effective benefit rate.
    assert 0.25 <= stats.effective_benefit_rate <= 0.55
    # Paper: average improvement 33-49% (eBay at the top of the band).
    assert 25.0 <= stats.mean_improvement_when_indirect <= 70.0

    save_artifact("headline_rates", render_headline(stats))
