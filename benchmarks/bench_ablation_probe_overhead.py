"""A3: probe overhead accounting and the concurrent-probing failure mode.

Two related questions the paper leaves implicit:

1. How much does the probe phase cost end-to-end?  We compare improvement
   computed from bulk-phase throughput (the paper's metric) against
   improvement computed end-to-end (probe included), as the set size grows.
2. What happens if the candidates are probed *concurrently* instead of
   sequentially?  The probes then contend on the client's own access link
   and the lowest-latency path (direct) wins spuriously - selection quality
   collapses at large k.  This justifies the sequential-probing reading of
   the paper's §4 ("perform n preliminary download tests").
"""

import numpy as np

from repro.core.probe import ProbeMode
from repro.core.random_set import UniformRandomSetPolicy
from repro.core.session import SessionConfig
from repro.http.transfer import TcpParams
from repro.util import render_table
from repro.workloads.experiment import Section4Study

CLIENT = "Italy"
SET_SIZES = (1, 6, 16)
REPS = 12


def _improvements(store, attr):
    sel = store.column(attr)
    direct = store.column("direct_throughput")
    return float(np.mean((sel - direct) / direct * 100.0))


def _run(scenario):
    rows = []
    for k in SET_SIZES:
        per_mode = {}
        for mode in (ProbeMode.SEQUENTIAL, ProbeMode.CONCURRENT):
            config = SessionConfig(
                probe_mode=mode,
                tcp=TcpParams(max_window=131_072.0),
                probe_noise_sigma=0.10 if mode is ProbeMode.SEQUENTIAL else 0.0,
            )
            study = Section4Study(scenario, repetitions=REPS, config=config)
            store = study.run_policy(
                UniformRandomSetPolicy(k),
                clients=[CLIENT],
                study=f"overhead-{mode.value}-{k}",
            )
            per_mode[mode] = store
        seq = per_mode[ProbeMode.SEQUENTIAL]
        rows.append(
            (
                k,
                _improvements(seq, "selected_throughput"),
                _improvements(seq, "end_to_end_throughput"),
                float(np.mean(seq.column("probe_overhead"))),
                _improvements(per_mode[ProbeMode.CONCURRENT], "selected_throughput"),
            )
        )
    return rows


def test_ablation_probe_overhead(benchmark, s4_scenario, save_artifact):
    rows = benchmark.pedantic(_run, args=(s4_scenario,), rounds=1, iterations=1)

    by_k = {r[0]: r for r in rows}
    # Sequential probe overhead grows with the candidate count.
    overheads = [r[3] for r in rows]
    assert overheads == sorted(overheads)
    # End-to-end improvement is dragged down by probe overhead at large k.
    k_big = SET_SIZES[-1]
    assert by_k[k_big][2] <= by_k[k_big][1] + 1e-9
    # Concurrent probing at large k underperforms sequential probing's
    # bulk-phase improvement (the access-link contention failure mode).
    assert by_k[k_big][4] <= by_k[k_big][1] + 5.0

    text = render_table(
        [
            "set size k",
            "seq: bulk improvement %",
            "seq: end-to-end improvement %",
            "seq: probe overhead s",
            "concurrent: bulk improvement %",
        ],
        rows,
        title=f"A3 - probe overhead and probing mode ({CLIENT})",
    )
    save_artifact("ablation_probe_overhead", text)
