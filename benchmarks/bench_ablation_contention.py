"""A7: variability from explicit contention vs modulated capacity traces.

The default scenarios model background load as Markov-modulated *available
capacity*; this bench re-runs a §2-style slice where the direct WAN segment
instead carries an explicit Poisson stream of competing TCP flows (same
seeds in both worlds of each pair).  The paper's qualitative conclusions -
indirect routing is selected a substantial fraction of the time and delivers
solidly positive conditional improvement - should not depend on which
variability mechanism is used.
"""

import dataclasses

import numpy as np

from repro.util import render_table
from repro.workloads.calibration import CalibrationParams
from repro.workloads.contention import ContentionSpec, run_contended_pair
from repro.workloads.experiment import run_paired_transfer
from repro.workloads.scenario import Scenario, ScenarioSpec

CLIENTS = ("Italy", "Sweden", "Korea", "Brazil")
REPS = 10


def _flat_scenario(seed):
    params = dataclasses.replace(
        CalibrationParams(),
        low_var_multipliers=(1.0, 1.0, 1.0),
        high_var_multipliers=(1.0, 1.0, 1.0),
    )
    return Scenario.build(
        ScenarioSpec.section2(sites=("eBay",), params=params), seed=seed
    )


def _run_both(modulated_scenario, flat_scenario):
    results = {}
    for label, runner in (
        ("modulated traces", None),
        ("explicit contention", ContentionSpec(load=0.55)),
    ):
        recs = []
        scenario = modulated_scenario if runner is None else flat_scenario
        for client in CLIENTS:
            rotation = scenario.relay_names
            for j in range(REPS):
                if runner is None:
                    recs.append(
                        run_paired_transfer(
                            scenario,
                            study="a7",
                            client=client,
                            site="eBay",
                            repetition=j,
                            start_time=j * 360.0,
                            offered=[rotation[j % len(rotation)]],
                        )
                    )
                else:
                    recs.append(
                        run_contended_pair(
                            scenario,
                            client=client,
                            site="eBay",
                            repetition=j,
                            start_time=j * 360.0,
                            offered=[rotation[j % len(rotation)]],
                            spec=runner,
                        )
                    )
        results[label] = recs
    return results


def test_ablation_contention(benchmark, s2_scenario, bench_seed, save_artifact):
    flat = _flat_scenario(bench_seed)
    results = benchmark.pedantic(
        _run_both, args=(s2_scenario, flat), rounds=1, iterations=1
    )

    rows = []
    for label, recs in results.items():
        indirect = np.array([r.used_indirect for r in recs])
        imps = np.array([r.improvement_percent for r in recs])
        chosen = imps[indirect] if indirect.any() else np.array([0.0])
        rows.append(
            (
                label,
                len(recs),
                100.0 * float(np.mean(indirect)),
                float(np.mean(chosen)),
                float(np.median(chosen)),
            )
        )

    by_label = {r[0]: r for r in rows}
    for label in by_label:
        util = by_label[label][2]
        mean_imp = by_label[label][3]
        # Both variability mechanisms produce the paper's qualitative story.
        assert util >= 15.0, f"{label}: utilisation {util:.0f}% too low"
        assert mean_imp >= 10.0, f"{label}: mean improvement {mean_imp:.0f}% too low"

    text = render_table(
        ["variability model", "pairs", "indirect %", "mean imp %", "median imp %"],
        rows,
        title="A7 - modulated traces vs explicit cross-traffic contention",
    )
    save_artifact("ablation_contention", text)
