"""E7 / Figure 5: utilisation statistics per intermediate node.

Paper: average utilisation across all intermediate nodes is ~45%, and the
indirect path is "still significantly utilized regardless of which
intermediate node lies on the indirect path".
"""

import numpy as np

from repro.analysis import (
    overall_average_utilization,
    render_fig5,
    total_utilization_stats,
)
from repro.util.svg import svg_grouped_bars

#: The relays the paper's Fig. 5 displays.
FIG5_RELAYS = (
    "Berkeley",
    "UCSD",
    "UIUC",
    "Duke",
    "Stanford",
    "Texas",
    "Georgia Tech",
    "Princeton",
    "UCLA",
)


def test_fig5_relay_utilization(benchmark, s2_store, save_artifact, save_svg):
    stats = benchmark(total_utilization_stats, s2_store)

    assert len(stats) == 21  # every Table V relay was rotated in
    avg = overall_average_utilization(s2_store)
    # Paper: ~45% average utilisation across relays.
    assert 0.25 <= avg <= 0.60, f"overall average utilisation {avg:.2f}"

    # Every relay sees some use across the client population - the paper's
    # "still significantly utilized regardless of which intermediate node".
    used = sum(1 for s in stats.values() if s.average > 0.05)
    assert used >= 0.8 * len(stats)

    # Moment sanity: RMS >= average for every relay.
    for s in stats.values():
        assert s.rms >= s.average - 1e-9

    text = render_fig5(stats, relays=[r for r in FIG5_RELAYS if r in stats])
    text += f"\n\noverall average utilisation: {100 * avg:.1f}% (paper: ~45%)"
    save_artifact("fig5_relay_utilization", text)
    shown = [r for r in FIG5_RELAYS if r in stats]
    save_svg(
        "fig5_relay_utilization",
        svg_grouped_bars(
            shown,
            {
                "average": [100 * stats[r].average for r in shown],
                "stdev": [100 * stats[r].stdev for r in shown],
                "RMS": [100 * stats[r].rms for r in shown],
            },
            title="Figure 5: intermediate node utilization",
            ylabel="percent",
        ),
    )
