"""E5 / Figure 3: improvement vs direct-path throughput.

Paper: "the trend is that throughput performance improvement decreases as
client throughput on the direct path increases" - a downward slope, both in
aggregate and for most per-client panels.
"""

from repro.analysis import improvement_vs_throughput, render_fig3
from repro.util.svg import svg_line_chart


def _panels(store):
    panels = [improvement_vs_throughput(store, label="all clients")]
    for client in ("Italy", "Sweden", "Korea", "Brazil"):
        panels.append(
            improvement_vs_throughput(store, label=client, client=client)
        )
    return panels


def test_fig3_improvement_vs_throughput(benchmark, s2_store, save_artifact, save_svg):
    panels = benchmark(_panels, s2_store)

    aggregate = panels[0]
    assert aggregate.direct_mbps.size > 50
    assert aggregate.is_downward, (
        f"aggregate slope {aggregate.slope:.1f} %/Mbps is not downward"
    )

    # Binned means should fall from the low-throughput to the
    # high-throughput end (paper's visual trend).
    centres, means = aggregate.binned_means(5)
    assert means[0] > means[-1]

    save_artifact("fig3_improvement_vs_throughput", render_fig3(panels))
    series = {}
    for panel in panels:
        xs, ys = panel.binned_means(5)
        if xs.size:
            series[panel.label] = (xs.tolist(), ys.tolist())
    save_svg(
        "fig3_improvement_vs_throughput",
        svg_line_chart(
            series,
            title="Figure 3: improvement vs direct-path throughput",
            xlabel="direct throughput (Mbps)",
            ylabel="mean improvement (%)",
        ),
    )
