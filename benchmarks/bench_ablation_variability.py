"""A6: throughput-variability reduction (paper §6 closing claim).

"Indirect routing can also be used to decrease throughput variability
experienced by clients."  With a stable per-client relay option, selection
escapes direct-path dips, clipping the lower tail of the throughput
distribution: lower CV, higher floor.
"""

import numpy as np

from repro.analysis.variability import variability_reduction
from repro.trace.store import TraceStore
from repro.util import render_table
from repro.workloads.experiment import run_paired_transfer

CLIENTS = ("Italy", "Sweden", "Korea", "Brazil", "Denmark", "France", "Greece", "Norway")
REPS = 16


def _run_static_campaign(scenario):
    store = TraceStore()
    for client in CLIENTS:
        relay = scenario.good_static_relay(client)
        for j in range(REPS):
            store.append(
                run_paired_transfer(
                    scenario,
                    study="static-variability",
                    client=client,
                    site="eBay",
                    repetition=j,
                    start_time=j * 360.0,
                    offered=[relay],
                )
            )
    return store


def test_ablation_variability_reduction(benchmark, s2_scenario, save_artifact):
    store = benchmark.pedantic(
        _run_static_campaign, args=(s2_scenario,), rounds=1, iterations=1
    )
    comps = variability_reduction(store)

    assert len(comps) == len(CLIENTS)
    reduced = [c for c in comps.values() if c.cv_reduced]
    # Majority of clients see lower variability with selection available.
    assert len(reduced) >= 0.5 * len(comps)
    # The mean CV across clients drops.
    mean_direct_cv = float(np.mean([c.direct_cv for c in comps.values()]))
    mean_selected_cv = float(np.mean([c.selected_cv for c in comps.values()]))
    assert mean_selected_cv <= mean_direct_cv + 0.02

    rows = [
        (
            c.client,
            c.n_transfers,
            c.direct_cv,
            c.selected_cv,
            c.cv_reduction_percent,
            "yes" if c.floor_raised else "no",
        )
        for c in sorted(comps.values(), key=lambda x: x.client)
    ]
    text = render_table(
        ["client", "n", "direct CV", "selected CV", "CV reduction %", "floor raised"],
        rows,
        title="A6 - throughput variability with vs without indirect routing",
        float_fmt=".2f",
    )
    text += (
        f"\n\nmean CV: direct {mean_direct_cv:.2f} -> selected {mean_selected_cv:.2f}"
        "\n(paper section 6: indirect routing decreases throughput variability)"
    )
    save_artifact("ablation_variability", text)
