"""A10: mid-transfer adaptive switching vs the paper's fire-and-forget probe.

The paper's 12%-penalty tail exists because a decision made at t=0 binds
for the whole transfer.  The adaptive extension re-probes when the chosen
path underperforms its own probe estimate.  Expected shape: the penalty
tail shrinks (fewer and milder negative improvements) while healthy
transfers pay essentially nothing.
"""

import numpy as np

from repro.core.adaptive import AdaptiveConfig, AdaptiveTransferSession
from repro.util import render_table
from repro.workloads.experiment import STUDY_SESSION_CONFIG

#: Weighted toward high-variability clients - the population whose chosen
#: path actually collapses mid-transfer (stable clients never trip the
#: watchdog, which is exactly the desired no-thrash behaviour).
CLIENTS = ("Beirut", "Berlin", "Brazil", "Denmark", "Taiwan", "Italy")
REPS = 10
INTERVAL = 360.0


def _run(scenario):
    adaptive_cfg = AdaptiveConfig(session=STUDY_SESSION_CONFIG, stall_threshold=0.6)
    plain_rows = []
    adaptive_rows = []
    switch_count = 0
    for client in CLIENTS:
        rotation = list(scenario.relay_names)
        rng = scenario.bank.generator("a10-rotation", client)
        rng.shuffle(rotation)
        for j in range(REPS):
            start = j * INTERVAL
            relay = rotation[j % len(rotation)]

            control = scenario.universe(start, config=STUDY_SESSION_CONFIG)
            ctrl = control.session.download_direct(client, "eBay", scenario.resource)
            direct = ctrl.transfer_throughput

            plain_u = scenario.universe(start, config=STUDY_SESSION_CONFIG)
            plain = plain_u.session.download(
                client, "eBay", scenario.resource, [relay]
            )
            # End-to-end throughput for BOTH mechanisms (the adaptive
            # session has no probe-free bulk phase to isolate, so the fair
            # comparison includes every phase on both sides).
            plain_rows.append(
                100.0 * (plain.end_to_end_throughput - direct) / direct
            )

            adaptive_u = scenario.universe(start, config=STUDY_SESSION_CONFIG)
            session = AdaptiveTransferSession(
                adaptive_u.network, scenario.builder, adaptive_cfg
            )
            result = session.download(client, "eBay", scenario.resource, [relay])
            adaptive_rows.append(100.0 * (result.throughput - direct) / direct)
            switch_count += result.switches
    return np.array(plain_rows), np.array(adaptive_rows), switch_count


def test_ablation_adaptive_switching(benchmark, s2_scenario, save_artifact):
    plain, adaptive, switches = benchmark.pedantic(
        _run, args=(s2_scenario,), rounds=1, iterations=1
    )

    def penalty_stats(imps):
        neg = imps[imps < -5.0]  # material penalties
        return (
            100.0 * neg.size / imps.size,
            float(-neg.mean()) if neg.size else 0.0,
            float(-imps.min()) if imps.min() < 0 else 0.0,
        )

    p_rate, p_avg, p_worst = penalty_stats(plain)
    a_rate, a_avg, a_worst = penalty_stats(adaptive)

    # The adaptive watchdog must not wreck the average case...
    assert float(np.mean(adaptive)) >= float(np.mean(plain)) - 10.0
    # ...and it trims the worst of the penalty tail.
    assert a_worst <= p_worst + 5.0
    assert a_rate <= p_rate + 5.0
    # It actually fires sometimes on this workload.
    assert switches >= 1

    rows = [
        ("plain probe (paper)", float(np.mean(plain)), float(np.median(plain)),
         p_rate, p_avg, p_worst),
        ("adaptive switching", float(np.mean(adaptive)), float(np.median(adaptive)),
         a_rate, a_avg, a_worst),
    ]
    text = render_table(
        ["mechanism", "mean imp %", "median %", "penalty rate %",
         "avg penalty %", "worst penalty %"],
        rows,
        title=f"A10 - adaptive mid-transfer switching ({switches} switches fired)",
    )
    save_artifact("ablation_adaptive", text)
