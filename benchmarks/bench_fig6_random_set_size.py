"""E8 / Figure 6: average improvement vs random-set size.

Paper: for Duke/Sweden/Italy against eBay, the curves rise with k and
"level off at about 10 nodes" of the 35 - a modest random subset captures
most of the attainable improvement.
"""

import numpy as np

from repro.analysis import random_set_curves, render_fig6, saturation_point
from repro.util.svg import svg_line_chart


def test_fig6_random_set_size(benchmark, s4_store, save_artifact, save_svg):
    curves = benchmark(random_set_curves, s4_store)

    assert set(curves) == {"Duke", "Italy", "Sweden"}
    saturations = {}
    for client, curve in curves.items():
        assert list(curve.set_sizes) == [1, 2, 4, 6, 10, 16, 24, 35]
        first = curve.value_at(1)
        peak = float(np.nanmax(curve.mean_improvement_percent))
        # Larger sets help: the peak clearly exceeds the k=1 starting point
        # for at least some clients, and never collapses below it.
        assert peak >= first - 10.0
        saturations[client] = saturation_point(curve)

    # The paper's core claim: no client needs anywhere near the full set -
    # ~90% of the attainable improvement arrives by the midteens at most.
    assert min(saturations.values()) <= 10
    assert float(np.median(list(saturations.values()))) <= 16

    text = render_fig6(curves)
    text += "\n\nsaturation (90% of max improvement): " + ", ".join(
        f"{c}: k={k}" for c, k in sorted(saturations.items())
    )
    text += "\n(paper: curves level off at about 10 nodes)"
    save_artifact("fig6_random_set_size", text)
    save_svg(
        "fig6_random_set_size",
        svg_line_chart(
            {
                name: (
                    curves[name].set_sizes.tolist(),
                    curves[name].mean_improvement_percent.tolist(),
                )
                for name in sorted(curves)
            },
            title="Figure 6: avg improvement vs random set size",
            xlabel="number of nodes in random set",
            ylabel="avg improvement (%)",
        ),
    )
