"""E3 / Table I: penalty statistics under the paper's filters.

Paper: All clients 12% penalty points / 290% average penalty; dropping
High-throughput clients gives 8% / 43%; additionally dropping
high-variability Med/Low clients gives 3% / 12%.  The reproduction target is
the monotone shape: each filter removes penalty points and shrinks the
magnitudes.
"""

from repro.analysis import penalty_table, render_table1


def test_table1_penalty_statistics(benchmark, s2_store, save_artifact):
    rows = benchmark(penalty_table, s2_store)

    assert [r.label for r in rows] == [
        "All",
        "Med/Low Throughput",
        "Low Variability",
    ]
    all_row, medlow_row, stable_row = rows

    # Penalties exist but are the minority (paper: 12% of points).
    assert 0.02 <= all_row.penalty_fraction <= 0.25

    # The filters act monotonically on both frequency and magnitude.
    assert medlow_row.penalty_fraction <= all_row.penalty_fraction + 1e-9
    assert stable_row.penalty_fraction <= medlow_row.penalty_fraction + 1e-9
    assert stable_row.avg_penalty <= all_row.avg_penalty + 1e-9

    # The stable Med/Low population is nearly penalty-free (paper: 3%, 12%).
    assert stable_row.penalty_fraction <= 0.10
    assert stable_row.avg_penalty <= 60.0

    # Max penalty dwarfs the average in the unfiltered population (the
    # paper's 3840% vs 290% long tail).
    if all_row.penalty_fraction > 0:
        assert all_row.max_penalty >= all_row.avg_penalty

    save_artifact("table1_penalty_stats", render_table1(rows))
