"""Fig. 4 time-series and Fig. 6 random-set analysis tests."""

import numpy as np
import pytest

from repro.analysis.random_set import (
    RandomSetCurve,
    random_set_curves,
    saturation_point,
)
from repro.analysis.timeseries import indirect_throughput_series
from repro.trace.records import TransferRecord
from repro.trace.store import TraceStore
from repro.util.units import mbps_to_bytes_per_s


def rec(client="A", t=0.0, selected_mbps=1.5, via="R", k=1, direct_mbps=1.0):
    return TransferRecord(
        study="t",
        client=client,
        site="eBay",
        repetition=int(t),
        start_time=t,
        set_size=k,
        offered=(via,) if via else (),
        selected_via=via,
        direct_throughput=mbps_to_bytes_per_s(direct_mbps),
        selected_throughput=mbps_to_bytes_per_s(selected_mbps),
        end_to_end_throughput=mbps_to_bytes_per_s(selected_mbps),
        probe_overhead=0.0,
        file_bytes=1e6,
    )


class TestIndirectSeries:
    def test_series_only_indirect_rows(self):
        s = TraceStore(
            [rec(t=0.0), rec(t=1.0, via=None), rec(t=2.0, selected_mbps=2.0)]
        )
        series = indirect_throughput_series(s)["A"]
        assert series.n_points == 2
        assert series.throughput_mbps.tolist() == [1.5, 2.0]

    def test_series_sorted_by_time(self):
        s = TraceStore([rec(t=5.0, selected_mbps=2.0), rec(t=1.0, selected_mbps=1.0)])
        series = indirect_throughput_series(s)["A"]
        assert series.times.tolist() == [1.0, 5.0]
        assert series.throughput_mbps.tolist() == [1.0, 2.0]

    def test_stable_series_has_no_trend(self):
        # Seed chosen for a clearly trendless draw (any fixed seed risks a
        # ~5% false positive at alpha=0.05; seed 4 gives p~0.96).
        rng = np.random.default_rng(4)
        rows = [
            rec(t=float(i), selected_mbps=1.5 + 0.05 * rng.standard_normal())
            for i in range(50)
        ]
        series = indirect_throughput_series(TraceStore(rows))["A"]
        assert not series.has_trend

    def test_trending_series_detected(self):
        rows = [rec(t=float(i), selected_mbps=1.0 + 0.1 * i) for i in range(30)]
        series = indirect_throughput_series(TraceStore(rows))["A"]
        assert series.trend.trend == "increasing"

    def test_jump_count(self):
        vals = [1.0] * 10 + [3.0] * 10
        rows = [rec(t=float(i), selected_mbps=v) for i, v in enumerate(vals)]
        series = indirect_throughput_series(TraceStore(rows))["A"]
        assert series.jump_count == 1

    def test_requested_clients(self):
        s = TraceStore([rec(client="A")])
        series = indirect_throughput_series(s, clients=["A", "B"])
        assert series["B"].n_points == 0

    def test_campaign_mostly_trendless(self, section2_store):
        """Paper Fig. 4: indirect throughput shows no discernible trend."""
        series = indirect_throughput_series(section2_store)
        tested = [s for s in series.values() if s.n_points >= 8]
        assert tested, "campaign should have clients with enough indirect points"
        trendless = sum(not s.has_trend for s in tested)
        assert trendless >= 0.7 * len(tested)


class TestRandomSetCurves:
    def build(self):
        rows = []
        means = {1: 10.0, 4: 30.0, 10: 42.0, 35: 44.0}
        for k, imp in means.items():
            sel = 1.0 * (1 + imp / 100.0)
            rows.extend(
                rec(t=float(i), k=k, selected_mbps=sel) for i in range(5)
            )
        return TraceStore(rows)

    def test_curve_values(self):
        curve = random_set_curves(self.build())["A"]
        assert curve.set_sizes.tolist() == [1, 4, 10, 35]
        assert curve.value_at(4) == pytest.approx(30.0)
        assert curve.n_per_point.tolist() == [5, 5, 5, 5]

    def test_value_at_missing_k(self):
        curve = random_set_curves(self.build())["A"]
        with pytest.raises(KeyError):
            curve.value_at(7)

    def test_saturation_point(self):
        curve = random_set_curves(self.build())["A"]
        # 90% of max (44) = 39.6 -> first reached at k=10.
        assert saturation_point(curve) == 10

    def test_saturation_fraction_validated(self):
        curve = random_set_curves(self.build())["A"]
        with pytest.raises(ValueError):
            saturation_point(curve, fraction=0.0)

    def test_saturation_nonpositive_curve(self):
        rows = [rec(t=float(i), k=k, selected_mbps=0.9) for k in (1, 5) for i in range(3)]
        curve = random_set_curves(TraceStore(rows))["A"]
        assert saturation_point(curve) == 1

    def test_empty_curve_raises(self):
        curve = RandomSetCurve(
            client="X",
            set_sizes=np.array([], dtype=np.intp),
            mean_improvement_percent=np.array([]),
            n_per_point=np.array([], dtype=np.intp),
        )
        with pytest.raises(ValueError):
            saturation_point(curve)

    def test_campaign_curves_rise(self, section4_store):
        """Paper Fig. 6: more candidates never hurt much; small k suffices."""
        curves = random_set_curves(section4_store)
        for client, curve in curves.items():
            first = curve.value_at(int(curve.set_sizes[0]))
            best = float(np.nanmax(curve.mean_improvement_percent))
            assert best >= first - 5.0  # rising-or-flat within noise
