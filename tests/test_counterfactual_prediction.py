"""Counterfactual runner and prediction-quality analysis tests."""

import math

import numpy as np
import pytest

from repro.analysis.prediction import prediction_quality
from repro.analysis.variability import variability_reduction
from repro.workloads.counterfactual import (
    CounterfactualRecord,
    run_counterfactual_study,
    run_counterfactual_transfer,
)


def make_record(direct=100.0, indirect=150.0, selected_via="R", selected=None):
    if selected is None:
        selected = indirect if selected_via else direct
    return CounterfactualRecord(
        client="c",
        site="eBay",
        relay="R",
        repetition=0,
        start_time=0.0,
        direct_throughput=direct,
        indirect_throughput=indirect,
        selected_via=selected_via,
        selected_throughput=selected,
        probe_overhead=1.0,
    )


class TestCounterfactualRecord:
    def test_best_via_indirect(self):
        assert make_record(direct=100, indirect=150).best_via == "R"

    def test_best_via_direct(self):
        assert make_record(direct=150, indirect=100).best_via is None

    def test_decision_correct(self):
        assert make_record(direct=100, indirect=150, selected_via="R").decision_correct
        assert not make_record(direct=150, indirect=100, selected_via="R").decision_correct

    def test_regret_zero_when_correct(self):
        r = make_record(direct=100, indirect=150, selected_via="R", selected=150)
        assert r.regret == pytest.approx(0.0)

    def test_regret_positive_when_wrong(self):
        r = make_record(direct=150, indirect=100, selected_via="R", selected=100)
        assert r.regret == pytest.approx((150 - 100) / 150)

    def test_achievable_improvement(self):
        r = make_record(direct=100, indirect=150)
        assert r.achievable_improvement == pytest.approx(0.5)
        r2 = make_record(direct=150, indirect=100)
        assert r2.achievable_improvement == pytest.approx(0.0)


class TestPredictionQuality:
    def test_empty(self):
        q = prediction_quality([])
        assert q.n_transfers == 0
        assert math.isnan(q.accuracy)

    def test_perfect_decisions(self):
        recs = [
            make_record(direct=100, indirect=150, selected_via="R", selected=150),
            make_record(direct=150, indirect=100, selected_via=None, selected=150),
        ]
        q = prediction_quality(recs)
        assert q.accuracy == 1.0
        assert q.mean_regret == pytest.approx(0.0)
        assert q.capture_ratio == pytest.approx(1.0)

    def test_wrong_decisions_counted(self):
        recs = [
            make_record(direct=150, indirect=100, selected_via="R", selected=100),
        ]
        q = prediction_quality(recs)
        assert q.accuracy == 0.0
        assert q.mean_regret > 0.0
        assert q.realised_mean_improvement < 0.0

    def test_capture_ratio_nan_without_oracle_gain(self):
        recs = [make_record(direct=150, indirect=100, selected_via=None, selected=150)]
        assert math.isnan(prediction_quality(recs).capture_ratio)


class TestOnScenario:
    def test_single_counterfactual(self, section2_scenario):
        rec = run_counterfactual_transfer(
            section2_scenario, client="Italy", site="eBay", relay="Texas"
        )
        assert rec.direct_throughput > 0
        assert rec.indirect_throughput > 0
        assert rec.selected_via in (None, "Texas")
        # The selector achieved roughly the throughput of whichever full
        # transfer it matched (bulk phases align up to probe-window shift).
        target = (
            rec.indirect_throughput if rec.selected_via else rec.direct_throughput
        )
        assert rec.selected_throughput == pytest.approx(target, rel=0.35)

    def test_deterministic(self, section2_scenario):
        kw = dict(client="Italy", site="eBay", relay="Texas")
        a = run_counterfactual_transfer(section2_scenario, **kw)
        b = run_counterfactual_transfer(section2_scenario, **kw)
        assert a == b

    def test_study_quality_bands(self, section2_scenario):
        recs = run_counterfactual_study(
            section2_scenario,
            clients=["Italy", "Sweden", "Korea", "Brazil"],
            repetitions=10,
        )
        q = prediction_quality(recs)
        assert q.n_transfers == 40
        # The 100 KB probe is a good-but-imperfect predictor (the paper's
        # entire penalty narrative): high accuracy, modest regret.
        assert 0.6 <= q.accuracy <= 1.0
        assert q.mean_regret <= 0.25
        # The mechanism captures a solid share of the oracle's improvement.
        if not math.isnan(q.capture_ratio):
            assert q.capture_ratio >= 0.4


class TestVariabilityReduction:
    @pytest.fixture(scope="class")
    def static_relay_store(self, section2_scenario):
        """A static-relay campaign (same good relay every transfer).

        The §6 variability claim is about a client using a consistent
        indirect option; relay *rotation* (used for Table II) adds variance
        from relay heterogeneity and would confound the comparison.
        """
        from repro.trace.store import TraceStore
        from repro.workloads.experiment import run_paired_transfer

        store = TraceStore()
        for client in ("Italy", "Sweden", "Korea", "Brazil", "Denmark", "France"):
            relay = section2_scenario.good_static_relay(client)
            for j in range(14):
                store.append(
                    run_paired_transfer(
                        section2_scenario,
                        study="static",
                        client=client,
                        site="eBay",
                        repetition=j,
                        start_time=j * 360.0,
                        offered=[relay],
                    )
                )
        return store

    def test_on_static_campaign(self, static_relay_store):
        comps = variability_reduction(static_relay_store)
        assert len(comps) == 6
        # Paper §6: indirect routing decreases throughput variability - the
        # majority of clients see a lower CV with a stable relay option.
        reduced = sum(1 for c in comps.values() if c.cv_reduced)
        assert reduced >= 0.5 * len(comps)
        # And the throughput floor (10th percentile) never collapses.
        for c in comps.values():
            assert c.selected_p10 >= 0.5 * c.direct_p10

    def test_synthetic_dip_clipping(self):
        """Selection escaping direct-path dips lowers CV mechanically."""
        from repro.trace.records import TransferRecord
        from repro.trace.store import TraceStore

        rows = []
        for i in range(20):
            dipped = i % 4 == 0
            direct = 40_000.0 if dipped else 120_000.0
            selected = 110_000.0 if dipped else direct  # escape via relay
            rows.append(
                TransferRecord(
                    study="t", client="X", site="eBay", repetition=i,
                    start_time=float(i), set_size=1, offered=("R",),
                    selected_via="R" if dipped else None,
                    direct_throughput=direct,
                    selected_throughput=selected,
                    end_to_end_throughput=selected,
                    probe_overhead=0.5, file_bytes=1e6,
                )
            )
        comps = variability_reduction(TraceStore(rows))
        assert comps["X"].cv_reduced
        assert comps["X"].floor_raised
        assert comps["X"].cv_reduction_percent > 30.0

    def test_min_transfers_filter(self, section2_store):
        comps = variability_reduction(section2_store, min_transfers=10**6)
        assert comps == {}

    def test_explicit_clients(self, section2_store):
        comps = variability_reduction(section2_store, clients=["Italy"])
        assert set(comps) <= {"Italy"}
