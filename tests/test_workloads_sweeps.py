"""Calibration sensitivity sweep tests."""

import dataclasses

import pytest

from repro.workloads.calibration import CalibrationParams
from repro.workloads.sweeps import (
    SensitivityPoint,
    calibration_sensitivity,
    default_variants,
)


class TestDefaultVariants:
    def test_contains_calibrated_point(self):
        variants = default_variants()
        assert "calibrated" in variants
        assert variants["calibrated"] == CalibrationParams()

    def test_seven_points(self):
        assert len(default_variants()) == 7

    def test_perturbations_differ_from_base(self):
        variants = default_variants()
        base = variants.pop("calibrated")
        for label, params in variants.items():
            assert params != base, label

    def test_overlay_scaling(self):
        variants = default_variants()
        lo, mid, hi = CalibrationParams().overlay_scale_medians
        plus = variants["overlay +15%"].overlay_scale_medians
        assert plus[0] == pytest.approx(1.15 * lo)


class TestSensitivity:
    def test_points_and_conclusion(self):
        variants = {
            "a": CalibrationParams(),
            "b": dataclasses.replace(CalibrationParams(), relay_quality_sigma=0.25),
        }
        points = calibration_sensitivity(
            variants, seed=5, clients=["Italy", "Sweden"], repetitions=6
        )
        assert [p.label for p in points] == ["a", "b"]
        for p in points:
            assert p.n_transfers == 12
            assert 0.0 <= p.utilization <= 1.0
            assert isinstance(p, SensitivityPoint)

    def test_conclusion_holds_predicate(self):
        good = SensitivityPoint("x", 10, 0.4, 0.9, 40.0, 35.0, 0.1)
        bad = SensitivityPoint("y", 10, 0.05, 0.9, 40.0, 35.0, 0.1)
        assert good.conclusion_holds
        assert not bad.conclusion_holds
