"""History-ranked (throughput-EWMA) policy tests."""

import numpy as np
import pytest

from repro.core.history import HistoryRankedPolicy

FULL = [f"R{i}" for i in range(8)]


def rng(seed=0):
    return np.random.default_rng(seed)


class TestConstruction:
    def test_k_validated(self):
        with pytest.raises(ValueError):
            HistoryRankedPolicy(0)

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            HistoryRankedPolicy(2, alpha=0.0)
        with pytest.raises(ValueError):
            HistoryRankedPolicy(2, alpha=1.5)

    def test_name(self):
        assert "3" in HistoryRankedPolicy(3).name


class TestLearning:
    def test_unseen_relays_explored_first(self):
        p = HistoryRankedPolicy(2)
        p.observe("c", "s", ["R0"], "R0", throughput=1e6)
        got = p.candidates("c", "s", FULL, rng())
        # Both slots go to unseen relays (optimistic default outranks data).
        assert "R0" not in got

    def test_exploit_after_full_history(self):
        p = HistoryRankedPolicy(2, explore_unseen=True)
        for i, r in enumerate(FULL):
            p.observe("c", "s", [r], r, throughput=1000.0 * (i + 1))
        got = p.candidates("c", "s", FULL, rng())
        assert set(got) == {"R7", "R6"}  # the two best estimates

    def test_ewma_update(self):
        p = HistoryRankedPolicy(2, alpha=0.5)
        p.observe("c", "s", ["R0"], "R0", throughput=100.0)
        p.observe("c", "s", ["R0"], "R0", throughput=200.0)
        assert p.estimate("c", "R0") == pytest.approx(150.0)

    def test_direct_selection_not_recorded(self):
        p = HistoryRankedPolicy(2)
        p.observe("c", "s", ["R0"], None, throughput=50.0)
        assert p.estimate("c", "R0") is None
        assert p.n_estimates == 0

    def test_missing_throughput_ignored(self):
        p = HistoryRankedPolicy(2)
        p.observe("c", "s", ["R0"], "R0")
        assert p.estimate("c", "R0") is None

    def test_per_client_isolation(self):
        p = HistoryRankedPolicy(2)
        p.observe("c1", "s", ["R0"], "R0", throughput=100.0)
        assert p.estimate("c2", "R0") is None

    def test_explore_unseen_disabled(self):
        p = HistoryRankedPolicy(1, explore_unseen=False)
        p.observe("c", "s", ["R0"], "R0", throughput=100.0)
        got = p.candidates("c", "s", FULL, rng())
        assert got == ["R0"]  # history outranks unseen

    def test_empty_full_set(self):
        assert HistoryRankedPolicy(2).candidates("c", "s", [], rng()) == []

    def test_k_clamped(self):
        got = HistoryRankedPolicy(99).candidates("c", "s", FULL, rng())
        assert sorted(got) == sorted(FULL)

    def test_tie_break_random_among_unseen(self):
        p = HistoryRankedPolicy(1)
        draws = {p.candidates("c", "s", FULL, rng(seed))[0] for seed in range(25)}
        assert len(draws) > 3  # ties broken randomly, not lexically


class TestOnScenario:
    def test_history_policy_runs_in_study(self, section4_scenario):
        from repro.workloads.experiment import Section4Study

        study = Section4Study(section4_scenario, repetitions=10)
        policy = HistoryRankedPolicy(4)
        store = study.run_policy(policy, clients=["Duke"], study="history")
        assert len(store) == 10
        # The policy received throughput feedback for indirect selections.
        used = sum(1 for r in store if r.used_indirect)
        if used:
            assert policy.n_estimates >= 1
