"""Report renderer tests: every artefact renders and carries its numbers."""

import pytest

from repro.analysis import (
    headline_stats,
    improvement_histogram,
    improvement_vs_throughput,
    indirect_throughput_series,
    penalty_table,
    per_client_histograms,
    random_set_curves,
    render_fig1,
    render_fig2,
    render_fig3,
    render_fig4,
    render_fig5,
    render_fig6,
    render_headline,
    render_table1,
    render_table2,
    render_table3,
    top_relays_per_client,
    total_utilization_stats,
    utilization_vs_improvement,
)


class TestRenderers:
    def test_fig1(self, section2_store):
        out = render_fig1(improvement_histogram(section2_store))
        assert "Figure 1" in out
        assert "mean improvement" in out
        assert "|" in out  # histogram bars

    def test_fig2(self, section2_store):
        out = render_fig2(per_client_histograms(section2_store))
        assert "Figure 2" in out
        assert "Italy" in out and "Sweden" in out

    def test_table1(self, section2_store):
        out = render_table1(penalty_table(section2_store))
        assert "Table I" in out
        assert "Med/Low Throughput" in out
        assert "Low Variability" in out

    def test_table2(self, section2_store):
        out = render_table2(top_relays_per_client(section2_store))
        assert "Table II" in out
        assert "%" in out

    def test_table2_pads_missing(self):
        out = render_table2({"X": [("R1", 0.5)]})
        assert out.count("-") >= 2  # second/third padded

    def test_fig3(self, section2_store):
        panels = [improvement_vs_throughput(section2_store, label="all")]
        out = render_fig3(panels)
        assert "Figure 3" in out
        assert "slope" in out

    def test_fig4(self, section2_store):
        out = render_fig4(indirect_throughput_series(section2_store))
        assert "Figure 4" in out
        assert "Mann-Kendall" in out

    def test_fig5(self, section2_store):
        stats = total_utilization_stats(section2_store)
        out = render_fig5(stats)
        assert "Figure 5" in out
        assert "RMS" in out

    def test_fig5_subset(self, section2_store):
        stats = total_utilization_stats(section2_store)
        some = list(stats)[:3]
        out = render_fig5(stats, relays=some)
        for name in some:
            assert name in out

    def test_fig6(self, section4_store):
        out = render_fig6(random_set_curves(section4_store))
        assert "Figure 6" in out
        assert "set size k" in out
        assert "Duke" in out

    def test_table3(self, section4_store):
        rows = utilization_vs_improvement(section4_store, "Duke")
        out = render_table3(rows, client="Duke")
        assert "Table III" in out
        assert "utilization %" in out

    def test_headline(self, section2_store):
        out = render_headline(headline_stats(section2_store))
        assert "Headline rates" in out
        assert "indirect utilization" in out
