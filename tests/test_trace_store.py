"""TransferRecord and TraceStore tests, including persistence round-trips."""

import numpy as np
import pytest

from repro.trace.records import TransferRecord
from repro.trace.store import TraceStore


def record(**kw):
    defaults = dict(
        study="s",
        client="Italy",
        site="eBay",
        repetition=0,
        start_time=0.0,
        set_size=1,
        offered=("Texas",),
        selected_via="Texas",
        direct_throughput=100_000.0,
        selected_throughput=150_000.0,
        end_to_end_throughput=140_000.0,
        probe_overhead=1.0,
        file_bytes=4e6,
        direct_class="low",
        direct_variability="low",
    )
    defaults.update(kw)
    return TransferRecord(**defaults)


class TestRecordMetrics:
    def test_improvement(self):
        assert record().improvement == pytest.approx(0.5)
        assert record().improvement_percent == pytest.approx(50.0)

    def test_direct_selection_improvement(self):
        r = record(selected_via=None, selected_throughput=100_000.0)
        assert r.improvement == pytest.approx(0.0)
        assert not r.used_indirect

    def test_penalty_detection(self):
        r = record(selected_throughput=50_000.0)
        assert r.is_penalty
        assert r.penalty_percent == pytest.approx(100.0)

    def test_no_penalty_when_direct_selected(self):
        r = record(selected_via=None, selected_throughput=50_000.0)
        assert not r.is_penalty
        assert r.penalty_percent == 0.0

    def test_penalty_zero_when_improved(self):
        assert record().penalty_percent == 0.0

    def test_selected_must_be_offered(self):
        with pytest.raises(ValueError, match="not in offered"):
            record(selected_via="Nope")

    def test_throughputs_validated(self):
        with pytest.raises(ValueError):
            record(direct_throughput=0.0)
        with pytest.raises(ValueError):
            record(selected_throughput=-5.0)

    def test_dict_round_trip(self):
        r = record()
        assert TransferRecord.from_dict(r.to_dict()) == r


class TestStoreBasics:
    def test_append_and_len(self):
        s = TraceStore()
        s.append(record())
        assert len(s) == 1
        assert s[0].client == "Italy"

    def test_type_checked(self):
        with pytest.raises(TypeError):
            TraceStore().append("not a record")  # type: ignore[arg-type]

    def test_extend_and_iter(self):
        s = TraceStore([record(repetition=i) for i in range(3)])
        assert [r.repetition for r in s] == [0, 1, 2]

    def test_records_copy(self):
        s = TraceStore([record()])
        s.records.clear()
        assert len(s) == 1


class TestQuerying:
    def make(self):
        return TraceStore(
            [
                record(client="Italy", selected_via="Texas"),
                record(client="Italy", selected_via=None),
                record(client="Sweden", selected_via="Texas", selected_throughput=90_000.0),
            ]
        )

    def test_filter_by_attribute(self):
        assert len(self.make().filter(client="Italy")) == 2

    def test_filter_by_property(self):
        assert len(self.make().filter(used_indirect=True)) == 2

    def test_where_predicate(self):
        assert len(self.make().where(lambda r: r.is_penalty)) == 1

    def test_column(self):
        col = self.make().column("direct_throughput")
        assert isinstance(col, np.ndarray)
        assert col.shape == (3,)

    def test_unique_handles_none(self):
        got = self.make().unique("selected_via")
        assert got == ["Texas", None]

    def test_group_by(self):
        groups = self.make().group_by("client")
        assert set(groups) == {"Italy", "Sweden"}
        assert len(groups["Italy"]) == 2


class TestSortKeyAndMerge:
    def campaign(self):
        """Records covering every sort-key coordinate, in canonical order."""
        rows = []
        for client in ("Italy", "Sweden"):
            for size in (1, 2):
                for rep in (0, 1):
                    rows.append(
                        record(
                            client=client,
                            set_size=size,
                            repetition=rep,
                            start_time=rep * 360.0,
                            offered=("Texas", "Utah")[:size],
                            selected_via="Texas",
                        )
                    )
        return rows

    def test_sort_key_orders_campaign_coordinates(self):
        rows = self.campaign()
        assert sorted(rows, key=lambda r: r.sort_key) == rows

    def test_merge_is_partition_invariant(self):
        """Any split of a campaign into sub-stores merges back identically."""
        rows = self.campaign()
        partitions = [
            [rows[:3], rows[3:]],
            [rows[::2], rows[1::2]],
            [list(reversed(rows)), []],
            [[r] for r in reversed(rows)],
        ]
        for parts in partitions:
            merged = TraceStore.merge(TraceStore(p) for p in parts)
            assert merged.records == rows

    def test_merge_keeps_duplicates(self):
        r = record()
        merged = TraceStore.merge([TraceStore([r]), TraceStore([r])])
        assert len(merged) == 2


class TestPersistence:
    def test_jsonl_round_trip(self, tmp_path):
        s = TraceStore([record(repetition=i) for i in range(5)])
        path = tmp_path / "t.jsonl"
        s.save_jsonl(path)
        loaded = TraceStore.load_jsonl(path)
        assert loaded.records == s.records

    def test_csv_round_trip(self, tmp_path):
        s = TraceStore(
            [
                record(),
                record(selected_via=None, offered=("A", "B"), set_size=2),
            ]
        )
        path = tmp_path / "t.csv"
        s.save_csv(path)
        loaded = TraceStore.load_csv(path)
        assert loaded.records == s.records

    def test_empty_round_trips(self, tmp_path):
        s = TraceStore()
        s.save_jsonl(tmp_path / "e.jsonl")
        s.save_csv(tmp_path / "e.csv")
        assert len(TraceStore.load_jsonl(tmp_path / "e.jsonl")) == 0
        assert len(TraceStore.load_csv(tmp_path / "e.csv")) == 0

    def test_jsonl_is_line_oriented(self, tmp_path):
        s = TraceStore([record(), record()])
        path = tmp_path / "t.jsonl"
        s.save_jsonl(path)
        assert len(path.read_text().strip().splitlines()) == 2

    def test_jsonl_append_accumulates_shards(self, tmp_path):
        """append=True + a final merge equals saving the whole store at once."""
        rows = [record(repetition=i) for i in range(6)]
        path = tmp_path / "acc.jsonl"
        TraceStore(rows[4:]).save_jsonl(path)
        TraceStore(rows[:2]).save_jsonl(path, append=True)
        TraceStore(rows[2:4]).save_jsonl(path, append=True)
        merged = TraceStore.merge([TraceStore.load_jsonl(path)])
        assert merged.records == rows

    def test_jsonl_default_truncates(self, tmp_path):
        path = tmp_path / "t.jsonl"
        TraceStore([record(repetition=0)]).save_jsonl(path)
        TraceStore([record(repetition=1)]).save_jsonl(path)
        loaded = TraceStore.load_jsonl(path)
        assert [r.repetition for r in loaded] == [1]
