"""Metric primitive tests on hand-built stores."""

import math

import numpy as np
import pytest

from repro.analysis.metrics import (
    all_improvements,
    headline_stats,
    improvements_when_indirect,
    indirect_utilization,
    mean_improvement_by_site,
    positive_given_indirect,
)
from repro.trace.records import TransferRecord
from repro.trace.store import TraceStore


def rec(selected_via="R", direct=100.0, selected=150.0, client="A", site="eBay"):
    return TransferRecord(
        study="t",
        client=client,
        site=site,
        repetition=0,
        start_time=0.0,
        set_size=1 if selected_via else 0,
        offered=(selected_via,) if selected_via else (),
        selected_via=selected_via,
        direct_throughput=direct,
        selected_throughput=selected,
        end_to_end_throughput=selected,
        probe_overhead=0.0,
        file_bytes=1e6,
    )


def store():
    return TraceStore(
        [
            rec(selected=150.0),              # +50%
            rec(selected=80.0),               # -20% (penalty)
            rec(selected_via=None, selected=100.0),  # direct chosen
            rec(selected=200.0),              # +100%
        ]
    )


class TestImprovements:
    def test_conditional_improvements(self):
        imps = improvements_when_indirect(store())
        assert sorted(imps.tolist()) == pytest.approx([-20.0, 50.0, 100.0])

    def test_all_improvements_include_direct(self):
        assert all_improvements(store()).size == 4

    def test_utilization(self):
        assert indirect_utilization(store()) == pytest.approx(0.75)

    def test_utilization_empty(self):
        assert math.isnan(indirect_utilization(TraceStore()))

    def test_positive_given_indirect(self):
        assert positive_given_indirect(store()) == pytest.approx(2 / 3)

    def test_positive_given_indirect_never_selected(self):
        s = TraceStore([rec(selected_via=None)])
        assert math.isnan(positive_given_indirect(s))


class TestHeadline:
    def test_headline_values(self):
        h = headline_stats(store())
        assert h.n_transfers == 4
        assert h.utilization == pytest.approx(0.75)
        assert h.positive_given_indirect == pytest.approx(2 / 3)
        assert h.mean_improvement_when_indirect == pytest.approx(130.0 / 3)
        assert h.median_improvement_when_indirect == pytest.approx(50.0)
        assert h.effective_benefit_rate == pytest.approx(0.5)

    def test_headline_empty(self):
        h = headline_stats(TraceStore())
        assert h.n_transfers == 0
        assert math.isnan(h.mean_improvement_when_indirect)


class TestBySite:
    def test_grouping(self):
        s = TraceStore(
            [
                rec(site="eBay", selected=150.0),
                rec(site="Google", selected=120.0),
                rec(site="Google", selected=180.0),
            ]
        )
        by = mean_improvement_by_site(s)
        assert by["eBay"] == pytest.approx(50.0)
        assert by["Google"] == pytest.approx(50.0)

    def test_site_without_indirect_nan(self):
        s = TraceStore([rec(site="Yahoo", selected_via=None)])
        assert math.isnan(mean_improvement_by_site(s)["Yahoo"])
