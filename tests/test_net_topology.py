"""Node, link, latency and topology tests."""

import networkx as nx
import pytest

from repro.net.latency import LatencyModel
from repro.net.link import Link
from repro.net.node import Node, NodeKind
from repro.net.topology import Topology, access_link_name, wan_link_name
from repro.net.trace import CapacityTrace


def C(v=1000.0):
    return CapacityTrace.constant(v)


class TestNode:
    def test_kinds(self):
        n = Node("X", NodeKind.CLIENT)
        assert n.is_client and not n.is_relay and not n.is_server

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Node("", NodeKind.CLIENT)

    def test_kind_type_checked(self):
        with pytest.raises(TypeError):
            Node("X", "client")  # type: ignore[arg-type]

    def test_hostname_not_in_equality(self):
        a = Node("X", NodeKind.RELAY, hostname="a.example")
        b = Node("X", NodeKind.RELAY, hostname="b.example")
        assert a == b

    def test_str(self):
        assert str(Node("Italy", NodeKind.CLIENT)) == "Italy"


class TestLink:
    def test_capacity_at(self):
        l = Link("l", "a", "b", CapacityTrace([0.0, 5.0], [10.0, 20.0]))
        assert l.capacity_at(0.0) == 10.0
        assert l.capacity_at(6.0) == 20.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Link("l", "a", "b", C(), delay=-0.1)

    def test_trace_type_checked(self):
        with pytest.raises(TypeError):
            Link("l", "a", "b", trace=123)  # type: ignore[arg-type]

    def test_with_trace(self):
        l = Link("l", "a", "b", C(1.0), delay=0.5)
        l2 = l.with_trace(C(9.0))
        assert l2.capacity_at(0) == 9.0
        assert l2.delay == 0.5 and l2.name == l.name

    def test_identity_by_name(self):
        assert Link("l", "a", "b", C()) == Link("l", "x", "y", C(5.0))
        assert hash(Link("l", "a", "b", C())) == hash(Link("l", "x", "y", C()))


class TestLatencyModel:
    def test_symmetry(self):
        m = LatencyModel()
        assert m.one_way("us", "europe") == m.one_way("europe", "us")

    def test_rtt_is_twice_one_way(self):
        m = LatencyModel()
        assert m.rtt("us", "asia") == pytest.approx(2 * m.one_way("us", "asia"))

    def test_access_delay_added(self):
        base = LatencyModel(access_delay=0.0).one_way("us", "us")
        more = LatencyModel(access_delay=0.01).one_way("us", "us")
        assert more == pytest.approx(base + 0.01)

    def test_unknown_region_raises(self):
        with pytest.raises(KeyError):
            LatencyModel().one_way("us", "atlantis")

    def test_all_catalogue_regions_covered(self):
        from repro.net.latency import REGIONS

        m = LatencyModel()
        for a in REGIONS:
            for b in REGIONS:
                assert m.one_way(a, b) > 0.0

    def test_intercontinental_slower_than_local(self):
        m = LatencyModel()
        assert m.one_way("us", "oceania") > m.one_way("us", "us")


class TestTopology:
    def build(self):
        topo = Topology()
        topo.add_node(Node("C", NodeKind.CLIENT, region="europe"))
        topo.add_node(Node("R", NodeKind.RELAY, region="us"))
        topo.add_node(Node("S", NodeKind.SERVER, region="us"))
        topo.add_access_link("C", C())
        topo.add_access_link("R", C())
        topo.add_access_link("S", C())
        topo.add_wan_link("S", "C", C(500.0))
        topo.add_wan_link("S", "R", C(2000.0))
        topo.add_wan_link("R", "C", C(800.0))
        return topo

    def test_duplicate_node_rejected(self):
        topo = Topology()
        topo.add_node(Node("X", NodeKind.CLIENT))
        with pytest.raises(ValueError, match="duplicate"):
            topo.add_node(Node("X", NodeKind.RELAY))

    def test_duplicate_access_rejected(self):
        topo = Topology()
        topo.add_node(Node("X", NodeKind.CLIENT))
        topo.add_access_link("X", C())
        with pytest.raises(ValueError, match="already has"):
            topo.add_access_link("X", C())

    def test_wan_delay_from_latency_model(self):
        topo = self.build()
        link = topo.link(wan_link_name("S", "C"))
        assert link.delay == pytest.approx(topo.latency.one_way("us", "europe"))

    def test_unknown_node_raises_with_context(self):
        with pytest.raises(KeyError, match="unknown node"):
            self.build().node("Z")

    def test_unknown_link(self):
        with pytest.raises(KeyError, match="unknown link"):
            self.build().link("wan:A->B")

    def test_kind_lists(self):
        topo = self.build()
        assert [n.name for n in topo.clients] == ["C"]
        assert [n.name for n in topo.relays] == ["R"]
        assert [n.name for n in topo.servers] == ["S"]

    def test_direct_route_composition(self):
        route = self.build().direct_route("C", "S")
        assert [l.name for l in route.links] == [
            access_link_name("S"),
            wan_link_name("S", "C"),
            access_link_name("C"),
        ]
        assert route.via is None

    def test_indirect_route_composition(self):
        route = self.build().indirect_route("C", "R", "S")
        assert route.via == "R"
        assert len(route.links) == 5
        assert route.links[2].name == access_link_name("R")

    def test_route_kind_enforcement(self):
        topo = self.build()
        with pytest.raises(ValueError, match="expected client"):
            topo.direct_route("R", "S")
        with pytest.raises(ValueError, match="expected relay"):
            topo.indirect_route("C", "S", "S")

    def test_validate_missing_access(self):
        topo = Topology()
        topo.add_node(Node("X", NodeKind.CLIENT))
        with pytest.raises(ValueError, match="missing access"):
            topo.validate()

    def test_validate_ok(self):
        self.build().validate()

    def test_to_graph(self):
        g = self.build().to_graph()
        assert isinstance(g, nx.DiGraph)
        assert g.number_of_nodes() == 3
        assert g.number_of_edges() == 3  # WAN links only
        assert g.nodes["C"]["kind"] == "client"
        assert nx.has_path(g, "S", "C")

    def test_has_wan_link(self):
        topo = self.build()
        assert topo.has_wan_link("S", "C")
        assert not topo.has_wan_link("C", "S")  # data direction only
