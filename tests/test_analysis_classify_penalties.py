"""Classification and Table I penalty-statistics tests."""

import numpy as np
import pytest

from repro.analysis.classify import classify_clients
from repro.analysis.penalties import penalty_table
from repro.trace.records import TransferRecord
from repro.trace.store import TraceStore
from repro.util.units import mbps_to_bytes_per_s
from repro.workloads.profiles import ThroughputClass


def rec(client, direct_mbps, selected_mbps, via="R", rep=0):
    direct = mbps_to_bytes_per_s(direct_mbps)
    selected = mbps_to_bytes_per_s(selected_mbps)
    return TransferRecord(
        study="t",
        client=client,
        site="eBay",
        repetition=rep,
        start_time=float(rep),
        set_size=1 if via else 0,
        offered=(via,) if via else (),
        selected_via=via,
        direct_throughput=direct,
        selected_throughput=selected,
        end_to_end_throughput=selected,
        probe_overhead=0.0,
        file_bytes=1e6,
    )


class TestClassify:
    def test_classes_from_mean_direct(self):
        s = TraceStore(
            [
                rec("slow", 0.5, 1.0),
                rec("mid", 2.0, 2.0),
                rec("fast", 9.0, 5.0),
            ]
        )
        profiles = classify_clients(s)
        assert profiles["slow"].throughput_class is ThroughputClass.LOW
        assert profiles["mid"].throughput_class is ThroughputClass.MEDIUM
        assert profiles["fast"].throughput_class is ThroughputClass.HIGH

    def test_boundaries(self):
        assert ThroughputClass.classify(mbps_to_bytes_per_s(1.49)) is ThroughputClass.LOW
        assert ThroughputClass.classify(mbps_to_bytes_per_s(1.5)) is ThroughputClass.MEDIUM
        assert ThroughputClass.classify(mbps_to_bytes_per_s(3.0)) is ThroughputClass.HIGH

    def test_variability_flag(self):
        stable = [rec("st", 1.0, 1.0, rep=i) for i in range(10)]
        wobble = [rec("wb", 1.0 if i % 2 else 4.0, 1.0, rep=i) for i in range(10)]
        profiles = classify_clients(TraceStore(stable + wobble))
        assert not profiles["st"].high_variability
        assert profiles["wb"].high_variability

    def test_cv_threshold_validated(self):
        with pytest.raises(ValueError):
            classify_clients(TraceStore(), cv_threshold=0.0)

    def test_is_med_or_low(self):
        s = TraceStore([rec("fast", 9.0, 5.0), rec("slow", 1.0, 1.0)])
        profiles = classify_clients(s)
        assert not profiles["fast"].is_med_or_low
        assert profiles["slow"].is_med_or_low


class TestPenaltyTable:
    def build_store(self):
        rows = []
        # Stable low client: wins only.
        for i in range(10):
            rows.append(rec("low-stable", 1.0, 1.5, rep=i))
        # High-throughput client with big penalties.
        for i in range(10):
            sel = 1.0 if i < 4 else 6.0
            rows.append(rec("high-var", 5.0 if i % 2 else 9.0, sel, rep=i))
        # Medium client with mild variability and one mild penalty.
        for i in range(10):
            direct = 2.0 if i % 2 else 3.5
            sel = 2.2 if i != 0 else 1.8
            rows.append(rec("med-wobble", direct, sel, rep=i))
        return TraceStore(rows)

    def test_three_rows(self):
        rows = penalty_table(self.build_store())
        assert [r.label for r in rows] == ["All", "Med/Low Throughput", "Low Variability"]

    def test_filters_monotone(self):
        rows = penalty_table(self.build_store())
        assert rows[0].penalty_fraction >= rows[1].penalty_fraction >= rows[2].penalty_fraction
        assert rows[0].avg_penalty >= rows[1].avg_penalty >= rows[2].avg_penalty

    def test_all_row_counts_indirect_points(self):
        rows = penalty_table(self.build_store())
        assert rows[0].n_points == 30  # all transfers used the indirect path

    def test_penalty_magnitude_definition(self):
        # direct 9, selected 1 -> penalty (9-1)/1 = 800%.
        s = TraceStore([rec("c", 9.0, 1.0)])
        row = penalty_table(s)[0]
        assert row.max_penalty == pytest.approx(800.0)

    def test_no_penalties(self):
        s = TraceStore([rec("c", 1.0, 2.0, rep=i) for i in range(5)])
        row = penalty_table(s)[0]
        assert row.penalty_fraction == 0.0
        assert row.avg_penalty == 0.0

    def test_percent_property(self):
        rows = penalty_table(self.build_store())
        assert rows[0].penalty_points_percent == pytest.approx(
            100.0 * rows[0].penalty_fraction
        )


class TestPenaltyTableOnCampaign:
    """Shape checks against the simulated §2 campaign."""

    def test_filtering_reduces_penalties(self, section2_store):
        rows = penalty_table(section2_store)
        # The paper's monotone story: each filter strictly helps (or ties).
        assert rows[1].penalty_fraction <= rows[0].penalty_fraction + 1e-9
        assert rows[2].penalty_fraction <= rows[1].penalty_fraction + 1e-9

    def test_population_shrinks(self, section2_store):
        rows = penalty_table(section2_store)
        assert rows[0].n_points >= rows[1].n_points >= rows[2].n_points
