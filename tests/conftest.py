"""Shared fixtures: miniature topologies and cached study runs.

The expensive fixtures (scenario builds, study campaigns) are session-scoped
so the whole analysis test battery reuses one simulated data set.
"""

from __future__ import annotations

from typing import Dict, Optional

import pytest

from repro.core.session import SessionConfig, TransferSession
from repro.http.server import WebServer
from repro.http.transfer import TcpParams
from repro.net.node import Node, NodeKind
from repro.net.topology import Topology
from repro.net.trace import CapacityTrace
from repro.overlay.paths import OverlayPathBuilder
from repro.overlay.registry import RelayRegistry
from repro.sim.simulator import Simulator
from repro.tcp.fluid import FluidNetwork
from repro.util.units import mb, mbps_to_bytes_per_s
from repro.workloads.experiment import (
    SECTION4_SESSION_CONFIG,
    Section2Study,
    Section4Study,
)
from repro.workloads.scenario import Scenario, ScenarioSpec


class MiniWorld:
    """A 1-client / N-relay / 1-server test-bed with constant capacities.

    All rates are given in Mbps for readability; the resource is a 4 MB
    file at ``/f`` on server ``S``, client ``C``, relays ``R1..Rn``.
    """

    def __init__(
        self,
        direct_mbps: float = 1.0,
        relay_mbps: Optional[Dict[str, float]] = None,
        *,
        access_mbps: float = 8.0,
        file_mb: float = 4.0,
        client_region: str = "europe",
        direct_trace: Optional[CapacityTrace] = None,
        relay_traces: Optional[Dict[str, CapacityTrace]] = None,
    ):
        relay_mbps = relay_mbps if relay_mbps is not None else {"R1": 2.0}
        topo = Topology()
        topo.add_node(Node("C", NodeKind.CLIENT, region=client_region))
        topo.add_node(Node("S", NodeKind.SERVER, region="us"))
        topo.add_access_link("C", CapacityTrace.constant(mbps_to_bytes_per_s(access_mbps)))
        topo.add_access_link("S", CapacityTrace.constant(mbps_to_bytes_per_s(200.0)))
        topo.add_wan_link(
            "S",
            "C",
            direct_trace
            if direct_trace is not None
            else CapacityTrace.constant(mbps_to_bytes_per_s(direct_mbps)),
        )
        server = WebServer("S")
        server.publish("/f", int(mb(file_mb)))
        registry = RelayRegistry()
        for name, rate in relay_mbps.items():
            topo.add_node(Node(name, NodeKind.RELAY, region="us"))
            topo.add_access_link(
                name, CapacityTrace.constant(mbps_to_bytes_per_s(50.0))
            )
            topo.add_wan_link("S", name, CapacityTrace.constant(mbps_to_bytes_per_s(40.0)))
            overlay_trace = (relay_traces or {}).get(name)
            if overlay_trace is None:
                overlay_trace = CapacityTrace.constant(mbps_to_bytes_per_s(rate))
            topo.add_wan_link(name, "C", overlay_trace)
            registry.deploy(name)
        registry.register_origin_everywhere(server)
        topo.validate()
        self.topology = topo
        self.server = server
        self.registry = registry
        self.builder = OverlayPathBuilder(topo, registry, {"S": server})
        self.relays = list(relay_mbps)

    def universe(self, *, config: SessionConfig = SessionConfig(), start_time: float = 0.0, rng=None):
        """Fresh (sim, network, session) over this world's traces."""
        sim = Simulator(start_time=start_time)
        net = FluidNetwork(sim)
        session = TransferSession(net, self.builder, config, rng=rng)
        return sim, net, session


@pytest.fixture
def mini_world():
    """Factory fixture: build a MiniWorld with custom rates."""
    return MiniWorld


@pytest.fixture
def fast_tcp():
    """TCP parameters with a generous window (tests not about windowing)."""
    return TcpParams(max_window=262_144.0)


# --------------------------------------------------------------------- #
# Session-scoped campaign data reused across analysis tests.
# --------------------------------------------------------------------- #
@pytest.fixture(scope="session")
def section2_scenario():
    """A fully built (single-site) §2 scenario."""
    return Scenario.build(ScenarioSpec.section2(sites=("eBay",)), seed=1234)


@pytest.fixture(scope="session")
def section2_store(section2_scenario):
    """A small §2 campaign: every client, 12 repetitions, eBay only."""
    study = Section2Study(section2_scenario, repetitions=12)
    return study.run(sites=["eBay"])


@pytest.fixture(scope="session")
def section4_scenario():
    """A fully built §4 scenario (Duke/Italy/Sweden, 35 relays)."""
    return Scenario.build(ScenarioSpec.section4(), seed=1234)


@pytest.fixture(scope="session")
def section4_store(section4_scenario):
    """A small §4 sweep: set sizes 1/4/10/35, 15 repetitions each."""
    study = Section4Study(section4_scenario, repetitions=15)
    return study.run_random_set_sweep([1, 4, 10, 35])
