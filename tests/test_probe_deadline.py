"""Probe deadline tests: dead paths, timeouts, engine-mode byte-identity."""

import pytest

from repro.core.probe import ProbeEngine, ProbeMode, ProbeTimeout
from repro.core.session import SessionConfig, TransferSession
from repro.http.transfer import TcpParams
from repro.net.trace import CapacityTrace
from repro.sim.errors import TransferError
from repro.sim.simulator import Simulator
from repro.tcp.fluid import FluidNetwork
from repro.util.units import mbps_to_bytes_per_s

FAST_TCP = TcpParams(max_window=262_144.0)

DEAD = CapacityTrace.constant(0.0)

MODES = [ProbeMode.CONCURRENT, ProbeMode.SEQUENTIAL]
ENGINES = [True, False]  # incremental / REPRO_ENGINE_BASELINE-equivalent


def _race(world, *, incremental, mode, deadline):
    """Run one direct-vs-R1 probe race; returns (sim, outcome-or-timeout)."""
    sim = Simulator()
    net = FluidNetwork(sim, incremental=incremental)
    engine = ProbeEngine(net, tcp=FAST_TCP)
    paths = [world.builder.direct("C", "S"), world.builder.indirect("C", "R1", "S")]
    try:
        out = engine.run(paths, "/f", mode=mode, deadline=deadline)
    except ProbeTimeout as timeout:
        return sim, timeout
    return sim, out


def _signature(sim, result):
    """Byte-identity signature of a race outcome (or timeout)."""
    probes = result.probes
    per_probe = tuple(
        (p.label, p.won, p.completed_at, p.throughput, float(p.transfer.flow.delivered))
        for p in probes
    )
    if isinstance(result, ProbeTimeout):
        return ("timeout", result.started_at, result.timed_out_at, per_probe, sim.now)
    return ("decided", result.winner.label, result.started_at, result.decided_at, per_probe, sim.now)


class TestDeadPathRaces:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("incremental", ENGINES)
    def test_dead_direct_loses(self, mini_world, mode, incremental):
        w = mini_world(direct_trace=DEAD, relay_mbps={"R1": 4.0})
        sim, out = _race(w, incremental=incremental, mode=mode, deadline=60.0)
        assert not isinstance(out, ProbeTimeout)
        assert out.winner.via == "R1"
        dead = next(p for p in out.probes if p.label == "direct")
        assert not dead.won
        assert dead.transfer.flow.delivered == 0.0

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("incremental", ENGINES)
    def test_dead_relay_loses(self, mini_world, mode, incremental):
        w = mini_world(direct_mbps=1.0, relay_traces={"R1": DEAD})
        sim, out = _race(w, incremental=incremental, mode=mode, deadline=60.0)
        assert not isinstance(out, ProbeTimeout)
        assert out.winner.via is None
        dead = next(p for p in out.probes if p.label == "R1")
        assert not dead.won

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("incremental", ENGINES)
    def test_all_paths_dead_times_out(self, mini_world, mode, incremental):
        w = mini_world(direct_trace=DEAD, relay_traces={"R1": DEAD})
        sim, out = _race(w, incremental=incremental, mode=mode, deadline=30.0)
        assert isinstance(out, ProbeTimeout)
        assert out.deadline == 30.0
        assert out.started_at <= out.timed_out_at <= out.started_at + 30.0
        assert sim.now <= 30.0 + 1e-9  # bounded simulated time
        assert all(not p.won for p in out.probes)
        assert {p.label for p in out.probes} == {"direct", "R1"}

    @pytest.mark.parametrize("incremental", ENGINES)
    def test_dying_paths_time_out_at_the_deadline(self, mini_world, incremental):
        # Paths that die mid-race but revive far later never freeze the
        # engine, so the race must idle exactly to the deadline.
        rate = mbps_to_bytes_per_s(8.0)
        dying = CapacityTrace([0.0, 0.01, 5000.0], [rate, 0.0, rate])
        w = mini_world(direct_trace=dying, relay_traces={"R1": dying})
        sim, out = _race(
            w, incremental=incremental, mode=ProbeMode.CONCURRENT, deadline=10.0
        )
        assert isinstance(out, ProbeTimeout)
        assert out.timed_out_at == pytest.approx(out.started_at + 10.0)

    def test_legacy_unbounded_race_still_raises_transfer_error(self, mini_world):
        w = mini_world(direct_trace=DEAD, relay_traces={"R1": DEAD})
        sim, net, _ = w.universe()
        engine = ProbeEngine(net, tcp=FAST_TCP)
        paths = [w.builder.direct("C", "S"), w.builder.indirect("C", "R1", "S")]
        with pytest.raises(TransferError) as excinfo:
            engine.run(paths, "/f")  # no deadline: legacy failure mode
        assert not isinstance(excinfo.value, ProbeTimeout)

    def test_deadline_validation(self, mini_world):
        w = mini_world()
        sim, net, _ = w.universe()
        engine = ProbeEngine(net, tcp=FAST_TCP)
        with pytest.raises(ValueError, match="deadline"):
            engine.run([w.builder.direct("C", "S")], "/f", deadline=0.0)


class TestEngineModeIdentity:
    """The same race must be byte-identical on both engine paths."""

    @pytest.mark.parametrize("mode", MODES)
    def test_dead_direct_identical(self, mini_world, mode):
        sigs = []
        for incremental in ENGINES:
            w = mini_world(direct_trace=DEAD, relay_mbps={"R1": 4.0})
            sigs.append(_signature(*_race(w, incremental=incremental, mode=mode, deadline=60.0)))
        assert sigs[0] == sigs[1]

    @pytest.mark.parametrize("mode", MODES)
    def test_dead_relay_identical(self, mini_world, mode):
        sigs = []
        for incremental in ENGINES:
            w = mini_world(direct_mbps=1.0, relay_traces={"R1": DEAD})
            sigs.append(_signature(*_race(w, incremental=incremental, mode=mode, deadline=60.0)))
        assert sigs[0] == sigs[1]

    @pytest.mark.parametrize("mode", MODES)
    def test_all_dead_timeout_identical(self, mini_world, mode):
        sigs = []
        for incremental in ENGINES:
            w = mini_world(direct_trace=DEAD, relay_traces={"R1": DEAD})
            sigs.append(_signature(*_race(w, incremental=incremental, mode=mode, deadline=30.0)))
        assert sigs[0] == sigs[1]

    def test_baseline_env_var_matches_explicit_flag(self, mini_world, monkeypatch):
        w = mini_world(direct_trace=DEAD, relay_mbps={"R1": 4.0})
        explicit = _signature(
            *_race(w, incremental=False, mode=ProbeMode.CONCURRENT, deadline=60.0)
        )
        monkeypatch.setenv("REPRO_ENGINE_BASELINE", "1")
        w2 = mini_world(direct_trace=DEAD, relay_mbps={"R1": 4.0})
        sim = Simulator()
        net = FluidNetwork(sim)  # mode read from the environment
        engine = ProbeEngine(net, tcp=FAST_TCP)
        paths = [w2.builder.direct("C", "S"), w2.builder.indirect("C", "R1", "S")]
        out = engine.run(paths, "/f", deadline=60.0)
        assert _signature(sim, out) == explicit


class TestSessionProbeTimeout:
    @pytest.mark.parametrize("incremental", ENGINES)
    def test_all_dead_session_aborts(self, mini_world, incremental):
        from repro.core.resilience import ResilienceConfig, SessionOutcome

        w = mini_world(direct_trace=DEAD, relay_traces={"R1": DEAD})
        config = SessionConfig(
            tcp=FAST_TCP, resilience=ResilienceConfig(probe_deadline=10.0)
        )
        sim = Simulator()
        net = FluidNetwork(sim, incremental=incremental)
        session = TransferSession(net, w.builder, config)
        result = session.download("C", "S", "/f", ["R1"])
        assert result.outcome is SessionOutcome.ABORTED
        assert result.bytes_received == 0.0
        assert result.delivered == 0.0
        assert result.selected_via is None
        assert [e.kind for e in result.recovery_events] == ["probe_timeout", "abort"]
        assert result.recovery_events[0].detail == 10.0
        assert result.end_to_end_throughput == 0.0
        assert result.duration <= 10.0 + 1e-9
