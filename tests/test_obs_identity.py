"""Observability must be invisible: artefacts are byte-identical with obs on.

Mirrors the sanitizer on/off pattern from the QA layer: every study command
is run twice -- once plain, once under ``REPRO_OBS=1`` / ``--obs`` -- and the
study artefact bytes are compared.  Also covers the obs CLI surface
(``repro obs summarize|chrome|metrics``) and the sanitize+obs composition.
"""

import json
import os
from contextlib import contextmanager

import pytest

from repro.cli import main
from repro.obs.core import OBS_DIR_ENV_VAR, OBS_ENV_VAR, reset_global_observer

S2_ARGS = ["section2", "--reps", "2", "--clients", "Italy,Sweden"]
S4_ARGS = ["section4", "--reps", "1", "--set-sizes", "1,3"]
FL_ARGS = ["failures", "--quick"]


@contextmanager
def _env(**overrides):
    """Set (value) or remove (None) environment variables, restoring after."""
    saved = {key: os.environ.get(key) for key in overrides}
    for key, value in overrides.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _run(argv, *, obs_env=None):
    """Run the CLI with the obs env pinned off (default) or to a value."""
    with _env(**{OBS_ENV_VAR: obs_env, OBS_DIR_ENV_VAR: None}):
        reset_global_observer()
        try:
            assert main(argv) == 0
        finally:
            reset_global_observer()


@pytest.fixture(scope="module")
def plain_artefacts(tmp_path_factory):
    """Each study artefact's bytes from an obs-off run (computed once)."""
    root = tmp_path_factory.mktemp("plain")
    out = {}
    for name, argv in (("s2", S2_ARGS), ("s4", S4_ARGS), ("fl", FL_ARGS)):
        path = root / f"{name}.jsonl"
        _run(argv + ["--out", str(path)])
        out[name] = path.read_bytes()
    return out


class TestByteIdentity:
    def test_section2_obs_flag(self, plain_artefacts, tmp_path, capsys):
        out = tmp_path / "s2.jsonl"
        _run(S2_ARGS + ["--out", str(out), "--obs"])
        assert out.read_bytes() == plain_artefacts["s2"]
        trace = tmp_path / "s2.jsonl.obs.jsonl"
        assert trace.exists()
        assert "wrote obs trace" in capsys.readouterr().out

    def test_section2_obs_env_jobs2(self, plain_artefacts, tmp_path):
        out = tmp_path / "s2.jsonl"
        _run(S2_ARGS + ["--out", str(out), "--jobs", "2"], obs_env="1")
        assert out.read_bytes() == plain_artefacts["s2"]
        assert (tmp_path / "s2.jsonl.obs.jsonl").exists()
        # The shard spool directory is cleaned up after the merge.
        assert not (tmp_path / "s2.jsonl.obs.jsonl.shards").exists()

    def test_section4_obs(self, plain_artefacts, tmp_path):
        out = tmp_path / "s4.jsonl"
        _run(S4_ARGS + ["--out", str(out), "--obs"])
        assert out.read_bytes() == plain_artefacts["s4"]

    def test_failures_obs(self, plain_artefacts, tmp_path):
        out = tmp_path / "fl.jsonl"
        _run(FL_ARGS + ["--out", str(out), "--obs"])
        assert out.read_bytes() == plain_artefacts["fl"]

    def test_obs_out_flag_controls_trace_path(self, tmp_path):
        out = tmp_path / "s2.jsonl"
        trace = tmp_path / "custom-trace.jsonl"
        _run(S2_ARGS + ["--out", str(out), "--obs", "--obs-out", str(trace)])
        assert trace.exists()
        assert not (tmp_path / "s2.jsonl.obs.jsonl").exists()

    def test_sanitize_and_obs_compose(self, tmp_path):
        with _env(REPRO_SANITIZE="1"):
            plain = tmp_path / "plain.jsonl"
            _run(S2_ARGS + ["--out", str(plain)])
            observed = tmp_path / "obs.jsonl"
            _run(S2_ARGS + ["--out", str(observed), "--obs"])
        assert observed.read_bytes() == plain.read_bytes()


class TestSimulatorComposition:
    def test_sanitizer_and_observer_are_independent_slots(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        monkeypatch.delenv(OBS_ENV_VAR, raising=False)
        reset_global_observer()
        from repro.sim.simulator import Simulator

        sim = Simulator(observe=True)
        assert sim.sanitizer is not None
        assert sim.observer is not None
        sim.schedule_at(1.0, lambda: None, name="noop")
        sim.run()
        assert sim.observer.counter("sim.events") == 1.0
        reset_global_observer()


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    """A merged obs trace from a small section2 campaign."""
    root = tmp_path_factory.mktemp("trace")
    out = root / "s2.jsonl"
    _run(S2_ARGS + ["--out", str(out), "--obs"])
    return str(root / "s2.jsonl.obs.jsonl")


class TestObsCli:
    def test_summarize(self, trace_path, capsys):
        assert main(["obs", "summarize", trace_path]) == 0
        text = capsys.readouterr().out
        assert "span categories" in text
        assert "engine.ticks" in text

    def test_chrome_has_required_categories(self, trace_path, tmp_path, capsys):
        out = tmp_path / "trace.chrome.json"
        assert main(["obs", "chrome", trace_path, "--out", str(out)]) == 0
        data = json.loads(out.read_text())
        cats = {e.get("cat") for e in data["traceEvents"] if e["ph"] == "X"}
        assert {"tick", "alloc", "probe", "transfer", "unit"} <= cats

    def test_chrome_default_out(self, trace_path, capsys):
        assert main(["obs", "chrome", trace_path]) == 0
        assert "wrote" in capsys.readouterr().out
        assert os.path.exists(trace_path + ".chrome.json")

    def test_metrics_to_stdout(self, trace_path, capsys):
        assert main(["obs", "metrics", trace_path]) == 0
        text = capsys.readouterr().out
        assert "# TYPE repro_engine_ticks counter" in text

    def test_missing_trace_exits_2(self, tmp_path, capsys):
        rc = main(["obs", "summarize", str(tmp_path / "absent.jsonl")])
        assert rc == 2
        assert "not found" in capsys.readouterr().err

    def test_corrupt_trace_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"schema": "repro-obs/1"}\n{broken\n{"metrics": {}}\n')
        rc = main(["obs", "summarize", str(bad)])
        assert rc == 2


class TestPerfObsSummary:
    def test_bench_gains_obs_summary_block(self):
        from repro.perf.benches import run_benches

        with _env(**{OBS_ENV_VAR: "1", OBS_DIR_ENV_VAR: None}):
            results = run_benches(["tick_breakpoint"], quick=True)
        summary = results["tick_breakpoint"].get("obs_summary")
        assert summary is not None
        assert summary["spans"]["tick"]["count"] > 0

    def test_no_block_when_disabled(self):
        from repro.perf.benches import run_benches

        with _env(**{OBS_ENV_VAR: None}):
            reset_global_observer()
            results = run_benches(["event_queue"], quick=True)
        assert "obs_summary" not in results["event_queue"]
