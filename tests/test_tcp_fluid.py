"""Fluid transport engine tests: single flows, contention, dynamics."""

import pytest

from repro.net.link import Link
from repro.net.route import Route
from repro.net.trace import CapacityTrace
from repro.sim.errors import TransferError
from repro.sim.simulator import Simulator
from repro.tcp.flow import FlowState
from repro.tcp.fluid import FluidNetwork
from repro.tcp.model import SlowStartRamp, ideal_transfer_time


def C(v):
    return CapacityTrace.constant(v)


def route(cap=1000.0, delay=0.0, trace=None, name="l"):
    return Route([Link(name, "s", "c", trace if trace is not None else C(cap), delay)])


def world():
    sim = Simulator()
    return sim, FluidNetwork(sim)


class TestSingleFlow:
    def test_completion_time_uncapped(self):
        sim, net = world()
        flow = net.start_flow(route(1000.0), 5000.0, activation_delay=0.0)
        net.run_to_completion(flow)
        assert flow.completed_at == pytest.approx(5.0)
        assert flow.state is FlowState.COMPLETED
        assert flow.delivered == 5000.0

    def test_activation_delay_default_is_rtt(self):
        sim, net = world()
        r = route(1000.0, delay=0.05)
        flow = net.start_flow(r, 1000.0)
        net.run_to_completion(flow)
        assert flow.activated_at == pytest.approx(r.rtt)
        assert flow.completed_at == pytest.approx(r.rtt + 1.0)

    def test_throughput_includes_setup(self):
        sim, net = world()
        flow = net.start_flow(route(1000.0, delay=0.25), 1000.0)
        net.run_to_completion(flow)
        assert flow.throughput() == pytest.approx(1000.0 / 1.5)

    def test_matches_ideal_transfer_time_with_ramp(self):
        sim, net = world()
        rtt = 0.1
        ramp = SlowStartRamp(rtt=rtt, initial_window=2920.0, max_window=65536.0)
        r = route(125_000.0, delay=rtt / 2)
        flow = net.start_flow(r, 500_000.0, ramp=ramp, activation_delay=0.0)
        net.run_to_completion(flow)
        expected = ideal_transfer_time(
            500_000.0, 125_000.0, rtt, initial_window=2920.0, max_window=65536.0
        )
        assert flow.completed_at == pytest.approx(expected, rel=0.02)

    def test_trace_change_mid_transfer(self):
        # 1000 B/s for 5 s then 500 B/s: 6000 bytes need 5 + 2 = 7 s.
        tr = CapacityTrace([0.0, 5.0], [1000.0, 500.0])
        sim, net = world()
        flow = net.start_flow(route(trace=tr), 6000.0, activation_delay=0.0)
        net.run_to_completion(flow)
        assert flow.completed_at == pytest.approx(7.0)

    def test_zero_capacity_then_recovery(self):
        tr = CapacityTrace([0.0, 10.0], [0.0, 1000.0])
        sim, net = world()
        flow = net.start_flow(route(trace=tr), 1000.0, activation_delay=0.0)
        net.run_to_completion(flow)
        assert flow.completed_at == pytest.approx(11.0)

    def test_permanent_zero_capacity_deadlocks_loudly(self):
        sim, net = world()
        net.start_flow(route(0.0), 1000.0, activation_delay=0.0)
        with pytest.raises(TransferError, match="deadlock"):
            sim.run()


class TestContention:
    def make_shared(self, cap=1000.0):
        shared = Link("shared", "s", "c", C(cap))
        return Route([shared]), Route([shared])

    def test_two_flows_split_capacity(self):
        r1, r2 = self.make_shared(1000.0)
        sim, net = world()
        f1 = net.start_flow(r1, 1000.0, activation_delay=0.0)
        f2 = net.start_flow(r2, 1000.0, activation_delay=0.0)
        net.run_to_completion(f1)
        net.run_to_completion(f2)
        # Equal split at 500 B/s each -> both finish at t=2.
        assert f1.completed_at == pytest.approx(2.0)
        assert f2.completed_at == pytest.approx(2.0)

    def test_completion_releases_capacity(self):
        r1, r2 = self.make_shared(1000.0)
        sim, net = world()
        f1 = net.start_flow(r1, 500.0, activation_delay=0.0)
        f2 = net.start_flow(r2, 1500.0, activation_delay=0.0)
        net.run_to_completion(f2)
        # Phase 1: both at 500 B/s until t=1 (f1 done, 500 B of f2 moved).
        # Phase 2: f2 alone at 1000 B/s for remaining 1000 B -> t=2.
        assert f1.completed_at == pytest.approx(1.0)
        assert f2.completed_at == pytest.approx(2.0)

    def test_late_arrival_slows_existing_flow(self):
        r1, r2 = self.make_shared(1000.0)
        sim, net = world()
        f1 = net.start_flow(r1, 2000.0, activation_delay=0.0)
        sim.run(until=1.0)
        f2 = net.start_flow(r2, 500.0, activation_delay=0.0)
        net.run_to_completion(f1)
        # f1 moves 1000 B alone (t=0..1), then shares: 500 B/s each.
        # f2 finishes at t=2; f1 has 500 B left -> full rate -> t=2.5.
        assert f2.completed_at == pytest.approx(2.0)
        assert f1.completed_at == pytest.approx(2.5)

    def test_flow_capped_leaves_capacity_for_other(self):
        r1, r2 = self.make_shared(1000.0)
        sim, net = world()
        ramp = SlowStartRamp(rtt=1.0, initial_window=100.0, max_window=100.0)
        f1 = net.start_flow(r1, 100.0, ramp=ramp, activation_delay=0.0)  # capped 100 B/s
        f2 = net.start_flow(r2, 900.0, activation_delay=0.0)
        net.run_to_completion(f2)
        assert f2.completed_at == pytest.approx(1.0)
        assert f1.completed_at == pytest.approx(1.0)


class TestAbort:
    def test_abort_active_flow(self):
        sim, net = world()
        f1 = net.start_flow(route(1000.0), 10_000.0, activation_delay=0.0)
        sim.run(until=1.0)
        net.abort_flow(f1)
        assert f1.state is FlowState.ABORTED
        assert f1.delivered == pytest.approx(1000.0)
        sim.run()  # queue drains without error

    def test_abort_pending_flow(self):
        sim, net = world()
        f1 = net.start_flow(route(1000.0), 1000.0, activation_delay=5.0)
        net.abort_flow(f1)
        sim.run()
        assert f1.state is FlowState.ABORTED
        assert f1.delivered == 0.0

    def test_abort_idempotent_after_completion(self):
        sim, net = world()
        f1 = net.start_flow(route(1000.0), 100.0, activation_delay=0.0)
        net.run_to_completion(f1)
        net.abort_flow(f1)  # no-op
        assert f1.state is FlowState.COMPLETED

    def test_abort_restores_bandwidth(self):
        shared = Link("shared", "s", "c", C(1000.0))
        sim, net = world()
        f1 = net.start_flow(Route([shared]), 10_000.0, activation_delay=0.0)
        f2 = net.start_flow(Route([shared]), 1500.0, activation_delay=0.0)
        sim.run(until=1.0)  # each moved 500 B
        net.abort_flow(f1)
        net.run_to_completion(f2)
        # f2's remaining 1000 B at full 1000 B/s -> completes at t=2.
        assert f2.completed_at == pytest.approx(2.0)


class TestCallbacks:
    def test_on_complete_invoked_once(self):
        sim, net = world()
        calls = []
        f = net.start_flow(
            route(1000.0), 100.0, activation_delay=0.0, on_complete=calls.append
        )
        net.run_to_completion(f)
        assert calls == [f]

    def test_callback_can_start_followup_flow(self):
        sim, net = world()
        followup = {}

        def chain(first):
            followup["flow"] = net.start_flow(
                route(1000.0, name="l2"), 1000.0, activation_delay=0.0
            )

        net.start_flow(route(1000.0), 1000.0, activation_delay=0.0, on_complete=chain)
        sim.run()
        assert followup["flow"].state is FlowState.COMPLETED
        assert followup["flow"].completed_at == pytest.approx(2.0)

    def test_callback_can_abort_sibling(self):
        shared = Link("shared", "s", "c", C(1000.0))
        sim, net = world()
        sibling = net.start_flow(Route([shared]), 10_000.0, activation_delay=0.0)
        net.start_flow(
            Route([shared]),
            500.0,
            activation_delay=0.0,
            on_complete=lambda f: net.abort_flow(sibling),
        )
        sim.run()
        assert sibling.state is FlowState.ABORTED

    def test_completed_count(self):
        sim, net = world()
        for _ in range(3):
            net.start_flow(route(1000.0), 10.0, activation_delay=0.0)
        sim.run()
        assert net.completed_count == 3


class TestFlowObservers:
    def test_duration_requires_completion(self):
        sim, net = world()
        f = net.start_flow(route(1000.0), 1000.0)
        with pytest.raises(RuntimeError):
            f.duration()

    def test_remaining_decreases(self):
        sim, net = world()
        f = net.start_flow(route(1000.0), 1000.0, activation_delay=0.0)
        sim.run(until=0.5)
        # Remaining is updated lazily at ticks; force one by reading state
        # after an abort-less run boundary.
        assert f.remaining <= 1000.0

    def test_negative_size_rejected(self):
        sim, net = world()
        with pytest.raises(ValueError):
            net.start_flow(route(1000.0), 0.0)

    def test_negative_activation_delay_rejected(self):
        sim, net = world()
        with pytest.raises(ValueError):
            net.start_flow(route(1000.0), 10.0, activation_delay=-1.0)
