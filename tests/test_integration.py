"""Integration tests: whole-stack behaviour, determinism, baseline ordering."""

import numpy as np
import pytest

from repro.analysis import headline_stats, indirect_utilization
from repro.core.oracle import OracleBestRelayPolicy
from repro.core.policy import DirectOnlyPolicy, SingleRandomRelayPolicy
from repro.core.random_set import UniformRandomSetPolicy
from repro.core.weighted import UtilizationWeightedPolicy
from repro.trace.store import TraceStore
from repro.workloads.experiment import (
    Section2Study,
    Section4Study,
    run_paired_transfer,
)
from repro.workloads.scenario import Scenario, ScenarioSpec


class TestDeterminism:
    def test_full_campaign_reproducible(self, section2_scenario):
        study = Section2Study(section2_scenario, repetitions=3)
        a = study.run(sites=["eBay"], clients=["Italy", "Korea"])
        b = study.run(sites=["eBay"], clients=["Italy", "Korea"])
        assert a.records == b.records

    def test_clients_independent_of_each_other(self, section2_scenario):
        """Running Italy alone gives the same rows as running it with others."""
        study = Section2Study(section2_scenario, repetitions=3)
        alone = study.run(sites=["eBay"], clients=["Italy"])
        together = study.run(sites=["eBay"], clients=["Korea", "Italy"])
        italy_rows = together.filter(client="Italy").records
        assert italy_rows == alone.records

    def test_section4_policy_streams_reproducible(self, section4_scenario):
        study = Section4Study(section4_scenario, repetitions=4)
        a = study.run_policy(UniformRandomSetPolicy(3), clients=["Duke"])
        b = study.run_policy(UniformRandomSetPolicy(3), clients=["Duke"])
        assert a.records == b.records


class TestAccountingConsistency:
    def test_throughputs_are_physical(self, section2_store, section2_scenario):
        file_bytes = section2_scenario.spec.file_bytes
        for r in section2_store:
            assert 0 < r.direct_throughput < 100e6  # < 800 Mbps, sane
            assert 0 < r.selected_throughput < 100e6
            assert r.file_bytes == file_bytes

    def test_probe_overhead_only_with_offers(self, section2_store):
        for r in section2_store:
            if r.set_size > 0:
                assert r.probe_overhead > 0.0

    def test_end_to_end_tracks_bulk_throughput(self, section2_store):
        # The two throughput views can diverge (capacity may shift between
        # the probe and bulk phases) but must stay within a sane factor.
        for r in section2_store:
            ratio = r.end_to_end_throughput / r.selected_throughput
            assert 0.2 <= ratio <= 5.0

    def test_direct_classes_consistent_per_client(self, section2_store):
        for client, sub in section2_store.group_by("client").items():
            assert len(set(sub.column("direct_class"))) == 1


class TestBaselineOrdering:
    """More candidates / better policies produce at least as much benefit."""

    @pytest.fixture(scope="class")
    def policy_results(self, section4_scenario):
        study = Section4Study(section4_scenario, repetitions=25)
        out = {}
        out["direct"] = study.run_policy(DirectOnlyPolicy(), clients=["Duke"])
        out["random1"] = study.run_policy(SingleRandomRelayPolicy(), clients=["Duke"])
        out["uniform8"] = study.run_policy(UniformRandomSetPolicy(8), clients=["Duke"])
        out["oracle"] = study.run_policy(
            OracleBestRelayPolicy(section4_scenario.builder, "eBay"),
            clients=["Duke"],
        )
        return out

    @staticmethod
    def mean_improvement(store: TraceStore) -> float:
        return float(np.mean(store.column("improvement_percent")))

    def test_direct_only_has_zero_utilization(self, policy_results):
        assert indirect_utilization(policy_results["direct"]) == 0.0

    def test_probing_beats_direct_only(self, policy_results):
        assert self.mean_improvement(policy_results["uniform8"]) > self.mean_improvement(
            policy_results["direct"]
        )

    def test_more_candidates_beat_one_random(self, policy_results):
        assert (
            self.mean_improvement(policy_results["uniform8"])
            >= self.mean_improvement(policy_results["random1"]) - 3.0
        )

    def test_oracle_with_one_candidate_is_strong(self, policy_results):
        # The oracle offers a single relay yet rivals an 8-relay random set.
        assert (
            self.mean_improvement(policy_results["oracle"])
            >= self.mean_improvement(policy_results["random1"])
        )

    def test_probe_mechanism_never_catastrophic(self, policy_results):
        # Mean improvement of any probing policy stays well above -100%.
        for name in ("random1", "uniform8", "oracle"):
            assert self.mean_improvement(policy_results[name]) > -20.0


class TestWeightedLearning:
    def test_weighted_policy_learns_good_relays(self, section4_scenario):
        study = Section4Study(section4_scenario, repetitions=40)
        uniform = study.run_policy(UniformRandomSetPolicy(4), clients=["Duke"])
        weighted = study.run_policy(
            UtilizationWeightedPolicy(4), clients=["Duke"], study="weighted"
        )
        mu = float(np.mean(uniform.column("improvement_percent")))
        mw = float(np.mean(weighted.column("improvement_percent")))
        # The paper's §6 expectation: weighting by utilisation should not
        # hurt, and typically helps once the counters warm up.
        assert mw >= mu - 8.0


class TestHeadlineBands:
    def test_paper_section6_numbers(self, section2_store):
        h = headline_stats(section2_store)
        assert 0.30 <= h.utilization <= 0.60           # paper: 45%
        assert 0.75 <= h.positive_given_indirect <= 1.0  # paper: 88%
        assert 0.25 <= h.effective_benefit_rate <= 0.55  # paper: ~40%

    def test_multi_site_band(self):
        # A tiny multi-site campaign: every site's mean improvement is
        # positive and within a broad band around the paper's 33-49%.
        sc = Scenario.build(
            ScenarioSpec.section2(sites=("eBay", "Google")), seed=77
        )
        study = Section2Study(sc, repetitions=6)
        store = study.run(clients=sc.client_names[:10])
        from repro.analysis import mean_improvement_by_site

        by_site = mean_improvement_by_site(store)
        for site, imp in by_site.items():
            assert 5.0 <= imp <= 110.0


class TestPersistenceAtScale:
    def test_campaign_round_trip(self, section2_store, tmp_path):
        section2_store.save_jsonl(tmp_path / "c.jsonl")
        loaded = TraceStore.load_jsonl(tmp_path / "c.jsonl")
        assert loaded.records == section2_store.records

    def test_csv_round_trip(self, section4_store, tmp_path):
        section4_store.save_csv(tmp_path / "c.csv")
        loaded = TraceStore.load_csv(tmp_path / "c.csv")
        assert loaded.records == section4_store.records
