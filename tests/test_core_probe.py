"""Probe engine tests: races, sequential ranking, noise, teardown."""

import numpy as np
import pytest

from repro.core.probe import DEFAULT_PROBE_BYTES, ProbeEngine, ProbeMode
from repro.tcp.flow import FlowState
from repro.util.units import kb


class TestConcurrentProbe:
    def test_faster_path_wins(self, mini_world, fast_tcp):
        w = mini_world(direct_mbps=1.0, relay_mbps={"R1": 4.0})
        sim, net, _ = w.universe()
        engine = ProbeEngine(net, tcp=fast_tcp)
        paths = [w.builder.direct("C", "S"), w.builder.indirect("C", "R1", "S")]
        out = engine.run(paths, "/f")
        assert out.winner.via == "R1"
        assert out.winner_is_indirect

    def test_direct_wins_when_equal(self, mini_world, fast_tcp):
        # Equal capacity: direct's lower setup latency wins the race.
        w = mini_world(direct_mbps=2.0, relay_mbps={"R1": 2.0})
        sim, net, _ = w.universe()
        engine = ProbeEngine(net, tcp=fast_tcp)
        out = engine.run(
            [w.builder.direct("C", "S"), w.builder.indirect("C", "R1", "S")], "/f"
        )
        assert out.winner.via is None

    def test_losers_are_aborted(self, mini_world, fast_tcp):
        w = mini_world(direct_mbps=1.0, relay_mbps={"R1": 4.0, "R2": 0.2})
        sim, net, _ = w.universe()
        engine = ProbeEngine(net, tcp=fast_tcp)
        paths = [w.builder.direct("C", "S")] + [
            w.builder.indirect("C", r, "S") for r in ("R1", "R2")
        ]
        out = engine.run(paths, "/f")
        sim.run()
        states = {p.label: p.transfer.flow.state for p in out.probes}
        assert states["R1"] is FlowState.COMPLETED
        assert states["direct"] is FlowState.ABORTED
        assert states["R2"] is FlowState.ABORTED

    def test_winner_has_throughput(self, mini_world):
        w = mini_world()
        sim, net, _ = w.universe()
        out = ProbeEngine(net).run([w.builder.direct("C", "S")], "/f")
        win = out.probes[0]
        assert win.won and win.throughput > 0
        assert out.throughput_of("direct") == win.throughput

    def test_probe_bytes_clamped_to_file(self, mini_world):
        w = mini_world(file_mb=0.05)  # 50 KB file < 100 KB probe
        sim, net, _ = w.universe()
        out = ProbeEngine(net).run(
            [w.builder.direct("C", "S")], "/f", probe_bytes=kb(100)
        )
        assert out.probes[0].transfer.flow.size == pytest.approx(kb(50))

    def test_overhead_positive(self, mini_world):
        w = mini_world()
        sim, net, _ = w.universe()
        out = ProbeEngine(net).run([w.builder.direct("C", "S")], "/f")
        assert out.overhead_seconds > 0
        assert out.decided_at == sim.now

    def test_total_probe_bytes_counts_partial_losers(self, mini_world, fast_tcp):
        w = mini_world(direct_mbps=1.0, relay_mbps={"R1": 4.0})
        sim, net, _ = w.universe()
        out = ProbeEngine(net, tcp=fast_tcp).run(
            [w.builder.direct("C", "S"), w.builder.indirect("C", "R1", "S")], "/f"
        )
        assert out.total_probe_bytes > DEFAULT_PROBE_BYTES  # winner + partial loser
        assert out.total_probe_bytes < 2 * DEFAULT_PROBE_BYTES


class TestSequentialProbe:
    def test_best_throughput_wins(self, mini_world, fast_tcp):
        w = mini_world(direct_mbps=1.0, relay_mbps={"R1": 2.0, "R2": 5.0})
        sim, net, _ = w.universe()
        paths = [w.builder.direct("C", "S")] + [
            w.builder.indirect("C", r, "S") for r in ("R1", "R2")
        ]
        out = ProbeEngine(net, tcp=fast_tcp).run(
            paths, "/f", mode=ProbeMode.SEQUENTIAL
        )
        assert out.winner.via == "R2"

    def test_all_probes_complete(self, mini_world):
        w = mini_world(relay_mbps={"R1": 2.0, "R2": 5.0})
        sim, net, _ = w.universe()
        paths = [w.builder.direct("C", "S")] + [
            w.builder.indirect("C", r, "S") for r in ("R1", "R2")
        ]
        out = ProbeEngine(net).run(paths, "/f", mode=ProbeMode.SEQUENTIAL)
        assert all(p.won for p in out.probes)

    def test_overhead_grows_with_candidates(self, mini_world, fast_tcp):
        w = mini_world(relay_mbps={"R1": 2.0, "R2": 2.0, "R3": 2.0})
        def overhead(k):
            sim, net, _ = w.universe()
            paths = [w.builder.direct("C", "S")] + [
                w.builder.indirect("C", f"R{i+1}", "S") for i in range(k)
            ]
            return ProbeEngine(net, tcp=fast_tcp).run(
                paths, "/f", mode=ProbeMode.SEQUENTIAL
            ).overhead_seconds

        assert overhead(3) > overhead(1) > 0

    def test_noise_can_flip_close_ranking(self, mini_world, fast_tcp):
        w = mini_world(direct_mbps=1.0, relay_mbps={"R1": 2.0, "R2": 2.05})
        flips = 0
        for seed in range(30):
            sim, net, _ = w.universe()
            engine = ProbeEngine(
                net, tcp=fast_tcp, noise_sigma=0.2, rng=np.random.default_rng(seed)
            )
            paths = [w.builder.indirect("C", r, "S") for r in ("R1", "R2")]
            out = engine.run(paths, "/f", mode=ProbeMode.SEQUENTIAL)
            if out.winner.via == "R1":
                flips += 1
        assert 0 < flips < 30  # noise flips some but not all decisions

    def test_noise_requires_rng(self, mini_world):
        w = mini_world()
        sim, net, _ = w.universe()
        with pytest.raises(ValueError, match="rng"):
            ProbeEngine(net, noise_sigma=0.1)

    def test_measured_vs_true_throughput(self, mini_world):
        w = mini_world()
        sim, net, _ = w.universe()
        engine = ProbeEngine(net, noise_sigma=0.3, rng=np.random.default_rng(1))
        out = engine.run(
            [w.builder.direct("C", "S")], "/f", mode=ProbeMode.SEQUENTIAL
        )
        p = out.probes[0]
        assert p.measured_throughput != p.throughput
        assert p.measured_throughput > 0


class TestValidation:
    def test_empty_paths_rejected(self, mini_world):
        w = mini_world()
        sim, net, _ = w.universe()
        with pytest.raises(ValueError, match="at least one"):
            ProbeEngine(net).run([], "/f")

    def test_duplicate_paths_rejected(self, mini_world):
        w = mini_world()
        sim, net, _ = w.universe()
        p = w.builder.direct("C", "S")
        with pytest.raises(ValueError, match="distinct"):
            ProbeEngine(net).run([p, p], "/f")

    def test_non_positive_probe_bytes(self, mini_world):
        w = mini_world()
        sim, net, _ = w.universe()
        with pytest.raises(ValueError):
            ProbeEngine(net).run([w.builder.direct("C", "S")], "/f", probe_bytes=0)

    def test_unknown_throughput_label(self, mini_world):
        w = mini_world()
        sim, net, _ = w.universe()
        out = ProbeEngine(net).run([w.builder.direct("C", "S")], "/f")
        with pytest.raises(KeyError):
            out.throughput_of("nope")
