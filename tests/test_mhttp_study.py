"""mHTTP study tests: records, planner, runner dispatch, and analysis."""

import math

import pytest

from repro.analysis.availability import (
    stripe_degradation_by_k,
    stripe_degradation_stats,
)
from repro.analysis.mhttp import (
    mhttp_cells,
    render_mhttp,
    stripe_p99_advantage,
)
from repro.core.resilience import RecoveryEvent
from repro.runner.plan import WorkUnit
from repro.runner.pool import run_unit
from repro.trace.records import StripeRecord, TransferRecord
from repro.trace.store import TraceStore
from repro.workloads.mhttp import (
    MhttpStudyParams,
    mhttp_outage_plan,
    parse_mhttp_variant,
    plan_mhttp,
)


def _record(**overrides):
    base = dict(
        study="mhttp",
        client="Italy",
        site="eBay",
        repetition=0,
        start_time=0.0,
        set_size=1,
        offered=("R1",),
        selected_via=None,
        direct_throughput=100_000.0,
        selected_throughput=200_000.0,
        end_to_end_throughput=200_000.0,
        probe_overhead=0.0,
        file_bytes=8_000_000.0,
        mechanism="stripe",
        stripe_k=2,
        failure_mode="none",
        outcome="completed",
        bytes_received=8_000_000.0,
        direct_duration=80.0,
        selected_duration=40.0,
    )
    base.update(overrides)
    return StripeRecord(**base)


class TestStripeRecord:
    def test_round_trip_via_registry(self):
        rec = _record(
            wasted_bytes=500_000.0,
            n_reissues=2,
            bytes_by_path=(("direct", 3_000_000.0), ("R1", 5_000_000.0)),
            recovery_events=(
                RecoveryEvent(
                    time=11.0, kind="path_dead", path="R1", bytes_received=2e6
                ),
                RecoveryEvent(
                    time=20.0, kind="reissue", path="direct",
                    bytes_received=5e6, detail=14.0,
                ),
            ),
        )
        d = rec.to_dict()
        assert d["record_type"] == "stripe"
        assert d["bytes_by_path"] == [["direct", 3_000_000.0], ["R1", 5_000_000.0]]
        back = TransferRecord.from_dict(d)
        assert isinstance(back, StripeRecord)
        assert back == rec

    def test_validation(self):
        with pytest.raises(ValueError):
            _record(mechanism="race")
        with pytest.raises(ValueError):
            _record(wasted_bytes=-1.0)
        with pytest.raises(ValueError):
            _record(mechanism="select", selected_via="R9")
        # Zero throughputs are legal (aborted rows).
        aborted = _record(
            outcome="aborted", selected_throughput=0.0, bytes_received=0.0
        )
        assert aborted.aborted and not aborted.degraded

    def test_derived_properties(self):
        rec = _record(wasted_bytes=800_000.0, bytes_received=4_000_000.0)
        assert rec.wasted_fraction == pytest.approx(0.1)
        assert rec.delivered_fraction == pytest.approx(0.5)
        assert rec.speedup == pytest.approx(2.0)
        assert math.isnan(_record(selected_duration=0.0).speedup)

    def test_sort_key_separates_mechanisms(self):
        select = _record(mechanism="select", selected_via="R1")
        stripe = _record(mechanism="stripe")
        assert select.sort_key != stripe.sort_key
        assert select.sort_key[: len(TransferRecord.sort_key.fget(select))] == (
            TransferRecord.sort_key.fget(stripe)
        )


class TestVariantCodec:
    @pytest.mark.parametrize(
        "variant,expected",
        [
            ("select2+none", ("select", 2, "none")),
            ("stripe4+node", ("stripe", 4, "node")),
            ("stripe10+none", ("stripe", 10, "none")),
        ],
    )
    def test_parse(self, variant, expected):
        assert parse_mhttp_variant(variant) == expected

    @pytest.mark.parametrize(
        "variant",
        ["stripe+node", "stripe1+node", "race3+node", "stripe3+link", "stripe3"],
    )
    def test_rejects_malformed(self, variant):
        with pytest.raises(ValueError):
            parse_mhttp_variant(variant)


class TestPlanner:
    def test_grid_shape_and_dispatch_fields(self, section2_scenario):
        plan = plan_mhttp(
            section2_scenario,
            repetitions=2,
            interval=360.0,
            ks=(2, 3),
            clients=["Italy"],
        )
        # 2 slots x 2 ks x 2 mechanisms.
        assert len(plan) == 8
        assert [u.variant for u in plan.units] == [
            "select2+none",
            "stripe2+none",
            "select3+none",
            "stripe3+none",
            "select2+node",
            "stripe2+node",
            "select3+node",
            "stripe3+node",
        ]
        assert all(u.runner == "mhttp" for u in plan.units)
        # The k=2 primary relay prefixes every larger set in the same slot.
        assert plan.units[2].offered[0] == plan.units[0].offered[0]

    def test_fingerprint_stable_and_param_sensitive(self, section2_scenario):
        a = plan_mhttp(section2_scenario, repetitions=2, interval=360.0, ks=(2,))
        b = plan_mhttp(section2_scenario, repetitions=2, interval=360.0, ks=(2,))
        assert a.fingerprint() == b.fingerprint()
        c = plan_mhttp(
            section2_scenario,
            repetitions=2,
            interval=360.0,
            ks=(2,),
            params=MhttpStudyParams(window=3),
        )
        assert c.fingerprint() != a.fingerprint()

    def test_rejects_bad_widths(self, section2_scenario):
        with pytest.raises(ValueError):
            plan_mhttp(section2_scenario, repetitions=1, interval=360.0, ks=(1,))
        with pytest.raises(ValueError):
            plan_mhttp(section2_scenario, repetitions=1, interval=360.0, ks=(99,))

    def test_runner_field_hashed_only_when_present(self):
        plain = WorkUnit(
            index=0, study="s", client="c", site="x", repetition=0,
            start_time=0.0, offered=("R1",),
        )
        routed = WorkUnit(
            index=0, study="s", client="c", site="x", repetition=0,
            start_time=0.0, offered=("R1",), runner="mhttp",
        )
        assert plain.runner is None
        assert plain.unit_id != routed.unit_id

    def test_unknown_runner_rejected(self, section2_scenario):
        unit = WorkUnit(
            index=0, study="s", client="Italy", site="eBay", repetition=0,
            start_time=0.0, offered=("MIT",), runner="teleport",
        )
        with pytest.raises(ValueError):
            run_unit(section2_scenario, None, unit)


class TestOutagePlan:
    def test_none_mode_is_empty(self, section2_scenario):
        assert (
            mhttp_outage_plan(
                section2_scenario,
                MhttpStudyParams(),
                client="Italy",
                site="eBay",
                relay="MIT",
                mode="none",
                start_time=0.0,
            )
            == {}
        )

    def test_node_mode_hits_transfer_window_deterministically(
        self, section2_scenario
    ):
        params = MhttpStudyParams()
        kwargs = dict(
            client="Italy", site="eBay", relay="MIT", mode="node",
            start_time=720.0,
        )
        a = mhttp_outage_plan(section2_scenario, params, **kwargs)
        b = mhttp_outage_plan(section2_scenario, params, **kwargs)
        assert a and {k: [(o.start, o.duration) for o in v] for k, v in a.items()} == {
            k: [(o.start, o.duration) for o in v] for k, v in b.items()
        }
        for outages in a.values():
            (outage,) = outages
            assert 720.0 + params.crash_delay_min <= outage.start
            assert outage.start <= 720.0 + params.crash_delay_max
            assert outage.duration == params.crash_duration

    def test_unknown_mode_rejected(self, section2_scenario):
        with pytest.raises(ValueError):
            mhttp_outage_plan(
                section2_scenario,
                MhttpStudyParams(),
                client="Italy",
                site="eBay",
                relay="MIT",
                mode="link",
                start_time=0.0,
            )


class TestRunnerIntegration:
    @pytest.fixture(scope="class")
    def tiny_campaign(self, section2_scenario):
        from repro.runner.pool import execute_plan

        plan = plan_mhttp(
            section2_scenario,
            repetitions=2,
            interval=360.0,
            ks=(2,),
            clients=["Italy"],
        )
        serial = execute_plan(plan, scenario=section2_scenario, jobs=1)
        return plan, serial.store

    def test_emits_one_stripe_record_per_unit(self, tiny_campaign):
        plan, store = tiny_campaign
        assert len(store) == len(plan)
        assert all(isinstance(r, StripeRecord) for r in store.records)
        mechanisms = {r.mechanism for r in store.records}
        assert mechanisms == {"select", "stripe"}

    def test_stripe_rows_carry_geometry(self, tiny_campaign):
        _plan, store = tiny_campaign
        for r in store.records:
            if r.mechanism == "stripe":
                assert r.stripe_k == 2 and r.n_blocks > 0
                assert sum(got for _l, got in r.bytes_by_path) == pytest.approx(
                    r.bytes_received
                )
            else:
                assert r.n_blocks == 0 and r.bytes_by_path == ()

    def test_parallel_execution_is_byte_identical(
        self, section2_scenario, tiny_campaign
    ):
        from repro.runner.pool import execute_plan

        plan, serial_store = tiny_campaign
        parallel = execute_plan(plan, scenario=section2_scenario, jobs=2)
        assert [r.to_dict() for r in parallel.store.records] == [
            r.to_dict() for r in serial_store.records
        ]

    def test_rows_round_trip_through_store(self, tiny_campaign, tmp_path):
        _plan, store = tiny_campaign
        path = tmp_path / "mhttp.jsonl"
        store.save_jsonl(str(path))
        loaded = TraceStore.load_jsonl(str(path))
        assert [r.to_dict() for r in loaded.records] == [
            r.to_dict() for r in store.records
        ]


class TestAnalysis:
    def _rows(self):
        rows = []
        for i, dur in enumerate([30.0, 35.0, 40.0, 90.0]):
            rows.append(
                _record(
                    repetition=i,
                    mechanism="select",
                    selected_via="R1",
                    failure_mode="node",
                    selected_duration=dur,
                )
            )
        for i, dur in enumerate([20.0, 22.0, 25.0, 30.0]):
            rows.append(
                _record(
                    repetition=i,
                    failure_mode="node",
                    selected_duration=dur,
                    wasted_bytes=400_000.0,
                    outcome="degraded" if i == 3 else "completed",
                    n_path_failures=1 if i == 3 else 0,
                )
            )
        return rows

    def test_cells_and_p99_advantage(self):
        cells = mhttp_cells(self._rows())
        assert set(cells) == {("node", 2, "select"), ("node", 2, "stripe")}
        select = cells[("node", 2, "select")]
        stripe = cells[("node", 2, "stripe")]
        assert select.n == stripe.n == 4
        assert stripe.p99_duration < select.p99_duration
        assert stripe.mean_wasted_bytes == pytest.approx(400_000.0)
        assert select.mean_wasted_bytes == 0.0
        advantage = stripe_p99_advantage(self._rows())
        assert advantage[("node", 2)] > 0.0

    def test_aborted_rows_excluded_from_tail(self):
        rows = [
            _record(selected_duration=10.0),
            _record(
                repetition=1,
                outcome="aborted",
                selected_throughput=0.0,
                bytes_received=0.0,
                selected_duration=0.0,
            ),
        ]
        (cell,) = mhttp_cells(rows).values()
        assert cell.n == 2 and cell.n_delivered == 1 and cell.n_aborted == 1
        assert cell.p99_duration == pytest.approx(10.0)

    def test_render_contains_grid_and_advantage(self):
        text = render_mhttp(self._rows())
        assert "select" in text and "stripe" in text
        assert "p99 advantage" in text
        assert "Striped-session degradation" in text

    def test_render_empty_is_defined(self):
        assert "rows: 0" in render_mhttp([])


class TestStripeDegradationStats:
    def test_goodput_retained(self):
        rows = [
            # Clean stripes: 8 MB / 20 s = 400 kB/s.
            _record(selected_duration=20.0),
            _record(repetition=1, selected_duration=20.0),
            # Degraded stripe: 8 MB / 80 s = 100 kB/s.
            _record(
                repetition=2,
                outcome="degraded",
                n_path_failures=1,
                selected_duration=80.0,
            ),
            # Aborted stripe delivers a partial object.
            _record(
                repetition=3,
                outcome="aborted",
                selected_throughput=0.0,
                bytes_received=2_000_000.0,
                selected_duration=30.0,
            ),
            # Select rows must be ignored.
            _record(repetition=4, mechanism="select", selected_via="R1"),
        ]
        stats = stripe_degradation_stats(rows)
        assert stats.n_sessions == 4
        assert stats.n_clean == 2 and stats.n_degraded == 1 and stats.n_aborted == 1
        assert stats.availability == pytest.approx(0.75)
        assert stats.mean_goodput_clean == pytest.approx(400_000.0)
        assert stats.mean_goodput_degraded == pytest.approx(100_000.0)
        assert stats.goodput_retained == pytest.approx(0.25)
        # 26 MB delivered of 32 MB requested.
        assert stats.byte_unavailability == pytest.approx(6.0 / 32.0)

    def test_by_k_grouping(self):
        rows = [
            _record(stripe_k=2),
            _record(repetition=1, stripe_k=3),
            _record(repetition=2, stripe_k=3),
        ]
        by_k = stripe_degradation_by_k(rows)
        assert list(by_k) == [2, 3]
        assert by_k[2].n_sessions == 1 and by_k[3].n_sessions == 2

    def test_empty_input_is_nan_not_error(self):
        stats = stripe_degradation_stats([])
        assert stats.n_sessions == 0
        assert math.isnan(stats.availability)
        assert math.isnan(stats.goodput_retained)
        assert math.isnan(stats.byte_unavailability)
