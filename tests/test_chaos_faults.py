"""Chaos fault-injection tests: trace rewrites, plans, and engine identity.

Covers the `repro.chaos.faults` taxonomy (gray / flap / correlated /
partition), the `apply_outages` edge cases the chaos layer leans on
(zero-length outages, back-to-back windows sharing a breakpoint), and the
requirement that both engine paths see identical fault conditions: the
classic per-object oracle and the vectorised SoA core must produce
bit-identical results over fault-rewritten traces.
"""

import numpy as np
import pytest

from repro.chaos.faults import (
    FAULT_FAMILIES,
    FaultWindow,
    apply_fault_windows,
    blackout_spans,
    compile_fault_plan,
    degraded_seconds,
    flapping_windows,
    intensity_params,
    plan_spans,
)
from repro.net.failures import Outage, apply_outages
from repro.net.link import Link
from repro.net.route import Route
from repro.net.trace import CapacityTrace
from repro.sim.simulator import Simulator
from repro.tcp.fluid import FluidNetwork


class TestFaultWindow:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultWindow(start=-1.0, duration=5.0)
        with pytest.raises(ValueError):
            FaultWindow(start=0.0, duration=-1.0)
        with pytest.raises(ValueError):
            FaultWindow(start=0.0, duration=5.0, factor=1.0)  # no-op forbidden
        with pytest.raises(ValueError):
            FaultWindow(start=0.0, duration=5.0, factor=-0.1)

    def test_zero_length_is_legal(self):
        w = FaultWindow(start=3.0, duration=0.0)
        assert w.end == 3.0
        assert not w.overlaps(0.0, 10.0)

    def test_blackout_and_overlap(self):
        w = FaultWindow(start=10.0, duration=5.0, factor=0.5)
        assert not w.is_blackout
        assert w.overlaps(12.0, 20.0)
        assert not w.overlaps(15.0, 20.0)  # half-open: end excluded


class TestApplyFaultWindows:
    def test_gray_window_on_constant_trace(self):
        trace = CapacityTrace.constant(1000.0)
        out = apply_fault_windows(trace, [FaultWindow(10.0, 20.0, factor=0.25)])
        assert out.value_at(5.0) == 1000.0
        assert out.value_at(10.0) == 250.0
        assert out.value_at(29.999) == 250.0
        assert out.value_at(30.0) == 1000.0

    def test_interior_breakpoints_scaled_not_swallowed(self):
        # The underlying trace halves at t=15, inside the window: the gray
        # rewrite must preserve that shape at reduced amplitude.
        trace = CapacityTrace([0.0, 15.0], [1000.0, 500.0])
        out = apply_fault_windows(trace, [FaultWindow(10.0, 20.0, factor=0.5)])
        assert out.value_at(12.0) == 500.0
        assert out.value_at(16.0) == 250.0
        assert out.value_at(30.0) == 500.0

    def test_blackout_matches_apply_outages(self):
        trace = CapacityTrace([0.0, 50.0, 200.0], [2000.0, 800.0, 1600.0])
        windows = [FaultWindow(30.0, 40.0, 0.0), FaultWindow(120.0, 30.0, 0.0)]
        outages = [Outage(30.0, 40.0), Outage(120.0, 30.0)]
        a = apply_fault_windows(trace, windows)
        b = apply_outages(trace, outages)
        assert list(a.times) == list(b.times)
        assert list(a.values) == list(b.values)

    def test_zero_length_windows_dropped(self):
        trace = CapacityTrace.constant(1000.0)
        out = apply_fault_windows(trace, [FaultWindow(10.0, 0.0)])
        assert list(out.times) == list(trace.times)
        assert list(out.values) == list(trace.values)

    def test_back_to_back_windows_share_breakpoint(self):
        # A blackout ending exactly where a gray window starts: the shared
        # instant must carry the gray value, never a resumed full-capacity
        # sliver or an inverted (dropped) blackout.
        trace = CapacityTrace.constant(1000.0)
        out = apply_fault_windows(
            trace,
            [FaultWindow(10.0, 10.0, 0.0), FaultWindow(20.0, 10.0, 0.5)],
        )
        assert out.value_at(15.0) == 0.0
        assert out.value_at(20.0) == 500.0
        assert out.value_at(30.0) == 1000.0
        assert list(out.times) == [0.0, 10.0, 20.0, 30.0]

    def test_overlapping_windows_rejected(self):
        trace = CapacityTrace.constant(1000.0)
        with pytest.raises(ValueError, match="overlap"):
            apply_fault_windows(
                trace,
                [FaultWindow(10.0, 10.0), FaultWindow(15.0, 10.0)],
            )


class TestApplyOutagesEdgeCases:
    """Satellite regressions: the outage path the chaos layer builds on."""

    def test_zero_length_outage_constructable_and_inert(self):
        trace = CapacityTrace.constant(1000.0)
        out = apply_outages(trace, [Outage(10.0, 0.0)])
        assert list(out.times) == list(trace.times)
        assert list(out.values) == list(trace.values)
        # And mixed with a real outage, only the real one lands.
        out = apply_outages(trace, [Outage(10.0, 0.0), Outage(20.0, 5.0)])
        assert out.value_at(10.0) == 1000.0
        assert out.value_at(22.0) == 0.0
        assert out.value_at(25.0) == 1000.0

    def test_zero_length_outage_at_existing_breakpoint_no_inversion(self):
        # The historical hazard: a zero-length outage at an existing
        # breakpoint would insert duplicate times whose keep-last dedup
        # could discard the wrong value.  It must be a pure no-op.
        trace = CapacityTrace([0.0, 10.0], [1000.0, 400.0])
        out = apply_outages(trace, [Outage(10.0, 0.0)])
        assert out.value_at(10.0) == 400.0
        assert list(out.times) == [0.0, 10.0]

    def test_back_to_back_outages_stay_dark(self):
        trace = CapacityTrace.constant(1000.0)
        out = apply_outages(trace, [Outage(10.0, 10.0), Outage(20.0, 10.0)])
        assert out.value_at(15.0) == 0.0
        assert out.value_at(20.0) == 0.0  # no full-capacity sliver at the seam
        assert out.value_at(29.999) == 0.0
        assert out.value_at(30.0) == 1000.0


class TestFlappingWindows:
    def test_duty_cycle_shape(self):
        windows = flapping_windows(100.0, 120.0, period=60.0, duty=0.5)
        assert [(w.start, w.end) for w in windows] == [
            (100.0, 130.0),
            (160.0, 190.0),
        ]
        assert all(w.is_blackout for w in windows)

    def test_final_window_clipped(self):
        windows = flapping_windows(0.0, 70.0, period=60.0, duty=0.5)
        assert [(w.start, w.end) for w in windows] == [(0.0, 30.0), (60.0, 70.0)]

    def test_validation(self):
        with pytest.raises(ValueError):
            flapping_windows(0.0, 100.0, period=0.0, duty=0.5)
        with pytest.raises(ValueError):
            flapping_windows(0.0, 100.0, period=60.0, duty=1.0)


class TestCompileFaultPlan:
    LINKS = dict(
        direct_link="wan:eBay->Italy",
        overlay_link="wan:relay0->Italy",
        egress_links=["wan:eBay->relay0", "wan:eBay->relay1"],
    )

    def test_none_is_empty(self):
        assert compile_fault_plan("none", "mild", onset=10.0, **self.LINKS) == {}

    def test_gray_targets_both_transfer_paths(self):
        plan = compile_fault_plan("gray", "severe", onset=10.0, **self.LINKS)
        assert set(plan) == {"wan:eBay->Italy", "wan:relay0->Italy"}
        p = intensity_params("severe")
        for windows in plan.values():
            assert [(w.start, w.duration, w.factor) for w in windows] == [
                (10.0, p.duration, p.gray_factor)
            ]

    def test_correlated_takes_down_shared_egress_bundle(self):
        plan = compile_fault_plan("correlated", "mild", onset=5.0, **self.LINKS)
        assert list(plan) == [
            "wan:eBay->Italy",
            "wan:eBay->relay0",
            "wan:eBay->relay1",
        ]
        assert all(w.is_blackout for ws in plan.values() for w in ws)

    def test_partition_severs_primary_ingress_only(self):
        plan = compile_fault_plan("partition", "mild", onset=5.0, **self.LINKS)
        assert list(plan) == ["wan:eBay->Italy", "wan:eBay->relay0"]

    def test_flap_compiles_duty_cycle(self):
        plan = compile_fault_plan("flap", "mild", onset=0.0, **self.LINKS)
        p = intensity_params("mild")
        n_expected = int(np.ceil(p.duration / p.flap_period))
        assert len(plan["wan:eBay->Italy"]) == n_expected

    def test_unknown_family_and_empty_egress(self):
        with pytest.raises(ValueError, match="unknown fault family"):
            compile_fault_plan("meteor", "mild", onset=0.0, **self.LINKS)
        with pytest.raises(ValueError, match="egress_links"):
            compile_fault_plan(
                "correlated",
                "mild",
                direct_link="d",
                overlay_link="o",
                egress_links=[],
                onset=0.0,
            )

    def test_all_families_compile(self):
        for family in FAULT_FAMILIES:
            for intensity in ("mild", "severe"):
                compile_fault_plan(family, intensity, onset=1.0, **self.LINKS)


class TestSpans:
    def test_blackout_spans_exclude_gray(self):
        plan = {
            "a": [FaultWindow(10.0, 10.0, 0.0), FaultWindow(30.0, 10.0, 0.5)],
            "b": [FaultWindow(0.0, 0.0, 0.0)],  # zero-length: excluded
        }
        assert blackout_spans(plan) == {"a": [(10.0, 20.0)]}

    def test_plan_spans_fuse_across_links(self):
        plan = {
            "a": [FaultWindow(10.0, 10.0, 0.0)],
            "b": [FaultWindow(15.0, 10.0, 0.5), FaultWindow(40.0, 5.0, 0.0)],
        }
        assert plan_spans(plan) == [(10.0, 25.0), (40.0, 45.0)]

    def test_degraded_seconds_clips_to_interval(self):
        spans = [(10.0, 25.0), (40.0, 45.0)]
        assert degraded_seconds(spans, 0.0, 100.0) == 20.0
        assert degraded_seconds(spans, 20.0, 42.0) == 7.0
        assert degraded_seconds(spans, 26.0, 39.0) == 0.0
        with pytest.raises(ValueError):
            degraded_seconds(spans, 10.0, 5.0)


# --------------------------------------------------------------------------- #
# engine identity over fault-rewritten traces
# --------------------------------------------------------------------------- #
def _run_engines(links, flow_specs):
    """Run both engines over identical faulted links; return observables."""
    results = []
    for vector in (False, True):
        sim = Simulator()
        net = FluidNetwork(sim, vector=vector)
        completions = {}
        handles = []
        for i, (route_idx, size, delay) in enumerate(flow_specs):
            name = f"f{i}"
            handles.append(
                net.start_flow(
                    Route([links[j] for j in route_idx]),
                    size,
                    name=name,
                    on_complete=lambda fl, n=name, s=sim: completions.__setitem__(
                        n, s.now
                    ),
                    activation_delay=delay,
                )
            )
        sim.run()
        results.append((completions, [f.delivered for f in handles]))
    return results


class TestEngineIdentityUnderFaults:
    """Vector engine must match the oracle bitwise on faulted traces."""

    def _links(self, windows_by_index):
        base = CapacityTrace([0.0, 60.0], [2.0e6, 1.0e6])
        links = []
        for i in range(4):
            trace = apply_fault_windows(base, windows_by_index.get(i, []))
            links.append(Link(f"l{i}", f"a{i}", f"b{i}", trace, delay=0.01))
        return links

    FLOWS = [
        ((0, 1), 5.0e6, 0.0),
        ((1, 2), 8.0e6, 2.0),
        ((2, 3), 3.0e6, 5.0),
        ((0, 3), 6.0e6, 11.0),
    ]

    def test_gray_window_identity(self):
        links = self._links({1: [FaultWindow(4.0, 30.0, factor=0.1)]})
        classic, vector = _run_engines(links, self.FLOWS)
        assert vector == classic

    def test_blackout_window_identity(self):
        links = self._links({0: [FaultWindow(3.0, 20.0, factor=0.0)]})
        classic, vector = _run_engines(links, self.FLOWS)
        assert vector == classic

    def test_flap_identity(self):
        flaps = flapping_windows(2.0, 40.0, period=8.0, duty=0.5)
        links = self._links({2: flaps})
        classic, vector = _run_engines(links, self.FLOWS)
        assert vector == classic

    def test_correlated_multi_link_identity(self):
        black = [FaultWindow(6.0, 25.0, factor=0.0)]
        gray = [FaultWindow(6.0, 25.0, factor=0.2)]
        links = self._links({0: black, 1: black, 3: gray})
        classic, vector = _run_engines(links, self.FLOWS)
        assert vector == classic
