"""Text table/figure renderer tests."""

import numpy as np
import pytest

from repro.util.tables import render_histogram, render_kv, render_series, render_table


class TestRenderTable:
    def test_alignment_and_content(self):
        out = render_table(["name", "value"], [("a", 1), ("bb", 22)])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "name" in lines[0] and "value" in lines[0]
        widths = {len(l) for l in lines}
        assert len(widths) == 1  # all lines equal width

    def test_title(self):
        out = render_table(["x"], [(1,)], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        out = render_table(["v"], [(3.14159,)], float_fmt=".2f")
        assert "3.14" in out
        assert "3.141" not in out

    def test_nan_rendered_as_dash(self):
        out = render_table(["v"], [(float("nan"),)])
        assert "-" in out.splitlines()[-1]

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(["a", "b"], [(1,)])

    def test_numpy_scalars_ok(self):
        out = render_table(["v"], [(np.float64(1.5),), (np.int64(2),)])
        assert "1.5" in out and "2" in out

    def test_bool_cell(self):
        out = render_table(["v"], [(True,)])
        assert "True" in out


class TestRenderHistogram:
    def test_bars_scale_with_peak(self):
        out = render_histogram([10.0, 50.0], [0, 1, 2], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 2
        assert lines[1].count("#") == 10

    def test_mismatched_edges(self):
        with pytest.raises(ValueError):
            render_histogram([1.0], [0, 1, 2])

    def test_title_and_percent(self):
        out = render_histogram([100.0], [0, 1], title="H")
        assert out.splitlines()[0] == "H"
        assert "100.00%" in out

    def test_all_zero_bins(self):
        out = render_histogram([0.0, 0.0], [0, 1, 2])
        assert "#" not in out


class TestRenderSeries:
    def test_rows(self):
        out = render_series([1, 2], [10.0, 20.0], x_name="k", y_name="imp")
        assert "k" in out and "imp" in out
        assert "10.00" in out

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            render_series([1], [1, 2])


class TestRenderKv:
    def test_keys_aligned(self):
        out = render_kv([("a", 1), ("long-key", 2.5)])
        lines = out.splitlines()
        assert lines[0].index(":") == lines[1].index(":")

    def test_empty(self):
        assert render_kv([]) == ""
