"""TCP Reno reference model tests."""

import pytest

from repro.tcp.model import ideal_transfer_time
from repro.tcp.reno import RenoConfig, simulate_reno_transfer


def config(**kw):
    defaults = dict(capacity=125_000.0, rtt=0.1, buffer_bytes=64_000.0)
    defaults.update(kw)
    return RenoConfig(**defaults)


class TestRenoBasics:
    def test_long_transfer_approaches_capacity(self):
        cfg = config()
        res = simulate_reno_transfer(50e6, cfg)
        assert res.throughput == pytest.approx(cfg.capacity, rel=0.15)

    def test_bytes_conserved(self):
        res = simulate_reno_transfer(1_000_000.0, config())
        assert res.bytes_sent == pytest.approx(1_000_000.0)

    def test_short_transfer_latency_dominated(self):
        cfg = config(capacity=1e9)
        res = simulate_reno_transfer(10_000.0, cfg)
        # A few slow-start rounds, nowhere near capacity.
        assert res.throughput < 0.01 * cfg.capacity
        assert res.rounds <= 6

    def test_losses_occur_when_window_exceeds_pipe(self):
        cfg = config(buffer_bytes=5_000.0)
        res = simulate_reno_transfer(20e6, cfg)
        assert res.losses > 0

    def test_no_losses_with_huge_buffer(self):
        cfg = config(buffer_bytes=1e9)
        res = simulate_reno_transfer(5e6, cfg)
        assert res.losses == 0

    def test_series_lengths_match(self):
        res = simulate_reno_transfer(1e6, config())
        assert len(res.cwnd_series) == len(res.time_series) == res.rounds

    def test_cwnd_doubles_in_slow_start(self):
        res = simulate_reno_transfer(5e6, config())
        cw = res.cwnd_series
        assert cw[1] == pytest.approx(2 * cw[0])
        assert cw[2] == pytest.approx(4 * cw[0])

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            simulate_reno_transfer(0.0, config())

    def test_bdp(self):
        assert config().bdp == pytest.approx(12_500.0)

    def test_max_rounds_guard(self):
        with pytest.raises(RuntimeError):
            simulate_reno_transfer(1e9, config(), max_rounds=10)


class TestRenoVsFluid:
    """The fluid idealisation should track Reno within a modest factor."""

    @pytest.mark.parametrize("size", [100_000.0, 1_000_000.0, 10_000_000.0])
    def test_transfer_times_within_factor(self, size):
        cfg = config(buffer_bytes=32_000.0)
        reno = simulate_reno_transfer(size, cfg)
        fluid = ideal_transfer_time(
            size,
            cfg.capacity,
            cfg.rtt,
            initial_window=cfg.initial_window,
            max_window=float("inf"),
        )
        ratio = reno.duration / fluid
        assert 0.5 <= ratio <= 2.0

    def test_both_models_rank_capacities_identically(self):
        size = 2_000_000.0
        fast, slow = config(capacity=500_000.0), config(capacity=50_000.0)
        reno_gain = (
            simulate_reno_transfer(size, slow).duration
            / simulate_reno_transfer(size, fast).duration
        )
        fluid_gain = ideal_transfer_time(size, 50_000.0, 0.1) / ideal_transfer_time(
            size, 500_000.0, 0.1
        )
        # Both should see roughly the 10x capacity difference.
        assert reno_gain == pytest.approx(fluid_gain, rel=0.35)
