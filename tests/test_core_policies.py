"""Selection policy tests: candidate set construction and feedback."""

import numpy as np
import pytest

from repro.core.oracle import OracleBestRelayPolicy
from repro.core.policy import (
    AllRelaysPolicy,
    DirectOnlyPolicy,
    LatencyRankedPolicy,
    SingleRandomRelayPolicy,
    StaticRelayPolicy,
)
from repro.core.random_set import UniformRandomSetPolicy
from repro.core.weighted import UtilizationWeightedPolicy

FULL = [f"R{i}" for i in range(10)]


def rng(seed=0):
    return np.random.default_rng(seed)


class TestSimplePolicies:
    def test_direct_only_offers_nothing(self):
        assert DirectOnlyPolicy().candidates("c", "s", FULL, rng()) == []

    def test_all_relays(self):
        assert AllRelaysPolicy().candidates("c", "s", FULL, rng()) == FULL

    def test_single_random_in_full_set(self):
        got = SingleRandomRelayPolicy().candidates("c", "s", FULL, rng())
        assert len(got) == 1 and got[0] in FULL

    def test_single_random_empty_full_set(self):
        assert SingleRandomRelayPolicy().candidates("c", "s", [], rng()) == []

    def test_static_assignment(self):
        p = StaticRelayPolicy({"Italy": "R3"})
        assert p.candidates("Italy", "s", FULL, rng()) == ["R3"]

    def test_static_default(self):
        p = StaticRelayPolicy({}, default="R1")
        assert p.candidates("Anyone", "s", FULL, rng()) == ["R1"]

    def test_static_missing_raises(self):
        with pytest.raises(KeyError):
            StaticRelayPolicy({}).candidates("X", "s", FULL, rng())

    def test_static_undeployed_relay_raises(self):
        with pytest.raises(ValueError, match="not deployed"):
            StaticRelayPolicy({"X": "nope"}).candidates("X", "s", FULL, rng())


class TestUniformRandomSet:
    def test_size_k(self):
        got = UniformRandomSetPolicy(4).candidates("c", "s", FULL, rng())
        assert len(got) == 4
        assert len(set(got)) == 4
        assert all(r in FULL for r in got)

    def test_k_larger_than_full_set(self):
        got = UniformRandomSetPolicy(99).candidates("c", "s", FULL, rng())
        assert sorted(got) == sorted(FULL)

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            UniformRandomSetPolicy(0)

    def test_uniformity(self):
        p = UniformRandomSetPolicy(1)
        g = rng(42)
        counts = {r: 0 for r in FULL}
        for _ in range(4000):
            counts[p.candidates("c", "s", FULL, g)[0]] += 1
        freqs = np.array(list(counts.values())) / 4000
        assert np.all(np.abs(freqs - 0.1) < 0.03)

    def test_name_mentions_k(self):
        assert "7" in UniformRandomSetPolicy(7).name


class TestUtilizationWeighted:
    def test_initial_uniform(self):
        p = UtilizationWeightedPolicy(3)
        for r in FULL:
            assert p.weight("c", r) == pytest.approx(0.5)  # alpha/beta

    def test_observe_raises_for_foreign_choice(self):
        p = UtilizationWeightedPolicy(2)
        with pytest.raises(ValueError, match="not in the offered set"):
            p.observe("c", "s", ["R1"], "R2")

    def test_wins_increase_weight(self):
        p = UtilizationWeightedPolicy(2)
        p.observe("c", "s", ["R1", "R2"], "R1")
        assert p.weight("c", "R1") > p.weight("c", "R2")

    def test_direct_selection_counts_offer_only(self):
        p = UtilizationWeightedPolicy(2)
        p.observe("c", "s", ["R1"], None)
        assert p.weight("c", "R1") < 0.5  # offer without win lowers weight

    def test_utilization_nan_before_offers(self):
        p = UtilizationWeightedPolicy(2)
        assert np.isnan(p.utilization("c", "R1"))

    def test_utilization_ratio(self):
        p = UtilizationWeightedPolicy(2)
        p.observe("c", "s", ["R1"], "R1")
        p.observe("c", "s", ["R1"], None)
        assert p.utilization("c", "R1") == pytest.approx(0.5)

    def test_per_client_isolation(self):
        p = UtilizationWeightedPolicy(2)
        p.observe("c1", "s", ["R1"], "R1")
        assert p.weight("c2", "R1") == pytest.approx(0.5)

    def test_learning_concentrates_sampling(self):
        p = UtilizationWeightedPolicy(2)
        g = rng(1)
        # R0 always wins when offered.
        for _ in range(60):
            offered = p.candidates("c", "s", FULL, g)
            chosen = "R0" if "R0" in offered else None
            p.observe("c", "s", offered, chosen)
        counts = {r: 0 for r in FULL}
        for _ in range(600):
            for r in p.candidates("c", "s", FULL, g):
                counts[r] += 1
        assert counts["R0"] > max(c for r, c in counts.items() if r != "R0")

    def test_candidates_k_bounded(self):
        p = UtilizationWeightedPolicy(20)
        assert len(p.candidates("c", "s", FULL, rng())) == len(FULL)

    def test_bad_params(self):
        with pytest.raises(ValueError):
            UtilizationWeightedPolicy(0)
        with pytest.raises(ValueError):
            UtilizationWeightedPolicy(2, alpha=0.0)


class TestLatencyRanked:
    def test_ranks_by_rtt(self):
        rtts = {"R0": 0.3, "R1": 0.1, "R2": 0.2}
        p = LatencyRankedPolicy(2, lambda c, r: rtts[r])
        assert p.candidates("c", "s", list(rtts), rng()) == ["R1", "R2"]

    def test_k_validated(self):
        with pytest.raises(ValueError):
            LatencyRankedPolicy(0, lambda c, r: 0.0)


class TestOracle:
    def test_oracle_picks_best_relay(self, mini_world):
        w = mini_world(direct_mbps=1.0, relay_mbps={"R1": 1.0, "R2": 5.0, "R3": 2.0})
        policy = OracleBestRelayPolicy(w.builder, "S")
        got = policy.candidates("C", "S", w.relays, rng())
        assert got == ["R2"]

    def test_oracle_empty_full_set(self, mini_world):
        w = mini_world()
        policy = OracleBestRelayPolicy(w.builder, "S")
        assert policy.candidates("C", "S", [], rng()) == []
