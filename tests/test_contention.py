"""Contention-driven workload tests."""

import dataclasses

import numpy as np
import pytest

from repro.tcp.cross_traffic import CrossTrafficConfig
from repro.workloads.calibration import CalibrationParams
from repro.workloads.contention import ContentionSpec, run_contended_pair
from repro.workloads.scenario import Scenario, ScenarioSpec


def flat_params():
    """Calibration with constant direct WAN capacity (no trace modulation)."""
    return dataclasses.replace(
        CalibrationParams(),
        low_var_multipliers=(1.0, 1.0, 1.0),
        high_var_multipliers=(1.0, 1.0, 1.0),
    )


@pytest.fixture(scope="module")
def flat_scenario():
    spec = ScenarioSpec.section2(sites=("eBay",), params=flat_params())
    return Scenario.build(spec, seed=55)


class TestContentionSpec:
    def test_load_bounds(self):
        with pytest.raises(ValueError):
            ContentionSpec(load=0.95)
        with pytest.raises(ValueError):
            ContentionSpec(load=-0.1)

    def test_zero_load_no_traffic(self):
        assert ContentionSpec(load=0.0).traffic_config(1e6) is None

    def test_rate_matches_target_load(self):
        spec = ContentionSpec(load=0.5, mean_size=500_000.0)
        cfg = spec.traffic_config(1_000_000.0)
        assert isinstance(cfg, CrossTrafficConfig)
        assert cfg.arrival_rate * cfg.mean_size == pytest.approx(500_000.0)


class TestRunContendedPair:
    def test_record_shape(self, flat_scenario):
        rec = run_contended_pair(
            flat_scenario,
            client="Italy",
            site="eBay",
            repetition=0,
            start_time=0.0,
            offered=["Texas"],
            spec=ContentionSpec(load=0.4),
        )
        assert rec.study == "contended"
        assert rec.direct_throughput > 0
        assert rec.selected_throughput > 0

    def test_deterministic(self, flat_scenario):
        kw = dict(
            client="Italy", site="eBay", repetition=1, start_time=360.0,
            offered=["Texas"], spec=ContentionSpec(load=0.4),
        )
        assert run_contended_pair(flat_scenario, **kw) == run_contended_pair(
            flat_scenario, **kw
        )

    def test_contention_reduces_direct_throughput(self, flat_scenario):
        def direct_at(load):
            rec = run_contended_pair(
                flat_scenario,
                client="Sweden",
                site="eBay",
                repetition=0,
                start_time=0.0,
                offered=[],
                spec=ContentionSpec(load=load),
            )
            return rec.direct_throughput

        quiet = direct_at(0.0)
        loaded = np.mean([
            run_contended_pair(
                flat_scenario, client="Sweden", site="eBay", repetition=j,
                start_time=j * 360.0, offered=[], spec=ContentionSpec(load=0.6),
            ).direct_throughput
            for j in range(4)
        ])
        assert loaded < quiet

    def test_contention_creates_indirect_opportunities(self, flat_scenario):
        """Without modulation AND without contention the direct path never
        dips, so with contention the indirect path should win sometimes."""
        relay_pool = flat_scenario.relay_names
        wins = 0
        for j in range(8):
            rec = run_contended_pair(
                flat_scenario,
                client="Italy",
                site="eBay",
                repetition=j,
                start_time=j * 360.0,
                offered=[relay_pool[j % len(relay_pool)]],
                spec=ContentionSpec(load=0.6),
            )
            wins += rec.used_indirect
        assert wins >= 1
