"""Checkpoint store tests: layout, resume protocol, corruption tolerance."""

import json

import pytest

from repro.runner.checkpoint import (
    DEFAULT_NUM_SHARDS,
    MANIFEST_NAME,
    CheckpointError,
    CheckpointExistsError,
    CheckpointMismatchError,
    CheckpointStore,
    merge_completed,
    read_manifest,
)
from repro.runner.plan import plan_section2
from repro.trace.records import TransferRecord
from repro.workloads.experiment import STUDY_SESSION_CONFIG

CLIENTS = ["Italy", "Sweden", "Taiwan"]


@pytest.fixture(scope="module")
def plan(section2_scenario):
    return plan_section2(
        section2_scenario,
        repetitions=4,
        interval=360.0,
        config=STUDY_SESSION_CONFIG,
        sites=["eBay"],
        clients=CLIENTS,
    )


def fake_record(unit) -> TransferRecord:
    """A synthetic record for a unit (checkpoint tests never simulate)."""
    return TransferRecord(
        study=unit.study,
        client=unit.client,
        site=unit.site,
        repetition=unit.repetition,
        start_time=unit.start_time,
        set_size=len(unit.offered),
        offered=unit.offered,
        selected_via=unit.offered[0],
        direct_throughput=1.0e5,
        selected_throughput=2.0e5,
        end_to_end_throughput=1.5e5,
        probe_overhead=1.0,
        file_bytes=4.0e6,
    )


def write_units(store, plan, indices) -> None:
    for i in indices:
        unit = plan.units[i]
        store.append(unit.index, unit.unit_id, fake_record(unit))


class TestCreateAndReadBack:
    def test_round_trip(self, tmp_path, plan):
        with CheckpointStore.open_or_create(tmp_path / "ck", plan) as store:
            write_units(store, plan, range(5))
            store.flush()
        reopened = CheckpointStore.open_or_create(tmp_path / "ck", plan, resume=True)
        done = reopened.completed_units()
        assert sorted(done) == list(range(5))
        for i in range(5):
            unit_id, record = done[i]
            assert unit_id == plan.units[i].unit_id
            assert record == fake_record(plan.units[i])

    def test_manifest_contents(self, tmp_path, plan):
        CheckpointStore.open_or_create(tmp_path / "ck", plan).close()
        manifest = read_manifest(tmp_path / "ck")
        assert manifest is not None
        assert manifest["fingerprint"] == plan.fingerprint()
        assert manifest["total_units"] == len(plan)
        assert manifest["study"] == plan.study
        assert read_manifest(tmp_path / "elsewhere") is None

    def test_shard_assignment_contiguous_and_total(self, tmp_path, plan):
        store = CheckpointStore.open_or_create(tmp_path / "ck", plan)
        shards = [store.shard_of(i) for i in range(len(plan))]
        assert shards == sorted(shards)  # contiguous blocks
        assert set(shards) == set(range(store.num_shards))
        with pytest.raises(IndexError):
            store.shard_of(len(plan))
        store.close()

    def test_shard_count_capped_by_plan(self, tmp_path, plan):
        store = CheckpointStore.open_or_create(
            tmp_path / "ck", plan, num_shards=10 * len(plan)
        )
        assert store.num_shards == len(plan)
        assert DEFAULT_NUM_SHARDS <= len(plan)
        store.close()

    def test_duplicate_appends_keep_first(self, tmp_path, plan):
        with CheckpointStore.open_or_create(tmp_path / "ck", plan) as store:
            unit = plan.units[0]
            store.append(unit.index, unit.unit_id, fake_record(unit))
            other = fake_record(plan.units[1])
            store.append(unit.index, unit.unit_id, other)
        done = CheckpointStore.open_or_create(
            tmp_path / "ck", plan, resume=True
        ).completed_units()
        assert done[0][1] == fake_record(plan.units[0])


class TestResumeProtocol:
    def test_existing_without_resume_refused(self, tmp_path, plan):
        CheckpointStore.open_or_create(tmp_path / "ck", plan).close()
        with pytest.raises(CheckpointExistsError, match="already holds"):
            CheckpointStore.open_or_create(tmp_path / "ck", plan)

    def test_fingerprint_mismatch_refused(self, tmp_path, plan, section2_scenario):
        CheckpointStore.open_or_create(tmp_path / "ck", plan).close()
        drifted = plan_section2(
            section2_scenario,
            repetitions=5,  # different unit stream -> different fingerprint
            interval=360.0,
            config=STUDY_SESSION_CONFIG,
            sites=["eBay"],
            clients=CLIENTS,
        )
        with pytest.raises(CheckpointMismatchError, match="refusing to mix"):
            CheckpointStore.open_or_create(tmp_path / "ck", drifted, resume=True)

    def test_unreadable_manifest(self, tmp_path, plan):
        root = tmp_path / "ck"
        root.mkdir()
        (root / MANIFEST_NAME).write_text("{not json", encoding="utf-8")
        with pytest.raises(CheckpointError, match="unreadable"):
            CheckpointStore.open_or_create(root, plan, resume=True)

    def test_unsupported_format(self, tmp_path, plan):
        root = tmp_path / "ck"
        root.mkdir()
        (root / MANIFEST_NAME).write_text(json.dumps({"format": 99}), encoding="utf-8")
        with pytest.raises(CheckpointError, match="unsupported checkpoint format"):
            CheckpointStore.open_or_create(root, plan, resume=True)


class TestCorruptionTolerance:
    def _store_with_units(self, tmp_path, plan, n):
        with CheckpointStore.open_or_create(tmp_path / "ck", plan) as store:
            write_units(store, plan, range(n))
        return CheckpointStore.open_or_create(tmp_path / "ck", plan, resume=True)

    def test_torn_final_line_dropped(self, tmp_path, plan):
        store = self._store_with_units(tmp_path, plan, 3)
        # Units 0-2 land in shard 0; tear its last line mid-JSON.
        path = store.shard_path(store.shard_of(2))
        text = path.read_text(encoding="utf-8")
        lines = text.strip("\n").split("\n")
        path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2],
                        encoding="utf-8")
        done = store.completed_units()
        assert sorted(done) == [0, 1]

    def test_corrupt_middle_line_quarantines_shard(self, tmp_path, plan):
        store = self._store_with_units(tmp_path, plan, 3)
        path = store.shard_path(store.shard_of(0))
        lines = path.read_text(encoding="utf-8").strip("\n").split("\n")
        lines[0] = '{"garbage": true}'
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        done = store.completed_units()
        # The whole damaged shard is dropped (its units re-execute);
        # units in other shards are untouched ...
        assert all(store.shard_of(i) != store.shard_of(0) for i in done)
        assert 0 not in done and 1 not in done
        # ... the file is moved aside for post-mortem inspection ...
        assert not path.exists()
        q = store.quarantines
        assert len(q) == 1
        assert q[0].shard == str(path)
        assert q[0].line == 1
        assert path.with_name(path.name + ".quarantined").exists()
        assert q[0].quarantined_to == str(path.with_name(path.name + ".quarantined"))
        assert "re-execute" in str(q[0])
        # ... and a fresh read of the directory is clean.
        assert store.completed_units() == done
        assert store.quarantines == []

    def test_second_quarantine_never_clobbers_first(self, tmp_path, plan):
        store = self._store_with_units(tmp_path, plan, 3)
        path = store.shard_path(store.shard_of(0))
        original = path.read_text(encoding="utf-8")

        def corrupt():
            lines = original.strip("\n").split("\n")
            lines[0] = "not json at all"
            path.write_text("\n".join(lines) + "\n", encoding="utf-8")

        corrupt()
        store.completed_units()
        corrupt()
        store.completed_units()
        assert path.with_name(path.name + ".quarantined").exists()
        assert path.with_name(path.name + ".quarantined.1").exists()


class TestMerge:
    def test_merge_in_plan_order(self, tmp_path, plan):
        with CheckpointStore.open_or_create(tmp_path / "ck", plan) as store:
            # Complete everything in scrambled order; merge must not care.
            write_units(store, plan, reversed(range(len(plan))))
        store = CheckpointStore.open_or_create(tmp_path / "ck", plan, resume=True)
        merged = store.merge(plan)
        assert [(r.client, r.repetition) for r in merged] == [
            (u.client, u.repetition) for u in plan.units
        ]

    def test_merge_missing_units_raises(self, plan):
        done = {
            u.index: (u.unit_id, fake_record(u)) for u in plan.units[: len(plan) - 2]
        }
        with pytest.raises(CheckpointError, match="2 of 12 units missing"):
            merge_completed(plan, done)

    def test_merge_foreign_unit_id_raises(self, plan):
        done = {u.index: (u.unit_id, fake_record(u)) for u in plan.units}
        done[3] = ("0123456789abcdef", done[3][1])
        with pytest.raises(CheckpointError, match="different campaign"):
            merge_completed(plan, done)
