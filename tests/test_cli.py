"""CLI tests: argument handling, campaign runs, artefact rendering."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_section2_defaults(self):
        args = build_parser().parse_args(["section2", "--out", "x.jsonl"])
        assert args.reps == 30
        assert args.sites == "eBay"

    def test_report_artifact_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report", "s.jsonl", "--artifact", "fig99"])


class TestCatalog:
    def test_prints_tables(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "Table IV" in out and "Table V" in out
        assert "planetlab1.polito.it" in out
        assert "extrapolated" in out


class TestSection2Command:
    def test_small_run_writes_store(self, tmp_path, capsys):
        out = tmp_path / "s2.jsonl"
        rc = main(
            [
                "section2",
                "--reps",
                "2",
                "--clients",
                "Italy,Sweden",
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        assert out.exists()
        from repro.trace.store import TraceStore

        store = TraceStore.load_jsonl(out)
        assert len(store) == 4
        assert set(store.unique("client")) == {"Italy", "Sweden"}

    def test_unknown_site_rejected(self, tmp_path, capsys):
        rc = main(
            ["section2", "--sites", "AltaVista", "--out", str(tmp_path / "x.jsonl")]
        )
        assert rc == 2
        assert "unknown sites" in capsys.readouterr().err

    def test_unknown_client_rejected(self, tmp_path, capsys):
        rc = main(
            [
                "section2",
                "--clients",
                "Atlantis",
                "--out",
                str(tmp_path / "x.jsonl"),
            ]
        )
        assert rc == 2


class TestDedupe:
    def test_duplicate_clients_warned_and_dropped(self, tmp_path, capsys):
        out = tmp_path / "s2.jsonl"
        rc = main(
            [
                "section2",
                "--reps",
                "2",
                "--clients",
                "Italy,Sweden,Italy",
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        err = capsys.readouterr().err
        assert "ignoring 1 duplicate clients entry" in err
        assert "order preserved" in err
        from repro.trace.store import TraceStore

        store = TraceStore.load_jsonl(out)
        assert len(store) == 4  # Italy ran once, not twice
        assert store.unique("client") == ["Italy", "Sweden"]

    def test_duplicate_sites_warned(self, tmp_path, capsys):
        rc = main(
            [
                "section2",
                "--reps",
                "1",
                "--sites",
                "eBay,eBay",
                "--clients",
                "Italy",
                "--out",
                str(tmp_path / "s2.jsonl"),
            ]
        )
        assert rc == 0
        assert "duplicate sites entry" in capsys.readouterr().err


class TestRunnerFlags:
    def test_resume_requires_checkpoint(self, tmp_path, capsys):
        rc = main(
            ["section2", "--resume", "--out", str(tmp_path / "x.jsonl")]
        )
        assert rc == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_jobs_must_be_positive(self, tmp_path, capsys):
        rc = main(
            ["section2", "--jobs", "0", "--out", str(tmp_path / "x.jsonl")]
        )
        assert rc == 2
        assert "--jobs must be >= 1" in capsys.readouterr().err

    def test_checkpoint_every_validated(self, tmp_path, capsys):
        rc = main(
            [
                "section2",
                "--checkpoint-every",
                "0",
                "--out",
                str(tmp_path / "x.jsonl"),
            ]
        )
        assert rc == 2
        assert "--checkpoint-every" in capsys.readouterr().err

    def _run(self, tmp_path, *extra):
        return main(
            [
                "section2",
                "--reps",
                "2",
                "--clients",
                "Italy,Sweden",
                "--checkpoint",
                str(tmp_path / "ck"),
                "--out",
                str(tmp_path / "out.jsonl"),
                *extra,
            ]
        )

    def test_checkpoint_exists_without_resume_exits_2(self, tmp_path, capsys):
        assert self._run(tmp_path) == 0
        rc = self._run(tmp_path)
        assert rc == 2
        assert "already holds a campaign checkpoint" in capsys.readouterr().err

    def test_resume_completed_campaign_rewrites_store(self, tmp_path, capsys):
        assert self._run(tmp_path) == 0
        first = (tmp_path / "out.jsonl").read_bytes()
        assert self._run(tmp_path, "--resume") == 0
        assert (tmp_path / "out.jsonl").read_bytes() == first

    def test_resume_fingerprint_mismatch_exits_2(self, tmp_path, capsys):
        assert self._run(tmp_path) == 0
        rc = main(
            [
                "section2",
                "--reps",
                "3",  # different unit stream than the checkpoint
                "--clients",
                "Italy,Sweden",
                "--checkpoint",
                str(tmp_path / "ck"),
                "--resume",
                "--out",
                str(tmp_path / "out.jsonl"),
            ]
        )
        assert rc == 2
        assert "refusing to mix" in capsys.readouterr().err

    def test_progress_flag_prints_telemetry(self, tmp_path, capsys):
        rc = main(
            [
                "section2",
                "--reps",
                "1",
                "--clients",
                "Italy",
                "--progress",
                "--out",
                str(tmp_path / "s2.jsonl"),
            ]
        )
        assert rc == 0
        assert "units/s" in capsys.readouterr().err


class TestSection4Command:
    def test_small_sweep(self, tmp_path):
        out = tmp_path / "s4.jsonl"
        rc = main(
            ["section4", "--reps", "2", "--set-sizes", "1,3", "--out", str(out)]
        )
        assert rc == 0
        from repro.trace.store import TraceStore

        store = TraceStore.load_jsonl(out)
        assert len(store) == 3 * 2 * 2  # clients x sizes x reps
        assert sorted(set(store.column("set_size"))) == [1, 3]

    def test_bad_set_sizes(self, tmp_path, capsys):
        rc = main(
            ["section4", "--set-sizes", "a,b", "--out", str(tmp_path / "x.jsonl")]
        )
        assert rc == 2
        rc = main(
            ["section4", "--set-sizes", "0", "--out", str(tmp_path / "x.jsonl")]
        )
        assert rc == 2


class TestReportCommand:
    @pytest.fixture()
    def store_path(self, tmp_path, section2_store):
        path = tmp_path / "campaign.jsonl"
        section2_store.save_jsonl(path)
        return path

    def test_headline_default(self, store_path, capsys):
        assert main(["report", str(store_path)]) == 0
        assert "Headline rates" in capsys.readouterr().out

    def test_multiple_artifacts(self, store_path, capsys):
        rc = main(
            ["report", str(store_path), "--artifact", "fig1", "table1", "table2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "Table I" in out and "Table II" in out

    def test_fig_series_artifacts(self, store_path, capsys):
        rc = main(
            ["report", str(store_path), "--artifact", "fig2", "fig3", "fig4", "fig5"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        for tag in ("Figure 2", "Figure 3", "Figure 4", "Figure 5"):
            assert tag in out

    def test_table3_with_client(self, tmp_path, section4_store, capsys):
        path = tmp_path / "s4.jsonl"
        section4_store.save_jsonl(path)
        rc = main(
            ["report", str(path), "--artifact", "fig6", "table3", "--client", "Duke"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out and "Duke" in out

    def test_missing_store(self, capsys):
        assert main(["report", "/nonexistent/path.jsonl"]) == 2
        assert "not found" in capsys.readouterr().err

    def test_empty_store(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["report", str(path)]) == 2


class TestFullReport:
    def test_all_artifact_on_section2(self, tmp_path, section2_store, capsys):
        path = tmp_path / "c.jsonl"
        section2_store.save_jsonl(path)
        assert main(["report", str(path), "--artifact", "all"]) == 0
        out = capsys.readouterr().out
        for tag in ("Headline rates", "Figure 1", "Table I", "Table II",
                    "Figure 3", "Figure 4", "Figure 5"):
            assert tag in out
        assert "Figure 6" not in out  # single-candidate campaign

    def test_all_artifact_on_section4(self, tmp_path, section4_store, capsys):
        path = tmp_path / "s4.jsonl"
        section4_store.save_jsonl(path)
        assert main(["report", str(path), "--artifact", "all"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert "Table III" in out

    def test_full_report_empty(self):
        from repro.analysis import full_report
        from repro.trace.store import TraceStore

        assert "empty" in full_report(TraceStore())


class TestFailuresCommand:
    def test_quick_run_writes_store_and_report(self, tmp_path, capsys):
        out = tmp_path / "failures.jsonl"
        rc = main(["failures", "--quick", "--out", str(out)])
        assert rc == 0
        assert out.exists()
        from repro.trace.records import FailureRecord
        from repro.trace.store import TraceStore

        store = TraceStore.load_jsonl(out)
        assert len(store) == 16  # 2 quick clients x 8 repetitions
        assert all(isinstance(r, FailureRecord) for r in store.records)
        modes = {r.failure_mode for r in store.records}
        assert modes == {"none", "link", "node", "both"}
        text = capsys.readouterr().out
        assert "Availability study" in text
        assert "availability:" in text

    def test_unknown_site_rejected(self, tmp_path, capsys):
        rc = main(
            ["failures", "--site", "AltaVista", "--out", str(tmp_path / "x.jsonl")]
        )
        assert rc == 2
        assert "unknown site" in capsys.readouterr().err

    def test_unknown_client_rejected(self, tmp_path, capsys):
        rc = main(
            [
                "failures",
                "--clients",
                "Narnia",
                "--out",
                str(tmp_path / "x.jsonl"),
            ]
        )
        assert rc == 2
        assert "unknown clients" in capsys.readouterr().err
