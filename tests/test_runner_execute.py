"""Executor tests: byte-identical parallelism, resume, retries, telemetry.

The parallel cases spawn real worker processes (the ``spawn`` context), so
the campaign here is deliberately tiny: 3 clients x 4 repetitions against
one site.  Byte identity is asserted on the serialised JSONL, the strongest
form of the determinism contract.
"""

import io

import pytest

from repro.runner import (
    CheckpointStore,
    ExecutionResult,
    ProgressReporter,
    UnitExecutionError,
    execute_plan,
    plan_section2,
    run_unit,
)
from repro.trace.store import TraceStore
from repro.workloads.experiment import STUDY_SESSION_CONFIG, run_paired_transfer

CLIENTS = ["Italy", "Sweden", "Taiwan"]
REPS = 4


@pytest.fixture(scope="module")
def plan(section2_scenario):
    return plan_section2(
        section2_scenario,
        repetitions=REPS,
        interval=360.0,
        config=STUDY_SESSION_CONFIG,
        sites=["eBay"],
        clients=CLIENTS,
    )


@pytest.fixture(scope="module")
def serial_result(plan, section2_scenario) -> ExecutionResult:
    return execute_plan(plan, jobs=1, scenario=section2_scenario)


def store_bytes(tmp_path, store: TraceStore, name: str) -> bytes:
    path = tmp_path / name
    store.save_jsonl(path)
    return path.read_bytes()


class TestSerialPath:
    def test_matches_direct_unit_execution(self, plan, section2_scenario, serial_result):
        expected = [
            run_paired_transfer(
                section2_scenario,
                study=u.study,
                client=u.client,
                site=u.site,
                repetition=u.repetition,
                start_time=u.start_time,
                offered=list(u.offered),
                config=plan.config,
            )
            for u in plan.units
        ]
        assert serial_result.store is not None
        assert serial_result.store.records == expected

    def test_summary_accounting(self, plan, serial_result):
        s = serial_result.summary
        assert s.total_units == len(plan)
        assert s.executed_units == len(plan)
        assert s.skipped_units == 0
        assert s.completed_units == len(plan)
        assert s.failed_attempts == 0
        assert s.jobs == 1
        assert s.fingerprint == plan.fingerprint()
        assert not s.interrupted


class TestParallelByteIdentity:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_jobs_n_matches_serial(self, tmp_path, plan, serial_result, jobs):
        result = execute_plan(plan, jobs=jobs)
        assert result.store is not None
        assert result.summary.jobs == jobs
        assert store_bytes(tmp_path, result.store, f"j{jobs}.jsonl") == store_bytes(
            tmp_path, serial_result.store, "j1.jsonl"
        )


class TestCheckpointAndResume:
    def test_interrupt_then_resume_is_identical(
        self, tmp_path, plan, section2_scenario, serial_result
    ):
        """Simulated kill after 5 units: the resumed run skips them and the
        final store is byte-identical to an uninterrupted serial run."""
        ckpt = tmp_path / "ck"
        finished = 0

        def dying_run_unit(scenario, config, unit):
            nonlocal finished
            if finished == 5:
                raise KeyboardInterrupt
            finished += 1
            return run_unit(scenario, config, unit)

        with pytest.raises(KeyboardInterrupt):
            execute_plan(
                plan,
                jobs=1,
                scenario=section2_scenario,
                checkpoint=ckpt,
                checkpoint_every=2,
                run_unit_fn=dying_run_unit,
            )
        durable = CheckpointStore.open_or_create(
            ckpt, plan, resume=True
        ).completed_units()
        assert sorted(durable) == list(range(5))  # close() flushed everything

        executed = []

        def tracking_run_unit(scenario, config, unit):
            executed.append(unit.index)
            return run_unit(scenario, config, unit)

        result = execute_plan(
            plan,
            jobs=1,
            scenario=section2_scenario,
            checkpoint=ckpt,
            resume=True,
            run_unit_fn=tracking_run_unit,
        )
        assert executed == list(range(5, len(plan)))  # no completed unit re-ran
        assert result.summary.skipped_units == 5
        assert result.summary.executed_units == len(plan) - 5
        assert result.store is not None
        assert store_bytes(tmp_path, result.store, "resumed.jsonl") == store_bytes(
            tmp_path, serial_result.store, "clean.jsonl"
        )

    def test_max_units_leaves_resumable_checkpoint(
        self, tmp_path, plan, section2_scenario, serial_result
    ):
        ckpt = tmp_path / "ck"
        partial = execute_plan(
            plan, jobs=1, scenario=section2_scenario, checkpoint=ckpt, max_units=7
        )
        assert partial.store is None  # deliberately incomplete
        assert partial.summary.executed_units == 7
        resumed = execute_plan(plan, jobs=2, checkpoint=ckpt, resume=True)
        assert resumed.summary.skipped_units == 7
        assert resumed.store is not None
        assert store_bytes(tmp_path, resumed.store, "resumed.jsonl") == store_bytes(
            tmp_path, serial_result.store, "clean.jsonl"
        )

    def test_summary_written_to_checkpoint(self, tmp_path, plan, section2_scenario):
        import json

        ckpt = tmp_path / "ck"
        execute_plan(
            plan, jobs=1, scenario=section2_scenario, checkpoint=ckpt, max_units=2
        )
        summary = json.loads((ckpt / "summary.json").read_text(encoding="utf-8"))
        assert summary["executed_units"] == 2
        assert summary["fingerprint"] == plan.fingerprint()


class TestRetries:
    def test_transient_fault_retried_then_identical(
        self, tmp_path, plan, section2_scenario, serial_result
    ):
        attempts = {}

        def flaky_run_unit(scenario, config, unit):
            attempts[unit.index] = attempts.get(unit.index, 0) + 1
            if unit.index == 3 and attempts[unit.index] == 1:
                raise RuntimeError("injected transient fault")
            return run_unit(scenario, config, unit)

        result = execute_plan(
            plan, jobs=1, scenario=section2_scenario, run_unit_fn=flaky_run_unit
        )
        assert attempts[3] == 2
        assert result.summary.failed_attempts == 1
        assert result.summary.retried_units == 1
        assert result.store is not None
        assert store_bytes(tmp_path, result.store, "flaky.jsonl") == store_bytes(
            tmp_path, serial_result.store, "clean.jsonl"
        )

    def test_persistent_fault_surfaces_structured_error(self, plan, section2_scenario):
        def broken_run_unit(scenario, config, unit):
            if unit.index == 3:
                raise RuntimeError("injected permanent fault")
            return run_unit(scenario, config, unit)

        with pytest.raises(UnitExecutionError) as excinfo:
            execute_plan(
                plan,
                jobs=1,
                scenario=section2_scenario,
                run_unit_fn=broken_run_unit,
                max_retries=2,
            )
        failure = excinfo.value.failure
        assert failure.unit_index == 3
        assert failure.unit_id == plan.units[3].unit_id
        assert failure.attempts == 3  # initial try + 2 retries
        assert "injected permanent fault" in failure.error
        assert "unit 3" in str(excinfo.value)


class TestArgumentValidation:
    def test_jobs_must_be_positive(self, plan):
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            execute_plan(plan, jobs=0)

    def test_run_unit_fn_is_inline_only(self, plan):
        with pytest.raises(ValueError, match="inline-only"):
            execute_plan(plan, jobs=2, run_unit_fn=lambda *a: None)

    def test_scenario_must_match_plan(self, plan, section4_scenario):
        with pytest.raises(ValueError, match="does not match the plan"):
            execute_plan(plan, jobs=1, scenario=section4_scenario)


class TestProgressTelemetry:
    def test_executor_emits_progress(self, plan, section2_scenario):
        ticks = iter(float(i) for i in range(10_000))
        stream = io.StringIO()
        execute_plan(
            plan,
            jobs=1,
            scenario=section2_scenario,
            progress=True,
            progress_stream=stream,
            clock=lambda: next(ticks),
        )
        out = stream.getvalue()
        assert f"{len(plan)}/{len(plan)} units (100%)" in out
        assert "units/s" in out and "eta" in out

    def test_reporter_reports_failures_and_resume(self):
        ticks = iter(float(i) for i in range(100))
        stream = io.StringIO()
        reporter = ProgressReporter(
            total=4, skipped=2, clock=lambda: next(ticks), stream=stream, label="t"
        )
        reporter.start()
        reporter.attempt_failed("worker-0", unit_index=2, retrying=True)
        reporter.unit_finished("worker-0")
        reporter.unit_finished("worker-0")
        reporter.finish()
        out = stream.getvalue()
        assert "resuming: 2/4 units" in out
        assert "unit 2 failed on worker-0" in out and "retrying" in out
        assert "4/4 units (100%)" in out
        assert reporter.worker_failures == {"worker-0": 1}

    def test_reporter_deltas_against_shared_observer(self):
        # A process-global observer outlives one campaign: a second reporter
        # over the same registry must report only its own campaign's units.
        from repro.obs.core import Observer

        obs = Observer()
        stream = io.StringIO()
        first = ProgressReporter(
            total=2, clock=lambda: 0.0, stream=stream, observer=obs
        )
        first.unit_finished("inline")
        first.attempt_failed("worker-0", unit_index=0, retrying=True)
        assert first.done == 1 and first.failed_attempts == 1
        second = ProgressReporter(
            total=2, clock=lambda: 0.0, stream=stream, observer=obs
        )
        assert second.done == 0
        assert second.failed_attempts == 0
        assert second.worker_failures == {}
        second.unit_finished("inline")
        assert second.done == 1
        assert obs.counter("runner.units_done") == 2.0

    def test_disabled_reporter_is_silent(self):
        stream = io.StringIO()
        reporter = ProgressReporter(
            total=2, clock=lambda: 0.0, stream=stream, enabled=False
        )
        reporter.start()
        reporter.unit_finished("inline")
        reporter.finish()
        assert stream.getvalue() == ""
