"""Scenario assembly tests."""

import pytest

from repro.core.session import SessionConfig
from repro.net.topology import wan_link_name
from repro.util.units import HOUR, mb
from repro.workloads.profiles import ThroughputClass
from repro.workloads.scenario import Scenario, ScenarioSpec


class TestSpecs:
    def test_section2_shape(self):
        spec = ScenarioSpec.section2()
        assert len(spec.clients) == 22
        assert len(spec.relays) == 21
        assert spec.sites == ("eBay", "Google", "Microsoft", "Yahoo")
        assert spec.file_bytes >= mb(2)  # paper: files not smaller than 2 MB

    def test_section4_shape(self):
        spec = ScenarioSpec.section4()
        assert [c.name for c in spec.clients] == ["Duke", "Italy", "Sweden"]
        assert len(spec.relays) == 35
        assert spec.sites == ("eBay",)

    def test_section4_forced_classes_low_or_medium(self):
        spec = ScenarioSpec.section4()
        for cls in spec.forced_classes.values():
            assert cls in (ThroughputClass.LOW, ThroughputClass.MEDIUM)

    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioSpec.section2(sites=())
        with pytest.raises(ValueError):
            ScenarioSpec.section2(horizon=-1.0)
        with pytest.raises(ValueError, match="without profiles"):
            ScenarioSpec.section2(sites=("AltaVista",))


class TestBuild:
    def test_build_section2(self, section2_scenario):
        sc = section2_scenario
        assert len(sc.client_names) == 22
        assert len(sc.relay_names) == 21
        assert sc.site_names == ["eBay"]
        sc.topology.validate()

    def test_all_wan_segments_present(self, section2_scenario):
        sc = section2_scenario
        for client in sc.client_names:
            assert sc.topology.has_wan_link("eBay", client)
            for relay in sc.relay_names:
                assert sc.topology.has_wan_link(relay, client)
        for relay in sc.relay_names:
            assert sc.topology.has_wan_link("eBay", relay)

    def test_resource_published_everywhere(self, section2_scenario):
        sc = section2_scenario
        for server in sc.servers.values():
            assert server.resource_size(sc.resource) == int(sc.spec.file_bytes)

    def test_profiles_for_every_client(self, section2_scenario):
        assert set(section2_scenario.profiles) == set(section2_scenario.client_names)

    def test_deterministic_build(self):
        spec = ScenarioSpec.section2(sites=("eBay",))
        a = Scenario.build(spec, seed=5)
        b = Scenario.build(spec, seed=5)
        assert a.profiles == b.profiles
        link = wan_link_name("eBay", "Italy")
        assert a.topology.link(link).trace == b.topology.link(link).trace

    def test_seed_changes_build(self):
        spec = ScenarioSpec.section2(sites=("eBay",))
        a = Scenario.build(spec, seed=5)
        b = Scenario.build(spec, seed=6)
        link = wan_link_name("eBay", "Italy")
        assert a.topology.link(link).trace != b.topology.link(link).trace

    def test_section4_forced_classes_applied(self, section4_scenario):
        assert (
            section4_scenario.profiles["Sweden"].throughput_class
            is ThroughputClass.LOW
        )
        assert (
            section4_scenario.profiles["Duke"].throughput_class
            is ThroughputClass.MEDIUM
        )


class TestUniverse:
    def test_universe_time(self, section2_scenario):
        u = section2_scenario.universe(100.0)
        assert u.sim.now == 100.0

    def test_negative_start_rejected(self, section2_scenario):
        with pytest.raises(ValueError):
            section2_scenario.universe(-1.0)

    def test_same_start_same_conditions(self, section2_scenario):
        sc = section2_scenario
        u1 = sc.universe(1000.0)
        u2 = sc.universe(1000.0)
        r1 = u1.session.download_direct("Italy", "eBay", sc.resource)
        r2 = u2.session.download_direct("Italy", "eBay", sc.resource)
        assert r1.transfer_throughput == r2.transfer_throughput

    def test_noise_labels_seed_session(self, section4_scenario):
        cfg = SessionConfig(probe_noise_sigma=0.2)
        u = section4_scenario.universe(0.0, config=cfg, noise_labels=("t", 1))
        assert u.session is not None  # rng wired without error


class TestStaticRelayChoice:
    def test_good_static_relay_is_good(self, section2_scenario):
        sc = section2_scenario
        relay = sc.good_static_relay("Italy", rank=2)
        best = sc.good_static_relay("Italy", rank=0)
        caps = {
            r: sc.mean_overlay_capacity("Italy", r) for r in sc.relay_names
        }
        ranked = sorted(caps, key=caps.get, reverse=True)
        assert best == ranked[0]
        assert relay == ranked[2]

    def test_rank_clamped(self, section2_scenario):
        sc = section2_scenario
        assert sc.good_static_relay("Italy", rank=10_000) == sorted(
            sc.relay_names,
            key=lambda r: sc.mean_overlay_capacity("Italy", r),
            reverse=True,
        )[-1]
