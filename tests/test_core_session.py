"""Transfer session tests: the full probe -> decide -> fetch flow."""

import numpy as np
import pytest

from repro.core.probe import ProbeMode
from repro.core.session import SessionConfig, TransferSession
from repro.util.units import kb, mb, mbps_to_bytes_per_s


class TestDirectOnly:
    def test_download_direct(self, mini_world):
        w = mini_world(direct_mbps=1.0, file_mb=1.0)
        sim, net, session = w.universe()
        res = session.download_direct("C", "S", "/f")
        assert res.selected_via is None
        assert not res.used_indirect
        assert res.probe is None
        assert res.size == mb(1)
        assert res.duration > 0

    def test_empty_relays_degenerates_to_direct(self, mini_world):
        w = mini_world()
        sim, net, session = w.universe()
        res = session.download("C", "S", "/f", [])
        assert res.probe is None
        assert res.selected_via is None

    def test_end_to_end_equals_transfer_without_probe(self, mini_world):
        w = mini_world()
        sim, net, session = w.universe()
        res = session.download_direct("C", "S", "/f")
        assert res.transfer_throughput == res.end_to_end_throughput
        assert res.probe_overhead_seconds == 0.0


class TestSelection:
    def test_selects_better_relay(self, mini_world, fast_tcp):
        w = mini_world(direct_mbps=1.0, relay_mbps={"R1": 4.0})
        sim, net, session = w.universe(config=SessionConfig(tcp=fast_tcp))
        res = session.download("C", "S", "/f", ["R1"])
        assert res.selected_via == "R1"
        assert res.used_indirect
        assert res.offered == ("R1",)

    def test_sticks_with_direct_when_better(self, mini_world, fast_tcp):
        w = mini_world(direct_mbps=4.0, relay_mbps={"R1": 1.0})
        sim, net, session = w.universe(config=SessionConfig(tcp=fast_tcp))
        res = session.download("C", "S", "/f", ["R1"])
        assert res.selected_via is None

    def test_probe_overhead_recorded(self, mini_world):
        w = mini_world()
        sim, net, session = w.universe()
        res = session.download("C", "S", "/f", ["R1"])
        assert res.probe is not None
        assert res.probe_overhead_seconds == pytest.approx(
            res.probe.overhead_seconds
        )

    def test_completion_time_is_session_end(self, mini_world):
        w = mini_world()
        sim, net, session = w.universe()
        res = session.download("C", "S", "/f", ["R1"])
        assert res.completed_at == sim.now
        assert res.remainder_started_at is not None
        assert res.requested_at <= res.remainder_started_at <= res.completed_at

    def test_improvement_vs_control_positive_for_good_relay(self, mini_world, fast_tcp):
        w = mini_world(direct_mbps=1.0, relay_mbps={"R1": 3.0}, file_mb=4.0)
        cfg = SessionConfig(tcp=fast_tcp)
        _, _, ctrl = w.universe(config=cfg)
        direct = ctrl.download_direct("C", "S", "/f")
        _, _, sel = w.universe(config=cfg)
        chosen = sel.download("C", "S", "/f", ["R1"])
        improvement = (
            chosen.transfer_throughput - direct.transfer_throughput
        ) / direct.transfer_throughput
        assert improvement > 1.0  # ~3x capacity -> ~200%


class TestProbeCoversFile:
    def test_no_remainder_phase(self, mini_world):
        w = mini_world(file_mb=0.05)  # 50 KB < 100 KB probe
        sim, net, session = w.universe()
        res = session.download("C", "S", "/f", ["R1"])
        assert res.remainder_started_at is None
        assert res.transfer_throughput == res.end_to_end_throughput

    def test_bytes_accounted(self, mini_world):
        w = mini_world(file_mb=0.05)
        sim, net, session = w.universe()
        res = session.download("C", "S", "/f", ["R1"])
        assert res.size == pytest.approx(kb(50))


class TestThroughputAccounting:
    def test_transfer_throughput_excludes_probe(self, mini_world, fast_tcp):
        w = mini_world(direct_mbps=2.0, file_mb=4.0)
        sim, net, session = w.universe(config=SessionConfig(tcp=fast_tcp))
        res = session.download("C", "S", "/f", ["R1"])
        # Bulk-phase throughput should be at least the end-to-end number
        # (which pays for the probe phase as well).
        assert res.transfer_throughput >= res.end_to_end_throughput

    def test_bulk_rate_close_to_bottleneck(self, mini_world, fast_tcp):
        w = mini_world(direct_mbps=2.0, relay_mbps={"R1": 0.1}, file_mb=4.0)
        sim, net, session = w.universe(config=SessionConfig(tcp=fast_tcp))
        res = session.download("C", "S", "/f", ["R1"])
        assert res.selected_via is None
        assert res.transfer_throughput == pytest.approx(
            mbps_to_bytes_per_s(2.0), rel=0.1
        )


class TestSequentialConfig:
    def test_sequential_mode_selects_max(self, mini_world, fast_tcp):
        w = mini_world(direct_mbps=1.0, relay_mbps={"R1": 2.0, "R2": 6.0})
        cfg = SessionConfig(probe_mode=ProbeMode.SEQUENTIAL, tcp=fast_tcp)
        sim, net, session = w.universe(config=cfg)
        res = session.download("C", "S", "/f", ["R1", "R2"])
        assert res.selected_via == "R2"

    def test_noise_config_requires_rng(self, mini_world):
        w = mini_world()
        cfg = SessionConfig(probe_noise_sigma=0.1)
        with pytest.raises(ValueError, match="rng"):
            w.universe(config=cfg)

    def test_noise_config_with_rng(self, mini_world):
        w = mini_world()
        cfg = SessionConfig(
            probe_mode=ProbeMode.SEQUENTIAL, probe_noise_sigma=0.1
        )
        sim, net, session = w.universe(config=cfg, rng=np.random.default_rng(0))
        res = session.download("C", "S", "/f", ["R1"])
        assert res.selected_via in (None, "R1")


class TestConfigValidation:
    def test_bad_probe_bytes(self):
        with pytest.raises(ValueError):
            SessionConfig(probe_bytes=0)

    def test_bad_noise(self):
        with pytest.raises(ValueError):
            SessionConfig(probe_noise_sigma=-0.5)
