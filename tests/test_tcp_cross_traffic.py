"""Cross-traffic source tests."""

import numpy as np
import pytest

from repro.net.link import Link
from repro.net.route import Route
from repro.net.trace import CapacityTrace
from repro.sim.simulator import Simulator
from repro.tcp.cross_traffic import CrossTrafficConfig, CrossTrafficSource
from repro.tcp.fluid import FluidNetwork


def make_route(cap=1e6, name="bg"):
    return Route([Link(name, "s", "c", CapacityTrace.constant(cap))])


class TestConfig:
    def test_mean_size_respected(self):
        cfg = CrossTrafficConfig(arrival_rate=1.0, mean_size=50_000.0, sigma=1.0)
        rng = np.random.default_rng(0)
        sizes = [cfg.sample_size(rng) for _ in range(4000)]
        assert np.mean(sizes) == pytest.approx(50_000.0, rel=0.2)

    def test_gap_mean(self):
        cfg = CrossTrafficConfig(arrival_rate=2.0)
        rng = np.random.default_rng(1)
        gaps = [cfg.sample_gap(rng) for _ in range(4000)]
        assert np.mean(gaps) == pytest.approx(0.5, rel=0.1)

    def test_sizes_at_least_one(self):
        cfg = CrossTrafficConfig(arrival_rate=1.0, mean_size=2.0, sigma=3.0)
        rng = np.random.default_rng(2)
        assert min(cfg.sample_size(rng) for _ in range(1000)) >= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CrossTrafficConfig(arrival_rate=0.0)
        with pytest.raises(ValueError):
            CrossTrafficConfig(arrival_rate=1.0, mean_size=-1.0)


class TestSource:
    def test_generates_until_horizon(self):
        sim = Simulator()
        net = FluidNetwork(sim)
        src = CrossTrafficSource(
            net,
            [make_route()],
            CrossTrafficConfig(arrival_rate=5.0, mean_size=1000.0),
            np.random.default_rng(3),
            horizon=10.0,
        )
        src.start()
        sim.run()
        assert src.flows_started == pytest.approx(50, abs=25)
        assert all(f.done for f in src.flows)

    def test_requires_routes(self):
        sim = Simulator()
        net = FluidNetwork(sim)
        with pytest.raises(ValueError):
            CrossTrafficSource(
                net, [], CrossTrafficConfig(arrival_rate=1.0), np.random.default_rng(0)
            )

    def test_background_load_slows_foreground_flow(self):
        route = make_route(cap=100_000.0)
        # Baseline: alone.
        sim = Simulator()
        net = FluidNetwork(sim)
        f = net.start_flow(route, 200_000.0, activation_delay=0.0)
        net.run_to_completion(f)
        alone = f.duration()

        # With heavy cross traffic on the same link.
        sim2 = Simulator()
        net2 = FluidNetwork(sim2)
        src = CrossTrafficSource(
            net2,
            [make_route(cap=100_000.0)],  # same link name -> same link object? no:
            CrossTrafficConfig(arrival_rate=20.0, mean_size=50_000.0),
            np.random.default_rng(4),
            horizon=60.0,
        )
        # Use the same Route object so contention actually happens.
        src._routes = [route]
        src.start()
        f2 = net2.start_flow(route, 200_000.0, activation_delay=0.0)
        net2.run_to_completion(f2)
        assert f2.duration() > alone * 1.2

    def test_deterministic_given_seed(self):
        def run(seed):
            sim = Simulator()
            net = FluidNetwork(sim)
            src = CrossTrafficSource(
                net,
                [make_route()],
                CrossTrafficConfig(arrival_rate=3.0),
                np.random.default_rng(seed),
                horizon=20.0,
            )
            src.start()
            sim.run()
            return src.flows_started

        assert run(9) == run(9)
