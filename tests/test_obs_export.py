"""repro.obs.export tests: JSONL round-trip, merge, Chrome trace, Prometheus."""

import json

import pytest

from repro.obs.core import Histogram, Observer
from repro.obs.export import ObsTrace, validate_chrome_trace


def make_observer(track="main", offset=0.0):
    obs = Observer(track=track)
    obs.count("engine.ticks", 3.0)
    obs.gauge("sim.queue_depth", 4.0)
    obs.observe_value("runner.queue_wait_seconds", 0.25)
    obs.span("tick", "fluid-epoch", offset + 0.0, offset + 1.0, flows=2)
    obs.span("probe", "probe:direct", offset + 0.5, offset + 1.5)
    obs.event("probe", "selection", offset + 1.5, winner="direct")
    return obs


class TestJsonlRoundTrip:
    def test_save_load_preserves_everything(self, tmp_path):
        trace = ObsTrace.from_observer(make_observer())
        path = tmp_path / "t.obs.jsonl"
        trace.save_jsonl(str(path))
        loaded = ObsTrace.load_jsonl(str(path))
        assert loaded.counters == trace.counters
        assert loaded.gauges == trace.gauges
        assert [r.to_dict() for r in loaded.records] == [
            r.to_dict() for r in trace.records
        ]
        assert (
            loaded.histograms["runner.queue_wait_seconds"].to_dict()
            == trace.histograms["runner.queue_wait_seconds"].to_dict()
        )

    def test_save_is_byte_stable(self, tmp_path):
        trace = ObsTrace.from_observer(make_observer())
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        trace.save_jsonl(str(a))
        trace.save_jsonl(str(b))
        assert a.read_bytes() == b.read_bytes()

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "t.obs.jsonl"
        ObsTrace.from_observer(make_observer()).save_jsonl(str(path))
        text = path.read_text()
        path.write_text(text + '{"type": "span", "cat": "ti')  # killed worker
        loaded = ObsTrace.load_jsonl(str(path))
        assert len(loaded.records) == 3

    def test_corrupt_mid_file_raises(self, tmp_path):
        path = tmp_path / "t.obs.jsonl"
        ObsTrace.from_observer(make_observer()).save_jsonl(str(path))
        lines = path.read_text().splitlines()
        lines[1] = "{garbage"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError):
            ObsTrace.load_jsonl(str(path))

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ObsTrace.load_jsonl(str(tmp_path / "absent.jsonl"))


class TestMerge:
    def test_merge_shards(self):
        a = ObsTrace.from_observer(make_observer(track="worker-0"))
        b = ObsTrace.from_observer(make_observer(track="worker-1", offset=10.0))
        merged = ObsTrace.merge([a, b])
        assert merged.counters["engine.ticks"] == 6.0
        assert merged.histograms["runner.queue_wait_seconds"].total == 2
        assert len(merged.records) == 6
        # Records come out globally ordered by (start, track, seq).
        starts = [r.start for r in merged.records]
        assert starts == sorted(starts)

    def test_merge_gauges_keep_max(self):
        a = Observer()
        b = Observer()
        a.gauge("sim.queue_high_water", 7.0)
        b.gauge("sim.queue_high_water", 3.0)
        merged = ObsTrace.merge(
            [ObsTrace.from_observer(a), ObsTrace.from_observer(b)]
        )
        assert merged.gauges["sim.queue_high_water"] == 7.0


class TestChromeTrace:
    def test_valid_and_loads_as_json(self):
        merged = ObsTrace.merge(
            [
                ObsTrace.from_observer(make_observer(track="worker-0")),
                ObsTrace.from_observer(make_observer(track="worker-1", offset=5.0)),
            ]
        )
        data = merged.to_chrome()
        assert validate_chrome_trace(data) == []
        again = json.loads(json.dumps(data))
        events = again["traceEvents"]
        # One metadata record per track, stable tid assignment.
        meta = [e for e in events if e["ph"] == "M"]
        assert [m["args"]["name"] for m in meta] == ["worker-0", "worker-1"]
        assert [m["tid"] for m in meta] == [1, 2]
        spans = [e for e in events if e["ph"] == "X"]
        assert all("ts" in s and "dur" in s for s in spans)
        # Sim-seconds become microseconds.
        first = min(spans, key=lambda s: s["ts"])
        assert first["ts"] == 0.0 and first["dur"] == 1_000_000.0
        instants = [e for e in events if e["ph"] == "i"]
        assert all(e["s"] == "t" for e in instants)

    def test_validator_rejects_malformed(self):
        assert validate_chrome_trace({"no": "traceEvents"})
        assert validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
        assert validate_chrome_trace(
            {"traceEvents": [{"ph": "Z", "pid": 1, "tid": 1, "name": "x"}]}
        )
        # A complete span without ts/dur is semantically invalid.
        assert validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "pid": 1, "tid": 1, "name": "x"}]}
        )


class TestPrometheus:
    def test_text_format(self):
        text = ObsTrace.from_observer(make_observer()).to_prometheus()
        assert "# TYPE repro_engine_ticks counter" in text
        assert "repro_engine_ticks 3" in text
        assert "# TYPE repro_sim_queue_depth gauge" in text
        assert "# TYPE repro_runner_queue_wait_seconds histogram" in text
        assert 'repro_runner_queue_wait_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_runner_queue_wait_seconds_count 1" in text


class TestSummarize:
    def test_mentions_spans_counters_histograms(self):
        text = ObsTrace.from_observer(make_observer()).summarize()
        assert "3 records" in text
        assert "tick" in text and "probe" in text
        assert "engine.ticks" in text
        assert "runner.queue_wait_seconds" in text

    def test_empty_trace(self):
        text = ObsTrace.from_observer(Observer()).summarize()
        assert "0 records" in text


class TestMergeTieBreak:
    def test_equal_sort_keys_keep_shard_order(self):
        # Two shards on the *same* track emit records with identical
        # (start, track, seq): the stable sort must preserve the order the
        # shards were merged in.
        a, b = Observer(), Observer()
        a.span("tick", "from-shard-a", 1.0, 2.0)
        b.span("tick", "from-shard-b", 1.0, 2.0)
        ta, tb = ObsTrace.from_observer(a), ObsTrace.from_observer(b)
        assert ta.records[0].sort_key == tb.records[0].sort_key
        merged = ObsTrace.merge([ta, tb])
        assert [r.name for r in merged.records] == ["from-shard-a", "from-shard-b"]
        flipped = ObsTrace.merge([tb, ta])
        assert [r.name for r in flipped.records] == ["from-shard-b", "from-shard-a"]

    def test_distinct_tracks_order_by_track_on_time_tie(self):
        a = Observer(track="worker-1")
        b = Observer(track="worker-0")
        a.span("tick", "x", 1.0, 2.0)
        b.span("tick", "x", 1.0, 2.0)
        merged = ObsTrace.merge(
            [ObsTrace.from_observer(a), ObsTrace.from_observer(b)]
        )
        assert [r.track for r in merged.records] == ["worker-0", "worker-1"]


class TestHistogramQuantileEdges:
    def _hist(self, *samples):
        h = Histogram([1.0, 10.0, 100.0])
        for s in samples:
            h.observe(s)
        return h

    def test_empty_histogram_quantile_is_zero(self):
        h = self._hist()
        assert h.quantile(0.0) == 0.0
        assert h.quantile(0.5) == 0.0
        assert h.quantile(1.0) == 0.0

    def test_q0_and_q1_edges(self):
        h = self._hist(0.5, 5.0, 50.0)
        # q=0 is the first bucket's upper edge, clamped up to the min...
        assert h.quantile(0.0) == 1.0
        # ...and q=1 is the last occupied edge, clamped down to the max.
        assert h.quantile(1.0) == 50.0

    def test_q0_clamps_up_to_observed_min(self):
        h = self._hist(5.0, 50.0)  # first bucket (<= 1.0) is empty
        assert h.quantile(0.0) == 5.0

    def test_single_sample_all_quantiles_collapse(self):
        h = self._hist(7.0)
        assert h.quantile(0.0) == h.quantile(0.5) == h.quantile(1.0) == 7.0

    def test_quantile_clamped_to_observed_range(self):
        # Bucket-edge estimates can exceed the true extremes; the clamp to
        # [min, max] keeps them honest.
        h = self._hist(2.0, 3.0)
        for q in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert 2.0 <= h.quantile(q) <= 3.0

    def test_out_of_range_q_rejected(self):
        h = self._hist(1.0)
        with pytest.raises(ValueError):
            h.quantile(-0.1)
        with pytest.raises(ValueError):
            h.quantile(1.1)


class TestPrometheusParseBack:
    def test_round_trip_is_byte_identical(self):
        trace = ObsTrace.from_observer(make_observer())
        text = trace.to_prometheus()
        back = ObsTrace.from_prometheus(text)
        # Exposition names are sanitised (dots become underscores), so the
        # guarantee is byte-identical *re-export*, not identical keys.
        assert back.to_prometheus() == text
        assert back.counters == {"engine_ticks": 3.0}
        assert back.gauges == {"sim_queue_depth": 4.0}
        hist = back.histograms["runner_queue_wait_seconds"]
        assert hist.total == 1
        assert hist.sum == 0.25

    def test_decumulates_bucket_counts(self):
        obs = Observer()
        for v in (0.5, 5.0, 5.0, 50.0):
            obs.observe_value("session.duration", v)
        back = ObsTrace.from_prometheus(ObsTrace.from_observer(obs).to_prometheus())
        orig = obs.histograms["session.duration"]
        assert back.histograms["session_duration"].counts == orig.counts

    def test_garbage_line_raises(self):
        with pytest.raises(ValueError):
            ObsTrace.from_prometheus("repro_x{bad\n")

    def test_decreasing_cumulative_counts_raise(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            'repro_h_bucket{le="+Inf"} 3\n'
            "repro_h_sum 1.0\n"
            "repro_h_count 3\n"
        )
        with pytest.raises(ValueError):
            ObsTrace.from_prometheus(text)

    def test_count_mismatch_raises(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 1\n'
            'repro_h_bucket{le="+Inf"} 2\n'
            "repro_h_sum 1.0\n"
            "repro_h_count 9\n"
        )
        with pytest.raises(ValueError):
            ObsTrace.from_prometheus(text)
