"""repro.obs.export tests: JSONL round-trip, merge, Chrome trace, Prometheus."""

import json

import pytest

from repro.obs.core import Observer
from repro.obs.export import ObsTrace, validate_chrome_trace


def make_observer(track="main", offset=0.0):
    obs = Observer(track=track)
    obs.count("engine.ticks", 3.0)
    obs.gauge("sim.queue_depth", 4.0)
    obs.observe_value("runner.queue_wait_seconds", 0.25)
    obs.span("tick", "fluid-epoch", offset + 0.0, offset + 1.0, flows=2)
    obs.span("probe", "probe:direct", offset + 0.5, offset + 1.5)
    obs.event("probe", "selection", offset + 1.5, winner="direct")
    return obs


class TestJsonlRoundTrip:
    def test_save_load_preserves_everything(self, tmp_path):
        trace = ObsTrace.from_observer(make_observer())
        path = tmp_path / "t.obs.jsonl"
        trace.save_jsonl(str(path))
        loaded = ObsTrace.load_jsonl(str(path))
        assert loaded.counters == trace.counters
        assert loaded.gauges == trace.gauges
        assert [r.to_dict() for r in loaded.records] == [
            r.to_dict() for r in trace.records
        ]
        assert (
            loaded.histograms["runner.queue_wait_seconds"].to_dict()
            == trace.histograms["runner.queue_wait_seconds"].to_dict()
        )

    def test_save_is_byte_stable(self, tmp_path):
        trace = ObsTrace.from_observer(make_observer())
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        trace.save_jsonl(str(a))
        trace.save_jsonl(str(b))
        assert a.read_bytes() == b.read_bytes()

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "t.obs.jsonl"
        ObsTrace.from_observer(make_observer()).save_jsonl(str(path))
        text = path.read_text()
        path.write_text(text + '{"type": "span", "cat": "ti')  # killed worker
        loaded = ObsTrace.load_jsonl(str(path))
        assert len(loaded.records) == 3

    def test_corrupt_mid_file_raises(self, tmp_path):
        path = tmp_path / "t.obs.jsonl"
        ObsTrace.from_observer(make_observer()).save_jsonl(str(path))
        lines = path.read_text().splitlines()
        lines[1] = "{garbage"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError):
            ObsTrace.load_jsonl(str(path))

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ObsTrace.load_jsonl(str(tmp_path / "absent.jsonl"))


class TestMerge:
    def test_merge_shards(self):
        a = ObsTrace.from_observer(make_observer(track="worker-0"))
        b = ObsTrace.from_observer(make_observer(track="worker-1", offset=10.0))
        merged = ObsTrace.merge([a, b])
        assert merged.counters["engine.ticks"] == 6.0
        assert merged.histograms["runner.queue_wait_seconds"].total == 2
        assert len(merged.records) == 6
        # Records come out globally ordered by (start, track, seq).
        starts = [r.start for r in merged.records]
        assert starts == sorted(starts)

    def test_merge_gauges_keep_max(self):
        a = Observer()
        b = Observer()
        a.gauge("sim.queue_high_water", 7.0)
        b.gauge("sim.queue_high_water", 3.0)
        merged = ObsTrace.merge(
            [ObsTrace.from_observer(a), ObsTrace.from_observer(b)]
        )
        assert merged.gauges["sim.queue_high_water"] == 7.0


class TestChromeTrace:
    def test_valid_and_loads_as_json(self):
        merged = ObsTrace.merge(
            [
                ObsTrace.from_observer(make_observer(track="worker-0")),
                ObsTrace.from_observer(make_observer(track="worker-1", offset=5.0)),
            ]
        )
        data = merged.to_chrome()
        assert validate_chrome_trace(data) == []
        again = json.loads(json.dumps(data))
        events = again["traceEvents"]
        # One metadata record per track, stable tid assignment.
        meta = [e for e in events if e["ph"] == "M"]
        assert [m["args"]["name"] for m in meta] == ["worker-0", "worker-1"]
        assert [m["tid"] for m in meta] == [1, 2]
        spans = [e for e in events if e["ph"] == "X"]
        assert all("ts" in s and "dur" in s for s in spans)
        # Sim-seconds become microseconds.
        first = min(spans, key=lambda s: s["ts"])
        assert first["ts"] == 0.0 and first["dur"] == 1_000_000.0
        instants = [e for e in events if e["ph"] == "i"]
        assert all(e["s"] == "t" for e in instants)

    def test_validator_rejects_malformed(self):
        assert validate_chrome_trace({"no": "traceEvents"})
        assert validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
        assert validate_chrome_trace(
            {"traceEvents": [{"ph": "Z", "pid": 1, "tid": 1, "name": "x"}]}
        )
        # A complete span without ts/dur is semantically invalid.
        assert validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "pid": 1, "tid": 1, "name": "x"}]}
        )


class TestPrometheus:
    def test_text_format(self):
        text = ObsTrace.from_observer(make_observer()).to_prometheus()
        assert "# TYPE repro_engine_ticks counter" in text
        assert "repro_engine_ticks 3" in text
        assert "# TYPE repro_sim_queue_depth gauge" in text
        assert "# TYPE repro_runner_queue_wait_seconds histogram" in text
        assert 'repro_runner_queue_wait_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_runner_queue_wait_seconds_count 1" in text


class TestSummarize:
    def test_mentions_spans_counters_histograms(self):
        text = ObsTrace.from_observer(make_observer()).summarize()
        assert "3 records" in text
        assert "tick" in text and "probe" in text
        assert "engine.ticks" in text
        assert "runner.queue_wait_seconds" in text

    def test_empty_trace(self):
        text = ObsTrace.from_observer(Observer()).summarize()
        assert "0 records" in text
