"""Validation helper tests."""

import numpy as np
import pytest

from repro.util.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_same_length,
    check_sorted,
    optional_positive,
    require,
)


class TestScalarChecks:
    def test_check_positive_passes(self):
        assert check_positive(1.5, "x") == 1.5

    def test_check_positive_zero_fails(self):
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive(0.0, "x")

    def test_check_non_negative(self):
        assert check_non_negative(0.0, "x") == 0.0
        with pytest.raises(ValueError):
            check_non_negative(-0.1, "x")

    def test_check_in_range_inclusive(self):
        assert check_in_range(1.0, "x", 0.0, 1.0) == 1.0

    def test_check_in_range_exclusive(self):
        with pytest.raises(ValueError, match=r"\(0.0, 1.0\)"):
            check_in_range(1.0, "x", 0.0, 1.0, inclusive=False)

    def test_check_probability(self):
        assert check_probability(0.5, "p") == 0.5
        with pytest.raises(ValueError):
            check_probability(1.5, "p")

    def test_casts_to_float(self):
        assert isinstance(check_positive(3, "x"), float)


class TestRequire:
    def test_passes(self):
        require(True, "nope")

    def test_fails(self):
        with pytest.raises(ValueError, match="nope"):
            require(False, "nope")


class TestSequences:
    def test_check_sorted_ok(self):
        arr = check_sorted([1.0, 1.0, 2.0], "t")
        assert isinstance(arr, np.ndarray)

    def test_check_sorted_fails(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            check_sorted([2.0, 1.0], "t")

    def test_check_sorted_rejects_2d(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            check_sorted(np.zeros((2, 2)), "t")

    def test_check_same_length(self):
        check_same_length([1], [2], "a", "b")
        with pytest.raises(ValueError, match="same length"):
            check_same_length([1], [2, 3], "a", "b")

    def test_optional_positive(self):
        assert optional_positive(None, "x") is None
        assert optional_positive(2.0, "x") == 2.0
        with pytest.raises(ValueError):
            optional_positive(-1.0, "x")
