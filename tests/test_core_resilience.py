"""Resilience primitive tests: events, config, watchdog, deadline helpers."""

import math

import pytest

from repro.core.resilience import (
    RECOVERY_EVENT_KINDS,
    RecoveryEvent,
    ResilienceConfig,
    SessionOutcome,
    StallWatchdog,
    advance_until_done,
    recovery_time_of,
)
from repro.http.messages import HttpRequest
from repro.http.transfer import issue_download
from repro.net.trace import CapacityTrace
from repro.util.units import mbps_to_bytes_per_s


def _start_direct(world, net, tcp):
    """Issue a full-file download over the world's direct path."""
    path = world.builder.direct("C", "S")
    request = HttpRequest(host="S", path="/f")
    return issue_download(
        net, path.route, path.server, request, proxy=path.proxy, tcp=tcp, name="t"
    )


class TestRecoveryEvent:
    def test_round_trip(self):
        e = RecoveryEvent(time=3.5, kind="stall", path="R1", bytes_received=1e5, detail=4.0)
        assert RecoveryEvent.from_dict(e.to_dict()) == e

    def test_all_kinds_valid(self):
        for kind in RECOVERY_EVENT_KINDS:
            RecoveryEvent(time=0.0, kind=kind, path="", bytes_received=0.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown recovery event kind"):
            RecoveryEvent(time=0.0, kind="panic", path="", bytes_received=0.0)


class TestSessionOutcome:
    def test_wire_values(self):
        assert SessionOutcome.COMPLETED.value == "completed"
        assert SessionOutcome.FAILED_OVER.value == "failed_over"
        assert SessionOutcome.ABORTED.value == "aborted"


class TestResilienceConfig:
    def test_defaults_are_legacy(self):
        cfg = ResilienceConfig()
        assert cfg.probe_deadline is None
        assert not cfg.failover
        assert cfg.transfer_deadline is None

    def test_backoff_is_deterministic_exponential(self):
        cfg = ResilienceConfig(backoff_base=2.0, backoff_factor=2.0)
        assert [cfg.backoff_wait(k) for k in range(3)] == [2.0, 4.0, 8.0]
        with pytest.raises(ValueError):
            cfg.backoff_wait(-1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"probe_deadline": 0.0},
            {"stall_threshold": 1.5},
            {"check_interval": 0.0},
            {"grace_period": -1.0},
            {"max_failovers": -1},
            {"max_reprobes": -1},
            {"backoff_base": 0.0},
            {"backoff_factor": 0.5},
            {"transfer_deadline": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ResilienceConfig(**kwargs)


class TestRecoveryTimeOf:
    def _ev(self, t, kind, detail=0.0):
        return RecoveryEvent(time=t, kind=kind, path="", bytes_received=0.0, detail=detail)

    def test_no_events_is_nan(self):
        assert math.isnan(recovery_time_of([]))

    def test_unanswered_stall_is_nan(self):
        events = [self._ev(10.0, "stall", detail=4.0), self._ev(12.0, "abort")]
        assert math.isnan(recovery_time_of(events))

    def test_stall_then_failover(self):
        events = [self._ev(10.0, "stall", detail=4.0), self._ev(15.0, "failover")]
        assert recovery_time_of(events) == pytest.approx(9.0)

    def test_backoff_gap_counts_toward_reprobe(self):
        events = [
            self._ev(10.0, "stall", detail=2.0),
            self._ev(10.0, "backoff", detail=4.0),
            self._ev(16.0, "reprobe"),
        ]
        assert recovery_time_of(events) == pytest.approx(8.0)

    def test_first_stall_wins(self):
        events = [
            self._ev(10.0, "stall", detail=1.0),
            self._ev(11.0, "failover"),
            self._ev(30.0, "stall", detail=5.0),
            self._ev(40.0, "failover"),
        ]
        assert recovery_time_of(events) == pytest.approx(2.0)


class TestAdvanceUntilDone:
    def test_completes_before_deadline(self, mini_world, fast_tcp):
        w = mini_world(direct_mbps=8.0)
        sim, net, _ = w.universe()
        transfer = _start_direct(w, net, fast_tcp)
        assert advance_until_done(sim, transfer, 1000.0)
        assert transfer.done

    def test_deadline_cuts_off_slow_transfer(self, mini_world, fast_tcp):
        w = mini_world(direct_mbps=1.0)  # 4 MB at 1 Mbps takes ~32 s
        sim, net, _ = w.universe()
        transfer = _start_direct(w, net, fast_tcp)
        assert not advance_until_done(sim, transfer, 5.0)
        assert sim.now == pytest.approx(5.0)
        assert 0.0 < transfer.flow.delivered < transfer.flow.size

    def test_frozen_engine_returns_early(self, mini_world, fast_tcp):
        rate = mbps_to_bytes_per_s(8.0)
        w = mini_world(direct_trace=CapacityTrace([0.0, 2.0], [rate, 0.0]))
        sim, net, _ = w.universe()
        transfer = _start_direct(w, net, fast_tcp)
        assert not advance_until_done(sim, transfer, 1000.0)
        assert sim.now < 1000.0  # did not idle to the deadline

    def test_infinite_deadline_rejected(self, mini_world, fast_tcp):
        w = mini_world()
        sim, net, _ = w.universe()
        transfer = _start_direct(w, net, fast_tcp)
        with pytest.raises(ValueError, match="finite"):
            advance_until_done(sim, transfer, math.inf)

    def test_past_deadline_returns_false(self, mini_world, fast_tcp):
        w = mini_world()
        sim, net, _ = w.universe(start_time=10.0)
        transfer = _start_direct(w, net, fast_tcp)
        assert not advance_until_done(sim, transfer, 5.0)
        assert sim.now == 10.0


class TestStallWatchdog:
    def _watchdog(self, sim, **overrides):
        kwargs = dict(stall_threshold=0.5, check_interval=4.0, grace_period=3.0)
        kwargs.update(overrides)
        return StallWatchdog(sim, **kwargs)

    def test_validation(self, mini_world):
        sim, _, _ = mini_world().universe()
        with pytest.raises(ValueError):
            StallWatchdog(sim, stall_threshold=2.0, check_interval=4.0, grace_period=3.0)
        with pytest.raises(ValueError):
            StallWatchdog(sim, stall_threshold=0.5, check_interval=0.0, grace_period=3.0)

    def test_healthy_transfer_completes(self, mini_world, fast_tcp):
        w = mini_world(direct_mbps=8.0)
        sim, net, _ = w.universe()
        transfer = _start_direct(w, net, fast_tcp)
        verdict = self._watchdog(sim).watch(transfer, mbps_to_bytes_per_s(4.0) / 8.0)
        assert not verdict.stalled
        assert verdict.reason == "completed"
        assert transfer.done

    def test_slow_path_trips_threshold(self, mini_world, fast_tcp):
        # Path drops from 8 Mbps to a trickle at t=2 but revives much later,
        # so the engine never freezes: the throughput threshold must fire.
        rate = mbps_to_bytes_per_s(8.0)
        trace = CapacityTrace([0.0, 2.0, 5000.0], [rate, rate / 1000.0, rate])
        w = mini_world(direct_trace=trace)
        sim, net, _ = w.universe()
        transfer = _start_direct(w, net, fast_tcp)
        verdict = self._watchdog(sim).watch(transfer, rate)
        assert verdict.stalled
        assert verdict.reason == "stall"
        assert sim.now < 100.0  # detected promptly, not at the revival

    def test_frozen_engine_detected(self, mini_world, fast_tcp):
        rate = mbps_to_bytes_per_s(8.0)
        w = mini_world(direct_trace=CapacityTrace([0.0, 2.0], [rate, 0.0]))
        sim, net, _ = w.universe()
        transfer = _start_direct(w, net, fast_tcp)
        verdict = self._watchdog(sim).watch(transfer, rate)
        assert verdict.stalled
        assert verdict.reason == "frozen"

    def test_zero_progress_rule_without_expectation(self, mini_world, fast_tcp):
        # Dead-but-reviving path with expected=0: only the zero-progress
        # rule applies, and it must still catch the stall.
        rate = mbps_to_bytes_per_s(8.0)
        trace = CapacityTrace([0.0, 2.0, 5000.0], [rate, 0.0, rate])
        w = mini_world(direct_trace=trace)
        sim, net, _ = w.universe()
        transfer = _start_direct(w, net, fast_tcp)
        verdict = self._watchdog(sim).watch(transfer, 0.0)
        assert verdict.stalled
        assert verdict.reason == "stall"
        assert verdict.idle_seconds > 0.0

    def test_deadline_verdict(self, mini_world, fast_tcp):
        w = mini_world(direct_mbps=1.0)  # too slow to finish in 6 s
        sim, net, _ = w.universe()
        transfer = _start_direct(w, net, fast_tcp)
        verdict = self._watchdog(sim).watch(transfer, 0.0, deadline_at=6.0)
        assert verdict.stalled
        assert verdict.reason == "deadline"
        assert sim.now == pytest.approx(6.0)

    def test_expired_deadline_short_circuits(self, mini_world, fast_tcp):
        w = mini_world()
        sim, net, _ = w.universe(start_time=10.0)
        transfer = _start_direct(w, net, fast_tcp)
        verdict = self._watchdog(sim).watch(transfer, 0.0, deadline_at=10.0)
        assert verdict.stalled
        assert verdict.reason == "deadline"
        assert sim.now == 10.0
