"""Study driver tests (small-scale runs over the session fixtures)."""

import numpy as np
import pytest

from repro.core.policy import DirectOnlyPolicy
from repro.core.random_set import UniformRandomSetPolicy
from repro.workloads.experiment import (
    Section2Study,
    Section4Study,
    run_paired_transfer,
)


class TestRunPairedTransfer:
    def test_record_fields(self, section2_scenario):
        rec = run_paired_transfer(
            section2_scenario,
            study="t",
            client="Italy",
            site="eBay",
            repetition=3,
            start_time=60.0,
            offered=["Texas"],
        )
        assert rec.client == "Italy"
        assert rec.repetition == 3
        assert rec.start_time == 60.0
        assert rec.offered == ("Texas",)
        assert rec.set_size == 1
        assert rec.direct_throughput > 0
        assert rec.selected_throughput > 0
        assert rec.direct_class in ("low", "medium", "high")

    def test_deterministic(self, section2_scenario):
        kw = dict(
            study="t", client="Italy", site="eBay", repetition=0,
            start_time=0.0, offered=["Texas"],
        )
        a = run_paired_transfer(section2_scenario, **kw)
        b = run_paired_transfer(section2_scenario, **kw)
        assert a == b

    def test_empty_offer_is_direct(self, section2_scenario):
        rec = run_paired_transfer(
            section2_scenario,
            study="t", client="Italy", site="eBay",
            repetition=0, start_time=0.0, offered=[],
        )
        assert rec.selected_via is None
        assert rec.probe_overhead == 0.0


class TestSection2Study:
    def test_store_shape(self, section2_scenario, section2_store):
        expected = len(section2_scenario.client_names) * 12
        assert len(section2_store) == expected

    def test_one_relay_offered_per_transfer(self, section2_store):
        assert all(r.set_size == 1 for r in section2_store)

    def test_rotation_covers_relays(self, section2_scenario):
        study = Section2Study(section2_scenario, repetitions=12)
        rot = study.relay_rotation("Italy")
        assert sorted(rot) == sorted(section2_scenario.relay_names)
        # Deterministic per client.
        assert rot == study.relay_rotation("Italy")
        assert rot != study.relay_rotation("Sweden")

    def test_start_times_spaced_by_interval(self, section2_store):
        italy = section2_store.filter(client="Italy")
        times = sorted(italy.column("start_time"))
        gaps = np.diff(times)
        assert np.all(gaps == 360.0)

    def test_schedule_must_fit_horizon(self, section2_scenario):
        with pytest.raises(ValueError, match="horizon"):
            Section2Study(section2_scenario, repetitions=100_000)

    def test_invalid_params(self, section2_scenario):
        with pytest.raises(ValueError):
            Section2Study(section2_scenario, repetitions=0)
        with pytest.raises(ValueError):
            Section2Study(section2_scenario, interval=0.0)


class TestSection4Study:
    def test_sweep_shape(self, section4_scenario, section4_store):
        # 3 clients x 4 set sizes x 15 repetitions
        assert len(section4_store) == 3 * 4 * 15

    def test_set_sizes_recorded(self, section4_store):
        assert sorted(set(section4_store.column("set_size"))) == [1, 4, 10, 35]

    def test_offered_subsets_of_full_set(self, section4_scenario, section4_store):
        full = set(section4_scenario.relay_names)
        for rec in section4_store:
            assert set(rec.offered) <= full
            assert len(set(rec.offered)) == len(rec.offered)

    def test_run_policy_observes(self, section4_scenario):
        class SpyPolicy(DirectOnlyPolicy):
            observed = 0

            def observe(self, client, server, offered, chosen, throughput=None):
                type(self).observed += 1

        study = Section4Study(section4_scenario, repetitions=2)
        study.run_policy(SpyPolicy(), clients=["Duke"])
        assert SpyPolicy.observed == 2

    def test_run_policy_custom_label(self, section4_scenario):
        study = Section4Study(section4_scenario, repetitions=1)
        store = study.run_policy(
            UniformRandomSetPolicy(2), clients=["Duke"], set_size_label=99
        )
        assert store[0].set_size == 99

    def test_sequential_probing_default(self, section4_scenario):
        from repro.core.probe import ProbeMode

        study = Section4Study(section4_scenario)
        assert study.config.probe_mode is ProbeMode.SEQUENTIAL


class TestInterferingPair:
    def test_record_shape(self, section2_scenario):
        from repro.workloads.experiment import run_interfering_pair

        rec = run_interfering_pair(
            section2_scenario,
            study="t",
            client="Italy",
            site="eBay",
            repetition=0,
            start_time=0.0,
            offered=["Texas"],
        )
        assert rec.direct_throughput > 0
        assert rec.selected_throughput > 0

    def test_interference_depresses_control(self, section2_scenario):
        """Sharing the node lowers the control's measured direct throughput
        relative to the isolated measurement."""
        import numpy as np

        from repro.workloads.experiment import (
            run_interfering_pair,
            run_paired_transfer,
        )

        iso, intf = [], []
        for j in range(6):
            kw = dict(
                client="Sweden", site="eBay", repetition=j,
                start_time=j * 360.0, offered=["Texas"],
            )
            iso.append(
                run_paired_transfer(section2_scenario, study="iso", **kw)
                .direct_throughput
            )
            intf.append(
                run_interfering_pair(section2_scenario, study="int", **kw)
                .direct_throughput
            )
        assert float(np.mean(intf)) <= float(np.mean(iso)) * 1.01

    def test_deterministic(self, section2_scenario):
        from repro.workloads.experiment import run_interfering_pair

        kw = dict(
            study="t", client="Italy", site="eBay", repetition=1,
            start_time=360.0, offered=["Texas"],
        )
        a = run_interfering_pair(section2_scenario, **kw)
        b = run_interfering_pair(section2_scenario, **kw)
        assert a == b
