"""Path predictor tests: oracle trace-peeking and EWMA history."""

import pytest

from repro.core.predictor import EwmaPredictor, OraclePredictor
from repro.http.transfer import TcpParams
from repro.net.trace import CapacityTrace
from repro.util.units import mbps_to_bytes_per_s


class TestOraclePredictor:
    def test_constant_path_prediction(self, mini_world):
        w = mini_world(direct_mbps=2.0)
        path = w.builder.direct("C", "S")
        pred = OraclePredictor(horizon=10.0, tcp=TcpParams(max_window=1e9))
        assert pred.predict(path, 0.0) == pytest.approx(
            mbps_to_bytes_per_s(2.0)
        )

    def test_window_cap_applies(self, mini_world):
        w = mini_world(direct_mbps=100.0, access_mbps=200.0)
        path = w.builder.direct("C", "S")
        pred = OraclePredictor(horizon=10.0, tcp=TcpParams(max_window=65536.0))
        assert pred.predict(path, 0.0) == pytest.approx(65536.0 / path.route.rtt)

    def test_sees_future_capacity_change(self, mini_world):
        trace = CapacityTrace(
            [0.0, 100.0], [mbps_to_bytes_per_s(1.0), mbps_to_bytes_per_s(3.0)]
        )
        w = mini_world(direct_trace=trace)
        path = w.builder.direct("C", "S")
        pred = OraclePredictor(horizon=50.0, tcp=TcpParams(max_window=1e9))
        before = pred.predict(path, 0.0)
        after = pred.predict(path, 100.0)
        assert after > before * 2.5

    def test_horizon_validated(self):
        with pytest.raises(ValueError):
            OraclePredictor(horizon=0.0)


class TestEwmaPredictor:
    def test_default_optimistic(self, mini_world):
        w = mini_world()
        p = EwmaPredictor()
        assert p.predict(w.builder.direct("C", "S"), 0.0) == float("inf")

    def test_first_observation_sets_estimate(self, mini_world):
        w = mini_world()
        path = w.builder.direct("C", "S")
        p = EwmaPredictor(alpha=0.5)
        p.observe(path, 100.0)
        assert p.predict(path, 0.0) == 100.0

    def test_ewma_update(self, mini_world):
        w = mini_world()
        path = w.builder.direct("C", "S")
        p = EwmaPredictor(alpha=0.5)
        p.observe(path, 100.0)
        p.observe(path, 200.0)
        assert p.predict(path, 0.0) == pytest.approx(150.0)

    def test_paths_tracked_separately(self, mini_world):
        w = mini_world(relay_mbps={"R1": 2.0})
        direct = w.builder.direct("C", "S")
        ind = w.builder.indirect("C", "R1", "S")
        p = EwmaPredictor(default=0.0)
        p.observe(direct, 100.0)
        assert p.predict(ind, 0.0) == 0.0
        assert p.n_paths_observed == 1

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            EwmaPredictor(alpha=1.5)

    def test_non_positive_observation_rejected(self, mini_world):
        w = mini_world()
        p = EwmaPredictor()
        with pytest.raises(ValueError):
            p.observe(w.builder.direct("C", "S"), 0.0)
