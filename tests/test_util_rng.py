"""Seeded RNG stream tests: determinism, independence, stability."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import SeedBank, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_depends_on_root(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_depends_on_labels(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a", "b") != derive_seed(1, "a", "c")

    def test_label_boundaries_matter(self):
        # ("ab",) must differ from ("a", "b"): separator prevents collisions.
        assert derive_seed(1, "ab") != derive_seed(1, "a", "b")

    def test_int_and_str_labels_equivalent(self):
        # int labels are stringified, so 1 and "1" coincide by design.
        assert derive_seed(7, 3) == derive_seed(7, "3")

    def test_range(self):
        s = derive_seed(123, "x")
        assert 0 <= s < 2**64

    @given(st.integers(min_value=0, max_value=2**32), st.text(max_size=20))
    def test_always_in_64bit_range(self, root, label):
        assert 0 <= derive_seed(root, label) < 2**64


class TestSeedBank:
    def test_same_path_same_stream(self):
        a = SeedBank(9).generator("x", 1).random(5)
        b = SeedBank(9).generator("x", 1).random(5)
        assert np.array_equal(a, b)

    def test_different_paths_differ(self):
        a = SeedBank(9).generator("x").random(5)
        b = SeedBank(9).generator("y").random(5)
        assert not np.array_equal(a, b)

    def test_child_bank_namespacing(self):
        bank = SeedBank(5)
        child = bank.child("sub")
        # The child's streams match direct derivation through the sub-seed.
        direct = SeedBank(bank.seed("sub")).generator("g").random(3)
        assert np.array_equal(child.generator("g").random(3), direct)

    def test_order_independence(self):
        bank = SeedBank(11)
        g1 = bank.generator("a")
        _ = bank.generator("b").random(100)  # interleaved use
        g1_again = SeedBank(11).generator("a")
        assert np.array_equal(g1.random(4), g1_again.random(4))

    def test_spawn_generators_independent(self):
        bank = SeedBank(3)
        gens = bank.spawn_generators("workers", 4)
        assert len(gens) == 4
        draws = [g.random() for g in gens]
        assert len(set(draws)) == 4

    def test_equality_and_hash(self):
        assert SeedBank(1) == SeedBank(1)
        assert SeedBank(1) != SeedBank(2)
        assert hash(SeedBank(1)) == hash(SeedBank(1))

    def test_root_seed_property(self):
        assert SeedBank(77).root_seed == 77

    def test_sequence_type(self):
        assert isinstance(SeedBank(1).sequence("a"), np.random.SeedSequence)
