"""Tests for the diurnal and trace-replay capacity processes."""

import numpy as np
import pytest

from repro.net.capacity import DiurnalCapacity, TraceReplayCapacity
from repro.net.trace import CapacityTrace


def rng():
    return np.random.default_rng(0)


class TestDiurnal:
    def test_mean_is_base(self):
        proc = DiurnalCapacity(base=1000.0, amplitude=0.4, period=1000.0, step=10.0)
        t = proc.sample(10_000.0, rng())
        measured = t.integrate(0.0, 10_000.0) / 10_000.0
        assert measured == pytest.approx(1000.0, rel=0.02)

    def test_oscillation_range(self):
        proc = DiurnalCapacity(base=1000.0, amplitude=0.5, period=100.0, step=1.0)
        t = proc.sample(200.0, rng())
        assert float(np.max(t.values)) == pytest.approx(1500.0, rel=0.01)
        assert float(np.min(t.values)) == pytest.approx(500.0, rel=0.01)

    def test_phase_shifts_peak(self):
        a = DiurnalCapacity(base=1.0, amplitude=0.5, period=100.0, phase=0.0, step=1.0)
        b = DiurnalCapacity(base=1.0, amplitude=0.5, period=100.0, phase=25.0, step=1.0)
        ta, tb = a.sample(100.0, rng()), b.sample(100.0, rng())
        assert tb.value_at(0.0) == pytest.approx(ta.value_at(25.0), rel=1e-6)

    def test_always_positive(self):
        proc = DiurnalCapacity(base=100.0, amplitude=0.99, period=50.0, step=0.5)
        t = proc.sample(200.0, rng())
        assert np.all(t.values > 0.0)

    def test_deterministic(self):
        proc = DiurnalCapacity(base=1.0)
        assert proc.sample(100.0, rng()) == proc.sample(100.0, np.random.default_rng(99))

    def test_amplitude_validated(self):
        with pytest.raises(ValueError):
            DiurnalCapacity(base=1.0, amplitude=1.0)
        with pytest.raises(ValueError):
            DiurnalCapacity(base=1.0, amplitude=-0.1)


class TestTraceReplay:
    def recording(self):
        return CapacityTrace([0.0, 10.0, 20.0], [100.0, 200.0, 50.0])

    def test_returns_recording_without_loop(self):
        proc = TraceReplayCapacity(self.recording())
        assert proc.sample(5.0, rng()) is proc.trace

    def test_loop_extends_coverage(self):
        proc = TraceReplayCapacity(self.recording(), loop=True)
        t = proc.sample(100.0, rng())
        assert t.times[-1] >= 100.0
        # Periodicity: value at t equals value at t + span (span = 20).
        for u in (0.0, 5.0, 12.0):
            assert t.value_at(u) == t.value_at(u + 20.0)

    def test_mean_capacity_time_weighted(self):
        proc = TraceReplayCapacity(self.recording())
        # Over [0, 20): 10 s at 100 + 10 s at 200 -> 150.
        assert proc.mean_capacity() == pytest.approx(150.0)

    def test_constant_recording_mean(self):
        proc = TraceReplayCapacity(CapacityTrace.constant(42.0))
        assert proc.mean_capacity() == 42.0

    def test_type_check(self):
        with pytest.raises(TypeError):
            TraceReplayCapacity([0, 1])  # type: ignore[arg-type]
