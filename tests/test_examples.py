"""Smoke tests running every example script end to end (small arguments).

Examples are part of the public deliverable; these tests keep them runnable
as the library evolves.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: float = 240.0) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr[-2000:]}"
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "7")
        assert "probe decision" in out
        assert "improvement" in out

    def test_planetlab_study(self):
        out = run_example("planetlab_study.py", "3", "7")
        assert "Figure 1" in out
        assert "Table I" in out
        assert "Table II" in out
        assert "Figure 4" in out
        assert "Figure 5" in out
        assert "Headline rates" in out

    def test_relay_selection(self):
        out = run_example("relay_selection.py", "4", "7")
        assert "Figure 6" in out
        assert "Table III" in out
        assert "correlation" in out

    def test_adaptive_weighted(self):
        out = run_example("adaptive_weighted.py", "6", "3", "7")
        assert "uniform random set" in out
        assert "utilization weighted" in out
        assert "oracle best relay" in out
        assert "learned top relays" in out

    def test_custom_network(self):
        out = run_example("custom_network.py")
        assert "probe race winner" in out
        assert "session selected" in out
        assert "shares a link" in out

    def test_resilience(self):
        out = run_example("resilience.py", "7")
        assert "failure masking" in out
        assert "masked" in out
        assert "adaptive session" in out
