"""Fast-path equivalence and engine-cache regression tests.

The PR that introduced the incremental engine claims every fast path is
*exactly* equivalent to the seed semantics.  This suite holds it to that:

* the disjoint allocator fast path vs the progressive-filling reference
  loop, bit-for-bit, on random disjoint topologies (plus ``verify_maxmin``);
* ``fast=True`` vs ``fast=False`` on arbitrary random topologies (the flag
  may only change *how* the answer is computed, never the answer);
* :class:`TraceCursor` vs the ``searchsorted``-based ``CapacityTrace``
  lookups on random traces and random (including backward) query sequences;
* the link-name-collision guard: two distinct :class:`Link` objects sharing
  a name with *different* capacity traces must raise instead of silently
  merging into one constraint (regression test for the seed's silent merge).
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.net.link import Link
from repro.net.route import Route
from repro.net.trace import CapacityTrace, TraceCursor
from repro.sim.errors import TransferError
from repro.sim.simulator import Simulator
from repro.tcp.fluid import FluidNetwork
from repro.tcp.maxmin import maxmin_allocate, verify_maxmin


def _well_separated(values):
    """True when all distinct constraint values differ by > 1e-6 relative.

    The progressive-filling loop merges water levels within ``1e-9``
    relative slack, so two *distinct* constraints closer than that can
    freeze at the merged level while the fast path keeps each exact
    bottleneck.  The documented equivalence contract excludes those
    measure-zero coincidences; exactly-equal values are fine (both paths
    agree).  This mirrors real campaigns, whose capacities come from
    continuous random draws.
    """
    finite = sorted(v for v in values if np.isfinite(v))
    for a, b in zip(finite, finite[1:]):
        if a != b and b - a <= 1e-6 * max(b, 1.0):
            return False
    return True


@st.composite
def disjoint_problems(draw):
    """Random allocation problems where no link carries two flows."""
    n_flows = draw(st.integers(min_value=1, max_value=6))
    links_per_flow = [draw(st.integers(min_value=1, max_value=3)) for _ in range(n_flows)]
    n_links = sum(links_per_flow)
    caps = draw(
        st.lists(
            st.floats(min_value=0.5, max_value=1000.0),
            min_size=n_links,
            max_size=n_links,
        )
    )
    inc = np.zeros((n_links, n_flows), dtype=bool)
    base = 0
    for f, k in enumerate(links_per_flow):
        inc[base : base + k, f] = True
        base += k
    use_caps = draw(st.booleans())
    flow_caps = None
    if use_caps:
        flow_caps = np.asarray(
            draw(
                st.lists(
                    st.one_of(
                        st.floats(min_value=0.1, max_value=500.0),
                        st.just(float("inf")),
                    ),
                    min_size=n_flows,
                    max_size=n_flows,
                )
            )
        )
    return np.asarray(caps), inc, flow_caps


@st.composite
def arbitrary_problems(draw):
    """Random allocation problems with arbitrary (possibly shared) links."""
    n_links = draw(st.integers(min_value=1, max_value=5))
    n_flows = draw(st.integers(min_value=1, max_value=6))
    caps = draw(
        st.lists(
            st.floats(min_value=0.5, max_value=1000.0),
            min_size=n_links,
            max_size=n_links,
        )
    )
    inc = np.zeros((n_links, n_flows), dtype=bool)
    for f in range(n_flows):
        idxs = draw(
            st.lists(
                st.integers(min_value=0, max_value=n_links - 1),
                min_size=1,
                max_size=n_links,
                unique=True,
            )
        )
        inc[idxs, f] = True
    return np.asarray(caps), inc


class TestDisjointFastPath:
    @settings(max_examples=200, deadline=None)
    @given(disjoint_problems())
    def test_identical_to_reference_loop(self, problem):
        caps, inc, flow_caps = problem
        constraints = list(caps) + ([] if flow_caps is None else list(flow_caps))
        assume(_well_separated(constraints))
        fast = maxmin_allocate(caps, inc, flow_caps, fast=True)
        reference = maxmin_allocate(caps, inc, flow_caps, fast=False)
        # Bit-for-bit: the byte-identity guarantee of the engine rests on
        # the fast path producing the same floats, not merely close ones.
        np.testing.assert_array_equal(fast, reference)

    @settings(max_examples=100, deadline=None)
    @given(disjoint_problems())
    def test_fast_path_is_maxmin_optimal(self, problem):
        caps, inc, flow_caps = problem
        rates = maxmin_allocate(caps, inc, flow_caps, fast=True)
        assert verify_maxmin(caps, inc, rates, flow_caps)

    @settings(max_examples=150, deadline=None)
    @given(arbitrary_problems())
    def test_flag_never_changes_result(self, problem):
        caps, inc = problem
        assume(_well_separated(caps))
        fast = maxmin_allocate(caps, inc, fast=True)
        reference = maxmin_allocate(caps, inc, fast=False)
        np.testing.assert_array_equal(fast, reference)

    @settings(max_examples=100, deadline=None)
    @given(arbitrary_problems())
    def test_validate_flag_never_changes_result(self, problem):
        caps, inc = problem
        checked = maxmin_allocate(caps, inc, validate=True)
        unchecked = maxmin_allocate(caps, inc, validate=False)
        np.testing.assert_array_equal(checked, unchecked)

    def test_disjoint_respects_caps(self):
        caps = np.array([100.0, 50.0])
        inc = np.array([[True, False], [False, True]])
        rates = maxmin_allocate(caps, inc, np.array([30.0, np.inf]))
        np.testing.assert_array_equal(rates, [30.0, 50.0])


@st.composite
def trace_and_queries(draw):
    """A random step trace plus a random (not necessarily sorted) query list."""
    n = draw(st.integers(min_value=1, max_value=8))
    gaps = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=50.0), min_size=n - 1, max_size=n - 1
        )
    )
    times = [0.0]
    for g in gaps:
        times.append(times[-1] + g)
    values = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6), min_size=n, max_size=n
        )
    )
    span = times[-1] + 10.0
    queries = draw(
        st.lists(
            st.floats(min_value=-1.0, max_value=span), min_size=1, max_size=30
        )
    )
    return CapacityTrace(times, values), queries


class TestTraceCursor:
    @settings(max_examples=200, deadline=None)
    @given(trace_and_queries())
    def test_matches_searchsorted_forward(self, case):
        trace, queries = case
        cursor = trace.cursor()
        for t in sorted(queries):
            assert cursor.value_at(t) == trace.value_at(t)
            assert cursor.next_change_after(t) == trace.next_change_after(t)

    @settings(max_examples=200, deadline=None)
    @given(trace_and_queries())
    def test_matches_searchsorted_any_order(self, case):
        # Backward seeks exercise the searchsorted fallback: the cursor's
        # contract is amortised O(1) for monotone queries but *correct* for
        # any order.
        trace, queries = case
        cursor = trace.cursor()
        for t in queries:
            assert cursor.value_at(t) == trace.value_at(t)
            assert cursor.next_change_after(t) == trace.next_change_after(t)

    def test_explicit_backward_seek(self):
        trace = CapacityTrace.from_steps([(0.0, 10.0), (1.0, 20.0), (2.0, 30.0)])
        cursor = trace.cursor()
        assert cursor.value_at(5.0) == 30.0  # advance to the last piece
        assert cursor.value_at(0.5) == 10.0  # seek back to the first
        assert cursor.next_change_after(0.5) == 1.0
        assert cursor.value_at(1.5) == 20.0  # and forward again

    def test_cursor_constructor_and_trace_property(self):
        trace = CapacityTrace.constant(100.0)
        cursor = TraceCursor(trace)
        assert cursor.trace is trace
        assert cursor.value_at(0.0) == 100.0
        assert cursor.next_change_after(0.0) == float("inf")

    def test_link_capacity_cursor(self):
        trace = CapacityTrace.from_steps([(0.0, 10.0), (1.0, 20.0)])
        link = Link("l", "a", "b", trace)
        cursor = link.capacity_cursor()
        assert cursor.trace is trace
        assert cursor.value_at(1.5) == 20.0


class TestLinkNameCollision:
    """Two distinct Link objects sharing a name must agree on their trace.

    Links are keyed by name inside the engine, so distinct objects with one
    name silently become a single capacity constraint.  With equal traces
    that is the intended sharing idiom; with different traces one
    constraint would be dropped — the engine must raise.
    """

    def _run_pair(self, link_a, link_b, *, incremental):
        sim = Simulator()
        net = FluidNetwork(sim, incremental=incremental)
        net.start_flow(Route([link_a]), 1000.0, activation_delay=0.0)
        net.start_flow(Route([link_b]), 1000.0, activation_delay=0.0)
        sim.run()

    @pytest.mark.parametrize("incremental", [True, False])
    def test_conflicting_traces_raise(self, incremental):
        link_a = Link("shared", "a", "b", CapacityTrace.constant(100.0))
        link_b = Link("shared", "a", "b", CapacityTrace.constant(200.0))
        with pytest.raises(TransferError, match="shared"):
            self._run_pair(link_a, link_b, incremental=incremental)

    @pytest.mark.parametrize("incremental", [True, False])
    def test_equal_traces_allowed(self, incremental):
        # Distinct objects, equal traces: legitimate sharing, no error.
        link_a = Link("shared", "a", "b", CapacityTrace.constant(100.0))
        link_b = Link("shared", "a", "b", CapacityTrace.constant(100.0))
        self._run_pair(link_a, link_b, incremental=incremental)

    def test_same_object_always_allowed(self):
        link = Link("shared", "a", "b", CapacityTrace.constant(100.0))
        self._run_pair(link, link, incremental=True)

    def test_conflict_detected_mid_run(self):
        # The second flow activates later, after the first alloc state was
        # built — the rebuild on activation must still catch the conflict.
        sim = Simulator()
        net = FluidNetwork(sim)
        link_a = Link("shared", "a", "b", CapacityTrace.constant(1000.0))
        link_b = Link("shared", "a", "b", CapacityTrace.constant(2000.0))
        net.start_flow(Route([link_a]), 1e6, activation_delay=0.0)
        net.start_flow(Route([link_b]), 1e6, activation_delay=10.0)
        with pytest.raises(TransferError, match="shared"):
            sim.run()


class TestEngineModeEquivalence:
    """Incremental and baseline engines must be byte-identical in output."""

    def _transfer_times(self, *, incremental):
        sim = Simulator()
        net = FluidNetwork(sim, incremental=incremental)
        shared = Link(
            "shared",
            "a",
            "b",
            CapacityTrace.from_steps([(0.0, 1000.0), (5.0, 400.0), (12.0, 1500.0)]),
        )
        private = [
            Link(f"p{i}", "b", "c", CapacityTrace.constant(300.0 + 100.0 * i))
            for i in range(3)
        ]
        flows = [
            net.start_flow(
                Route([shared, private[i]]), 5e3 * (i + 1), activation_delay=0.3 * i
            )
            for i in range(3)
        ]
        flows.append(net.start_flow(Route([private[0]]), 2e3, activation_delay=0.1))
        sim.run()
        return [f.completed_at for f in flows]

    def test_byte_identical_completion_times(self):
        fast = self._transfer_times(incremental=True)
        seed = self._transfer_times(incremental=False)
        assert fast == seed  # exact float equality, not approx

    def test_env_var_selects_baseline(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_BASELINE", "1")
        net = FluidNetwork(Simulator())
        assert net.incremental is False
        monkeypatch.setenv("REPRO_ENGINE_BASELINE", "")
        net = FluidNetwork(Simulator())
        assert net.incremental is True
