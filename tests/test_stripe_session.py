"""Striped-session tests: completeness, determinism, degradation, abort.

Uses the MiniWorld test-bed so path capacities are exact: the direct path
and each relay overlay carry known constant rates, and failure cases are
built by zeroing a path's trace mid-transfer via ``apply_outages``.
"""

import dataclasses

import pytest

from repro.core.resilience import SessionOutcome
from repro.net.failures import Outage, apply_outages
from repro.net.trace import CapacityTrace
from repro.obs.core import (
    OBS_ENV_VAR,
    Observer,
    install_observer,
    reset_global_observer,
)
from repro.stripe.blocks import StripeConfig
from repro.util.units import kb, mb, mbps_to_bytes_per_s


SMALL_BLOCKS = StripeConfig(block_bytes=kb(256))


def _download(world, relays, stripe=SMALL_BLOCKS):
    _sim, _net, session = world.universe()
    return session.download_striped("C", "S", "/f", relays, stripe=stripe)


def _dead_after(rate_mbps: float, t: float) -> CapacityTrace:
    """A constant-rate trace that drops to zero capacity at ``t`` for good."""
    return apply_outages(
        CapacityTrace.constant(mbps_to_bytes_per_s(rate_mbps)),
        [Outage(t, 100_000.0)],
    )


class TestStripedDownload:
    def test_completes_and_verifies(self, mini_world):
        world = mini_world(direct_mbps=1.0, relay_mbps={"R1": 2.0, "R2": 4.0})
        res = _download(world, ["R1", "R2"])
        assert res.outcome is SessionOutcome.COMPLETED
        assert res.k == 3
        assert res.paths == ("direct", "R1", "R2")
        assert res.delivered == res.size == mb(4)
        assert res.digest, "completed sessions carry a verified digest"
        assert res.failed_paths == ()
        # Committed payload partitions the object across the lanes.
        assert sum(got for _label, got in res.bytes_by_path) == res.size
        assert res.n_blocks == 16  # 4 MB / 256 kB

    def test_work_stealing_favours_fast_paths(self, mini_world):
        world = mini_world(direct_mbps=0.4, relay_mbps={"R1": 8.0})
        res = _download(world, ["R1"])
        shares = dict(res.bytes_by_path)
        assert shares["R1"] > shares["direct"], (
            "the 20x faster relay lane must carry more payload"
        )

    def test_faster_than_single_path(self, mini_world):
        world = mini_world(direct_mbps=1.0, relay_mbps={"R1": 2.0, "R2": 2.0})
        striped = _download(world, ["R1", "R2"])
        _sim, _net, session = world.universe()
        direct = session.download_direct("C", "S", "/f")
        assert striped.duration < direct.duration

    def test_deterministic_across_runs(self, mini_world):
        world = mini_world(direct_mbps=1.0, relay_mbps={"R1": 2.0, "R2": 4.0})
        a = _download(world, ["R1", "R2"])
        b = _download(world, ["R1", "R2"])
        assert a == b, "same world, same config => field-identical result"

    def test_single_path_stripe_direct_only(self, mini_world):
        world = mini_world(direct_mbps=2.0, relay_mbps={})
        res = _download(world, [])
        assert res.outcome is SessionOutcome.COMPLETED
        assert res.paths == ("direct",)
        assert res.wasted_bytes == 0.0

    def test_stripe_config_type_checked(self, mini_world):
        world = mini_world()
        _sim, _net, session = world.universe()
        with pytest.raises(TypeError):
            session.download_striped("C", "S", "/f", ["R1"], stripe={"window": 2})

    def test_builder_rejects_duplicate_and_unknown_relays(self, mini_world):
        world = mini_world(relay_mbps={"R1": 2.0})
        with pytest.raises(ValueError):
            world.builder.striped("C", ["R1", "R1"], "S")
        with pytest.raises(KeyError):
            world.builder.striped("C", ["R9"], "S")


class TestDegradation:
    def test_dead_relay_degrades_without_gap(self, mini_world):
        world = mini_world(
            direct_mbps=1.0,
            relay_mbps={"R1": 2.0},
            relay_traces={"R1": _dead_after(2.0, 3.0)},
        )
        res = _download(world, ["R1"])
        assert res.outcome is SessionOutcome.DEGRADED
        assert res.failed_paths == ("R1",)
        assert res.delivered == res.size
        assert res.digest, "degraded sessions still verify byte identity"
        kinds = [e.kind for e in res.recovery_events]
        assert "path_dead" in kinds
        # The whole transfer still finished on the surviving direct lane.
        assert dict(res.bytes_by_path)["direct"] > 0.0

    def test_dead_path_blocks_are_refetched_not_lost(self, mini_world):
        world = mini_world(
            direct_mbps=4.0,
            relay_mbps={"R1": 2.0},
            relay_traces={"R1": _dead_after(2.0, 2.0)},
        )
        res = _download(world, ["R1"])
        assert res.outcome is SessionOutcome.DEGRADED
        assert res.delivered == res.size
        dead_events = [e for e in res.recovery_events if e.kind == "path_dead"]
        assert len(dead_events) == 1

    def test_all_paths_dead_aborts(self, mini_world):
        world = mini_world(
            direct_mbps=1.0,
            relay_mbps={"R1": 2.0},
            direct_trace=_dead_after(1.0, 2.0),
            relay_traces={"R1": _dead_after(2.0, 2.0)},
        )
        res = _download(world, ["R1"])
        assert res.outcome is SessionOutcome.ABORTED
        assert res.delivered < res.size
        assert res.digest == ""
        assert set(res.failed_paths) == {"direct", "R1"}
        kinds = [e.kind for e in res.recovery_events]
        assert kinds.count("path_dead") == 2 and "abort" in kinds

    def test_transfer_deadline_aborts(self, mini_world):
        world = mini_world(direct_mbps=0.05, relay_mbps={"R1": 0.05})
        cfg = dataclasses.replace(SMALL_BLOCKS, transfer_deadline=10.0)
        res = _download(world, ["R1"], stripe=cfg)
        assert res.outcome is SessionOutcome.ABORTED
        assert res.duration <= 10.0 + 1e-9


class TestStripeObservability:
    def test_spans_and_counters_emitted(self, mini_world, monkeypatch):
        monkeypatch.setenv(OBS_ENV_VAR, "1")
        reset_global_observer()
        obs = install_observer(Observer())
        try:
            world = mini_world(direct_mbps=1.0, relay_mbps={"R1": 2.0})
            res = _download(world, ["R1"])
            assert res.outcome is SessionOutcome.COMPLETED
            spans = [
                r
                for r in obs.records
                if r.kind == "span" and r.category == "stripe"
            ]
            assert len(spans) == res.n_blocks, "one span per committed block"
            assert obs.counter("stripe.blocks.committed") == res.n_blocks
            assert obs.counter("stripe.sessions") == 1.0
        finally:
            reset_global_observer()

    def test_result_identical_with_and_without_obs(self, mini_world, monkeypatch):
        world = mini_world(direct_mbps=1.0, relay_mbps={"R1": 2.0, "R2": 4.0})
        monkeypatch.delenv(OBS_ENV_VAR, raising=False)
        reset_global_observer()
        plain = _download(world, ["R1", "R2"])
        monkeypatch.setenv(OBS_ENV_VAR, "1")
        install_observer(Observer())
        try:
            observed = _download(world, ["R1", "R2"])
        finally:
            reset_global_observer()
        assert plain == observed
