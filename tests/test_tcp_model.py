"""Analytic TCP model tests."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tcp.model import (
    DEFAULT_INITIAL_WINDOW,
    MSS,
    SlowStartRamp,
    ideal_transfer_time,
    pftk_throughput,
    slow_start_bytes,
    slow_start_exit_time,
    slow_start_time_to_bytes,
    window_limited_rate,
)


class TestPftk:
    def test_zero_loss_unbounded(self):
        assert pftk_throughput(0.1, 0.0) == float("inf")

    def test_decreasing_in_loss(self):
        rates = [pftk_throughput(0.1, p) for p in (1e-4, 1e-3, 1e-2, 1e-1)]
        assert rates == sorted(rates, reverse=True)

    def test_decreasing_in_rtt(self):
        assert pftk_throughput(0.05, 0.01) > pftk_throughput(0.2, 0.01)

    def test_matches_simple_formula_at_low_loss(self):
        # At small p the sqrt term dominates: rate ~ MSS/(rtt*sqrt(2p/3)).
        p, rtt = 1e-5, 0.1
        simple = MSS / (rtt * math.sqrt(2 * p / 3))
        assert pftk_throughput(rtt, p) == pytest.approx(simple, rel=0.05)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            pftk_throughput(0.0, 0.01)
        with pytest.raises(ValueError):
            pftk_throughput(0.1, 1.5)


class TestSlowStartAnalytics:
    def test_bytes_doubling(self):
        w0 = DEFAULT_INITIAL_WINDOW
        assert slow_start_bytes(0) == 0.0
        assert slow_start_bytes(1) == w0
        assert slow_start_bytes(3) == 7 * w0

    def test_negative_rounds_rejected(self):
        with pytest.raises(ValueError):
            slow_start_bytes(-1)

    def test_time_to_bytes_monotone(self):
        t1 = slow_start_time_to_bytes(10_000, 0.1)
        t2 = slow_start_time_to_bytes(100_000, 0.1)
        assert t2 > t1 > 0.0

    def test_time_zero_for_zero_bytes(self):
        assert slow_start_time_to_bytes(0.0, 0.1) == 0.0

    def test_exit_time(self):
        # Base rate w0/rtt; reaching 8x the base rate needs 3 doublings.
        rtt = 0.1
        base = DEFAULT_INITIAL_WINDOW / rtt
        assert slow_start_exit_time(8 * base, rtt) == pytest.approx(3 * rtt)
        assert slow_start_exit_time(0.5 * base, rtt) == 0.0


class TestIdealTransferTime:
    def test_capacity_bound_for_large_files(self):
        size, cap = 100e6, 1e6
        t = ideal_transfer_time(size, cap, 0.05)
        assert t == pytest.approx(size / cap, rel=0.02)

    def test_small_transfer_is_slow_start_bound(self):
        # 10 KB moves in a few round trips regardless of a huge capacity.
        t = ideal_transfer_time(10_000, 1e9, 0.1)
        assert 0.2 <= t <= 0.5

    def test_window_cap_respected(self):
        t_uncapped = ideal_transfer_time(10e6, 1e7, 0.1)
        t_capped = ideal_transfer_time(10e6, 1e7, 0.1, max_window=65536.0)
        assert t_capped > t_uncapped
        assert t_capped == pytest.approx(10e6 / (65536.0 / 0.1), rel=0.05)

    def test_zero_size(self):
        assert ideal_transfer_time(0.0, 1.0, 0.1) == 0.0

    @given(
        st.floats(min_value=1e4, max_value=1e8),
        st.floats(min_value=1e4, max_value=1e8),
        st.floats(min_value=0.01, max_value=0.5),
    )
    def test_never_faster_than_capacity(self, size, cap, rtt):
        t = ideal_transfer_time(size, cap, rtt)
        assert t >= size / cap - 1e-9


class TestWindowLimitedRate:
    def test_formula(self):
        assert window_limited_rate(65536.0, 0.1) == pytest.approx(655_360.0)

    def test_zero_rtt_rejected(self):
        with pytest.raises(ValueError):
            window_limited_rate(1.0, 0.0)


class TestSlowStartRamp:
    def ramp(self, rtt=0.1, w0=2920.0, wmax=65536.0):
        return SlowStartRamp(rtt=rtt, initial_window=w0, max_window=wmax)

    def test_cap_doubles_per_round(self):
        r = self.ramp()
        assert r.cap_at(0.05) == pytest.approx(29_200.0)
        assert r.cap_at(0.15) == pytest.approx(58_400.0)
        assert r.cap_at(0.25) == pytest.approx(116_800.0)

    def test_cap_saturates_at_peak(self):
        r = self.ramp()
        assert r.cap_at(100.0) == pytest.approx(r.peak_rate)

    def test_cap_before_activation_zero(self):
        assert self.ramp().cap_at(-1.0) == 0.0

    def test_next_increase_progresses(self):
        r = self.ramp()
        t = 0.0
        seen = []
        for _ in range(10):
            t = r.next_increase_after(t)
            if t == float("inf"):
                break
            seen.append(t)
        assert seen == sorted(seen)
        assert len(seen) == r.rounds_to_peak()

    def test_next_increase_inf_after_peak(self):
        r = self.ramp()
        assert r.next_increase_after(10.0) == float("inf")

    def test_boundary_ulp_robustness(self):
        # One ulp below a round boundary must not schedule a zero-length wait.
        r = self.ramp(rtt=0.18)
        import numpy as np

        boundary = 3 * 0.18
        just_below = float(np.nextafter(boundary, 0.0))
        nxt = r.next_increase_after(just_below)
        assert nxt > boundary + 1e-6 or nxt == float("inf")

    def test_cap_never_overflows_for_huge_elapsed(self):
        r = self.ramp()
        assert r.cap_at(1e9) == pytest.approx(r.peak_rate)

    def test_rounds_to_peak(self):
        r = SlowStartRamp(rtt=0.1, initial_window=1000.0, max_window=8000.0)
        assert r.rounds_to_peak() == 3

    def test_max_below_initial_rejected(self):
        with pytest.raises(ValueError):
            SlowStartRamp(rtt=0.1, initial_window=10.0, max_window=5.0)

    @given(st.floats(min_value=0, max_value=100))
    def test_cap_monotone_nondecreasing(self, t):
        r = self.ramp()
        assert r.cap_at(t + 0.01) >= r.cap_at(t) - 1e-9
