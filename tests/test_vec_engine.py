"""Pinning suite for the struct-of-arrays vector engine (DESIGN.md §12).

The vector engine is an oracle-checked rewrite: on any workload the classic
per-object engine can run, the vector path must produce *identical* floats —
completion times, delivered bytes and instantaneous rates all match
bit-for-bit at populations within the dense-solver window.  These tests
drive both engines over random topologies/populations (constant and
time-varying capacity, slow-start ramps, staggered activations, aborts) and
compare everything observable.  A separate large-population case crosses
into the sparse water-filling solver, where identity is asserted only up to
floating-point round-off.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.link import Link
from repro.net.route import Route
from repro.net.trace import CapacityTrace
from repro.sim.simulator import Simulator
from repro.tcp.fluid import FluidNetwork, vector_engine_from_env
from repro.tcp.model import SlowStartRamp


def _random_problem(rng, *, n_links=6, n_flows=14, dynamic=False):
    """Random links + flow specs, deterministic in ``rng``."""
    links = []
    for i in range(n_links):
        if dynamic and i % 3 == 0:
            times = np.concatenate(
                ([0.0], np.cumsum(rng.uniform(0.5, 3.0, size=3)))
            )
            values = rng.uniform(1e5, 5e6, size=4)
            trace = CapacityTrace(list(times), list(values))
        else:
            trace = CapacityTrace.constant(float(rng.uniform(1e5, 5e6)))
        links.append(
            Link(
                f"l{i}",
                f"a{i}",
                f"b{i}",
                trace,
                delay=float(rng.uniform(0.005, 0.08)),
            )
        )
    specs = []
    for _ in range(n_flows):
        k = int(rng.integers(1, min(4, n_links) + 1))
        picks = rng.choice(n_links, size=k, replace=False)
        route_links = [links[int(p)] for p in picks]
        rtt = 2.0 * sum(l.delay for l in route_links)
        ramp = None
        if rng.random() < 0.7:
            ramp = SlowStartRamp(
                rtt=max(rtt, 1e-3),
                max_window=float(rng.choice([16_384.0, 65_536.0, 262_144.0])),
            )
        specs.append(
            {
                "route": route_links,
                "size": float(rng.uniform(1e4, 4e6)),
                "ramp": ramp,
                "delay": float(rng.uniform(0.0, 2.0)),
            }
        )
    return specs


def _run(specs, *, vector, coalesce=False, sample_times=()):
    """Run one engine over ``specs``; return everything observable."""
    sim = Simulator()
    net = FluidNetwork(sim, vector=vector, coalesce_activations=coalesce)
    completions = {}
    handles = []
    for i, spec in enumerate(specs):
        name = f"f{i}"
        handles.append(
            net.start_flow(
                Route(spec["route"]),
                spec["size"],
                ramp=spec["ramp"],
                name=name,
                on_complete=lambda fl, n=name: completions.__setitem__(
                    n, sim.now
                ),
                activation_delay=spec["delay"],
            )
        )
    samples = []
    for t in sample_times:
        sim.schedule_at(
            t,
            lambda: samples.append([f.rate for f in handles]),
            name="sample",
        )
    sim.run()
    delivered = [f.delivered for f in handles]
    return completions, delivered, samples


SAMPLE_TIMES = (0.1, 0.45, 0.9, 1.7, 3.0, 6.0)


class TestVectorOracleIdentity:
    """Dense-window populations: vector output must equal the oracle's."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_population_constant_links(self, seed):
        specs = _random_problem(np.random.default_rng(seed))
        classic = _run(specs, vector=False, sample_times=SAMPLE_TIMES)
        vector = _run(specs, vector=True, sample_times=SAMPLE_TIMES)
        assert vector == classic  # exact: times, bytes and sampled rates

    @pytest.mark.parametrize("seed", range(4))
    def test_random_population_dynamic_links(self, seed):
        specs = _random_problem(
            np.random.default_rng(100 + seed), dynamic=True
        )
        classic = _run(specs, vector=False, sample_times=SAMPLE_TIMES)
        vector = _run(specs, vector=True, sample_times=SAMPLE_TIMES)
        assert vector == classic

    @pytest.mark.parametrize("seed", range(4))
    def test_coalesced_activation_matches_per_flow_events(self, seed):
        """Activation coalescing is a pure scheduling change."""
        specs = _random_problem(np.random.default_rng(200 + seed))
        # Duplicate activation instants so coalescing actually batches.
        for i, spec in enumerate(specs):
            spec["delay"] = 0.25 * (i % 3)
        plain = _run(specs, vector=False, sample_times=SAMPLE_TIMES)
        for vec in (False, True):
            coalesced = _run(
                specs, vector=vec, coalesce=True, sample_times=SAMPLE_TIMES
            )
            assert coalesced == plain

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_property_random_topologies(self, seed):
        rng = np.random.default_rng(seed)
        specs = _random_problem(
            rng,
            n_links=int(rng.integers(2, 8)),
            n_flows=int(rng.integers(1, 20)),
            dynamic=bool(rng.integers(0, 2)),
        )
        assert _run(specs, vector=True, sample_times=SAMPLE_TIMES) == _run(
            specs, vector=False, sample_times=SAMPLE_TIMES
        )

    def test_abort_between_activation_and_first_tick(self):
        """An abort landing while the flow sits in the vector engine's
        pending buffer (activated, not yet materialised as a row) must
        behave exactly like the classic engine's abort."""

        def run(vector):
            sim = Simulator()
            net = FluidNetwork(sim, vector=vector)
            link = Link("l0", "a", "b", CapacityTrace.constant(1e6), delay=0.01)
            keeper = net.start_flow(
                Route([link]), 5e5, name="keeper", activation_delay=0.5
            )
            victim = net.start_flow(
                Route([link]), 5e5, name="victim", activation_delay=0.5
            )
            # Scheduled after start_flow: at t=0.5 this runs between the
            # victim's activation event and the engine's same-instant tick.
            sim.schedule_at(0.5, lambda: net.abort_flow(victim), name="abort")
            sim.run()
            return keeper.completed_at, keeper.delivered, victim.completed_at

        assert run(True) == run(False)

    def test_env_toggle_selects_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_VECTOR", "1")
        assert vector_engine_from_env() is True
        sim = Simulator()
        assert FluidNetwork(sim).vector is True
        monkeypatch.setenv("REPRO_ENGINE_VECTOR", "0")
        assert vector_engine_from_env() is False
        assert FluidNetwork(Simulator()).vector is False
        # Explicit argument beats the environment.
        assert FluidNetwork(Simulator(), vector=True).vector is True


class TestSparseSolverWindow:
    """Populations past the dense window use sparse water-filling: same
    fixed point, so results agree to round-off (not necessarily bitwise)."""

    def test_large_population_matches_oracle(self):
        rng = np.random.default_rng(7)
        n_flows = 420  # > _DENSE_MAX_FLOWS: forces the sparse solver
        links = [
            Link(
                f"l{i}",
                f"a{i}",
                f"b{i}",
                CapacityTrace.constant(float(rng.uniform(5e5, 5e6))),
                delay=0.01,
            )
            for i in range(8)
        ]
        specs = []
        for _ in range(n_flows):
            picks = rng.choice(8, size=int(rng.integers(1, 4)), replace=False)
            specs.append(
                {
                    "route": [links[int(p)] for p in picks],
                    "size": float(rng.uniform(1e4, 2e5)),
                    "ramp": None,
                    "delay": float(rng.uniform(0.0, 0.5)),
                }
            )
        classic = _run(specs, vector=False)
        vector = _run(specs, vector=True)
        assert set(vector[0]) == set(classic[0])  # everyone completes
        for name, t in classic[0].items():
            assert vector[0][name] == pytest.approx(t, rel=1e-9)
        assert vector[1] == pytest.approx(classic[1], rel=1e-9)
