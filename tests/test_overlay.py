"""Relay registry and overlay path builder tests."""

import pytest

from repro.overlay.paths import OverlayPath
from repro.overlay.registry import RelayRegistry


class TestRegistry:
    def test_deploy_and_lookup(self, mini_world):
        w = mini_world(relay_mbps={"R1": 1.0, "R2": 2.0})
        assert len(w.registry) == 2
        assert w.registry.proxy("R1").name == "R1"
        assert "R2" in w.registry

    def test_duplicate_deploy_rejected(self):
        reg = RelayRegistry()
        reg.deploy("X")
        with pytest.raises(ValueError, match="already deployed"):
            reg.deploy("X")

    def test_unknown_proxy(self):
        with pytest.raises(KeyError, match="not deployed"):
            RelayRegistry().proxy("Z")

    def test_names_preserve_order(self):
        reg = RelayRegistry()
        for n in ("C", "A", "B"):
            reg.deploy(n)
        assert reg.names == ["C", "A", "B"]

    def test_register_origin_everywhere(self, mini_world):
        w = mini_world(relay_mbps={"R1": 1.0, "R2": 2.0})
        for name in ("R1", "R2"):
            assert w.registry.proxy(name).knows_origin("S")


class TestOverlayPath:
    def test_direct_path(self, mini_world):
        w = mini_world()
        p = w.builder.direct("C", "S")
        assert not p.is_indirect
        assert p.proxy is None
        assert p.via is None
        assert p.label == "direct"

    def test_indirect_path(self, mini_world):
        w = mini_world()
        p = w.builder.indirect("C", "R1", "S")
        assert p.is_indirect
        assert p.via == "R1"
        assert p.label == "R1"
        assert p.proxy.name == "R1"

    def test_invariants_enforced(self, mini_world):
        w = mini_world()
        direct = w.builder.direct("C", "S")
        indirect = w.builder.indirect("C", "R1", "S")
        with pytest.raises(ValueError, match="requires a proxy"):
            OverlayPath(route=indirect.route, server=w.server, proxy=None)
        with pytest.raises(ValueError, match="must not carry"):
            OverlayPath(route=direct.route, server=w.server, proxy=indirect.proxy)

    def test_proxy_route_mismatch(self, mini_world):
        w = mini_world(relay_mbps={"R1": 1.0, "R2": 2.0})
        p1 = w.builder.indirect("C", "R1", "S")
        p2 = w.builder.indirect("C", "R2", "S")
        with pytest.raises(ValueError, match="does not match"):
            OverlayPath(route=p1.route, server=w.server, proxy=p2.proxy)


class TestBuilder:
    def test_all_indirect(self, mini_world):
        w = mini_world(relay_mbps={"R1": 1.0, "R2": 2.0, "R3": 3.0})
        paths = w.builder.all_indirect("C", "S")
        assert [p.via for p in paths] == ["R1", "R2", "R3"]

    def test_unknown_server(self, mini_world):
        w = mini_world()
        with pytest.raises(KeyError, match="unknown server"):
            w.builder.direct("C", "Nope")

    def test_relay_must_reach_origin(self, mini_world):
        w = mini_world()
        # Deploy a relay that never registered the origin: the builder
        # refuses before touching the topology.
        w.registry.deploy("Rx")
        with pytest.raises(ValueError, match="cannot reach origin"):
            w.builder.indirect("C", "Rx", "S")
