"""QA-* static linter tests: every rule fires, scopes, and suppresses."""

from pathlib import Path

import pytest

from repro.qa.lint import Finding, classify_path, lint_paths, lint_source
from repro.qa.rules import INVARIANTS, RULES

# Representative virtual paths for each rule scope.
SIM = "src/repro/sim/mod.py"  # library + sim-core
NET = "src/repro/net/mod.py"  # library + sim-core
LIB = "src/repro/analysis/mod.py"  # library, outside the sim core
TESTS = "tests/test_mod.py"  # outside the library


def codes(findings):
    return [f.code for f in findings]


#: (rule code, path, violating snippet). One positive case per shipped rule.
POSITIVE_CASES = [
    ("QA-D001", TESTS, "import random\n"),
    ("QA-D001", LIB, "from random import shuffle\n"),
    ("QA-D002", TESTS, "import numpy as np\nnp.random.seed(7)\n"),
    ("QA-D002", LIB, "import numpy as np\nx = np.random.RandomState(0)\n"),
    ("QA-D002", TESTS, "from numpy.random import RandomState\n"),
    (
        "QA-D003",
        TESTS,
        "import numpy as np\ndef f():\n    return np.random.default_rng()\n",
    ),
    (
        "QA-D003",
        LIB,
        "from numpy.random import default_rng\ndef f():\n    return default_rng()\n",
    ),
    ("QA-D004", SIM, "import time\ndef f():\n    return time.time()\n"),
    ("QA-D004", NET, "import datetime\nd = datetime.datetime.now()\n"),
    ("QA-D005", LIB, "import numpy as np\nRNG = np.random.default_rng(7)\n"),
    (
        "QA-D006",
        TESTS,
        "import time\ndef f(obs):\n"
        '    obs.span("unit", "u1", 0.0, time.monotonic())\n',
    ),
    (
        "QA-D006",
        LIB,
        "import time\ndef f(obs):\n"
        '    obs.event("probe", "sel", 1.0, at=time.perf_counter())\n',
    ),
    ("QA-U101", LIB, "def f(rate):\n    return rate * 8.0 / 1e6\n"),
    ("QA-U101", NET, "def f(delay):\n    return delay * 1000.0\n"),
    (
        "QA-U102",
        TESTS,
        "from repro.util.units import mbps_to_bytes_per_s\n"
        "def f(rate_bytes):\n    return mbps_to_bytes_per_s(rate_bytes)\n",
    ),
    (
        "QA-U102",
        LIB,
        "from repro.util.units import mbps_to_bytes_per_s\n"
        "cap_mbps = mbps_to_bytes_per_s(5.0)\n",
    ),
    ("QA-S201", LIB, "def f(ev, t_now):\n    return ev.time == t_now\n"),
    ("QA-S201", SIM, "def f(ev):\n    return ev.time != 3.0\n"),
    ("QA-S202", LIB, "def f(sim):\n    sim._now = 3.0\n"),
    ("QA-S202", NET, "def f(q):\n    return q._heap[0]\n"),
]

#: (rule code that must NOT fire, path, clean snippet).
NEGATIVE_CASES = [
    ("QA-D001", TESTS, "from numpy import random\n"),
    ("QA-D002", TESTS, "import numpy as np\ndef f():\n    return np.random.default_rng(3)\n"),
    ("QA-D003", TESTS, "import numpy as np\ndef f():\n    return np.random.default_rng(42)\n"),
    # Wall clocks are fine outside the simulation core (e.g. analysis timing).
    ("QA-D004", LIB, "import time\ndef f():\n    return time.time()\n"),
    ("QA-D004", TESTS, "import time\ndef f():\n    return time.time()\n"),
    # A seeded generator inside a function is the recommended pattern.
    (
        "QA-D005",
        LIB,
        "import numpy as np\ndef f():\n    return np.random.default_rng(1)\n",
    ),
    # Pre-sampled clock values in a payload are the recommended pattern.
    (
        "QA-D006",
        LIB,
        "def f(obs, clock, origin):\n"
        "    ended = clock()\n"
        '    obs.span("unit", "u1", 0.0, ended - origin)\n',
    ),
    # Raw factors are allowed outside the library (tests, benchmarks)...
    ("QA-U101", TESTS, "def f(rate):\n    return rate * 1e6\n"),
    # ...and non-magic arithmetic is always fine.
    ("QA-U101", LIB, "def f(x):\n    return x * 2.0\n"),
    # Matching suffixes on both sides of a converter are correct usage.
    (
        "QA-U102",
        LIB,
        "from repro.util.units import mbps_to_bytes_per_s\n"
        "cap_bytes = mbps_to_bytes_per_s(rate_mbps)\n",
    ),
    ("QA-S201", LIB, "def f(ev, t_now):\n    return ev.time <= t_now\n"),
    ("QA-S201", TESTS, "def f(ev, t_now):\n    return ev.time == t_now\n"),
    # The kernel may touch its own internals; tests are out of scope too.
    ("QA-S202", SIM, "def f(sim):\n    sim._now = 3.0\n"),
    ("QA-S202", TESTS, "def f(sim):\n    sim._now = 3.0\n"),
]


class TestRulesFire:
    @pytest.mark.parametrize("code,path,snippet", POSITIVE_CASES)
    def test_positive(self, code, path, snippet):
        found = codes(lint_source(snippet, path=path))
        assert code in found, f"{code} did not fire on {snippet!r} at {path}"

    @pytest.mark.parametrize("code,path,snippet", NEGATIVE_CASES)
    def test_negative(self, code, path, snippet):
        found = codes(lint_source(snippet, path=path))
        assert code not in found, f"{code} false positive on {snippet!r} at {path}"

    @pytest.mark.parametrize("code,path,snippet", POSITIVE_CASES)
    def test_suppression_comment_silences(self, code, path, snippet):
        findings = [f for f in lint_source(snippet, path=path) if f.code == code]
        assert findings, "precondition: the rule must fire un-suppressed"
        lines = snippet.splitlines()
        target = findings[0].line - 1
        lines[target] = f"{lines[target]}  # qa: ignore[{code}]"
        suppressed = codes(lint_source("\n".join(lines) + "\n", path=path))
        assert code not in suppressed

    def test_suppression_is_line_scoped(self):
        src = "import random  # qa: ignore[QA-D001]\nimport random\n"
        findings = [f for f in lint_source(src, path=TESTS) if f.code == "QA-D001"]
        assert [f.line for f in findings] == [2]

    def test_suppression_accepts_bare_codes_and_lists(self):
        src = (
            "import random  # qa: ignore[D001]\n"
            "import numpy as np\n"
            "np.random.seed(7)  # qa: ignore[D002, QA-D001]\n"
        )
        assert codes(lint_source(src, path=TESTS)) == []


class TestScoping:
    def test_classify_library_and_subpackage(self):
        scope = classify_path("src/repro/tcp/fluid.py")
        assert scope.in_library and scope.subpackage == "tcp"
        assert not scope.is_units_module

    def test_classify_outside_library(self):
        scope = classify_path("benchmarks/bench_headline_rates.py")
        assert not scope.in_library and scope.subpackage is None

    def test_units_module_exempt_from_unit_rules(self):
        src = "def mbps_to_bytes_per_s(v):\n    return v * 125_000.0\n"
        assert codes(lint_source(src, path="src/repro/util/units.py")) == []
        assert "QA-U101" in codes(lint_source(src, path=LIB))


class TestEntryPoints:
    def test_syntax_error_reported_not_raised(self):
        findings = lint_source("def broken(:\n", path=LIB)
        assert codes(findings) == ["QA-E000"]
        assert "syntax error" in findings[0].message

    def test_finding_format(self):
        f = Finding(path="x.py", line=3, col=4, code="QA-D001",
                    message="msg", hint="do better")
        assert f.format() == "x.py:3:4: QA-D001 msg\n    hint: do better"
        assert f.format(hints=False) == "x.py:3:4: QA-D001 msg"

    def test_findings_sorted_by_location(self):
        src = "import random\nimport numpy as np\nnp.random.seed(1)\n"
        findings = lint_source(src, path=TESTS)
        assert [f.line for f in findings] == sorted(f.line for f in findings)


class TestCatalogue:
    def test_at_least_eight_rules_all_documented(self):
        assert len(RULES) >= 8
        for code, rule in RULES.items():
            assert code == rule.code and code.startswith("QA-")
            assert rule.summary and rule.hint
            assert rule.scope in ("everywhere", "library", "sim-core")

    def test_at_least_four_invariants_all_documented(self):
        assert len(INVARIANTS) >= 4
        for code, inv in INVARIANTS.items():
            assert code == inv.code and code.startswith("QA-R")
            assert inv.summary and inv.hint

    def test_every_shipped_rule_has_a_positive_case(self):
        # Flow (QA-F*) rules are exercised end to end in test_qa_flow.py;
        # this file owns the per-file lint rules.
        covered = {code for code, _, _ in POSITIVE_CASES}
        lint_rules = {c for c, r in RULES.items() if r.analyzer == "lint"}
        assert covered == lint_rules
        assert {r.analyzer for r in RULES.values()} == {"lint", "flow"}


class TestTreeIsClean:
    def test_repo_tree_has_zero_findings(self):
        repo = Path(__file__).resolve().parents[1]
        paths = [str(repo / d) for d in ("src", "tests", "benchmarks", "examples")]
        paths = [p for p in paths if Path(p).exists()]
        findings = lint_paths(paths)
        assert findings == [], "\n".join(f.format() for f in findings)
