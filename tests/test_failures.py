"""Outage modelling and failure-masking study tests."""

import numpy as np
import pytest

from repro.net.failures import Outage, OutageGenerator, apply_outages, total_downtime
from repro.net.topology import wan_link_name
from repro.net.trace import CapacityTrace
from repro.workloads.failures import FailureStudy


class TestOutage:
    def test_end(self):
        assert Outage(10.0, 5.0).end == 15.0

    def test_overlaps(self):
        o = Outage(10.0, 5.0)
        assert o.overlaps(12.0, 20.0)
        assert o.overlaps(0.0, 11.0)
        assert not o.overlaps(15.0, 20.0)  # half-open
        assert not o.overlaps(0.0, 10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Outage(-1.0, 5.0)
        with pytest.raises(ValueError):
            Outage(1.0, -0.5)
        # Zero-length outages are legal degenerate no-ops: fault-plan
        # arithmetic (clipping to a horizon, duty cycles) produces them.
        assert Outage(1.0, 0.0).end == 1.0


class TestApplyOutages:
    def test_zeroes_capacity_during_outage(self):
        t = apply_outages(CapacityTrace.constant(100.0), [Outage(10.0, 5.0)])
        assert t.value_at(9.9) == 100.0
        assert t.value_at(10.0) == 0.0
        assert t.value_at(14.9) == 0.0
        assert t.value_at(15.0) == 100.0

    def test_no_outages_returns_same_trace(self):
        base = CapacityTrace.constant(1.0)
        assert apply_outages(base, []) is base

    def test_resumes_underlying_value(self):
        base = CapacityTrace([0.0, 12.0], [100.0, 200.0])
        t = apply_outages(base, [Outage(10.0, 5.0)])
        assert t.value_at(15.0) == 200.0  # capacity changed during the outage

    def test_swallows_interior_breakpoints(self):
        base = CapacityTrace([0.0, 11.0, 12.0], [100.0, 150.0, 200.0])
        t = apply_outages(base, [Outage(10.0, 5.0)])
        assert t.min_over(10.0, 14.999) == 0.0
        assert t.value_at(11.5) == 0.0

    def test_multiple_outages(self):
        t = apply_outages(
            CapacityTrace.constant(50.0), [Outage(10.0, 2.0), Outage(20.0, 3.0)]
        )
        assert t.value_at(11.0) == 0.0
        assert t.value_at(15.0) == 50.0
        assert t.value_at(21.0) == 0.0
        assert t.value_at(23.0) == 50.0

    def test_overlapping_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            apply_outages(
                CapacityTrace.constant(1.0), [Outage(10.0, 5.0), Outage(12.0, 5.0)]
            )

    def test_outage_past_trace_end(self):
        t = apply_outages(CapacityTrace.constant(7.0), [Outage(100.0, 10.0)])
        assert t.value_at(105.0) == 0.0
        assert t.value_at(110.0) == 7.0

    def test_integral_accounts_for_downtime(self):
        t = apply_outages(CapacityTrace.constant(10.0), [Outage(5.0, 5.0)])
        assert t.integrate(0.0, 20.0) == pytest.approx(150.0)


class TestOutageGenerator:
    def test_non_overlapping(self):
        gen = OutageGenerator(mtbf=100.0, mean_duration=20.0)
        outages = gen.sample(50_000.0, np.random.default_rng(0))
        for a, b in zip(outages, outages[1:]):
            assert b.start >= a.end

    def test_availability(self):
        gen = OutageGenerator(mtbf=900.0, mean_duration=100.0)
        assert gen.availability == pytest.approx(0.9)

    def test_empirical_downtime_matches_availability(self):
        gen = OutageGenerator(mtbf=100.0, mean_duration=25.0)
        horizon = 200_000.0
        outages = gen.sample(horizon, np.random.default_rng(1))
        down = total_downtime(outages, 0.0, horizon)
        assert down / horizon == pytest.approx(1 - gen.availability, abs=0.04)

    def test_deterministic(self):
        gen = OutageGenerator(mtbf=100.0, mean_duration=10.0)
        a = gen.sample(1000.0, np.random.default_rng(3))
        b = gen.sample(1000.0, np.random.default_rng(3))
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            OutageGenerator(mtbf=0.0, mean_duration=1.0)


class TestScenarioWithOutages:
    def test_original_untouched(self, section2_scenario):
        link_name = wan_link_name("eBay", "Italy")
        before = section2_scenario.topology.link(link_name).trace
        degraded = section2_scenario.with_outages(
            {link_name: [Outage(0.0, 100.0)]}
        )
        assert section2_scenario.topology.link(link_name).trace is before
        assert degraded.topology.link(link_name).trace.value_at(50.0) == 0.0

    def test_unknown_link_rejected(self, section2_scenario):
        with pytest.raises(KeyError, match="unknown links"):
            section2_scenario.with_outages({"wan:Narnia->Italy": [Outage(0.0, 1.0)]})

    def test_transfer_stalls_through_outage(self, section2_scenario):
        """A direct transfer started just before an outage waits it out."""
        link_name = wan_link_name("eBay", "Italy")
        degraded = section2_scenario.with_outages(
            {link_name: [Outage(5.0, 120.0)]}
        )
        healthy = section2_scenario.universe(0.0)
        h = healthy.session.download_direct("Italy", "eBay", section2_scenario.resource)
        sick = degraded.universe(0.0)
        s = sick.session.download_direct("Italy", "eBay", degraded.resource)
        assert s.duration >= h.duration + 100.0


class TestFailureStudy:
    @pytest.fixture(scope="class")
    def study_results(self, section2_scenario):
        study = FailureStudy(
            section2_scenario,
            generator=OutageGenerator(mtbf=500.0, mean_duration=150.0),
            repetitions=12,
        )
        records = study.run(clients=["Italy", "Sweden", "Korea"])
        return study, records

    def test_record_count(self, study_results):
        _, records = study_results
        assert len(records) == 36

    def test_some_transfers_affected(self, study_results):
        _, records = study_results
        affected = [r for r in records if r.outage_overlap]
        assert len(affected) >= 3  # heavy outage regime must bite sometimes

    def test_masking_occurs(self, study_results):
        """The probe mechanism masks a solid share of failures (MONET-style)."""
        study, records = study_results
        stats = study.masking_stats(records)
        assert stats.n_affected >= 3
        assert stats.masking_rate >= 0.4
        assert stats.mean_affected_speedup > 1.0

    def test_unaffected_transfers_not_inflated(self, study_results):
        _, records = study_results
        clean = [r for r in records if not r.outage_overlap]
        ratios = [r.speedup for r in clean]
        assert np.median(ratios) >= 0.5  # selector never pathologically slower
