"""Resilient session tests: mid-transfer failover, bounded aborts, identity."""

import pytest

from repro.core.resilience import ResilienceConfig, SessionOutcome
from repro.core.session import SessionConfig, SessionResult, TransferSession
from repro.http.transfer import TcpParams
from repro.net.trace import CapacityTrace
from repro.sim.simulator import Simulator
from repro.tcp.fluid import FluidNetwork
from repro.util.units import mb, mbps_to_bytes_per_s

FAST_TCP = TcpParams(max_window=262_144.0)

#: Failover-enabled protocol with snappy stall detection for small files.
RESILIENCE = ResilienceConfig(
    probe_deadline=30.0,
    failover=True,
    check_interval=2.0,
    grace_period=1.0,
    transfer_deadline=600.0,
)
CONFIG = SessionConfig(tcp=FAST_TCP, resilience=RESILIENCE)


def _dies_at(t, mbps=8.0):
    """A path at ``mbps`` that goes dark forever at ``t``."""
    return CapacityTrace([0.0, t], [mbps_to_bytes_per_s(mbps), 0.0])


def _universe(world, config=CONFIG, *, incremental=True, sanitize=False, start_time=0.0):
    sim = Simulator(start_time=start_time, sanitize=sanitize)
    net = FluidNetwork(sim, incremental=incremental)
    return sim, TransferSession(net, world.builder, config)


class TestFailover:
    def _failover_world(self, mini_world):
        # R1 is fastest and wins the probe, then dies mid-bulk; R2 and the
        # direct path stay alive as failover targets.
        return mini_world(
            direct_mbps=1.0,
            relay_mbps={"R1": 8.0, "R2": 2.0},
            relay_traces={"R1": _dies_at(2.0)},
        )

    def test_selected_path_dies_completes_via_failover(self, mini_world):
        w = self._failover_world(mini_world)
        sim, session = _universe(w)
        result = session.download("C", "S", "/f", ["R1", "R2"])
        assert result.outcome is SessionOutcome.FAILED_OVER
        assert result.selected_via == "R1"  # the original winner is recorded
        assert result.bytes_received is None
        assert result.delivered == result.size == mb(4.0)
        kinds = [e.kind for e in result.recovery_events]
        assert kinds == ["stall", "failover"]
        stall, failover = result.recovery_events
        assert stall.path == "R1"
        assert failover.path == "R2"  # runner-up before the direct last resort
        assert result.requested_at <= stall.time <= failover.time <= result.completed_at

    def test_failover_timeline_bytes_are_monotone(self, mini_world):
        w = self._failover_world(mini_world)
        sim, session = _universe(w)
        result = session.download("C", "S", "/f", ["R1", "R2"])
        received = [e.bytes_received for e in result.recovery_events]
        assert received == sorted(received)
        assert 0.0 < received[0] < result.size

    def test_direct_is_last_resort(self, mini_world):
        # Both relays die: the session must fall back to the direct path
        # and still deliver every byte.
        w = mini_world(
            direct_mbps=1.0,
            relay_mbps={"R1": 8.0, "R2": 2.0},
            relay_traces={"R1": _dies_at(2.0), "R2": _dies_at(2.0)},
        )
        sim, session = _universe(w)
        result = session.download("C", "S", "/f", ["R1", "R2"])
        assert result.outcome is SessionOutcome.FAILED_OVER
        assert result.delivered == result.size
        failover_paths = [
            e.path for e in result.recovery_events if e.kind == "failover"
        ]
        assert failover_paths[-1] == "direct"

    def test_all_paths_dead_aborts_bounded(self, mini_world):
        w = mini_world(
            direct_trace=_dies_at(3.0, 1.0),
            relay_mbps={"R1": 8.0, "R2": 2.0},
            relay_traces={"R1": _dies_at(3.0), "R2": _dies_at(3.0, 2.0)},
        )
        sim, session = _universe(w)
        result = session.download("C", "S", "/f", ["R1", "R2"])
        assert result.outcome is SessionOutcome.ABORTED
        assert 0.0 < result.bytes_received < result.size
        assert result.duration <= RESILIENCE.transfer_deadline + 1e-9
        kinds = [e.kind for e in result.recovery_events]
        assert kinds[-1] == "abort"
        assert "backoff" in kinds  # alternates exhausted before giving up
        assert "probe_timeout" in kinds  # the re-probe found nothing alive

    def test_transfer_deadline_aborts_slow_session(self, mini_world):
        # Paths are alive but glacial: only the transfer deadline can end it.
        w = mini_world(direct_mbps=0.05, relay_mbps={"R1": 0.05})
        sim, session = _universe(w)
        result = session.download("C", "S", "/f", ["R1"])
        assert result.outcome is SessionOutcome.ABORTED
        assert result.duration <= RESILIENCE.transfer_deadline + 1e-9
        assert result.bytes_received < result.size
        assert result.recovery_events[-1].kind == "abort"

    def test_healthy_session_is_clean_completed(self, mini_world):
        w = mini_world(direct_mbps=1.0, relay_mbps={"R1": 4.0})
        sim, session = _universe(w)
        result = session.download("C", "S", "/f", ["R1"])
        assert result.outcome is SessionOutcome.COMPLETED
        assert result.recovery_events == ()
        assert result.bytes_received is None
        assert result.transfer_throughput > 0.0

    def test_resilience_is_inert_on_healthy_paths(self, mini_world):
        """Failover-enabled sessions match the legacy protocol byte-for-byte
        when nothing fails (the watchdog only observes)."""
        legacy_w = mini_world(direct_mbps=1.0, relay_mbps={"R1": 4.0})
        _, legacy_session = _universe(legacy_w, SessionConfig(tcp=FAST_TCP))
        legacy = legacy_session.download("C", "S", "/f", ["R1"])

        w = mini_world(direct_mbps=1.0, relay_mbps={"R1": 4.0})
        _, session = _universe(w)
        resilient = session.download("C", "S", "/f", ["R1"])

        assert resilient.completed_at == legacy.completed_at
        assert resilient.remainder_started_at == legacy.remainder_started_at
        assert resilient.transfer_throughput == legacy.transfer_throughput
        assert resilient.selected_via == legacy.selected_via


class TestFullDownloadDeadline:
    def test_dead_direct_aborts_with_partial_bytes(self, mini_world):
        w = mini_world(direct_trace=_dies_at(2.0, 1.0))
        sim, session = _universe(w)
        result = session.download_direct("C", "S", "/f")
        assert result.outcome is SessionOutcome.ABORTED
        assert 0.0 < result.bytes_received < result.size
        assert result.duration <= RESILIENCE.transfer_deadline + 1e-9
        assert [e.kind for e in result.recovery_events] == ["abort"]

    def test_healthy_direct_unaffected_by_deadline(self, mini_world):
        w = mini_world(direct_mbps=8.0)
        sim, session = _universe(w)
        result = session.download_direct("C", "S", "/f")
        assert result.outcome is SessionOutcome.COMPLETED
        assert result.bytes_received is None
        assert result.recovery_events == ()


class TestDegenerateResults:
    """S1: degenerate divisions report documented values, never raise."""

    def _result(self, **overrides):
        kwargs = dict(
            client="C",
            server="S",
            resource="/f",
            size=100.0,
            offered=(),
            selected_via=None,
            requested_at=5.0,
            completed_at=5.0,
        )
        kwargs.update(overrides)
        return SessionResult(**kwargs)

    def test_zero_duration_throughput_is_zero(self):
        r = self._result()
        assert r.duration == 0.0
        assert r.end_to_end_throughput == 0.0
        assert r.transfer_throughput == 0.0

    def test_aborted_throughput_counts_partial_goodput(self):
        r = self._result(
            completed_at=15.0,
            outcome=SessionOutcome.ABORTED,
            bytes_received=40.0,
        )
        assert r.delivered == 40.0
        assert r.end_to_end_throughput == pytest.approx(4.0)
        assert r.transfer_throughput == pytest.approx(4.0)  # falls back

    def test_delivered_defaults_to_size(self):
        assert self._result().delivered == 100.0


class TestFailoverDeterminism:
    def _signature(self, result):
        return (
            result.outcome,
            result.requested_at,
            result.completed_at,
            result.remainder_started_at,
            result.bytes_received,
            result.recovery_events,
        )

    def test_engine_modes_identical(self, mini_world):
        sigs = []
        for incremental in (True, False):
            w = mini_world(
                direct_mbps=1.0,
                relay_mbps={"R1": 8.0, "R2": 2.0},
                relay_traces={"R1": _dies_at(2.0)},
            )
            _, session = _universe(w, incremental=incremental)
            sigs.append(self._signature(session.download("C", "S", "/f", ["R1", "R2"])))
        assert sigs[0] == sigs[1]

    def test_sanitizer_is_inert_and_clean(self, mini_world):
        sigs = []
        for sanitize in (False, True):
            w = mini_world(
                direct_mbps=1.0,
                relay_mbps={"R1": 8.0, "R2": 2.0},
                relay_traces={"R1": _dies_at(2.0)},
            )
            sim, session = _universe(w, sanitize=sanitize)
            sigs.append(self._signature(session.download("C", "S", "/f", ["R1", "R2"])))
            if sanitize:
                assert sim.sanitizer is not None
                assert sim.sanitizer.checks_run > 0
        assert sigs[0] == sigs[1]

    def test_aborted_session_sanitized_clean(self, mini_world):
        w = mini_world(
            direct_trace=_dies_at(3.0, 1.0),
            relay_mbps={"R1": 8.0},
            relay_traces={"R1": _dies_at(3.0)},
        )
        sim, session = _universe(w, sanitize=True)
        result = session.download("C", "S", "/f", ["R1"])  # must not raise
        assert result.outcome is SessionOutcome.ABORTED
