"""PlanetLab catalogue tests: fidelity to the paper's appendix."""

from repro.net.latency import REGIONS
from repro.workloads.planetlab import (
    CLIENT_CATALOG,
    EXTRA_RELAY_CATALOG,
    RELAY_CATALOG,
    SECTION4_CLIENTS,
    SECTION4_RELAY_CATALOG,
    SITES,
    client_names,
    relay_names,
)


class TestClientCatalog:
    def test_twenty_two_clients(self):
        assert len(CLIENT_CATALOG) == 22  # Table IV

    def test_names_unique(self):
        assert len(set(client_names())) == 22

    def test_known_entries(self):
        by_name = {e.name: e for e in CLIENT_CATALOG}
        assert by_name["Italy"].hostname == "planetlab1.polito.it"
        assert by_name["Korea"].hostname == "arari.snu.ac.kr"
        assert by_name["Sweden"].hostname == "planetlab1.sics.se"

    def test_regions_valid(self):
        for e in CLIENT_CATALOG:
            assert e.region in REGIONS

    def test_no_us_clients(self):
        # Table IV clients are all international.
        assert all(e.region != "us" for e in CLIENT_CATALOG)


class TestRelayCatalog:
    def test_twenty_one_relays(self):
        assert len(RELAY_CATALOG) == 21  # Table V

    def test_all_us(self):
        assert all(e.region == "us" for e in RELAY_CATALOG)
        assert all(e.region == "us" for e in EXTRA_RELAY_CATALOG)

    def test_known_entries(self):
        by_name = {e.name: e for e in RELAY_CATALOG}
        assert by_name["Texas"].hostname == "planetlab1.csres.utexas.edu"
        assert by_name["Princeton"].hostname == "planetlab-1.cs.princeton.edu"

    def test_table_v_entries_not_extrapolated(self):
        assert all(not e.extrapolated for e in RELAY_CATALOG)

    def test_extrapolated_marked(self):
        assert sum(e.extrapolated for e in EXTRA_RELAY_CATALOG) == 7

    def test_table3_relays_present_in_extras(self):
        names = {e.name for e in EXTRA_RELAY_CATALOG}
        for n in ("Northwestern", "Minnesota", "DePaul", "Utah",
                  "Maryland", "Wayne State", "UCSB", "Georgetown"):
            assert n in names


class TestSection4Catalog:
    def test_thirty_five_relays(self):
        assert len(SECTION4_RELAY_CATALOG) == 35  # paper §4.2

    def test_duke_excluded_from_relays(self):
        assert "Duke" not in {e.name for e in SECTION4_RELAY_CATALOG}

    def test_clients_are_duke_italy_sweden(self):
        assert [e.name for e in SECTION4_CLIENTS] == ["Duke", "Italy", "Sweden"]

    def test_no_overlap_clients_relays(self):
        relays = {e.name for e in SECTION4_RELAY_CATALOG}
        assert not relays & {e.name for e in SECTION4_CLIENTS}

    def test_relay_names_unique(self):
        names = [e.name for e in SECTION4_RELAY_CATALOG]
        assert len(set(names)) == 35


class TestSites:
    def test_four_sites(self):
        assert SITES == ("eBay", "Google", "Microsoft", "Yahoo")

    def test_helper_lists(self):
        assert relay_names() == [e.name for e in RELAY_CATALOG]
