"""Capacity process tests: statistics, determinism, validation."""

import numpy as np
import pytest

from repro.net.capacity import (
    CompositeCapacity,
    ConstantCapacity,
    LognormalAR1Capacity,
    MarkovModulatedCapacity,
)


def rng(seed=0):
    return np.random.default_rng(seed)


class TestConstant:
    def test_sample_is_constant(self):
        t = ConstantCapacity(500.0).sample(100.0, rng())
        assert t.n_pieces == 1
        assert t.value_at(50.0) == 500.0

    def test_mean(self):
        assert ConstantCapacity(500.0).mean_capacity() == 500.0

    def test_zero_allowed(self):
        assert ConstantCapacity(0.0).sample(1.0, rng()).value_at(0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantCapacity(-1.0)


class TestMarkovModulated:
    def make(self, **kw):
        defaults = dict(
            base=1000.0,
            multipliers=(1.0, 0.5, 2.0),
            stationary=(0.6, 0.2, 0.2),
            mean_holding=(100.0, 50.0, 50.0),
        )
        defaults.update(kw)
        return MarkovModulatedCapacity(**defaults)

    def test_covers_duration(self):
        t = self.make().sample(1000.0, rng())
        assert t.times[-1] >= 1000.0

    def test_values_are_base_times_multipliers(self):
        proc = self.make()
        t = proc.sample(5000.0, rng())
        allowed = {1000.0, 500.0, 2000.0}
        assert set(np.unique(t.values)).issubset(allowed)

    def test_deterministic_given_rng(self):
        a = self.make().sample(500.0, rng(7))
        b = self.make().sample(500.0, rng(7))
        assert a == b

    def test_long_run_mean_capacity(self):
        proc = self.make()
        t = proc.sample(500_000.0, rng(1))
        measured = t.integrate(0.0, 500_000.0) / 500_000.0
        assert measured == pytest.approx(proc.mean_capacity(), rel=0.08)

    def test_state_occupancy_matches_stationary(self):
        proc = self.make()
        t = proc.sample(500_000.0, rng(2))
        # Time spent at multiplier 1.0 should be near 60%.
        durations = np.diff(np.append(t.times, t.times[-1] + 1.0))
        frac = durations[t.values == 1000.0].sum() / durations.sum()
        assert frac == pytest.approx(0.6, abs=0.07)

    def test_dynamic_range(self):
        assert self.make().dynamic_range == pytest.approx(4.0)

    def test_stationary_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            self.make(stationary=(0.5, 0.2, 0.2))

    def test_needs_two_states(self):
        with pytest.raises(ValueError):
            MarkovModulatedCapacity(
                base=1.0, multipliers=(1.0,), stationary=(1.0,), mean_holding=(10.0,)
            )

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            self.make(mean_holding=(10.0, 20.0))

    def test_non_positive_holding_rejected(self):
        with pytest.raises(ValueError):
            self.make(mean_holding=(10.0, 0.0, 10.0))


class TestLognormalAR1:
    def test_mean_is_base(self):
        proc = LognormalAR1Capacity(base=2000.0, sigma=0.3, phi=0.8, step=10.0)
        t = proc.sample(200_000.0, rng(3))
        measured = t.integrate(0.0, 200_000.0) / 200_000.0
        assert measured == pytest.approx(2000.0, rel=0.1)

    def test_zero_sigma_is_constant(self):
        proc = LognormalAR1Capacity(base=100.0, sigma=0.0, phi=0.5, step=5.0)
        t = proc.sample(100.0, rng())
        assert np.allclose(t.values, 100.0)

    def test_step_controls_pieces(self):
        proc = LognormalAR1Capacity(base=1.0, step=10.0)
        t = proc.sample(100.0, rng())
        assert t.n_pieces == pytest.approx(12, abs=1)

    def test_autocorrelation_positive(self):
        proc = LognormalAR1Capacity(base=1.0, sigma=0.5, phi=0.95, step=1.0)
        t = proc.sample(20_000.0, rng(5))
        logs = np.log(t.values)
        x = logs - logs.mean()
        r1 = float(np.dot(x[:-1], x[1:]) / np.dot(x, x))
        assert r1 > 0.8

    def test_all_values_positive(self):
        proc = LognormalAR1Capacity(base=5.0, sigma=1.0, phi=0.9, step=1.0)
        t = proc.sample(1000.0, rng(6))
        assert np.all(t.values > 0.0)

    def test_invalid_phi(self):
        with pytest.raises(ValueError):
            LognormalAR1Capacity(base=1.0, phi=1.5)


class TestComposite:
    def test_min_composition(self):
        comp = CompositeCapacity((ConstantCapacity(5.0), ConstantCapacity(3.0)))
        t = comp.sample(10.0, rng())
        assert t.value_at(1.0) == 3.0

    def test_mean_is_min_of_means(self):
        comp = CompositeCapacity((ConstantCapacity(5.0), ConstantCapacity(3.0)))
        assert comp.mean_capacity() == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CompositeCapacity(())

    def test_composite_below_each_component(self):
        comp = CompositeCapacity(
            (
                LognormalAR1Capacity(base=10.0, sigma=0.4, step=3.0),
                ConstantCapacity(9.0),
            )
        )
        t = comp.sample(100.0, rng(9))
        assert np.all(t.values <= 9.0 + 1e-12)
