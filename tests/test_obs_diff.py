"""repro.obs.diff tests: alignment, tolerances, wall-clock gating."""

import math

from repro.core.resilience import ResilienceConfig
from repro.core.session import SessionConfig, TransferSession
from repro.http.transfer import TcpParams
from repro.obs.core import Histogram, Observer
from repro.obs.diff import DiffTolerances, diff_traces, render_diff
from repro.obs.export import ObsTrace
from repro.sim.simulator import Simulator
from repro.tcp.fluid import FluidNetwork

CONFIG = SessionConfig(
    tcp=TcpParams(max_window=262_144.0),
    resilience=ResilienceConfig(probe_deadline=30.0),
)


def _run_world(world):
    """One observed download; returns the isolated trace."""
    obs = Observer()
    sim = Simulator(observer=obs)
    net = FluidNetwork(sim, incremental=True)
    session = TransferSession(net, world.builder, CONFIG)
    session.download("C", "S", "/f", ["R1"])
    return ObsTrace.from_observer(obs)


def _toy_trace(*, rate=1.0, extra_counter=0.0, sample=5.0):
    obs = Observer()
    obs.span("transfer", "full:direct", 0.0, 8.0 / rate, path="direct")
    obs.span("session", "C->S", 0.0, 8.0 / rate, outcome="completed")
    obs.count("session.outcome.completed")
    if extra_counter:
        obs.count("protocol.reprobe", extra_counter)
    obs.gauge("engine.flows.peak", 2.0 * rate)
    obs.observe_value("session.duration", sample)
    return ObsTrace.from_observer(obs)


class TestDiffTraces:
    def test_identical_traces_are_clean(self):
        diff = diff_traces(_toy_trace(), _toy_trace())
        assert diff.clean
        assert diff.items  # aligned quantities were actually compared
        assert all(i.within for i in diff.items)
        assert "zero drift" in render_diff(diff)

    def test_span_duration_drift_flags_category(self):
        diff = diff_traces(_toy_trace(rate=1.0), _toy_trace(rate=2.0))
        assert not diff.clean
        cats = diff.drift_categories()
        assert "transfer" in cats and "session" in cats
        text = render_diff(diff)
        assert "drift in" in text and "transfer" in text

    def test_counter_present_on_one_side_compares_against_zero(self):
        diff = diff_traces(_toy_trace(), _toy_trace(extra_counter=3.0))
        drifted = {(i.axis, i.name): i for i in diff.drifted}
        item = drifted[("counter", "protocol.reprobe")]
        assert item.a == 0.0 and item.b == 3.0

    def test_gauge_drift(self):
        diff = diff_traces(_toy_trace(), _toy_trace(rate=2.0))
        names = {i.name for i in diff.drifted if i.axis == "gauge"}
        assert "engine.flows.peak" in names

    def test_histogram_quantile_drift(self):
        diff = diff_traces(_toy_trace(sample=5.0), _toy_trace(sample=50.0))
        stats = {i.stat for i in diff.drifted if i.axis == "histogram"}
        assert "sum" in stats
        assert "p99" in stats

    def test_tolerances_absorb_small_drift(self):
        tol = DiffTolerances(
            counter_rel=0.5,
            duration_rel=0.6,
            quantile_rel=1.0,
        )
        diff = diff_traces(_toy_trace(rate=1.0), _toy_trace(rate=2.0), tol)
        # Counts still match exactly; every toleranced axis is absorbed.
        assert diff.clean

    def test_duration_abs_tolerance(self):
        a, b = _toy_trace(rate=1.0), _toy_trace(rate=2.0)
        assert not diff_traces(a, b, DiffTolerances(quantile_rel=1.0, counter_rel=1.0)).clean
        assert diff_traces(
            a, b, DiffTolerances(duration_abs=10.0, quantile_rel=1.0, counter_rel=1.0)
        ).clean

    def test_nan_on_both_sides_is_clean(self):
        tol = DiffTolerances()
        assert tol.within(math.nan, math.nan, rel=0.0, abs_tol=0.0)
        assert not tol.within(math.nan, 1.0, rel=0.0, abs_tol=0.0)


class TestWallclockGating:
    def _with_unit_span(self, seconds):
        obs = Observer()
        obs.span("transfer", "full:direct", 0.0, 4.0, path="direct")
        obs.span("session", "C->S", 0.0, 4.0, outcome="completed")
        obs.span("unit", "u0", 0.0, seconds, track="worker-1", index=0)
        obs.count("runner.units", 1.0)
        obs.count("session.outcome.completed")
        return ObsTrace.from_observer(obs)

    def test_wallclock_deltas_not_gated_by_default(self):
        diff = diff_traces(self._with_unit_span(0.5), self._with_unit_span(0.9))
        assert diff.clean  # the unit-span and runner.* deltas are ungated
        ungated = [i for i in diff.items if not i.gated and not i.within]
        assert ungated
        assert "wall-clock-domain" in render_diff(diff)

    def test_include_wallclock_gates_them(self):
        diff = diff_traces(
            self._with_unit_span(0.5),
            self._with_unit_span(0.9),
            include_wallclock=True,
        )
        assert not diff.clean


class TestSeededPerturbation:
    def test_capacity_perturbation_flags_transfer_category(self, mini_world):
        # Same topology, one seeded difference: the relay's capacity.  The
        # diff must attribute the drift to the transfer spans (acceptance
        # criterion for repro.obs.insight).
        base = _run_world(mini_world(direct_mbps=1.0, relay_mbps={"R1": 8.0}))
        perturbed = _run_world(mini_world(direct_mbps=1.0, relay_mbps={"R1": 6.0}))
        diff = diff_traces(base, perturbed)
        assert not diff.clean
        assert "transfer" in diff.drift_categories()

    def test_identical_seeded_runs_are_byte_identical(self, mini_world):
        a = _run_world(mini_world(direct_mbps=1.0, relay_mbps={"R1": 8.0}))
        b = _run_world(mini_world(direct_mbps=1.0, relay_mbps={"R1": 8.0}))
        diff = diff_traces(a, b)
        assert diff.clean
        assert all(i.within for i in diff.items)  # even ungated axes match


class TestHistogramAlignment:
    def test_mismatched_bounds_still_compare_quantiles(self):
        a = ObsTrace(histograms={"h": Histogram([1.0, 10.0])})
        b = ObsTrace(histograms={"h": Histogram([2.0, 20.0])})
        a.histograms["h"].observe(5.0)
        b.histograms["h"].observe(5.0)
        diff = diff_traces(a, b)
        item = {(i.axis, i.stat): i for i in diff.items}[("histogram", "count")]
        assert item.within

    def test_missing_histogram_side(self):
        a = ObsTrace(histograms={"h": Histogram([1.0])})
        a.histograms["h"].observe(0.5)
        diff = diff_traces(a, ObsTrace())
        assert not diff.clean
        assert any(i.axis == "histogram" and i.name == "h" for i in diff.drifted)


class TestRender:
    def test_verbose_lists_clean_lines(self):
        diff = diff_traces(_toy_trace(), _toy_trace())
        quiet = render_diff(diff)
        loud = render_diff(diff, verbose=True)
        assert len(loud.splitlines()) > len(quiet.splitlines())
