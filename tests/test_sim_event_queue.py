"""Event queue tests: ordering, cancellation, hypothesis invariants."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.errors import SchedulingError
from repro.sim.event_queue import EventQueue


def noop():
    return None


class TestOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        q.push(3.0, noop, name="c")
        q.push(1.0, noop, name="a")
        q.push(2.0, noop, name="b")
        assert [q.pop().name for _ in range(3)] == ["a", "b", "c"]

    def test_ties_break_by_insertion(self):
        q = EventQueue()
        q.push(1.0, noop, name="first")
        q.push(1.0, noop, name="second")
        assert q.pop().name == "first"
        assert q.pop().name == "second"

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(5.0, noop)
        assert q.peek_time() == 5.0

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=60))
    def test_pop_sequence_is_sorted(self, times):
        q = EventQueue()
        for t in times:
            q.push(t, noop)
        popped = []
        while True:
            e = q.pop()
            if e is None:
                break
            popped.append(e.time)
        assert popped == sorted(popped)
        assert len(popped) == len(times)


class TestCancellation:
    def test_cancelled_event_skipped(self):
        q = EventQueue()
        e1 = q.push(1.0, noop, name="x")
        q.push(2.0, noop, name="y")
        q.cancel(e1)
        assert q.pop().name == "y"

    def test_cancel_is_idempotent(self):
        q = EventQueue()
        e = q.push(1.0, noop)
        q.cancel(e)
        q.cancel(e)
        assert len(q) == 0

    def test_len_counts_active_only(self):
        q = EventQueue()
        e1 = q.push(1.0, noop)
        q.push(2.0, noop)
        assert len(q) == 2
        q.cancel(e1)
        assert len(q) == 1
        assert bool(q)

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        e = q.push(1.0, noop)
        q.push(3.0, noop)
        q.cancel(e)
        assert q.peek_time() == 3.0

    def test_cancel_after_pop_does_not_go_negative(self):
        # Cancelling an event that already fired must not double-decrement
        # the active count (it previously drove len() negative).
        q = EventQueue()
        e = q.push(1.0, noop)
        assert q.pop() is e
        q.cancel(e)
        assert len(q) == 0
        assert q.cancelled_total == 0  # it ran; it was not cancelled in time
        q.push(2.0, noop)
        assert len(q) == 1

    def test_telemetry_counters(self):
        q = EventQueue()
        a = q.push(1.0, noop)
        q.push(2.0, noop)
        assert q.pushed == 2 and q.high_water == 2
        q.cancel(a)
        assert q.cancelled_total == 1 and len(q) == 1
        q.pop()
        assert q.high_water == 2  # high water is a lifetime peak

    def test_clear(self):
        q = EventQueue()
        q.push(1.0, noop)
        q.clear()
        assert len(q) == 0 and q.pop() is None


class TestValidation:
    def test_non_callable_rejected(self):
        with pytest.raises(SchedulingError):
            EventQueue().push(1.0, "not-callable")  # type: ignore[arg-type]

    def test_nan_time_rejected(self):
        with pytest.raises(SchedulingError):
            EventQueue().push(float("nan"), noop)

    def test_event_active_flag(self):
        q = EventQueue()
        e = q.push(1.0, noop)
        assert e.active
        e.cancel()
        assert not e.active
