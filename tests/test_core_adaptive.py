"""Adaptive (mid-transfer switching) session tests."""

import pytest

from repro.core.adaptive import AdaptiveConfig, AdaptiveTransferSession
from repro.core.session import SessionConfig
from repro.http.transfer import TcpParams
from repro.net.trace import CapacityTrace
from repro.sim.simulator import Simulator
from repro.tcp.fluid import FluidNetwork
from repro.util.units import mb, mbps_to_bytes_per_s


def adaptive_session(w, config=None):
    sim = Simulator()
    net = FluidNetwork(sim)
    cfg = config or AdaptiveConfig(
        session=SessionConfig(tcp=TcpParams(max_window=262_144.0))
    )
    return sim, net, AdaptiveTransferSession(net, w.builder, cfg)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveConfig(check_interval=0.0)
        with pytest.raises(ValueError):
            AdaptiveConfig(stall_threshold=1.5)
        with pytest.raises(ValueError):
            AdaptiveConfig(max_switches=-1)


class TestStablePath:
    def test_no_switch_on_healthy_transfer(self, mini_world):
        w = mini_world(direct_mbps=2.0, relay_mbps={"R1": 1.0}, file_mb=4.0)
        sim, net, session = adaptive_session(w)
        result = session.download("C", "S", "/f", ["R1"])
        assert result.switches == 0
        assert result.probes_run == 1
        assert result.path_sequence == ("direct",)
        assert result.final_via is None

    def test_bytes_fully_delivered(self, mini_world):
        w = mini_world(file_mb=4.0)
        sim, net, session = adaptive_session(w)
        result = session.download("C", "S", "/f", ["R1"])
        assert result.size == mb(4)
        assert result.throughput > 0

    def test_probe_covers_tiny_file(self, mini_world):
        w = mini_world(file_mb=0.05)
        sim, net, session = adaptive_session(w)
        result = session.download("C", "S", "/f", ["R1"])
        assert result.switches == 0
        assert result.duration > 0


class TestSwitching:
    def crash_world(self, mini_world, crash_at=4.0, relay_mbps=2.0):
        """Direct path collapses from 4 Mbps to 0.05 Mbps at ``crash_at``."""
        trace = CapacityTrace(
            [0.0, crash_at],
            [mbps_to_bytes_per_s(4.0), mbps_to_bytes_per_s(0.05)],
        )
        return mini_world(
            direct_trace=trace, relay_mbps={"R1": relay_mbps}, file_mb=8.0
        )

    def test_switches_away_from_collapsed_path(self, mini_world):
        w = self.crash_world(mini_world)
        sim, net, session = adaptive_session(w)
        result = session.download("C", "S", "/f", ["R1"])
        assert result.switches >= 1
        assert result.path_sequence[0] == "direct"  # 4 Mbps wins the probe
        assert result.path_sequence[-1] == "R1"  # escapes the collapse
        assert result.final_via == "R1"

    def test_adaptive_beats_non_adaptive_on_collapse(self, mini_world):
        w = self.crash_world(mini_world)
        sim, net, session = adaptive_session(w)
        adaptive = session.download("C", "S", "/f", ["R1"])

        from repro.core.session import TransferSession

        sim2 = Simulator()
        net2 = FluidNetwork(sim2)
        plain = TransferSession(
            net2, w.builder, SessionConfig(tcp=TcpParams(max_window=262_144.0))
        ).download("C", "S", "/f", ["R1"])
        assert adaptive.duration < 0.5 * plain.duration

    def test_switch_budget_respected(self, mini_world):
        w = self.crash_world(mini_world)
        cfg = AdaptiveConfig(
            session=SessionConfig(tcp=TcpParams(max_window=262_144.0)),
            max_switches=0,
        )
        sim, net, session = adaptive_session(w, cfg)
        result = session.download("C", "S", "/f", ["R1"])
        assert result.switches == 0
        assert result.path_sequence == ("direct",)  # rides out the collapse

    def test_probe_bytes_resume_from_offset(self, mini_world):
        """Every byte is delivered exactly once across phases."""
        w = self.crash_world(mini_world)
        sim, net, session = adaptive_session(w)
        result = session.download("C", "S", "/f", ["R1"])
        # Completion implies the byte ranges tiled [0, size) exactly; a
        # double-fetch or gap would break the server's range validation.
        assert result.completed_at > result.requested_at
        assert result.switches >= 1

    def test_no_thrash_on_mild_dip(self, mini_world):
        """A dip above the stall threshold does not trigger switching."""
        trace = CapacityTrace(
            [0.0, 5.0],
            [mbps_to_bytes_per_s(2.0), mbps_to_bytes_per_s(1.6)],  # -20%
        )
        w = mini_world(direct_trace=trace, relay_mbps={"R1": 0.5}, file_mb=4.0)
        sim, net, session = adaptive_session(w)
        result = session.download("C", "S", "/f", ["R1"])
        assert result.switches == 0


class TestOnScenario:
    def test_runs_on_planetlab_scenario(self, section2_scenario):
        universe = section2_scenario.universe(0.0)
        session = AdaptiveTransferSession(
            universe.network,
            section2_scenario.builder,
            AdaptiveConfig(
                session=SessionConfig(tcp=TcpParams(max_window=131_072.0))
            ),
        )
        relay = section2_scenario.good_static_relay("Italy")
        result = session.download("Italy", "eBay", section2_scenario.resource, [relay])
        assert result.size == section2_scenario.spec.file_bytes
        assert result.switches <= 2
