"""repro.obs.insight tests: phase decomposition, grouping, tail attribution."""

import math

import pytest

from repro.core.resilience import ResilienceConfig, SessionOutcome
from repro.core.session import SessionConfig, TransferSession
from repro.http.transfer import TcpParams
from repro.net.trace import CapacityTrace
from repro.obs.core import Observer
from repro.obs.export import ObsTrace
from repro.obs.insight import (
    PHASES,
    attribute_trace,
    group_children,
    phase_totals,
    render_insight,
    tail_attribution,
)
from repro.sim.simulator import Simulator
from repro.tcp.fluid import FluidNetwork
from repro.util.units import mbps_to_bytes_per_s

FAST_TCP = TcpParams(max_window=262_144.0)
RESILIENCE = ResilienceConfig(
    probe_deadline=30.0,
    failover=True,
    check_interval=2.0,
    grace_period=1.0,
    transfer_deadline=600.0,
)
CONFIG = SessionConfig(tcp=FAST_TCP, resilience=RESILIENCE)


def _dies_at(t, mbps=8.0):
    return CapacityTrace([0.0, t], [mbps_to_bytes_per_s(mbps), 0.0])


def _observed_session(world, relays):
    """Run one resilient download under a private observer; return its trace."""
    obs = Observer()
    sim = Simulator(observer=obs)
    net = FluidNetwork(sim, incremental=True)
    session = TransferSession(net, world.builder, CONFIG)
    result = session.download("C", "S", "/f", relays)
    return result, ObsTrace.from_observer(obs)


# --------------------------------------------------------------------- #
# synthetic decompositions (dyadic times: sums must be *exactly* equal)
# --------------------------------------------------------------------- #
class TestDecomposeSynthetic:
    def _trace(self, build):
        obs = Observer()
        build(obs)
        return ObsTrace.from_observer(obs)

    def test_probe_then_transfer_with_gap(self):
        def build(obs):
            obs.span("probe", "probe:direct", 0.0, 0.25, won=True)
            obs.span("transfer", "remainder:direct", 0.5, 2.0, path="direct")
            obs.span("session", "C->S", 0.0, 2.0, outcome="completed")

        sessions = attribute_trace(self._trace(build))
        assert len(sessions) == 1
        s = sessions[0]
        assert s.phases["probe"] == 0.25
        assert s.phases["transfer"] == 1.5
        assert s.phases["other"] == 0.25  # the 0.25..0.5 scheduling gap
        assert math.fsum(s.phases.values()) == s.duration == 2.0

    def test_probe_wins_over_concurrent_transfer(self):
        def build(obs):
            obs.span("probe", "probe:R1", 0.0, 1.0, won=True)
            obs.span("transfer", "full:R1", 0.5, 2.0, path="R1")
            obs.span("session", "C->S", 0.0, 2.0, outcome="completed")

        s = attribute_trace(self._trace(build))[0]
        assert s.phases["probe"] == 1.0  # overlap 0.5..1.0 charged to probe
        assert s.phases["transfer"] == 1.0
        assert math.fsum(s.phases.values()) == 2.0

    def test_stall_and_backoff_events(self):
        def build(obs):
            obs.span("transfer", "attempt:R1", 0.0, 4.0, path="R1")
            obs.span("session", "C->S", 0.0, 8.0, outcome="failed_over")
            # Emitted after the session span, as the real session does.
            obs.event("recovery", "stall", 4.0, path="R1", detail=2.0)
            obs.event("recovery", "backoff", 4.0, path="R1", detail=1.0)

        s = attribute_trace(self._trace(build))[0]
        # Stall covers [2, 4] and outranks the transfer attempt there.
        assert s.phases["stall"] == 2.0
        assert s.phases["transfer"] == 2.0
        assert s.phases["backoff"] == 1.0  # [4, 5]
        assert s.phases["other"] == 3.0  # [5, 8]
        assert math.fsum(s.phases.values()) == 8.0

    def test_probe_after_recovery_is_reprobe(self):
        def build(obs):
            obs.span("probe", "probe:R1", 0.0, 0.5, won=True)
            obs.span("transfer", "attempt:R1", 0.5, 2.0, path="R1")
            obs.span("probe", "probe:R2", 3.0, 3.5, won=True)
            obs.span("transfer", "attempt:R2", 3.5, 6.0, path="R2")
            obs.span("session", "C->S", 0.0, 6.0, outcome="failed_over")
            obs.event("recovery", "stall", 2.0, path="R1", detail=1.0)
            obs.event("recovery", "reprobe", 3.0, path="R1", detail=0.0)

        s = attribute_trace(self._trace(build))[0]
        assert s.phases["probe"] == 0.5
        assert s.phases["reprobe"] == 0.5
        # The stall interval [1, 2] outranks the overlapping first attempt.
        assert s.phases["stall"] == 1.0
        assert s.phases["transfer"] == 3.0
        assert s.phases["other"] == 1.0  # the dead air [2, 3]
        assert math.fsum(s.phases.values()) == 6.0

    def test_stripe_straggle_vs_transfer(self):
        def build(obs):
            # Two lanes overlap on [0, 2]; lane B straggles on [2, 4].
            obs.span("stripe", "block:0", 0.0, 2.0, path="A")
            obs.span("stripe", "block:1", 0.0, 4.0, path="B")
            obs.span(
                "session", "C->S", 0.0, 4.0, outcome="completed", stripe_k=2
            )

        s = attribute_trace(self._trace(build))[0]
        assert s.stripe_k == 2
        assert s.phases["transfer"] == 2.0
        assert s.phases["straggle"] == 2.0
        assert math.fsum(s.phases.values()) == 4.0

    def test_zero_duration_session(self):
        def build(obs):
            obs.span("session", "C->S", 1.0, 1.0, outcome="aborted")

        s = attribute_trace(self._trace(build))[0]
        assert s.duration == 0.0
        assert math.fsum(s.phases.values()) == 0.0
        assert math.isnan(s.fraction("transfer"))

    def test_child_intervals_clipped_to_session(self):
        def build(obs):
            obs.span("transfer", "full:direct", 0.0, 4.0, path="direct")
            obs.span("session", "C->S", 0.0, 3.0, outcome="completed")
            # Stall interval [-1, 1] reaches before the session start.
            obs.event("recovery", "stall", 1.0, path="direct", detail=2.0)

        # The transfer span [0, 4] is not contained in [0, 3]: dropped, so
        # only the clipped stall interval and the residual remain.
        s = attribute_trace(self._trace(build))[0]
        assert s.phases["stall"] == 1.0
        assert s.phases["transfer"] == 0.0
        assert s.phases["other"] == 2.0
        assert math.fsum(s.phases.values()) == 3.0


# --------------------------------------------------------------------- #
# grouping records into sessions
# --------------------------------------------------------------------- #
class TestGrouping:
    def test_two_sessions_on_one_track(self):
        obs = Observer()
        obs.span("transfer", "full:direct", 0.0, 2.0, path="direct")
        obs.span("session", "C->S", 0.0, 2.0, outcome="completed")
        obs.span("probe", "probe:R1", 2.0, 2.5, won=True)
        obs.span("transfer", "remainder:R1", 2.5, 5.0, path="R1")
        obs.span("session", "C->S", 2.0, 5.0, outcome="completed")
        groups = group_children(ObsTrace.from_observer(obs))
        assert len(groups) == 2
        assert [len(kids) for _s, kids in groups] == [1, 2]

    def test_recovery_events_attach_to_preceding_session(self):
        obs = Observer()
        obs.span("transfer", "attempt:R1", 0.0, 2.0, path="R1")
        obs.span("session", "C->S", 0.0, 4.0, outcome="failed_over")
        obs.event("recovery", "stall", 2.0, path="R1", detail=1.0)
        obs.event("recovery", "failover", 2.0, path="R2", detail=0.0)
        obs.span("transfer", "full:direct", 4.0, 6.0, path="direct")
        obs.span("session", "C->S", 4.0, 6.0, outcome="completed")
        groups = group_children(ObsTrace.from_observer(obs))
        assert len(groups) == 2
        first_kinds = sorted(
            (k.kind, k.category) for k in groups[0][1]
        )
        assert first_kinds == [
            ("event", "recovery"),
            ("event", "recovery"),
            ("span", "transfer"),
        ]
        assert len(groups[1][1]) == 1

    def test_non_child_categories_are_dropped(self):
        obs = Observer()
        obs.span("fault", "link:S->C", 0.0, 100.0, family="gray")
        obs.span("tick", "fluid-epoch", 0.0, 1.0, flows=1)
        obs.span("transfer", "full:direct", 0.0, 2.0, path="direct")
        obs.span("session", "C->S", 0.0, 2.0, outcome="completed")
        groups = group_children(ObsTrace.from_observer(obs))
        assert len(groups) == 1
        assert [k.category for k in groups[0][1]] == ["transfer"]

    def test_wallclock_unit_spans_excluded(self):
        worker = Observer(track="worker-1")
        worker.span("transfer", "full:direct", 0.0, 2.0, path="direct")
        worker.span("session", "C->S", 0.0, 2.0, outcome="completed")
        parent = Observer()  # unit span on the worker's track, parent seq
        parent.span("unit", "u0", 0.001, 0.5, track="worker-1", index=0)
        merged = ObsTrace.merge(
            [ObsTrace.from_observer(worker), ObsTrace.from_observer(parent)]
        )
        groups = group_children(merged)
        assert len(groups) == 1
        assert [k.category for k in groups[0][1]] == ["transfer"]

    def test_multi_track_sessions_attributed_independently(self):
        a = Observer(track="worker-1")
        a.span("transfer", "full:direct", 0.0, 2.0, path="direct")
        a.span("session", "C->S", 0.0, 2.0, outcome="completed")
        b = Observer(track="worker-2")
        b.span("transfer", "full:R1", 0.0, 3.0, path="R1")
        b.span("session", "C2->S", 0.0, 3.0, outcome="completed")
        merged = ObsTrace.merge(
            [ObsTrace.from_observer(a), ObsTrace.from_observer(b)]
        )
        sessions = attribute_trace(merged)
        assert [(s.track, s.phases["transfer"]) for s in sessions] == [
            ("worker-1", 2.0),
            ("worker-2", 3.0),
        ]


# --------------------------------------------------------------------- #
# real sessions through the simulator
# --------------------------------------------------------------------- #
class TestRealSessions:
    def test_clean_session_decomposition(self, mini_world):
        world = mini_world(direct_mbps=1.0, relay_mbps={"R1": 8.0})
        result, trace = _observed_session(world, ["R1"])
        assert result.outcome is SessionOutcome.COMPLETED
        sessions = attribute_trace(trace)
        assert len(sessions) == 1
        s = sessions[0]
        assert s.name == "C->S"
        assert s.duration == pytest.approx(result.duration)
        assert math.fsum(s.phases.values()) == pytest.approx(s.duration, abs=1e-9)
        assert s.phases["probe"] > 0.0
        assert s.phases["transfer"] > 0.0
        assert s.phases["stall"] == 0.0

    def test_failover_session_has_stall_phase(self, mini_world):
        world = mini_world(
            direct_mbps=1.0,
            relay_mbps={"R1": 8.0, "R2": 2.0},
            relay_traces={"R1": _dies_at(2.0)},
        )
        result, trace = _observed_session(world, ["R1", "R2"])
        assert result.outcome is SessionOutcome.FAILED_OVER
        s = attribute_trace(trace)[0]
        assert s.phases["stall"] > 0.0
        assert s.phases["transfer"] > 0.0
        assert math.fsum(s.phases.values()) == pytest.approx(s.duration, abs=1e-9)

    def test_every_phase_nonnegative(self, mini_world):
        world = mini_world(
            direct_mbps=1.0,
            relay_mbps={"R1": 8.0, "R2": 2.0},
            relay_traces={"R1": _dies_at(2.0), "R2": _dies_at(2.0)},
        )
        _result, trace = _observed_session(world, ["R1", "R2"])
        for s in attribute_trace(trace):
            for phase, seconds in s.phases.items():
                assert seconds >= -1e-9, (phase, seconds)


# --------------------------------------------------------------------- #
# aggregation + rendering
# --------------------------------------------------------------------- #
def _mk_session(duration, **phases):
    from repro.obs.insight import SessionPhases

    full = {p: 0.0 for p in PHASES}
    full.update(phases)
    full["other"] = duration - math.fsum(full[p] for p in PHASES if p != "other")
    return SessionPhases(
        name="C->S",
        track="main",
        start=0.0,
        end=duration,
        outcome="completed",
        stripe_k=0,
        phases=full,
    )


class TestAggregation:
    def test_phase_totals_sums_all_sessions(self):
        sessions = [_mk_session(2.0, transfer=2.0), _mk_session(4.0, transfer=3.0)]
        totals = phase_totals(sessions)
        assert totals["transfer"] == 5.0
        assert totals["other"] == 1.0

    def test_tail_attribution_selects_slowest(self):
        fast = [_mk_session(1.0, transfer=1.0) for _ in range(9)]
        slow = _mk_session(10.0, stall=8.0, transfer=2.0)
        tail = tail_attribution(fast + [slow], q=0.95)
        assert tail.n_sessions == 10
        assert tail.n_tail == 1
        assert tail.threshold == 10.0
        assert tail.fractions["stall"] == pytest.approx(0.8)
        assert tail.fractions["transfer"] == pytest.approx(0.2)

    def test_tail_attribution_empty(self):
        tail = tail_attribution([], q=0.99)
        assert tail.n_tail == 0
        assert math.isnan(tail.threshold)

    def test_render_mentions_dominant_phase(self):
        text = render_insight([_mk_session(10.0, stall=8.0, transfer=2.0)])
        assert "critical-path attribution" in text
        assert "stall" in text
        assert "80.0%" in text
