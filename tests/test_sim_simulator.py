"""Simulator kernel tests: clock semantics, run modes, safety valves."""

import pytest

from repro.sim.errors import SchedulingError, SimulationDeadlock
from repro.sim.simulator import Simulator


class TestScheduling:
    def test_clock_starts_at_start_time(self):
        assert Simulator(start_time=10.0).now == 10.0

    def test_schedule_at_past_raises(self):
        sim = Simulator(start_time=5.0)
        with pytest.raises(SchedulingError):
            sim.schedule_at(4.0, lambda: None)

    def test_schedule_after_negative_raises(self):
        with pytest.raises(SchedulingError):
            Simulator().schedule_after(-1.0, lambda: None)

    def test_callbacks_see_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(2.0, lambda: seen.append(sim.now))
        sim.schedule_at(1.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.0, 2.0]

    def test_cancel(self):
        sim = Simulator()
        seen = []
        e = sim.schedule_at(1.0, lambda: seen.append("x"))
        sim.cancel(e)
        sim.run()
        assert seen == []

    def test_callback_can_schedule_more(self):
        sim = Simulator()
        seen = []

        def first():
            sim.schedule_after(1.0, lambda: seen.append(sim.now))

        sim.schedule_at(1.0, first)
        sim.run()
        assert seen == [2.0]


class TestRun:
    def test_run_drains_queue(self):
        sim = Simulator()
        sim.schedule_at(3.5, lambda: None)
        final = sim.run()
        assert final == 3.5
        assert sim.pending_events == 0

    def test_run_until_stops_clock_exactly(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(1.0, lambda: seen.append(1))
        sim.schedule_at(5.0, lambda: seen.append(5))
        sim.run(until=2.0)
        assert seen == [1]
        assert sim.now == 2.0
        assert sim.pending_events == 1

    def test_run_until_past_raises(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SchedulingError):
            sim.run(until=5.0)

    def test_run_until_then_continue(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(5.0, lambda: seen.append(5))
        sim.run(until=2.0)
        sim.run()
        assert seen == [5]

    def test_events_processed_counter(self):
        sim = Simulator()
        for t in (1.0, 2.0):
            sim.schedule_at(t, lambda: None)
        sim.run()
        assert sim.events_processed == 2


class TestRunUntilTrue:
    def test_satisfied_immediately(self):
        sim = Simulator()
        assert sim.run_until_true(lambda: True) == 0.0

    def test_runs_until_predicate(self):
        sim = Simulator()
        state = {"done": False}

        def finish():
            state["done"] = True

        sim.schedule_at(4.0, finish)
        sim.schedule_at(9.0, lambda: None)
        t = sim.run_until_true(lambda: state["done"])
        assert t == 4.0
        assert sim.pending_events == 1  # later event untouched

    def test_deadlock_when_queue_drains(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        with pytest.raises(SimulationDeadlock):
            sim.run_until_true(lambda: False)

    def test_limit_respected(self):
        sim = Simulator()
        sim.schedule_at(100.0, lambda: None)
        with pytest.raises(SimulationDeadlock):
            sim.run_until_true(lambda: False, limit=10.0)


class TestSafety:
    def test_max_events_guard(self):
        sim = Simulator(max_events=10)

        def reschedule():
            sim.schedule_after(0.1, reschedule)

        sim.schedule_after(0.1, reschedule)
        with pytest.raises(SimulationDeadlock, match="max_events"):
            sim.run()

    def test_reset(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.run()
        sim.reset()
        assert sim.now == 0.0
        assert sim.events_processed == 0
        assert sim.pending_events == 0
