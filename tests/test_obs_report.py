"""repro.obs.report tests: deterministic self-contained HTML rendering."""

from repro.obs.core import Observer
from repro.obs.export import ObsTrace
from repro.obs.report import render_report
from repro.obs.slo import evaluate_slo, parse_slo_spec


def _trace(*, stripe=False):
    obs = Observer()
    obs.span("probe", "probe:R1", 0.0, 0.5, won=True)
    obs.span("transfer", "remainder:R1", 0.5, 9.5, path="R1")
    if stripe:
        obs.span("stripe", "block:0", 10.0, 12.0, path="A")
        obs.span("stripe", "block:1", 10.0, 14.0, path="B")
        obs.span("session", "C2->S", 10.0, 14.0, outcome="completed", stripe_k=2)
    obs.span("session", "C->S", 0.0, 10.0, outcome="completed")
    obs.count("session.outcome.completed", 2.0 if stripe else 1.0)
    obs.observe_value("session.duration", 10.0)
    return ObsTrace.from_observer(obs)


class TestRenderReport:
    def test_self_contained_html(self):
        html = render_report(_trace())
        assert html.startswith("<!DOCTYPE html>")
        assert "<style>" in html
        # No external fetches: no scripts, stylesheets or images by URL.
        assert "<script" not in html
        assert "<link" not in html
        assert "src=" not in html
        assert "<svg" in html  # phase chart + sparklines are inlined

    def test_deterministic(self):
        assert render_report(_trace()) == render_report(_trace())

    def test_headline_and_sections(self):
        html = render_report(_trace(), title="my campaign")
        assert "my campaign" in html
        assert "completed" in html  # the session.outcome.* counter row
        assert "session.duration" in html  # histogram table row

    def test_stripe_sessions_grouped_separately(self):
        html = render_report(_trace(stripe=True))
        assert "stripe-k2" in html

    def test_title_is_escaped(self):
        html = render_report(_trace(), title="<b>&co")
        assert "<b>&co" not in html
        assert "&lt;b&gt;&amp;co" in html

    def test_slo_section(self):
        spec = parse_slo_spec(
            "[[objective]]\n"
            'name = "probe cheap"\nmetric = "probe_overhead_fraction"\nmax = 0.2\n'
            "[[objective]]\n"
            'name = "impossible"\nmetric = "probe_overhead_fraction"\nmax = 0.001\n'
        )
        slo = evaluate_slo(spec, trace=_trace())
        html = render_report(_trace(), slo=slo)
        assert 'class="pass"' in html and 'class="fail"' in html
        assert "probe cheap" in html and "impossible" in html

    def test_without_slo_no_slo_table(self):
        assert 'class="fail"' not in render_report(_trace())

    def test_empty_trace(self):
        html = render_report(ObsTrace())
        assert html.startswith("<!DOCTYPE html>")
        assert "sessions" in html
