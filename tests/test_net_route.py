"""Route tests: RTTs, legs, bottlenecks, shared links."""

import pytest

from repro.net.link import Link
from repro.net.node import Node, NodeKind
from repro.net.route import Route
from repro.net.topology import Topology
from repro.net.trace import CapacityTrace


def C(v):
    return CapacityTrace.constant(v)


def link(name, src, dst, cap, delay=0.0):
    return Link(name, src, dst, C(cap), delay)


class TestRouteBasics:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Route([])

    def test_repeated_link_rejected(self):
        l = link("a", "x", "y", 1.0)
        with pytest.raises(ValueError, match="repeats"):
            Route([l, l])

    def test_endpoints(self):
        r = Route([link("a", "S", "M", 1.0), link("b", "M", "C", 1.0)])
        assert r.source == "S"
        assert r.destination == "C"

    def test_rtt_sums_delays(self):
        r = Route([link("a", "s", "m", 1.0, 0.01), link("b", "m", "c", 1.0, 0.02)])
        assert r.one_way_delay == pytest.approx(0.03)
        assert r.rtt == pytest.approx(0.06)

    def test_is_indirect(self):
        direct = Route([link("a", "s", "c", 1.0)])
        ind = Route([link("a", "s", "c", 1.0)], via="R")
        assert not direct.is_indirect and ind.is_indirect

    def test_len_and_describe(self):
        r = Route([link("a", "S", "C", 1.0)], via=None)
        assert len(r) == 1
        assert "direct" in r.describe()


class TestBottleneck:
    def test_bottleneck_at(self):
        r = Route([link("a", "s", "m", 5.0), link("b", "m", "c", 2.0)])
        assert r.bottleneck_at(0.0) == 2.0

    def test_bottleneck_trace(self):
        l1 = Link("a", "s", "m", CapacityTrace([0.0, 10.0], [5.0, 1.0]))
        l2 = Link("b", "m", "c", C(3.0))
        r = Route([l1, l2])
        bt = r.bottleneck_trace()
        assert bt.value_at(0.0) == 3.0
        assert bt.value_at(11.0) == 1.0


class TestSharedLinks:
    def test_shares_link_with(self):
        common = link("common", "s", "m", 1.0)
        r1 = Route([common, link("a", "m", "c", 1.0)])
        r2 = Route([common, link("b", "m", "d", 1.0)])
        r3 = Route([link("c", "s", "d", 1.0)])
        assert r1.shares_link_with(r2)
        assert not r1.shares_link_with(r3)


class TestLegs:
    def build_routes(self):
        topo = Topology()
        topo.add_node(Node("C", NodeKind.CLIENT, region="asia"))
        topo.add_node(Node("R", NodeKind.RELAY, region="us"))
        topo.add_node(Node("S", NodeKind.SERVER, region="us"))
        for n in ("C", "R", "S"):
            topo.add_access_link(n, C(1000.0))
        topo.add_wan_link("S", "C", C(1.0))
        topo.add_wan_link("S", "R", C(1.0))
        topo.add_wan_link("R", "C", C(1.0))
        return topo.direct_route("C", "S"), topo.indirect_route("C", "R", "S")

    def test_direct_single_leg(self):
        direct, _ = self.build_routes()
        assert direct.leg_rtts == (direct.rtt,)
        assert direct.ramp_rtt == direct.rtt

    def test_indirect_two_legs(self):
        _, ind = self.build_routes()
        assert len(ind.leg_rtts) == 2
        assert sum(ind.leg_rtts) == pytest.approx(ind.rtt)

    def test_ramp_rtt_is_slowest_leg(self):
        _, ind = self.build_routes()
        assert ind.ramp_rtt == max(ind.leg_rtts)

    def test_split_tcp_ramp_shorter_than_end_to_end(self):
        # The slowest leg is strictly shorter than the concatenated path.
        _, ind = self.build_routes()
        assert ind.ramp_rtt < ind.rtt

    def test_leg_split_happens_at_relay_access(self):
        _, ind = self.build_routes()
        # leg 1: server access + S->R wan + relay access; leg 2: R->C wan + client access
        leg2_delay = ind.leg_rtts[1] / 2.0
        expected = ind.links[3].delay + ind.links[4].delay
        assert leg2_delay == pytest.approx(expected)
