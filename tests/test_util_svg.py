"""SVG chart renderer tests: well-formedness and geometry sanity."""

import xml.etree.ElementTree as ET

import pytest

from repro.util.svg import (
    svg_grouped_bars,
    svg_histogram,
    svg_line_chart,
    svg_sparkline,
    svg_stacked_bars,
)

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


def elements(root, tag):
    return root.findall(f".//{SVG_NS}{tag}")


class TestHistogram:
    def make(self):
        return svg_histogram(
            [10.0, 40.0, 30.0, 20.0],
            [-50, 0, 50, 100, 150],
            title="Fig 1",
        )

    def test_well_formed(self):
        root = parse(self.make())
        assert root.tag == f"{SVG_NS}svg"

    def test_one_rect_per_nonzero_bin_plus_frame_and_bg(self):
        root = parse(self.make())
        rects = elements(root, "rect")
        assert len(rects) == 4 + 2  # bars + background + frame

    def test_zero_bins_skipped(self):
        svg = svg_histogram([0.0, 100.0], [0, 1, 2], title="t")
        rects = elements(parse(svg), "rect")
        assert len(rects) == 1 + 2

    def test_title_present(self):
        assert "Fig 1" in self.make()

    def test_taller_bin_higher_bar(self):
        root = parse(self.make())
        bars = [r for r in elements(root, "rect") if r.get("fill", "").startswith("#")]
        heights = [float(r.get("height")) for r in bars]
        assert max(heights) == pytest.approx(
            heights[1], rel=1e-6
        )  # the 40% bin is the tallest

    def test_edge_mismatch(self):
        with pytest.raises(ValueError):
            svg_histogram([1.0], [0, 1, 2], title="t")


class TestLineChart:
    def make(self):
        return svg_line_chart(
            {
                "Duke": ([1, 2, 4], [10.0, 20.0, 25.0]),
                "Italy": ([1, 2, 4], [5.0, 8.0, 9.0]),
            },
            title="Fig 6",
            xlabel="k",
            ylabel="improvement",
        )

    def test_one_polyline_per_series(self):
        root = parse(self.make())
        assert len(elements(root, "polyline")) == 2

    def test_markers_present(self):
        root = parse(self.make())
        assert len(elements(root, "circle")) == 6

    def test_markers_optional(self):
        svg = svg_line_chart(
            {"a": ([0, 1], [0.0, 1.0])}, title="t", xlabel="x", ylabel="y",
            markers=False,
        )
        assert len(elements(parse(svg), "circle")) == 0

    def test_legend_labels(self):
        svg = self.make()
        assert "Duke" in svg and "Italy" in svg

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            svg_line_chart({}, title="t", xlabel="x", ylabel="y")
        with pytest.raises(ValueError):
            svg_line_chart({"a": ([], [])}, title="t", xlabel="x", ylabel="y")

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            svg_line_chart({"a": ([1], [1, 2])}, title="t", xlabel="x", ylabel="y")

    def test_text_escaped(self):
        svg = svg_line_chart(
            {"a<b": ([0, 1], [0.0, 1.0])}, title="x & y", xlabel="x", ylabel="y"
        )
        parse(svg)  # must not raise
        assert "a&lt;b" in svg


class TestGroupedBars:
    def make(self):
        return svg_grouped_bars(
            ["Berkeley", "UCSD"],
            {"average": [30.0, 50.0], "RMS": [40.0, 60.0]},
            title="Fig 5",
            ylabel="percent",
        )

    def test_bar_count(self):
        root = parse(self.make())
        rects = elements(root, "rect")
        # 2 categories x 2 groups + background + frame + 2 legend swatches.
        assert len(rects) == 4 + 2 + 2

    def test_category_labels_present(self):
        svg = self.make()
        assert "Berkeley" in svg and "UCSD" in svg

    def test_group_length_validated(self):
        with pytest.raises(ValueError):
            svg_grouped_bars(["a", "b"], {"g": [1.0]}, title="t")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            svg_grouped_bars([], {}, title="t")


class TestStackedBars:
    def _svg(self):
        return svg_stacked_bars(
            ["completed", "failed_over"],
            {"probe": [1.0, 2.0], "transfer": [10.0, 5.0], "other": [0.0, 0.0]},
            title="phase totals",
            ylabel="seconds",
        )

    def test_valid_xml_with_title_and_labels(self):
        root = parse(self._svg())
        texts = [t.text for t in elements(root, "text")]
        assert "phase totals" in texts
        assert "completed" in texts and "failed_over" in texts

    def test_one_rect_per_positive_segment(self):
        # 2 categories x 2 positive layers; the all-zero layer draws nothing
        # (legend swatches are also rects, hence >=).
        root = parse(self._svg())
        rects = elements(root, "rect")
        assert len(rects) >= 4

    def test_segments_stack_without_overlap(self):
        root = parse(self._svg())
        rects = [
            (float(r.get("x")), float(r.get("y")), float(r.get("height")))
            for r in elements(root, "rect")
            if r.get("x") is not None and r.get("fill-opacity") is not None
        ]
        by_x = {}
        for x, y, h in rects:
            by_x.setdefault(x, []).append((y, h))
        stacked = [col for col in by_x.values() if len(col) > 1]
        assert stacked  # at least one bar has two layers
        for col in stacked:
            col.sort()
            for (y1, h1), (y2, _h2) in zip(col, col[1:]):
                assert y1 + h1 <= y2 + 0.11  # lower layer starts where upper ends

    def test_deterministic(self):
        assert self._svg() == self._svg()

    def test_rejects_mismatched_layer_length(self):
        with pytest.raises(ValueError, match="expected 2"):
            svg_stacked_bars(
                ["a", "b"], {"probe": [1.0]}, title="t"
            )

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            svg_stacked_bars([], {}, title="t")


class TestSparkline:
    def test_renders_polyline_over_values(self):
        svg = svg_sparkline([0.0, 3.0, 1.0, 4.0])
        root = parse(svg)
        assert elements(root, "polyline")
        assert elements(root, "polygon")  # the filled area under the line

    def test_empty_and_flat_series_render(self):
        for values in ([], [0.0, 0.0, 0.0]):
            root = parse(svg_sparkline(values))
            assert elements(root, "polyline")

    def test_respects_size(self):
        root = parse(svg_sparkline([1.0, 2.0], width=99, height=21))
        assert root.get("width") == "99"
        assert root.get("height") == "21"

    def test_deterministic(self):
        assert svg_sparkline([1.0, 2.0, 3.0]) == svg_sparkline([1.0, 2.0, 3.0])
