"""Scale study tests: records, planner, runner, analysis, CLI, perf seeding."""

import json
import math
import os
from contextlib import contextmanager

import pytest

from repro.analysis.scale import render_scale, scale_totals
from repro.cli import main
from repro.obs.core import OBS_DIR_ENV_VAR, OBS_ENV_VAR, reset_global_observer
from repro.perf import BENCHES, BenchReport, format_report, seed_missing_baselines
from repro.trace.records import ScaleRecord, TransferRecord
from repro.trace.store import TraceStore
from repro.workloads.scale import ScaleStudyParams, plan_scale, relay_names


def _record(**overrides):
    base = dict(
        study="scale",
        client="wave000",
        site="eBay",
        repetition=0,
        start_time=0.0,
        set_size=4,
        offered=("relay0", "relay1", "relay2", "relay3"),
        selected_via=None,
        direct_throughput=1e6,
        selected_throughput=2e6,
        end_to_end_throughput=5e8,
        probe_overhead=0.1,
        file_bytes=1e10,
        n_clients=1000,
        n_completed=1000,
        n_direct=700,
        n_indirect=300,
        makespan=20.0,
        mean_throughput=1.5e6,
        throughput_p10=5e5,
        throughput_p50=1.4e6,
        throughput_p90=2.5e6,
        throughput_p99=2.7e6,
        latency_p50=4.0,
        latency_p90=9.0,
        latency_p99=15.0,
        latency_max=20.0,
    )
    base.update(overrides)
    return ScaleRecord(**base)


class TestScaleRecord:
    def test_round_trip_via_registry(self):
        rec = _record()
        d = rec.to_dict()
        assert d["record_type"] == "scale"
        back = TransferRecord.from_dict(d)
        assert isinstance(back, ScaleRecord)
        assert back == rec

    def test_derived_properties(self):
        rec = _record()
        assert rec.indirect_fraction == pytest.approx(0.3)
        assert rec.sim_transfers_per_sec == pytest.approx(50.0)
        empty = _record(
            n_clients=0, n_completed=0, n_direct=0, n_indirect=0, makespan=0.0
        )
        assert empty.indirect_fraction == 0.0
        assert empty.sim_transfers_per_sec == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            _record(n_clients=-1)
        with pytest.raises(ValueError):
            _record(n_direct=800, n_indirect=300)  # cohorts > population
        # Cohort means of zero are legal (empty cohort), unlike the base
        # record's strictly-positive pair columns.
        _record(direct_throughput=0.0, selected_throughput=0.0)

    def test_sort_key_extends_base_with_population(self):
        small = _record(n_clients=10, n_completed=10, n_direct=5, n_indirect=5)
        big = _record()
        assert small.sort_key < big.sort_key
        assert small.sort_key[:-1] == big.sort_key[:-1]


class TestPlanner:
    def test_plan_geometry(self, section2_scenario):
        params = ScaleStudyParams(clients_per_wave=50)
        plan = plan_scale(section2_scenario, waves=3, params=params)
        assert len(plan.units) == 3
        assert [u.client for u in plan.units] == ["wave000", "wave001", "wave002"]
        assert all(u.runner == "scale" for u in plan.units)
        assert all(u.offered == relay_names(params) for u in plan.units)
        assert plan.extra is params

    def test_plan_rejects_bad_waves(self, section2_scenario):
        with pytest.raises(ValueError):
            plan_scale(section2_scenario, waves=0)

    def test_params_validation(self):
        with pytest.raises(ValueError):
            ScaleStudyParams(clients_per_wave=0)
        with pytest.raises(ValueError):
            ScaleStudyParams(engine="turbo")
        with pytest.raises(ValueError):
            ScaleStudyParams(relay_rtt_factor=0.5)
        with pytest.raises(ValueError):
            ScaleStudyParams(size_classes=())

    def test_fingerprint_depends_on_params(self, section2_scenario):
        a = plan_scale(
            section2_scenario,
            waves=1,
            params=ScaleStudyParams(clients_per_wave=50),
        )
        b = plan_scale(
            section2_scenario,
            waves=1,
            params=ScaleStudyParams(clients_per_wave=60),
        )
        assert a.fingerprint() != b.fingerprint()


class TestRunnerIntegration:
    @pytest.fixture(scope="class")
    def tiny_campaign(self, section2_scenario):
        from repro.runner.pool import execute_plan

        plan = plan_scale(
            section2_scenario,
            waves=2,
            params=ScaleStudyParams(clients_per_wave=150),
        )
        serial = execute_plan(plan, scenario=section2_scenario, jobs=1)
        return plan, serial.store

    def test_emits_one_scale_record_per_wave(self, tiny_campaign):
        plan, store = tiny_campaign
        assert len(store) == len(plan)
        assert all(isinstance(r, ScaleRecord) for r in store.records)
        for r in store.records:
            assert r.n_clients == 150
            assert r.n_completed == r.n_clients
            assert r.n_direct + r.n_indirect == r.n_clients
            assert r.makespan > 0.0

    def test_percentiles_are_ordered(self, tiny_campaign):
        _plan, store = tiny_campaign
        for r in store.records:
            assert (
                r.throughput_p10 <= r.throughput_p50
                <= r.throughput_p90 <= r.throughput_p99
            )
            assert (
                r.latency_p50 <= r.latency_p90
                <= r.latency_p99 <= r.latency_max <= r.makespan
            )
            assert r.mean_throughput > 0.0

    def test_parallel_execution_is_byte_identical(
        self, section2_scenario, tiny_campaign
    ):
        from repro.runner.pool import execute_plan

        plan, serial_store = tiny_campaign
        parallel = execute_plan(plan, scenario=section2_scenario, jobs=2)
        assert [r.to_dict() for r in parallel.store.records] == [
            r.to_dict() for r in serial_store.records
        ]

    def test_classic_engine_is_byte_identical(
        self, section2_scenario, tiny_campaign
    ):
        """Vector vs per-object oracle on the same small population."""
        from repro.runner.pool import execute_plan

        _plan, vector_store = tiny_campaign
        plan = plan_scale(
            section2_scenario,
            waves=2,
            params=ScaleStudyParams(clients_per_wave=150, engine="classic"),
        )
        classic = execute_plan(plan, scenario=section2_scenario, jobs=1)
        assert [r.to_dict() for r in classic.store.records] == [
            r.to_dict() for r in vector_store.records
        ]

    def test_rows_round_trip_through_store(self, tiny_campaign, tmp_path):
        _plan, store = tiny_campaign
        path = tmp_path / "scale.jsonl"
        store.save_jsonl(str(path))
        loaded = TraceStore.load_jsonl(str(path))
        assert [r.to_dict() for r in loaded.records] == [
            r.to_dict() for r in store.records
        ]


@contextmanager
def _env(**overrides):
    saved = {key: os.environ.get(key) for key in overrides}
    for key, value in overrides.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


SCALE_ARGS = ["scale", "--clients", "150", "--waves", "2", "--seed", "11"]


def _run_cli(argv, *, obs_env=None):
    with _env(**{OBS_ENV_VAR: obs_env, OBS_DIR_ENV_VAR: None}):
        reset_global_observer()
        try:
            assert main(argv) == 0
        finally:
            reset_global_observer()


class TestCli:
    @pytest.fixture(scope="class")
    def plain_artefact(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("scale") / "scale.jsonl"
        _run_cli(SCALE_ARGS + ["--out", str(path)])
        return path.read_bytes()

    def test_artefact_rows_parse(self, plain_artefact):
        rows = [
            json.loads(line)
            for line in plain_artefact.decode().splitlines()
            if line and not line.startswith("#")
        ]
        assert [r["record_type"] for r in rows] == ["scale", "scale"]

    def test_jobs2_byte_identical(self, plain_artefact, tmp_path):
        out = tmp_path / "scale.jsonl"
        _run_cli(SCALE_ARGS + ["--out", str(out), "--jobs", "2"])
        assert out.read_bytes() == plain_artefact

    def test_obs_byte_identical(self, plain_artefact, tmp_path):
        out = tmp_path / "scale.jsonl"
        _run_cli(SCALE_ARGS + ["--out", str(out)], obs_env="1")
        assert out.read_bytes() == plain_artefact
        assert (tmp_path / "scale.jsonl.obs.jsonl").exists()

    def test_classic_engine_byte_identical(self, plain_artefact, tmp_path):
        out = tmp_path / "scale.jsonl"
        _run_cli(SCALE_ARGS + ["--out", str(out), "--engine", "classic"])
        assert out.read_bytes() == plain_artefact

    def test_renders_study_table(self, tmp_path, capsys):
        out = tmp_path / "scale.jsonl"
        _run_cli(SCALE_ARGS + ["--out", str(out)])
        printed = capsys.readouterr().out
        assert "scale study" in printed
        assert "wave000" in printed and "wave001" in printed

    def test_quick_caps_population(self, tmp_path):
        # --quick caps at 10k; at 150 requested it must change nothing.
        out = tmp_path / "scale.jsonl"
        _run_cli(SCALE_ARGS + ["--out", str(out), "--quick"])
        rows = [
            json.loads(line)
            for line in out.read_text().splitlines()
            if line and not line.startswith("#")
        ]
        assert all(r["n_clients"] == 150 for r in rows)

    def test_rejects_unknown_site(self, tmp_path, capsys):
        out = tmp_path / "scale.jsonl"
        assert main(["scale", "--site", "nope", "--out", str(out)]) == 2
        assert "unknown site" in capsys.readouterr().err

    def test_rejects_bad_waves(self, tmp_path, capsys):
        out = tmp_path / "scale.jsonl"
        assert main(SCALE_ARGS[:1] + ["--waves", "0", "--out", str(out)]) == 2
        assert "--waves" in capsys.readouterr().err


class TestAnalysis:
    def _rows(self):
        return [
            _record(),
            _record(
                client="wave001",
                repetition=1,
                start_time=600.0,
                n_clients=3000,
                n_completed=3000,
                n_direct=1500,
                n_indirect=1500,
                mean_throughput=3e6,
                latency_p99=25.0,
                latency_max=30.0,
                makespan=30.0,
            ),
        ]

    def test_totals_weighted_by_population(self):
        totals = scale_totals(self._rows())
        assert totals.n_waves == 2
        assert totals.n_clients == 4000
        assert totals.n_completed == 4000
        assert totals.indirect_fraction == pytest.approx(1800 / 4000)
        assert totals.mean_throughput == pytest.approx(
            (1.5e6 * 1000 + 3e6 * 3000) / 4000
        )
        assert totals.worst_latency_p99 == 25.0
        assert totals.worst_latency_max == 30.0

    def test_totals_empty_input_is_nan_safe(self):
        totals = scale_totals([])
        assert totals.n_waves == 0 and totals.n_clients == 0
        assert math.isnan(totals.indirect_fraction)
        assert math.isnan(totals.mean_throughput)
        assert math.isnan(totals.worst_latency_p99)

    def test_render_scale(self):
        text = render_scale(self._rows())
        assert "wave000" in text and "wave001" in text
        assert "indirect share 45.0%" in text
        text_empty = render_scale([])
        assert "n/a" in text_empty  # NaN totals render as n/a, not nan


class TestBaselineSeeding:
    def _report(self, benches, *, quick=False):
        return BenchReport(benches=benches, quick=quick)

    def test_first_run_records_own_number(self):
        report = self._report(
            {"event_queue": {"optimised": 1500.0, "baseline": None, "unit": "ns/op"}}
        )
        seed_missing_baselines(report, None)
        bench = report.benches["event_queue"]
        assert bench["baseline"] == 1500.0
        assert bench["baseline_source"] == "first-run"
        assert bench["speedup"] == 1.0

    def test_later_runs_inherit_recorded_baseline(self):
        prior = self._report(
            {"event_queue": {"optimised": 1500.0, "baseline": 1500.0}}
        )
        report = self._report(
            {"event_queue": {"optimised": 1200.0, "baseline": None}}
        )
        seed_missing_baselines(report, prior)
        bench = report.benches["event_queue"]
        assert bench["baseline"] == 1500.0
        assert bench["baseline_source"] == "recorded"
        assert bench["speedup"] == pytest.approx(1.25)

    def test_toggleable_benches_are_untouched(self):
        report = self._report(
            {"tick": {"optimised": 10.0, "baseline": 120.0, "speedup": 12.0}}
        )
        seed_missing_baselines(report, None)
        assert report.benches["tick"] == {
            "optimised": 10.0,
            "baseline": 120.0,
            "speedup": 12.0,
        }

    def test_unmeasured_bench_stays_null(self):
        report = self._report({"broken": {"optimised": None, "baseline": None}})
        seed_missing_baselines(report, None)
        assert report.benches["broken"]["baseline"] is None

    def test_format_report_renders_na_and_footnote(self):
        report = self._report(
            {
                "a": {"optimised": 100.0, "baseline": None, "unit": "ns/op"},
                "b": {"optimised": 100.0, "baseline": None, "unit": "ns/op"},
            }
        )
        prior = self._report({"b": {"optimised": 90.0, "baseline": 90.0}})
        text_before = format_report(report)
        assert "n/a" in text_before
        seed_missing_baselines(report, prior)
        text = format_report(report)
        assert "baseline recorded this run" in text
        assert "baseline inherited from first recording" in text

    def test_new_benches_are_registered(self):
        assert "vec_epoch" in BENCHES
        assert "scale_campaign" in BENCHES
