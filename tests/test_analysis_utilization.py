"""Table II / Fig. 5 / Table III utilisation analysis tests."""

import math

import numpy as np
import pytest

from repro.analysis.utilization import (
    client_relay_utilization,
    overall_average_utilization,
    top_relays_per_client,
    total_utilization_stats,
    utilization_improvement_correlation,
    utilization_vs_improvement,
)
from repro.trace.records import TransferRecord
from repro.trace.store import TraceStore


def rec(client, offered, chosen, rep=0, direct=100.0, selected=150.0):
    return TransferRecord(
        study="t",
        client=client,
        site="eBay",
        repetition=rep,
        start_time=float(rep),
        set_size=len(offered),
        offered=tuple(offered),
        selected_via=chosen,
        direct_throughput=direct,
        selected_throughput=selected,
        end_to_end_throughput=selected,
        probe_overhead=0.0,
        file_bytes=1e6,
    )


class TestClientRelayUtilization:
    def test_win_rates(self):
        s = TraceStore(
            [
                rec("A", ["R1"], "R1"),
                rec("A", ["R1"], None, rep=1),
                rec("A", ["R2"], "R2", rep=2),
            ]
        )
        util = client_relay_utilization(s)
        assert util[("A", "R1")] == pytest.approx(0.5)
        assert util[("A", "R2")] == pytest.approx(1.0)

    def test_multi_relay_offers_counted(self):
        s = TraceStore([rec("A", ["R1", "R2"], "R1")])
        util = client_relay_utilization(s)
        assert util[("A", "R1")] == 1.0
        assert util[("A", "R2")] == 0.0


class TestTopRelays:
    def test_sorted_descending(self):
        s = TraceStore(
            [rec("A", ["R1"], "R1", rep=i) for i in range(4)]
            + [rec("A", ["R2"], "R2" if i < 2 else None, rep=10 + i) for i in range(4)]
            + [rec("A", ["R3"], None, rep=20 + i) for i in range(4)]
        )
        top = top_relays_per_client(s, top=3)["A"]
        assert [r for r, _ in top] == ["R1", "R2", "R3"]
        assert top[0][1] == pytest.approx(1.0)
        assert top[1][1] == pytest.approx(0.5)

    def test_top_k_truncation(self):
        s = TraceStore([rec("A", [f"R{i}"], f"R{i}", rep=i) for i in range(5)])
        assert len(top_relays_per_client(s, top=3)["A"]) == 3

    def test_min_offers_filter(self):
        s = TraceStore(
            [rec("A", ["R1"], "R1")]
            + [rec("A", ["R2"], "R2", rep=1 + i) for i in range(3)]
        )
        top = top_relays_per_client(s, min_offers=2)["A"]
        assert [r for r, _ in top] == ["R2"]

    def test_campaign_overlap_of_top_relays(self, section2_store):
        """Paper Table II: top relays overlap heavily across clients."""
        top = top_relays_per_client(section2_store, top=3)
        all_top = [r for relays in top.values() for r, _ in relays]
        distinct = len(set(all_top))
        # 22 clients x 3 slots = 66 entries drawn from 21 relays; heavy
        # overlap means far fewer distinct relays than entries.
        assert distinct < len(all_top) / 2


class TestTotalUtilization:
    def test_fig5_moments(self):
        s = TraceStore(
            [
                rec("A", ["R1"], "R1"),
                rec("B", ["R1"], None),
            ]
        )
        stats = total_utilization_stats(s)["R1"]
        assert stats.n_clients == 2
        assert stats.average == pytest.approx(0.5)
        assert stats.stdev == pytest.approx(0.5)
        assert stats.rms == pytest.approx(math.sqrt(0.5))

    def test_overall_average(self):
        s = TraceStore(
            [rec("A", ["R1"], "R1"), rec("A", ["R2"], None)]
        )
        assert overall_average_utilization(s) == pytest.approx(0.5)

    def test_overall_average_empty(self):
        assert math.isnan(overall_average_utilization(TraceStore()))

    def test_campaign_average_near_paper(self, section2_store):
        """Paper §3.4: average utilisation across relays ~45%."""
        avg = overall_average_utilization(section2_store)
        assert 0.30 <= avg <= 0.60


class TestTableIII:
    def build(self):
        rows = []
        # R1 offered 4x, chosen 3x with good improvements.
        for i in range(4):
            chosen = "R1" if i < 3 else None
            rows.append(rec("Duke", ["R1", "R2"], chosen, rep=i, selected=180.0))
        # R2 offered 4x (above), chosen once with meh improvement.
        rows.append(rec("Duke", ["R2"], "R2", rep=10, selected=105.0))
        return TraceStore(rows)

    def test_rows_sorted_by_utilization(self):
        rows = utilization_vs_improvement(self.build(), "Duke")
        assert rows[0].relay == "R1"
        assert rows[0].utilization_percent == pytest.approx(75.0)
        assert rows[1].relay == "R2"
        assert rows[1].utilization_percent == pytest.approx(20.0)

    def test_improvement_only_when_chosen(self):
        rows = utilization_vs_improvement(self.build(), "Duke")
        r2 = rows[1]
        assert r2.mean_improvement_percent == pytest.approx(5.0)

    def test_zero_utilization_dropped_by_default(self):
        s = TraceStore([rec("Duke", ["R1", "R9"], "R1")])
        rows = utilization_vs_improvement(s, "Duke")
        assert [r.relay for r in rows] == ["R1"]

    def test_zero_utilization_included_on_request(self):
        s = TraceStore([rec("Duke", ["R1", "R9"], "R1")])
        rows = utilization_vs_improvement(s, "Duke", include_zero_utilization=True)
        assert {r.relay for r in rows} == {"R1", "R9"}
        r9 = next(r for r in rows if r.relay == "R9")
        assert math.isnan(r9.mean_improvement_percent)

    def test_correlation(self):
        rows = utilization_vs_improvement(self.build(), "Duke")
        corr = utilization_improvement_correlation(rows)
        assert corr > 0.99  # two points, increasing

    def test_correlation_degenerate(self):
        assert math.isnan(utilization_improvement_correlation([]))

    def test_campaign_correlation_positive(self, section4_store):
        """Paper Table III: utilisation correlates with improvement."""
        rows = utilization_vs_improvement(section4_store, "Duke")
        corr = utilization_improvement_correlation(rows)
        assert corr > 0.0
