"""Whole-program QA-F flow analyzer tests (``repro check``).

Every planted hazard here is *interprocedural* - the construction and the
violation live in different functions (usually different modules), so the
per-file linter cannot see them.  Fixture packages are generated under
``tmp_path`` so the repository's own lint/check runs never trip on them.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.qa.flow import (
    Baseline,
    BaselineEntry,
    analyze_paths,
    build_project,
    to_sarif,
    validate_sarif,
    write_baseline,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def make_pkg(tmp_path, files):
    """Write a ``fixpkg`` package from {filename: source} and return its path."""
    pkg = tmp_path / "fixpkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("", encoding="utf-8")
    for name, src in files.items():
        (pkg / name).write_text(src, encoding="utf-8")
    return str(pkg)


def by_code(findings, code):
    return [f for f in findings if f.code == code]


# --------------------------------------------------------------------------- #
# fixture sources (module-level constants so line numbers stay reviewable)
# --------------------------------------------------------------------------- #
GEN_PY = """\
from numpy.random import default_rng


def make_stream(seed=None):
    return default_rng(seed)
"""

MID_PY = """\
from fixpkg.gen import make_stream


def build(seed=None):
    return make_stream(seed)
"""

STUDY_PY = """\
from fixpkg.gen import make_stream
from fixpkg.mid import build


def main():
    direct = make_stream()
    explicit = make_stream(None)
    chained = build()
    ok = make_stream(derive_seed(7))
    return direct, explicit, chained, ok
"""

CLOCK_PY = """\
import time


def stamp():
    return time.time()
"""

SINK_PY = """\
from fixpkg.clockmod import stamp


def persist(store):
    store.save_jsonl([stamp()])


def record(store, when):
    store.save_jsonl([when])


def relay(store):
    record(store, stamp())
"""

BUILD_PY = """\
def collect():
    return {"b": 1, "a": 2}
"""

OUT_PY = """\
from fixpkg.build import collect


def save(store):
    rows = [key for key in collect()]
    store.save_jsonl(rows)


def save_sorted(store):
    rows = [key for key in sorted(collect())]
    store.save_jsonl(rows)


def just_count():
    return sum(1 for _ in collect())
"""

STATE_PY = """\
CACHE = {}


def remember(key, value):
    CACHE[key] = value
"""

WORKER_PY = """\
from multiprocessing import Process

from fixpkg.state import remember


def work(item):
    remember(item, item)


def launch():
    p = Process(target=work, args=(1,))
    p.start()


def launch_lambda():
    p = Process(target=lambda: None)
    p.start()
"""

DEFAULTS_PY = """\
def extend(items=[]):
    items.append(1)
    return items
"""


@pytest.fixture
def full_fixture(tmp_path):
    pkg = make_pkg(
        tmp_path,
        {
            "gen.py": GEN_PY,
            "mid.py": MID_PY,
            "study.py": STUDY_PY,
            "clockmod.py": CLOCK_PY,
            "sink.py": SINK_PY,
            "build.py": BUILD_PY,
            "out.py": OUT_PY,
            "state.py": STATE_PY,
            "worker.py": WORKER_PY,
            "defaults.py": DEFAULTS_PY,
        },
    )
    return pkg, analyze_paths([pkg])


class TestUnseededFlow:
    def test_cross_module_omission_flagged_at_construction_site(self, full_fixture):
        pkg, findings = full_fixture
        hits = by_code(findings, "QA-F001")
        # main() omitting the seed (direct + via build) and passing literal
        # None each complete an unseeded chain into gen.make_stream.
        assert len(hits) == 3
        for f in hits:
            assert f.path.endswith("gen.py")
            assert f.line == 5  # the default_rng(seed) call
            assert f.symbol == "fixpkg.gen.make_stream"

    def test_reports_both_omission_and_literal_none(self, full_fixture):
        _, findings = full_fixture
        messages = [f.message for f in by_code(findings, "QA-F001")]
        assert any("omits `seed`" in m for m in messages)
        assert any("passes None for `seed`" in m for m in messages)

    def test_chain_through_middle_module_recorded_in_trace(self, full_fixture):
        _, findings = full_fixture
        chained = [
            f
            for f in by_code(findings, "QA-F001")
            if any("fixpkg.mid.build" in hop for hop in f.trace)
        ]
        assert len(chained) == 1
        # Trace runs entry -> construction site.
        assert "fixpkg.study.main" in chained[0].trace[0]
        assert "fixpkg.gen.make_stream" in chained[0].trace[-1]

    def test_seed_producer_call_discharges_obligation(self, full_fixture):
        _, findings = full_fixture
        # make_stream(derive_seed(7)) must not be reported: only the three
        # genuinely unseeded chains are.
        assert len(by_code(findings, "QA-F001")) == 3

    def test_unreachable_caller_not_reported(self, tmp_path):
        pkg = make_pkg(
            tmp_path,
            {
                "gen.py": GEN_PY,
                "study.py": (
                    "from fixpkg.gen import make_stream\n"
                    "\n"
                    "\n"
                    "def main():\n"
                    "    return make_stream(7)\n"
                    "\n"
                    "\n"
                    "def _dead_helper():\n"
                    "    return make_stream()\n"
                ),
            },
        )
        findings = analyze_paths([pkg])
        # _dead_helper is not reachable from the entry point `main`.
        assert by_code(findings, "QA-F001") == []


class TestWallClockFlow:
    def test_cross_module_wall_value_in_sink_call(self, full_fixture):
        pkg, findings = full_fixture
        hits = by_code(findings, "QA-F002")
        direct = [f for f in hits if f.symbol == "fixpkg.sink.persist"]
        assert len(direct) == 1
        assert direct[0].path.endswith("sink.py")
        assert direct[0].line == 5  # store.save_jsonl([stamp()])
        assert "save_jsonl" in direct[0].message

    def test_wall_value_onto_sink_flowing_parameter(self, full_fixture):
        _, findings = full_fixture
        hits = [
            f for f in by_code(findings, "QA-F002") if f.symbol == "fixpkg.sink.relay"
        ]
        assert len(hits) == 1
        assert hits[0].line == 13  # record(store, stamp())
        assert "parameter `when`" in hits[0].message
        assert any("fixpkg.sink.record" in hop for hop in hits[0].trace)


class TestIterationOrder:
    def test_dict_returning_callee_iterated_into_sink(self, full_fixture):
        _, findings = full_fixture
        hits = [
            f for f in by_code(findings, "QA-F003") if f.path.endswith("out.py")
        ]
        assert [f.symbol for f in hits] == ["fixpkg.out.save"]
        assert hits[0].line == 5  # [key for key in collect()]

    def test_sorted_wrapper_and_non_artefact_consumer_are_clean(self, full_fixture):
        _, findings = full_fixture
        symbols = {f.symbol for f in by_code(findings, "QA-F003")}
        assert "fixpkg.out.save_sorted" not in symbols
        assert "fixpkg.out.just_count" not in symbols


class TestSpawnSafety:
    def test_worker_reachable_global_mutation_in_other_module(self, full_fixture):
        _, findings = full_fixture
        hits = [
            f for f in by_code(findings, "QA-F004") if f.path.endswith("state.py")
        ]
        assert len(hits) == 1
        assert hits[0].symbol == "fixpkg.state.remember"
        assert hits[0].line == 5  # CACHE[key] = value

    def test_lambda_process_target_flagged(self, full_fixture):
        _, findings = full_fixture
        hits = [
            f
            for f in by_code(findings, "QA-F004")
            if f.symbol == "fixpkg.worker.launch_lambda"
        ]
        assert len(hits) == 1


class TestMutableDefaults:
    def test_mutable_default_flagged(self, full_fixture):
        _, findings = full_fixture
        hits = by_code(findings, "QA-F005")
        assert len(hits) == 1
        assert hits[0].symbol == "fixpkg.defaults.extend"
        assert hits[0].path.endswith("defaults.py")
        assert hits[0].line == 1


class TestSuppression:
    def test_ignore_comment_silences_finding_line(self, tmp_path):
        pkg = make_pkg(
            tmp_path,
            {
                "build.py": BUILD_PY,
                "out.py": OUT_PY.replace(
                    "rows = [key for key in collect()]",
                    "rows = [key for key in collect()]  # qa: ignore[QA-F003]",
                ),
            },
        )
        findings = analyze_paths([pkg])
        assert by_code(findings, "QA-F003") == []


class TestBaseline:
    def test_write_load_apply_roundtrip(self, full_fixture, tmp_path):
        pkg, findings = full_fixture
        path = tmp_path / "baseline.json"
        write_baseline(findings, str(path), justification="fixture accepted")
        result = Baseline.load(str(path)).apply(findings)
        assert result.new == []
        assert len(result.accepted) == len(findings)
        assert result.stale == []

    def test_new_and_stale_detection(self, full_fixture):
        _, findings = full_fixture
        stale_entry = BaselineEntry(
            code="QA-F001",
            path="fixpkg/nowhere.py",
            symbol="fixpkg.nowhere.gone",
            justification="obsolete",
        )
        result = Baseline(
            [stale_entry]
        ).apply(findings)
        assert len(result.new) == len(findings)
        assert result.stale == [stale_entry]

    def test_path_matching_tolerates_absolute_prefix(self, full_fixture):
        _, findings = full_fixture
        target = by_code(findings, "QA-F005")[0]
        entry = BaselineEntry(
            code=target.code,
            path="fixpkg/defaults.py",
            symbol=target.symbol,
            justification="accepted",
        )
        assert entry.matches(target)

    def test_load_rejects_bad_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "nope", "findings": []}))
        with pytest.raises(ValueError, match="schema"):
            Baseline.load(str(path))


class TestSarif:
    def test_sarif_output_validates_and_carries_code_flows(self, full_fixture):
        _, findings = full_fixture
        doc = to_sarif(findings)
        assert validate_sarif(doc) == []
        run = doc["runs"][0]
        assert len(run["results"]) == len(findings)
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"QA-F001", "QA-F002", "QA-F003", "QA-F004", "QA-F005"} <= rule_ids
        with_flow = [r for r in run["results"] if "codeFlows" in r]
        assert with_flow, "interprocedural findings must carry codeFlows"

    def test_validator_catches_structural_damage(self, full_fixture):
        _, findings = full_fixture
        doc = to_sarif(findings)
        doc["runs"][0]["results"][0].pop("message")
        assert validate_sarif(doc) != []


class TestRealTree:
    def test_repo_tree_matches_committed_baseline(self):
        findings = analyze_paths([str(REPO_ROOT / "src")])
        baseline = Baseline.load(str(REPO_ROOT / "qa-baseline.json"))
        result = baseline.apply(findings)
        assert result.new == [], [f.format(hints=False) for f in result.new]
        assert result.stale == [], [e.to_dict() for e in result.stale]

    def test_project_covers_repo_modules(self):
        project = build_project([str(REPO_ROOT / "src")])
        assert "repro.workloads.failures" in project.modules
        assert any(
            q.endswith("execute_plan") for q in project.entry_points()
        )


class TestCheckCli:
    def test_exit_one_on_findings_and_zero_with_baseline(
        self, full_fixture, tmp_path, capsys
    ):
        pkg, findings = full_fixture
        assert main(["check", pkg]) == 1
        out = capsys.readouterr().out
        assert "QA-F001" in out and "finding(s)" in out

        baseline = tmp_path / "b.json"
        assert main(["check", pkg, "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert main(["check", pkg, "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert f"{len(findings)} accepted by baseline" in out

    def test_sarif_flag_writes_valid_file(self, full_fixture, tmp_path, capsys):
        pkg, _ = full_fixture
        sarif = tmp_path / "out.sarif"
        main(["check", pkg, "--sarif", str(sarif)])
        capsys.readouterr()
        doc = json.loads(sarif.read_text(encoding="utf-8"))
        assert doc["version"] == "2.1.0"
        assert validate_sarif(doc) == []

    def test_usage_errors_exit_two(self, tmp_path, capsys):
        assert main(["check", str(tmp_path / "missing")]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        pkg = make_pkg(tmp_path, {"defaults.py": DEFAULTS_PY})
        assert main(["check", pkg, "--baseline", str(bad)]) == 2
        capsys.readouterr()

    def test_rule_catalogue_lists_flow_rules(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        assert "Whole-program flow rules" in out
        for code in ("QA-F001", "QA-F002", "QA-F003", "QA-F004", "QA-F005"):
            assert code in out
