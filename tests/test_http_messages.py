"""HTTP message and byte-range algebra tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.http.messages import ByteRange, HttpRequest, HttpResponse, RangeError


class TestByteRangeConstruction:
    def test_first_bytes(self):
        r = ByteRange.first_bytes(100)
        assert (r.first, r.last) == (0, 99)
        assert r.length == 100

    def test_first_bytes_rejects_zero(self):
        with pytest.raises(RangeError):
            ByteRange.first_bytes(0)

    def test_suffix(self):
        r = ByteRange.suffix_from(500)
        assert r.first == 500 and r.last is None and r.length is None

    def test_inverted_rejected(self):
        with pytest.raises(RangeError):
            ByteRange(10, 5)

    def test_negative_rejected(self):
        with pytest.raises(RangeError):
            ByteRange(-1)


class TestHeaderRoundTrip:
    def test_closed_range(self):
        assert ByteRange(0, 99).header_value() == "bytes=0-99"
        assert ByteRange.parse("bytes=0-99") == ByteRange(0, 99)

    def test_open_range(self):
        assert ByteRange(100).header_value() == "bytes=100-"
        assert ByteRange.parse("bytes=100-") == ByteRange(100, None)

    def test_malformed(self):
        for bad in ("bytes=", "0-99", "bytes=a-b", "bytes=5", "bytes=-5"):
            with pytest.raises(RangeError):
                ByteRange.parse(bad)

    def test_whitespace_tolerated(self):
        assert ByteRange.parse("  bytes=1-2  ") == ByteRange(1, 2)

    @given(st.integers(0, 10**9), st.one_of(st.none(), st.integers(0, 10**9)))
    def test_round_trip_property(self, first, last):
        if last is not None and last < first:
            first, last = last, first
        r = ByteRange(first, last)
        assert ByteRange.parse(r.header_value()) == r


class TestResolveAndRemainder:
    def test_resolve_clamps_last(self):
        r = ByteRange(0, 10_000).resolve(100)
        assert r.last == 99

    def test_resolve_open_range(self):
        r = ByteRange.suffix_from(10).resolve(100)
        assert (r.first, r.last) == (10, 99)

    def test_resolve_unsatisfiable(self):
        with pytest.raises(RangeError):
            ByteRange(100).resolve(100)

    def test_remainder_basic(self):
        rem = ByteRange.first_bytes(100).remainder(1000)
        assert (rem.first, rem.last) == (100, 999)

    def test_remainder_none_when_probe_covers_file(self):
        assert ByteRange.first_bytes(1000).remainder(1000) is None
        assert ByteRange.first_bytes(2000).remainder(1000) is None

    @given(st.integers(1, 10**6), st.integers(1, 10**6))
    def test_probe_plus_remainder_cover_file_exactly(self, x, n):
        probe = ByteRange.first_bytes(x)
        if x >= n:
            assert probe.remainder(n) is None
            return
        rem = probe.remainder(n)
        assert rem.first == x
        assert rem.last == n - 1
        assert probe.resolve(n).length + rem.length == n


class TestHttpRequest:
    def test_headers_with_range(self):
        req = HttpRequest("eBay", "/f", ByteRange.first_bytes(10))
        assert req.headers() == {"Host": "eBay", "Range": "bytes=0-9"}
        assert req.is_range_request

    def test_headers_without_range(self):
        req = HttpRequest("eBay", "/f")
        assert "Range" not in req.headers()
        assert not req.is_range_request

    def test_forwarded_preserves_range(self):
        req = HttpRequest("eBay", "/f", ByteRange(5, 9))
        fwd = req.forwarded("Texas")
        assert fwd.via == "Texas"
        assert fwd.byte_range == req.byte_range
        assert fwd.host == req.host


class TestHttpResponse:
    def test_body_bytes(self):
        resp = HttpResponse(206, 1000, ByteRange(0, 99))
        assert resp.body_bytes == 100
        assert resp.is_partial

    def test_content_range_header(self):
        resp = HttpResponse(206, 1000, ByteRange(100, 999))
        assert resp.content_range_header() == "bytes 100-999/1000"

    def test_unresolved_range_rejected(self):
        with pytest.raises(RangeError):
            HttpResponse(206, 1000, ByteRange(0, None))

    def test_full_response_not_partial(self):
        resp = HttpResponse(200, 100, ByteRange(0, 99))
        assert not resp.is_partial
