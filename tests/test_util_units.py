"""Unit conversion tests."""

import math

import pytest

from repro.util import units


class TestConversions:
    def test_mbps_round_trip(self):
        for mbps in (0.1, 1.0, 2.5, 100.0):
            assert units.bytes_per_s_to_mbps(  # qa: ignore[QA-U102] - round trip
                units.mbps_to_bytes_per_s(mbps)
            ) == pytest.approx(mbps)

    def test_one_mbps_is_125000_bytes_per_s(self):
        assert units.mbps_to_bytes_per_s(1.0) == pytest.approx(125_000.0)

    def test_kb_and_mb_are_decimal(self):
        assert units.kb(100) == 100_000.0
        assert units.mb(2) == 2_000_000.0
        assert units.GB == 1000 * units.MB

    def test_minute_hour(self):
        assert units.HOUR == 60 * units.MINUTE


class TestSecondsToTransfer:
    def test_basic(self):
        assert units.seconds_to_transfer(1_000_000, 125_000) == pytest.approx(8.0)

    def test_zero_size_is_instant(self):
        assert units.seconds_to_transfer(0.0, 125_000) == 0.0

    def test_negative_size_is_instant(self):
        assert units.seconds_to_transfer(-5.0, 125_000) == 0.0

    def test_zero_rate_raises(self):
        with pytest.raises(ValueError, match="non-positive rate"):
            units.seconds_to_transfer(100.0, 0.0)

    def test_negative_rate_raises(self):
        with pytest.raises(ValueError):
            units.seconds_to_transfer(100.0, -1.0)
