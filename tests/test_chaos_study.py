"""Chaos study tests: planner, records, determinism, kill/resume fuzz.

The campaign here is deliberately tiny (one client, one repetition slot,
two fault cells) because the parallel cases spawn real worker processes
and the fuzz cases SIGKILL them mid-campaign.  Byte identity is asserted
on the serialised JSONL, the strongest form of the determinism contract.
"""

import math

import pytest

from repro.analysis.chaos import (
    availability_by_mechanism,
    chaos_cells as analysis_cells,
    mechanism_separation,
    render_chaos,
)
from repro.chaos import RunnerFaultPlan
from repro.core.resilience import RecoveryEvent
from repro.runner.pool import execute_plan, run_unit
from repro.trace.records import ChaosRecord, TransferRecord
from repro.trace.store import TraceStore
from repro.workloads.chaos import (
    CHAOS_SESSION_CONFIG,
    ChaosStudyParams,
    chaos_cells,
    chaos_fault_plan,
    parse_chaos_variant,
    plan_chaos,
)

FAMILIES = ("none", "gray")
INTENSITIES = ("mild",)


@pytest.fixture(scope="module")
def plan(section2_scenario):
    return plan_chaos(
        section2_scenario,
        repetitions=1,
        interval=360.0,
        k=3,
        families=FAMILIES,
        intensities=INTENSITIES,
        config=CHAOS_SESSION_CONFIG,
        clients=["Italy"],
    )


@pytest.fixture(scope="module")
def serial_store(plan, section2_scenario) -> TraceStore:
    return execute_plan(plan, jobs=1, scenario=section2_scenario).store


def store_bytes(tmp_path, store: TraceStore, name: str) -> bytes:
    path = tmp_path / name
    store.save_jsonl(path)
    return path.read_bytes()


class TestChaosRecord:
    def _record(self, **overrides):
        base = dict(
            study="chaos",
            client="Italy",
            site="eBay",
            repetition=0,
            start_time=0.0,
            set_size=2,
            offered=("R1", "R2"),
            selected_via="R1",
            direct_throughput=100_000.0,
            selected_throughput=200_000.0,
            end_to_end_throughput=150_000.0,
            probe_overhead=1.0,
            file_bytes=4_000_000.0,
            mechanism="failover",
            fault_family="gray",
            intensity="severe",
            stripe_k=3,
            bytes_received=4_000_000.0,
            direct_duration=40.0,
            selected_duration=26.7,
        )
        base.update(overrides)
        return ChaosRecord(**base)

    def test_round_trip_via_registry(self):
        rec = self._record(
            n_failovers=1,
            time_to_recover=12.5,
            fault_downtime=200.0,
            fault_overlap=True,
            recovery_events=(
                RecoveryEvent(
                    time=11.0, kind="stall", path="R1", bytes_received=1e6
                ),
                RecoveryEvent(
                    time=23.5, kind="failover", path="R2",
                    bytes_received=1e6, detail=12.5,
                ),
            ),
        )
        d = rec.to_dict()
        assert d["record_type"] == "chaos"
        back = TransferRecord.from_dict(d)
        assert isinstance(back, ChaosRecord)
        assert back == rec

    def test_properties(self):
        rec = self._record()
        assert rec.available and not rec.aborted
        assert rec.delivered_fraction == 1.0
        assert rec.speedup == pytest.approx(40.0 / 26.7)
        partial = self._record(outcome="aborted", bytes_received=1_000_000.0)
        assert partial.aborted and not partial.available
        assert partial.delivered_fraction == 0.25

    def test_validation(self):
        with pytest.raises(ValueError, match="mechanism"):
            self._record(mechanism="prayer")
        with pytest.raises(ValueError, match="fault_downtime"):
            self._record(fault_downtime=-1.0)


class TestPlanner:
    def test_cell_grid(self):
        cells = chaos_cells(("none", "gray", "flap"), ("mild", "severe"))
        assert cells == [
            ("none", "mild"),
            ("gray", "mild"),
            ("gray", "severe"),
            ("flap", "mild"),
            ("flap", "severe"),
        ]
        with pytest.raises(ValueError, match="unknown fault families"):
            chaos_cells(("meteor",), ("mild",))

    def test_variant_round_trip(self):
        assert parse_chaos_variant("stripe+correlated:mild") == (
            "stripe", "correlated", "mild",
        )
        for bad in ("stripe", "stripe+gray", "prayer+gray:mild", "stripe+gray:x"):
            with pytest.raises(ValueError):
                parse_chaos_variant(bad)

    def test_plan_shape(self, plan):
        # 2 cells (none collapses) x 3 mechanisms x 1 client x 1 rep.
        assert len(plan.units) == 6
        variants = {u.variant for u in plan.units}
        assert variants == {
            "select+none:mild", "failover+none:mild", "stripe+none:mild",
            "select+gray:mild", "failover+gray:mild", "stripe+gray:mild",
        }
        # Every arm of one slot sees the same offered relays.
        offered = {u.offered for u in plan.units}
        assert len(offered) == 1

    def test_fault_plan_mechanism_independent(self, plan, section2_scenario):
        # The fault environment is a function of the cell, not the arm:
        # identical draws for every mechanism sharing (family, intensity).
        params = ChaosStudyParams()
        unit = next(u for u in plan.units if u.variant == "select+gray:mild")
        plans = [
            chaos_fault_plan(
                section2_scenario,
                params,
                client=unit.client,
                site=unit.site,
                offered=unit.offered,
                family="gray",
                intensity="mild",
                repetition=unit.repetition,
                start_time=unit.start_time,
            )
            for _ in range(2)
        ]
        assert plans[0] == plans[1]
        assert all(ws for ws in plans[0].values())

    def test_run_unit_dispatch(self, plan, section2_scenario):
        unit = next(u for u in plan.units if u.variant == "failover+gray:mild")
        rec = run_unit(section2_scenario, CHAOS_SESSION_CONFIG, unit, plan.extra)
        assert isinstance(rec, ChaosRecord)
        assert rec.mechanism == "failover"
        assert rec.fault_family == "gray"
        assert rec.intensity == "mild"
        assert rec.fault_overlap  # onset lands inside the session by design


class TestDeterminism:
    def test_jobs_2_byte_identical(self, tmp_path, plan, serial_store):
        parallel = execute_plan(plan, jobs=2).store
        assert store_bytes(tmp_path, parallel, "j2.jsonl") == store_bytes(
            tmp_path, serial_store, "j1.jsonl"
        )

    def test_worker_kills_byte_identical(self, tmp_path, plan, serial_store):
        # Satellite fuzz: SIGKILL workers at seeded points mid-campaign;
        # the dead-worker sweep requeues, respawns, and the artefact must
        # not change by a byte.
        result = execute_plan(
            plan,
            jobs=2,
            runner_faults=RunnerFaultPlan(kill_after=(1, 3)),
        )
        assert store_bytes(tmp_path, result.store, "killed.jsonl") == store_bytes(
            tmp_path, serial_store, "clean.jsonl"
        )

    def test_kill_interrupt_corrupt_then_resume_identical(
        self, tmp_path, plan, serial_store
    ):
        # The full gauntlet: kill a worker, stop the campaign early, then
        # corrupt a flushed shard on disk.  Resume must quarantine the
        # damaged shard (structured, non-fatal), re-execute its units, and
        # still merge byte-identically.
        ckpt = tmp_path / "ck"
        partial = execute_plan(
            plan,
            jobs=2,
            checkpoint=ckpt,
            checkpoint_every=1,
            max_units=4,
            runner_faults=RunnerFaultPlan(kill_after=(2,)),
        )
        assert partial.store is None
        shards = sorted((ckpt / "shards").glob("shard-*.jsonl"))
        assert shards
        victim = shards[0]
        lines = victim.read_text(encoding="utf-8").strip("\n").split("\n")
        lines[0] = "<<disk fault>>"
        extra = "\n".join(lines + ["{} trailing torn"])
        victim.write_text(extra + "\n", encoding="utf-8")
        resumed = execute_plan(plan, jobs=2, checkpoint=ckpt, resume=True)
        assert resumed.store is not None
        assert list((ckpt / "shards").glob("*.quarantined*"))
        assert store_bytes(tmp_path, resumed.store, "resumed.jsonl") == store_bytes(
            tmp_path, serial_store, "clean2.jsonl"
        )

    def test_runner_faults_require_workers(self, plan, section2_scenario):
        with pytest.raises(ValueError, match="jobs > 1"):
            execute_plan(
                plan,
                jobs=1,
                scenario=section2_scenario,
                runner_faults=RunnerFaultPlan(kill_after=(1,)),
            )


class TestRunnerFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            RunnerFaultPlan(kill_after=())
        with pytest.raises(ValueError):
            RunnerFaultPlan(kill_after=(0,))

    def test_injector_fires_in_order_once(self):
        injector = RunnerFaultPlan(kill_after=(2, 4)).injector()
        assert injector.victim(0, [1, 2]) is None
        assert injector.victim(1, [1, 2]) is None
        first = injector.victim(2, [1, 2])
        assert first in (1, 2)
        assert injector.victim(2, [1, 2]) is None  # consumed
        assert injector.victim(4, [7]) == 7
        assert injector.victim(99, [7]) is None  # plan exhausted
        assert injector.kills == [(2, first), (4, 7)]

    def test_no_victim_without_workers(self):
        injector = RunnerFaultPlan(kill_after=(1,)).injector()
        assert injector.victim(5, []) is None
        assert injector.kills == []


class TestAnalysis:
    def test_cells_and_separation(self, serial_store):
        records = serial_store.records
        cells = analysis_cells(records)
        assert ("gray", "mild", "failover") in cells
        baseline = cells[("none", "mild", "select")]
        assert baseline.goodput_retained == pytest.approx(1.0)
        faulted = cells[("gray", "mild", "select")]
        assert faulted.n == 1
        assert 0.0 <= faulted.availability <= 1.0
        avail = availability_by_mechanism(records)
        assert set(avail[("gray", "mild")]) == {"select", "failover", "stripe"}
        sep = mechanism_separation(records)
        d_avail, d_p99 = sep[("gray", "mild")]
        assert math.isfinite(d_avail) or math.isfinite(d_p99)

    def test_render_smoke(self, serial_store):
        text = render_chaos(serial_store.records)
        assert "chaos resilience study" in text
        assert "gray" in text

    def test_empty_inputs_never_raise(self):
        assert analysis_cells([]) == {}
        assert mechanism_separation([]) == {}
        assert "rows: 0" in render_chaos([])
