"""CLI tests for the `repro lint` and `repro selfcheck` subcommands."""

from pathlib import Path

from repro.cli import main

REPO = Path(__file__).resolve().parents[1]


class TestLintCommand:
    def test_violation_exits_one_and_prints_finding(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "QA-D001" in out and "hint:" in out
        assert "1 finding(s) in 1 file(s)" in out

    def test_no_hints_flag(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n")
        assert main(["lint", "--no-hints", str(bad)]) == 1
        assert "hint:" not in capsys.readouterr().out

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert main(["lint", str(good)]) == 0
        assert "clean: 0 findings" in capsys.readouterr().out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_directory_is_walked(self, tmp_path, capsys):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("import random\n")
        (tmp_path / "pkg" / "b.py").write_text("from random import shuffle\n")
        assert main(["lint", str(tmp_path)]) == 1
        assert "2 finding(s) in 2 file(s)" in capsys.readouterr().out

    def test_rules_catalogue(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        assert "QA-D001" in out and "QA-R001" in out
        assert "qa: ignore[CODE]" in out and "REPRO_SANITIZE" in out

    def test_repo_tree_is_clean(self, capsys):
        paths = [str(REPO / d) for d in ("src", "tests", "benchmarks")]
        assert main(["lint", *paths]) == 0, capsys.readouterr().out


class TestSelfcheckCommand:
    def test_selfcheck_passes(self, capsys):
        assert main(["selfcheck"]) == 0
        out = capsys.readouterr().out
        assert "invariant checks healthy" in out
        assert "FAIL" not in out
