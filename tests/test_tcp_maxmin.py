"""Max-min fair allocator tests, including hypothesis optimality checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tcp.maxmin import maxmin_allocate, verify_maxmin


def alloc(caps, inc, flow_caps=None):
    return maxmin_allocate(
        np.asarray(caps, dtype=float),
        np.asarray(inc, dtype=bool),
        None if flow_caps is None else np.asarray(flow_caps, dtype=float),
    )


class TestSimpleCases:
    def test_single_flow_single_link(self):
        assert alloc([10.0], [[True]]).tolist() == [10.0]

    def test_two_flows_share_equally(self):
        rates = alloc([10.0], [[True, True]])
        assert rates.tolist() == [5.0, 5.0]

    def test_no_flows(self):
        assert alloc([10.0], np.zeros((1, 0))).size == 0

    def test_disjoint_links(self):
        rates = alloc([10.0, 4.0], [[True, False], [False, True]])
        assert rates.tolist() == [10.0, 4.0]

    def test_classic_linear_network(self):
        # Link A (cap 10) carries f0, f1; link B (cap 4) carries f1, f2.
        # Max-min: f1 limited by B -> 2; f2 -> 2; f0 takes A's rest -> 8.
        inc = [[True, True, False], [False, True, True]]
        rates = alloc([10.0, 4.0], inc)
        assert rates == pytest.approx([8.0, 2.0, 2.0])

    def test_three_flows_two_bottlenecks(self):
        # One shared link cap 9 and a private constraint cap 1 on flow 0.
        inc = [[True, True, True], [True, False, False]]
        rates = alloc([9.0, 1.0], inc)
        assert rates == pytest.approx([1.0, 4.0, 4.0])


class TestCaps:
    def test_cap_binds(self):
        rates = alloc([10.0], [[True, True]], flow_caps=[2.0, np.inf])
        assert rates == pytest.approx([2.0, 8.0])

    def test_zero_cap_flow_gets_zero(self):
        rates = alloc([10.0], [[True, True]], flow_caps=[0.0, np.inf])
        assert rates == pytest.approx([0.0, 10.0])

    def test_all_capped_below_fair_share(self):
        rates = alloc([10.0], [[True, True]], flow_caps=[1.0, 2.0])
        assert rates == pytest.approx([1.0, 2.0])

    def test_cap_equal_fair_share(self):
        rates = alloc([10.0], [[True, True]], flow_caps=[5.0, np.inf])
        assert rates == pytest.approx([5.0, 5.0])


class TestValidation:
    def test_flow_without_link_rejected(self):
        with pytest.raises(ValueError, match="at least one link"):
            alloc([10.0], [[True, False]])

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            alloc([-1.0], [[True]])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            maxmin_allocate(np.array([1.0, 2.0]), np.ones((1, 1), dtype=bool))

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            alloc([1.0], [[True]], flow_caps=[-1.0])


class TestVerifier:
    def test_accepts_correct_allocation(self):
        inc = np.array([[True, True, False], [False, True, True]])
        caps = np.array([10.0, 4.0])
        rates = maxmin_allocate(caps, inc)
        assert verify_maxmin(caps, inc, rates)

    def test_rejects_infeasible(self):
        inc = np.array([[True, True]])
        caps = np.array([10.0])
        assert not verify_maxmin(caps, inc, np.array([8.0, 8.0]))

    def test_rejects_non_maxmin(self):
        # Feasible but unfair: one flow starved without a bottleneck reason.
        inc = np.array([[True, True]])
        caps = np.array([10.0])
        assert not verify_maxmin(caps, inc, np.array([1.0, 2.0]))

    def test_rejects_cap_violation(self):
        inc = np.array([[True]])
        caps = np.array([10.0])
        assert not verify_maxmin(caps, inc, np.array([5.0]), caps=np.array([1.0]))


@st.composite
def allocation_problems(draw):
    n_links = draw(st.integers(min_value=1, max_value=5))
    n_flows = draw(st.integers(min_value=1, max_value=6))
    caps = draw(
        st.lists(
            st.floats(min_value=0.5, max_value=1000.0),
            min_size=n_links,
            max_size=n_links,
        )
    )
    inc = np.zeros((n_links, n_flows), dtype=bool)
    for f in range(n_flows):
        links = draw(
            st.lists(
                st.integers(min_value=0, max_value=n_links - 1),
                min_size=1,
                max_size=n_links,
                unique=True,
            )
        )
        inc[links, f] = True
    use_caps = draw(st.booleans())
    flow_caps = None
    if use_caps:
        flow_caps = draw(
            st.lists(
                st.one_of(
                    st.floats(min_value=0.1, max_value=500.0), st.just(float("inf"))
                ),
                min_size=n_flows,
                max_size=n_flows,
            )
        )
    return np.asarray(caps), inc, None if flow_caps is None else np.asarray(flow_caps)


class TestMaxMinProperties:
    @settings(max_examples=200, deadline=None)
    @given(allocation_problems())
    def test_allocation_is_maxmin_optimal(self, problem):
        caps, inc, flow_caps = problem
        rates = maxmin_allocate(caps, inc, flow_caps)
        assert verify_maxmin(caps, inc, rates, flow_caps)

    @settings(max_examples=100, deadline=None)
    @given(allocation_problems())
    def test_feasibility(self, problem):
        caps, inc, flow_caps = problem
        rates = maxmin_allocate(caps, inc, flow_caps)
        load = inc @ rates
        assert np.all(load <= caps * (1 + 1e-6) + 1e-9)
        assert np.all(rates >= 0.0)

    @settings(max_examples=100, deadline=None)
    @given(allocation_problems())
    def test_scale_invariance(self, problem):
        caps, inc, flow_caps = problem
        r1 = maxmin_allocate(caps, inc, flow_caps)
        scaled_caps = None if flow_caps is None else flow_caps * 2.0
        r2 = maxmin_allocate(caps * 2.0, inc, scaled_caps)
        assert np.allclose(r2, r1 * 2.0, rtol=1e-6, atol=1e-9)
