"""Property tests for the stripe block scheduler and reassembly buffer.

The striping subsystem's correctness contract (no gaps, no overlapping
committed ranges, byte identity with a single-path fetch, deterministic
block->path assignment) is checked here structurally, against seeded random
operation sequences - independently of the fluid engine.
"""

import math

import numpy as np
import pytest

from repro.stripe.blocks import (
    DEFAULT_BLOCK_BYTES,
    BlockScheduler,
    ReassemblyBuffer,
    StripeConfig,
    StripeIntegrityError,
    content_digest,
    synthetic_bytes,
)


class TestStripeConfig:
    def test_defaults(self):
        cfg = StripeConfig()
        assert cfg.block_bytes == DEFAULT_BLOCK_BYTES
        assert cfg.window == 2
        assert cfg.straggler_reissue
        assert cfg.transfer_deadline is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"block_bytes": 0.0},
            {"window": 0},
            {"max_copies": 0},
            {"check_interval": 0.0},
            {"grace_period": -1.0},
            {"transfer_deadline": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            StripeConfig(**kwargs)


class TestBlockGeometry:
    @pytest.mark.parametrize(
        "size,block",
        [(8_000_000, 512_000), (8_000_000, 3_000_000), (100, 512_000), (7, 3)],
    )
    def test_ranges_tile_the_object(self, size, block):
        sched = BlockScheduler(size, block)
        assert sched.n_blocks == max(1, math.ceil(size / block))
        cursor = 0
        for b in range(sched.n_blocks):
            r = sched.block_range(b)
            assert r.first == cursor, "blocks must be contiguous"
            assert r.last >= r.first
            assert sched.block_length(b) == r.length
            cursor = r.last + 1
        assert cursor == size, "blocks must cover the object exactly"

    def test_block_range_bounds(self):
        sched = BlockScheduler(100, 30)
        with pytest.raises(ValueError):
            sched.block_range(-1)
        with pytest.raises(ValueError):
            sched.block_range(sched.n_blocks)


class TestSchedulerLifecycle:
    def test_claim_is_lowest_first(self):
        sched = BlockScheduler(100, 10)
        assert sched.claim("a") == 0
        assert sched.claim("b") == 1
        assert sched.claim("a") == 2
        assert sched.carriers_of(0) == ("a",)
        assert sched.outstanding == [0, 1, 2]

    def test_commit_marks_done_and_returns_losers(self):
        sched = BlockScheduler(100, 60)  # 2 blocks
        assert sched.claim("a") == 0
        assert sched.reissue("b", max_copies=2) == 0
        assert sched.commit(0, "b") == ("a",)
        assert not sched.complete
        assert sched.claim("a") == 1
        assert sched.commit(1, "a") == ()
        assert sched.complete

    def test_commit_requires_carrier(self):
        sched = BlockScheduler(100, 60)
        sched.claim("a")
        with pytest.raises(ValueError):
            sched.commit(0, "b")
        with pytest.raises(ValueError):
            sched.commit(1, "a")

    def test_reissue_respects_copy_bound_and_self(self):
        sched = BlockScheduler(100, 200)  # single block
        assert sched.claim("a") == 0
        assert sched.reissue("a", max_copies=2) is None, "no self-duplicate"
        assert sched.reissue("b", max_copies=2) == 0
        assert sched.reissue("c", max_copies=2) is None, "copy bound"
        assert sched.reissue("c", max_copies=3) == 0

    def test_release_returns_block_to_pool(self):
        sched = BlockScheduler(100, 60)
        assert sched.claim("a") == 0
        assert sched.release(0, "a") is True
        assert sched.outstanding == []
        # The released block is claimable again, ahead of block 1.
        assert sched.claim("b") == 0

    def test_release_with_surviving_carrier(self):
        sched = BlockScheduler(100, 200)
        sched.claim("a")
        sched.reissue("b", max_copies=2)
        assert sched.release(0, "a") is False, "b still carries it"
        assert sched.carriers_of(0) == ("b",)
        assert sched.commit(0, "b") == ()

    def test_mark_duplicate_requires_committed(self):
        sched = BlockScheduler(100, 60)
        sched.claim("a")
        with pytest.raises(ValueError):
            sched.mark_duplicate(0, "a")
        sched.reissue("b", max_copies=2)
        sched.commit(0, "a")
        sched.mark_duplicate(0, "b")  # no raise

    def test_random_walk_commits_tile_without_overlap(self):
        """Any claim/reissue/release/commit walk yields a clean tiling."""
        rng = np.random.default_rng(7)
        size, block = 10_000, 768
        sched = BlockScheduler(size, block)
        buf = ReassemblyBuffer("/f", size)
        lanes = ["a", "b", "c"]
        inflight = {lane: set() for lane in lanes}
        while not sched.complete:
            lane = lanes[int(rng.integers(len(lanes)))]
            action = rng.integers(4)
            if action == 0:
                got = sched.claim(lane)
                if got is None:
                    got = sched.reissue(lane, max_copies=2)
                if got is not None:
                    inflight[lane].add(got)
            elif action == 1 and inflight[lane]:
                blk = min(inflight[lane])
                inflight[lane].discard(blk)
                for loser in sched.commit(blk, lane):
                    inflight[loser].discard(blk)
                r = sched.block_range(blk)
                buf.commit(r.first, r.last)
            elif action == 2 and inflight[lane]:
                blk = max(inflight[lane])
                inflight[lane].discard(blk)
                sched.release(blk, lane)
        assert buf.complete and not buf.gaps()
        assert buf.verify() == content_digest("/f", size)

    def test_assignment_is_deterministic(self):
        """The same call sequence produces the same block->path assignment."""

        def walk():
            rng = np.random.default_rng(13)
            sched = BlockScheduler(50_000, 768)
            lanes = ["a", "b"]
            trace = []
            inflight = {lane: [] for lane in lanes}
            while not sched.complete:
                lane = lanes[int(rng.integers(2))]
                if rng.integers(2) == 0:
                    got = sched.claim(lane)
                    if got is None:
                        got = sched.reissue(lane, max_copies=2)
                    if got is not None:
                        inflight[lane].append(got)
                        trace.append(("issue", lane, got))
                elif inflight[lane]:
                    blk = inflight[lane].pop(0)
                    losers = sched.commit(blk, lane)
                    for loser in losers:
                        inflight[loser].remove(blk)
                    trace.append(("commit", lane, blk, losers))
            return trace

        assert walk() == walk()


class TestSyntheticContent:
    def test_bytes_depend_only_on_absolute_offsets(self):
        whole = synthetic_bytes("/f", 0, 9_999)
        # Any partition concatenates to the same bytes.
        rng = np.random.default_rng(3)
        cuts = sorted(set(rng.integers(1, 9_999, size=8).tolist()))
        edges = [0] + cuts + [10_000]
        parts = b"".join(
            synthetic_bytes("/f", a, b - 1) for a, b in zip(edges, edges[1:])
        )
        assert parts == whole
        assert len(whole) == 10_000

    def test_distinct_resources_differ(self):
        assert synthetic_bytes("/f", 0, 99) != synthetic_bytes("/g", 0, 99)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            synthetic_bytes("/f", -1, 10)
        with pytest.raises(ValueError):
            synthetic_bytes("/f", 10, 9)


class TestReassemblyBuffer:
    def test_rejects_overlap_and_out_of_bounds(self):
        buf = ReassemblyBuffer("/f", 100)
        buf.commit(0, 49)
        with pytest.raises(StripeIntegrityError):
            buf.commit(40, 60)
        with pytest.raises(StripeIntegrityError):
            buf.commit(49, 49)
        with pytest.raises(StripeIntegrityError):
            buf.commit(50, 100)  # last byte out of bounds
        with pytest.raises(StripeIntegrityError):
            buf.commit(60, 59)
        buf.commit(50, 99)  # adjacent is fine
        assert buf.complete

    def test_gaps_and_digest_guard(self):
        buf = ReassemblyBuffer("/f", 100)
        buf.commit(10, 19)
        buf.commit(40, 99)
        assert buf.gaps() == [(0, 9), (20, 39)]
        assert not buf.complete
        with pytest.raises(StripeIntegrityError):
            buf.digest()

    def test_any_partition_matches_single_path_digest(self):
        """Out-of-order arbitrary tilings reassemble byte-identically."""
        size = 30_000
        want = content_digest("/f", size)
        rng = np.random.default_rng(11)
        for _ in range(5):
            cuts = sorted(set(rng.integers(1, size, size=12).tolist()))
            edges = [0] + cuts + [size]
            ranges = [(a, b - 1) for a, b in zip(edges, edges[1:])]
            order = rng.permutation(len(ranges))
            buf = ReassemblyBuffer("/f", size)
            for i in order:
                buf.commit(*ranges[i])
            assert buf.committed_bytes == size
            assert buf.verify() == want

    def test_wrong_resource_digest_differs(self):
        buf = ReassemblyBuffer("/g", 1_000)
        buf.commit(0, 999)
        assert buf.digest() != content_digest("/f", 1_000)
