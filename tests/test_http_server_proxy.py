"""Origin server and relay proxy tests."""

import pytest

from repro.http.messages import ByteRange, HttpRequest, RangeError
from repro.http.proxy import RelayProxy
from repro.http.server import WebServer


def server():
    s = WebServer("eBay")
    s.publish("/big", 4_000_000)
    return s


class TestWebServer:
    def test_full_get(self):
        resp = server().handle(HttpRequest("eBay", "/big"))
        assert resp.status == 200
        assert resp.body_bytes == 4_000_000

    def test_range_get(self):
        resp = server().handle(
            HttpRequest("eBay", "/big", ByteRange.first_bytes(100_000))
        )
        assert resp.status == 206
        assert resp.body_bytes == 100_000
        assert resp.resource_size == 4_000_000

    def test_suffix_get(self):
        resp = server().handle(HttpRequest("eBay", "/big", ByteRange.suffix_from(100)))
        assert resp.body_bytes == 4_000_000 - 100

    def test_unsatisfiable_range(self):
        with pytest.raises(RangeError):
            server().handle(
                HttpRequest("eBay", "/big", ByteRange.suffix_from(4_000_000))
            )

    def test_wrong_host(self):
        with pytest.raises(ValueError, match="reached server"):
            server().handle(HttpRequest("Google", "/big"))

    def test_missing_resource(self):
        with pytest.raises(KeyError, match="no resource"):
            server().handle(HttpRequest("eBay", "/nope"))

    def test_publish_validation(self):
        s = WebServer("X")
        with pytest.raises(ValueError):
            s.publish("", 10)
        with pytest.raises(ValueError):
            s.publish("/f", 0)

    def test_republish_replaces(self):
        s = server()
        s.publish("/big", 100)
        assert s.resource_size("/big") == 100

    def test_catalogue_copy(self):
        s = server()
        cat = s.resources
        cat["/other"] = 1
        assert not s.has_resource("/other")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            WebServer("")


class TestRelayProxy:
    def test_forward(self):
        proxy = RelayProxy("Texas")
        proxy.register_origin(server())
        resp = proxy.forward(HttpRequest("eBay", "/big", ByteRange.first_bytes(10)))
        assert resp.status == 206
        assert proxy.forwarded_count == 1

    def test_unknown_origin(self):
        proxy = RelayProxy("Texas")
        with pytest.raises(KeyError, match="no route to origin"):
            proxy.forward(HttpRequest("eBay", "/big"))

    def test_knows_origin(self):
        proxy = RelayProxy("Texas")
        assert not proxy.knows_origin("eBay")
        proxy.register_origin(server())
        assert proxy.knows_origin("eBay")

    def test_forward_count_increments(self):
        proxy = RelayProxy("Texas")
        proxy.register_origin(server())
        for _ in range(3):
            proxy.forward(HttpRequest("eBay", "/big"))
        assert proxy.forwarded_count == 3

    def test_error_does_not_count(self):
        proxy = RelayProxy("Texas")
        proxy.register_origin(server())
        with pytest.raises(KeyError):
            proxy.forward(HttpRequest("eBay", "/missing"))
        assert proxy.forwarded_count == 0

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            RelayProxy("")
