"""Path monitor and monitored-study tests."""

import pytest

from repro.core.session import SessionConfig
from repro.http.transfer import TcpParams
from repro.overlay.monitor import PathMonitor
from repro.util.units import kb
from repro.workloads.monitored import MonitoredStudy


def make_monitor(w, *, period=30.0, horizon=float("inf"), probe_bytes=kb(20)):
    sim, net, _ = w.universe()
    paths = [w.builder.direct("C", "S")] + w.builder.all_indirect("C", "S")
    monitor = PathMonitor(
        net, paths, "/f", period=period, probe_bytes=probe_bytes, horizon=horizon
    )
    return sim, net, monitor


class TestPathMonitor:
    def test_estimates_populate_within_one_period(self, mini_world):
        w = mini_world(direct_mbps=1.0, relay_mbps={"R1": 2.0, "R2": 0.5})
        sim, net, monitor = make_monitor(w)
        monitor.start()
        sim.run(until=35.0)
        assert monitor.estimate("direct") is not None
        assert monitor.estimate("R1") is not None
        assert monitor.estimate("R2") is not None

    def test_ranking_matches_capacities(self, mini_world):
        # Probe must outlast slow start to rank by capacity (the paper's
        # x=100KB lesson applies to monitoring probes as well).
        w = mini_world(direct_mbps=1.0, relay_mbps={"R1": 3.0, "R2": 0.5})
        sim, net, monitor = make_monitor(w, probe_bytes=kb(150))
        monitor.start()
        sim.run(until=65.0)
        fresh = monitor.fresh_estimates()
        assert fresh[0].label == "R1"
        assert monitor.best_path() == "R1"
        assert monitor.best_path(among=["R2", "direct"]) == "direct"

    def test_estimates_refresh(self, mini_world):
        w = mini_world()
        sim, net, monitor = make_monitor(w, period=20.0)
        monitor.start()
        sim.run(until=25.0)
        first = monitor.estimate("direct").measured_at
        sim.run(until=45.0)
        assert monitor.estimate("direct").measured_at > first

    def test_horizon_stops_probing(self, mini_world):
        w = mini_world()
        sim, net, monitor = make_monitor(w, period=10.0, horizon=35.0)
        monitor.start()
        sim.run()
        assert sim.now < 60.0  # queue drained shortly after the horizon
        assert monitor.probes_completed <= 4 * len(monitor.labels)

    def test_overhead_accounting(self, mini_world):
        w = mini_world(relay_mbps={"R1": 2.0})
        sim, net, monitor = make_monitor(w, period=30.0, horizon=100.0)
        monitor.start()
        sim.run()
        assert monitor.probe_bytes_sent == pytest.approx(
            monitor.probes_completed * kb(20)
        )
        assert monitor.probes_completed >= 6  # 2 paths x 3+ rounds

    def test_stale_entries_excluded(self, mini_world):
        w = mini_world()
        sim, net, monitor = make_monitor(w, period=10.0, horizon=15.0)
        monitor.start()
        sim.run()
        # Long after the horizon every estimate is stale.
        assert monitor.fresh_estimates(now=sim.now + 10_000.0) == []
        assert monitor.best_path() is None or sim.now < 45.0

    def test_start_twice_rejected(self, mini_world):
        w = mini_world()
        sim, net, monitor = make_monitor(w)
        monitor.start()
        with pytest.raises(RuntimeError):
            monitor.start()

    def test_duplicate_paths_rejected(self, mini_world):
        w = mini_world()
        sim, net, _ = w.universe()
        p = w.builder.direct("C", "S")
        with pytest.raises(ValueError, match="distinct"):
            PathMonitor(net, [p, p], "/f")

    def test_unknown_label(self, mini_world):
        w = mini_world()
        sim, net, monitor = make_monitor(w)
        with pytest.raises(KeyError):
            monitor.path_by_label("nope")

    def test_dead_path_keeps_being_retried(self, mini_world):
        from repro.net.trace import CapacityTrace

        # Direct path dead until t=100, then 1 Mbps.
        trace = CapacityTrace([0.0, 100.0], [0.0, 125_000.0])
        w = mini_world(direct_trace=trace, relay_mbps={"R1": 2.0})
        sim, net, monitor = make_monitor(w, period=20.0, horizon=150.0)
        monitor.start()
        sim.run(until=90.0)
        assert monitor.estimate("direct") is None  # probes stuck so far
        assert monitor.best_path() == "R1"
        sim.run(until=160.0)
        assert monitor.estimate("direct") is not None  # recovered


class TestMonitoredStudy:
    def test_runs_and_records(self, section2_scenario):
        study = MonitoredStudy(section2_scenario, repetitions=5)
        store = study.run(clients=["Italy", "Sweden"])
        assert len(store) == 10
        assert all(r.study == "monitored" for r in store)
        assert all(r.direct_throughput > 0 for r in store)

    def test_monitor_mostly_picks_plausible_paths(self, section2_scenario):
        study = MonitoredStudy(section2_scenario, repetitions=6)
        store = study.run(clients=["Italy"])
        # The monitor selects from stale-but-real measurements: realised
        # throughput should rarely collapse far below the control.
        import numpy as np

        ratios = store.column("selected_throughput") / store.column(
            "direct_throughput"
        )
        assert float(np.median(ratios)) >= 0.6

    def test_schedule_validation(self, section2_scenario):
        with pytest.raises(ValueError):
            MonitoredStudy(section2_scenario, repetitions=0)
        with pytest.raises(ValueError, match="horizon"):
            MonitoredStudy(section2_scenario, repetitions=10**6)
