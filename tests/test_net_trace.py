"""CapacityTrace tests: lookup, integration, algebra, hypothesis invariants."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.trace import CapacityTrace


@st.composite
def traces(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    gaps = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=100.0),
            min_size=n - 1,
            max_size=n - 1,
        )
    )
    times = [0.0]
    for g in gaps:
        times.append(times[-1] + g)
    values = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1e7),
            min_size=n,
            max_size=n,
        )
    )
    return CapacityTrace(times, values)


class TestConstruction:
    def test_constant(self):
        t = CapacityTrace.constant(100.0)
        assert t.value_at(0.0) == 100.0
        assert t.value_at(1e9) == 100.0

    def test_from_steps(self):
        t = CapacityTrace.from_steps([(0.0, 1.0), (10.0, 2.0)])
        assert t.value_at(5.0) == 1.0
        assert t.value_at(10.0) == 2.0  # right-continuous

    def test_must_start_at_zero(self):
        with pytest.raises(ValueError, match="times\\[0\\]"):
            CapacityTrace([1.0], [5.0])

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError, match="non-negative"):
            CapacityTrace([0.0], [-1.0])

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            CapacityTrace([0.0, 2.0, 1.0], [1, 2, 3])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            CapacityTrace([], [])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            CapacityTrace([0.0, 1.0], [1.0])

    def test_duplicate_breakpoints_keep_last(self):
        t = CapacityTrace([0.0, 1.0, 1.0], [5.0, 6.0, 7.0])
        assert t.n_pieces == 2
        assert t.value_at(1.0) == 7.0

    def test_immutable_views(self):
        t = CapacityTrace.constant(1.0)
        with pytest.raises(ValueError):
            t.times[0] = 5.0


class TestLookup:
    def test_value_before_zero_clamps(self):
        t = CapacityTrace([0.0, 1.0], [2.0, 3.0])
        assert t.value_at(-5.0) == 2.0

    def test_values_at_vectorised(self):
        t = CapacityTrace([0.0, 1.0, 2.0], [10.0, 20.0, 30.0])
        out = t.values_at([-1.0, 0.5, 1.0, 5.0])
        assert out.tolist() == [10.0, 10.0, 20.0, 30.0]

    def test_next_change_after(self):
        t = CapacityTrace([0.0, 1.0, 2.0], [1, 2, 3])
        assert t.next_change_after(0.0) == 1.0
        assert t.next_change_after(1.0) == 2.0
        assert t.next_change_after(2.0) == float("inf")

    def test_min_over(self):
        t = CapacityTrace([0.0, 1.0, 2.0], [10.0, 1.0, 20.0])
        assert t.min_over(0.0, 0.5) == 10.0
        assert t.min_over(0.5, 3.0) == 1.0
        assert t.min_over(2.5, 3.0) == 20.0


class TestIntegration:
    def test_integrate_constant(self):
        t = CapacityTrace.constant(5.0)
        assert t.integrate(2.0, 6.0) == pytest.approx(20.0)

    def test_integrate_across_pieces(self):
        t = CapacityTrace([0.0, 10.0], [1.0, 2.0])
        assert t.integrate(5.0, 15.0) == pytest.approx(5.0 + 10.0)

    def test_integrate_reversed_raises(self):
        with pytest.raises(ValueError):
            CapacityTrace.constant(1.0).integrate(2.0, 1.0)

    def test_mean_over(self):
        t = CapacityTrace([0.0, 10.0], [0.0, 10.0])
        assert t.mean_over(0.0, 20.0) == pytest.approx(5.0)
        assert t.mean_over(5.0, 5.0) == 0.0  # point value

    @given(traces(), st.floats(min_value=0, max_value=50), st.floats(min_value=0, max_value=50))
    def test_integral_additivity(self, t, a, b):
        lo, hi = sorted((a, b))
        mid = (lo + hi) / 2
        total = t.integrate(lo, hi)
        parts = t.integrate(lo, mid) + t.integrate(mid, hi)
        assert total == pytest.approx(parts, rel=1e-9, abs=1e-6)

    @given(traces(), st.floats(min_value=0, max_value=50), st.floats(min_value=0.1, max_value=50))
    def test_integral_bounded_by_extremes(self, t, start, width):
        end = start + width
        integral = t.integrate(start, end)
        lo = t.min_over(start, end) * width
        hi = float(np.max(t.values)) * width
        assert lo - 1e-6 <= integral <= hi + max(1e-6, 1e-9 * hi)


class TestAlgebra:
    def test_scaled(self):
        t = CapacityTrace([0.0, 1.0], [2.0, 4.0]).scaled(0.5)
        assert t.value_at(0.0) == 1.0 and t.value_at(1.5) == 2.0

    def test_scaled_negative_raises(self):
        with pytest.raises(ValueError):
            CapacityTrace.constant(1.0).scaled(-1.0)

    def test_clipped(self):
        t = CapacityTrace([0.0, 1.0], [2.0, 9.0]).clipped(5.0)
        assert t.value_at(2.0) == 5.0

    def test_shifted(self):
        t = CapacityTrace([0.0, 10.0, 20.0], [1.0, 2.0, 3.0]).shifted(15.0)
        assert t.value_at(0.0) == 2.0
        assert t.value_at(5.0) == 3.0
        assert t.times[0] == 0.0

    def test_shift_equivalence(self):
        t = CapacityTrace([0.0, 10.0, 20.0], [1.0, 2.0, 3.0])
        s = t.shifted(7.0)
        for u in (0.0, 2.9, 3.0, 13.0, 50.0):
            assert s.value_at(u) == t.value_at(7.0 + u)

    def test_minimum(self):
        a = CapacityTrace([0.0, 10.0], [5.0, 1.0])
        b = CapacityTrace([0.0, 5.0], [3.0, 2.0])
        m = CapacityTrace.minimum([a, b])
        assert m.value_at(0.0) == 3.0
        assert m.value_at(6.0) == 2.0
        assert m.value_at(11.0) == 1.0

    def test_minimum_single(self):
        a = CapacityTrace.constant(1.0)
        assert CapacityTrace.minimum([a]) is a

    def test_minimum_empty_raises(self):
        with pytest.raises(ValueError):
            CapacityTrace.minimum([])

    @given(traces(), traces(), st.floats(min_value=0, max_value=60))
    def test_minimum_pointwise_property(self, a, b, u):
        m = CapacityTrace.minimum([a, b])
        assert m.value_at(u) == pytest.approx(min(a.value_at(u), b.value_at(u)))

    def test_equality_and_hash(self):
        a = CapacityTrace([0.0, 1.0], [1.0, 2.0])
        b = CapacityTrace([0.0, 1.0], [1.0, 2.0])
        assert a == b and hash(a) == hash(b)
        assert a != CapacityTrace.constant(1.0)
