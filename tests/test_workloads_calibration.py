"""Calibration tests: profile draws, process construction, determinism."""

import numpy as np
import pytest

from repro.util.rng import SeedBank
from repro.util.units import bytes_per_s_to_mbps, mbps_to_bytes_per_s
from repro.workloads.calibration import (
    CalibrationParams,
    Calibrator,
    DEFAULT_SITE_PROFILES,
)
from repro.workloads.profiles import ClientProfile, ThroughputClass, Variability


def calibrator(seed=0, params=None):
    return Calibrator(params or CalibrationParams(), SeedBank(seed))


class TestClientProfiles:
    def test_deterministic(self):
        a = calibrator(1).client_profile("Italy")
        b = calibrator(1).client_profile("Italy")
        assert a == b

    def test_distinct_clients_differ(self):
        cal = calibrator(1)
        assert cal.client_profile("Italy") != cal.client_profile("Sweden")

    def test_forced_class(self):
        p = calibrator().client_profile("X", forced_class=ThroughputClass.HIGH)
        assert p.throughput_class is ThroughputClass.HIGH
        lo, hi = CalibrationParams().high_base_mbps
        assert lo <= bytes_per_s_to_mbps(p.direct_base) <= hi

    def test_base_in_class_range(self):
        params = CalibrationParams()
        for name in ("a", "b", "c", "d", "e", "f"):
            p = calibrator(3).client_profile(name)
            lo, hi = params.base_range_for(p.throughput_class)
            assert lo <= bytes_per_s_to_mbps(p.direct_base) <= hi

    def test_access_exceeds_base(self):
        p = calibrator().client_profile("X")
        assert p.access_capacity > 2.0 * p.direct_base

    def test_class_distribution_roughly_matches(self):
        cal = calibrator(7)
        draws = [cal.client_profile(f"c{i}").throughput_class for i in range(300)]
        low_frac = sum(d is ThroughputClass.LOW for d in draws) / 300
        assert low_frac == pytest.approx(0.55, abs=0.08)

    def test_high_class_mostly_high_variability(self):
        cal = calibrator(9)
        highs = [
            cal.client_profile(f"h{i}", forced_class=ThroughputClass.HIGH)
            for i in range(200)
        ]
        frac = sum(p.variability is Variability.HIGH for p in highs) / 200
        assert frac == pytest.approx(0.90, abs=0.07)

    def test_overlay_scale_class_ordering(self):
        # Medians: Low clients get relatively better overlay hops than High.
        cal = calibrator(11)
        low = np.median(
            [
                cal.client_profile(f"l{i}", forced_class=ThroughputClass.LOW).overlay_scale
                for i in range(100)
            ]
        )
        high = np.median(
            [
                cal.client_profile(f"g{i}", forced_class=ThroughputClass.HIGH).overlay_scale
                for i in range(100)
            ]
        )
        assert low > high


class TestRelayQuality:
    def test_capped(self):
        params = CalibrationParams()
        cal = calibrator(2)
        qs = [cal.relay_quality(f"r{i}") for i in range(300)]
        assert max(qs) <= params.relay_quality_cap
        assert min(qs) > 0.0

    def test_plateau_exists(self):
        # A handful of relays should sit exactly at the cap.
        params = CalibrationParams()
        cal = calibrator(2)
        qs = [cal.relay_quality(f"r{i}") for i in range(35)]
        assert sum(q == params.relay_quality_cap for q in qs) >= 2


class TestProcesses:
    def profile(self, cls=ThroughputClass.LOW, var=Variability.LOW):
        return ClientProfile(
            name="X",
            throughput_class=cls,
            variability=var,
            direct_base=mbps_to_bytes_per_s(1.0),
            access_capacity=mbps_to_bytes_per_s(4.0),
            overlay_scale=1.1,
        )

    def test_direct_process_mean_near_base(self):
        cal = calibrator()
        site = DEFAULT_SITE_PROFILES["eBay"]
        proc = cal.direct_wan_process(self.profile(), site)
        assert proc.mean_capacity() == pytest.approx(
            mbps_to_bytes_per_s(1.0), rel=0.15
        )

    def test_site_quality_scales_direct(self):
        cal = calibrator()
        p = self.profile()
        google = cal.direct_wan_process(p, DEFAULT_SITE_PROFILES["Google"])
        ms = cal.direct_wan_process(p, DEFAULT_SITE_PROFILES["Microsoft"])
        assert google.mean_capacity() > ms.mean_capacity()

    def test_high_variability_has_wider_range(self):
        cal = calibrator()
        site = DEFAULT_SITE_PROFILES["eBay"]
        low = cal.direct_wan_process(self.profile(var=Variability.LOW), site)
        high = cal.direct_wan_process(self.profile(var=Variability.HIGH), site)
        assert high.dynamic_range > low.dynamic_range

    def test_overlay_process_stable(self):
        cal = calibrator()
        proc = cal.overlay_wan_process(self.profile(), "Texas", 1.0)
        trace = proc.sample(3600.0, np.random.default_rng(0))
        values = trace.values
        assert float(np.std(values) / np.mean(values)) < 0.2

    def test_overlay_pair_determinism(self):
        a = calibrator(5).overlay_wan_process(self.profile(), "Texas", 1.0)
        b = calibrator(5).overlay_wan_process(self.profile(), "Texas", 1.0)
        assert a.base == b.base

    def test_relay_server_overprovisioned(self):
        cal = calibrator()
        params = CalibrationParams()
        proc = cal.relay_server_process("Texas", DEFAULT_SITE_PROFILES["eBay"])
        assert proc.mean_capacity() >= mbps_to_bytes_per_s(params.relay_server_mbps[0])

    def test_access_processes(self):
        cal = calibrator()
        p = self.profile()
        assert cal.client_access_process(p).mean_capacity() == p.access_capacity
        assert cal.relay_access_process("Texas").mean_capacity() == mbps_to_bytes_per_s(
            CalibrationParams().relay_access_mbps
        )
