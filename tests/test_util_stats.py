"""Descriptive statistics tests, including hypothesis properties."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import (
    Summary,
    coefficient_of_variation,
    fraction_below,
    fraction_between,
    percent_histogram,
    percentile,
    rms,
    summarize,
    weighted_mean,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.median == pytest.approx(2.5)
        assert s.minimum == 1.0 and s.maximum == 4.0

    def test_population_std(self):
        s = summarize([2.0, 4.0])
        assert s.std == pytest.approx(1.0)  # ddof=0

    def test_empty_gives_nan(self):
        s = summarize([])
        assert s.count == 0
        assert math.isnan(s.mean) and math.isnan(s.median)

    def test_as_tuple(self):
        s = summarize([5.0])
        assert s.as_tuple() == (1, 5.0, 5.0, 0.0, 5.0, 5.0)

    @given(st.lists(finite_floats, min_size=1, max_size=50))
    def test_min_le_median_le_max(self, xs):
        s = summarize(xs)
        assert s.minimum <= s.median <= s.maximum


class TestRms:
    def test_known_value(self):
        assert rms([3.0, 4.0]) == pytest.approx(math.sqrt(12.5))

    def test_empty_nan(self):
        assert math.isnan(rms([]))

    @given(st.lists(finite_floats, min_size=1, max_size=50))
    def test_rms_at_least_abs_mean(self, xs):
        # RMS >= |mean| is the Cauchy-Schwarz / Jensen relation.
        assert rms(xs) >= abs(float(np.mean(xs))) - 1e-6 * (1 + rms(xs))


class TestPercentHistogram:
    def test_sums_to_100(self):
        pct, _ = percent_histogram([1, 2, 3, 4, 5], [0, 2, 4, 6])
        assert pct.sum() == pytest.approx(100.0)

    def test_outliers_clipped_into_edge_bins(self):
        pct, _ = percent_histogram([-100, 50, 1000], [0, 10, 100])
        assert pct.sum() == pytest.approx(100.0)
        assert pct[0] == pytest.approx(100.0 / 3)   # -100 clipped into [0,10)
        assert pct[1] == pytest.approx(200.0 / 3)   # 50 and clipped 1000

    def test_empty_input(self):
        pct, edges = percent_histogram([], [0, 1, 2])
        assert pct.tolist() == [0.0, 0.0]
        assert edges.tolist() == [0, 1, 2]

    def test_bad_edges(self):
        with pytest.raises(ValueError):
            percent_histogram([1], [0])
        with pytest.raises(ValueError):
            percent_histogram([1], [0, 0, 1])

    @given(st.lists(finite_floats, min_size=1, max_size=80))
    def test_total_mass_always_100(self, xs):
        pct, _ = percent_histogram(xs, [-10.0, 0.0, 10.0])
        assert pct.sum() == pytest.approx(100.0)


class TestFractions:
    def test_fraction_between(self):
        assert fraction_between([0, 50, 150], 0, 100) == pytest.approx(2 / 3)

    def test_fraction_below(self):
        assert fraction_below([-1, 0, 1], 0) == pytest.approx(1 / 3)

    def test_empty_nan(self):
        assert math.isnan(fraction_between([], 0, 1))
        assert math.isnan(fraction_below([], 0))


class TestWeightedMean:
    def test_basic(self):
        assert weighted_mean([1.0, 3.0], [1.0, 3.0]) == pytest.approx(2.5)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [1.0, 2.0])

    def test_zero_weight_raises(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [0.0])


class TestPercentile:
    def test_median_equivalence(self):
        assert percentile([1, 2, 3], 50) == pytest.approx(2.0)

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_empty_nan(self):
        assert math.isnan(percentile([], 50))


class TestCoefficientOfVariation:
    def test_constant_series_is_zero(self):
        assert coefficient_of_variation([5.0, 5.0, 5.0]) == pytest.approx(0.0)

    def test_known(self):
        assert coefficient_of_variation([2.0, 4.0]) == pytest.approx(1.0 / 3.0)

    def test_zero_mean_nan(self):
        assert math.isnan(coefficient_of_variation([-1.0, 1.0]))

    def test_empty_nan(self):
        assert math.isnan(coefficient_of_variation([]))
