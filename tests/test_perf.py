"""Tests for the ``repro.perf`` benchmark subsystem and its CLI surface.

Benches are run in ``quick`` mode only and the assertions are structural
(fields present, units sane, determinism of the workloads) — wall-clock
numbers are never asserted against thresholds, because CI machines vary.
"""

import json

import pytest

from repro.cli import main
from repro.perf import (
    BENCHES,
    BenchReport,
    Measurement,
    compare_reports,
    format_comparison,
    format_report,
    load_report,
    measure,
    run_benches,
)
from repro.perf.report import SCHEMA, Comparison


class TestMeasure:
    def test_basic_measurement(self):
        m = measure(lambda: None, ops=10, rounds=3, warmup=1)
        assert m.ns_per_op >= 0.0
        assert m.ops == 10
        assert m.rounds == 3
        assert m.elapsed_s >= 0.0

    def test_derived_properties(self):
        m = Measurement(ns_per_op=500.0, ops=100, rounds=5, elapsed_s=0.1)
        assert m.seconds_per_op == pytest.approx(5e-7)
        assert m.ops_per_s == pytest.approx(2e6)

    def test_zero_ns_per_op_throughput_is_inf(self):
        m = Measurement(ns_per_op=0.0, ops=1, rounds=1, elapsed_s=0.0)
        assert m.ops_per_s == float("inf")

    def test_rejects_nonpositive_ops(self):
        with pytest.raises(ValueError, match="ops"):
            measure(lambda: None, ops=0)

    def test_rejects_nonpositive_rounds(self):
        with pytest.raises(ValueError, match="rounds"):
            measure(lambda: None, ops=1, rounds=0)

    def test_counts_invocations(self):
        calls = []
        measure(lambda: calls.append(1), ops=1, rounds=4, warmup=2)
        assert len(calls) == 6  # 2 warmup + 4 timed


class TestBenchRegistry:
    def test_expected_benches_registered(self):
        assert set(BENCHES) == {
            "trace_scalar",
            "event_queue",
            "alloc_disjoint",
            "alloc_shared",
            "tick_breakpoint",
            "stripe_session",
            "vec_epoch",
            "scale_campaign",
            "campaign_mini",
        }

    def test_specs_have_metadata(self):
        for name, spec in BENCHES.items():
            assert spec.name == name
            assert spec.summary
            assert spec.unit

    def test_unknown_bench_rejected(self):
        with pytest.raises(ValueError, match="no_such_bench"):
            run_benches(["no_such_bench"], quick=True)

    def test_quick_bench_result_shape(self):
        results = run_benches(["alloc_disjoint"], quick=True)
        result = results["alloc_disjoint"]
        assert result["unit"] == "ns/op"
        assert result["optimised"] > 0.0
        assert result["baseline"] > 0.0
        assert result["speedup"] == pytest.approx(
            result["baseline"] / result["optimised"]
        )

    def test_progress_callback_invoked(self):
        seen = []
        run_benches(["event_queue"], quick=True, progress=seen.append)
        assert seen == ["event_queue"]


class TestReport:
    def _report(self, optimised, *, name="alloc_disjoint", baseline=None):
        bench = {"unit": "ns/op", "optimised": optimised}
        if baseline is not None:
            bench["baseline"] = baseline
            bench["speedup"] = baseline / optimised
        return BenchReport(benches={name: bench}, quick=True)

    def test_roundtrip(self, tmp_path):
        report = BenchReport.from_results(
            {"alloc_disjoint": {"unit": "ns/op", "optimised": 123.0}}, quick=True
        )
        path = str(tmp_path / "bench.json")
        report.save(path)
        loaded = load_report(path)
        assert loaded.schema == SCHEMA
        assert loaded.quick is True
        assert loaded.benches == report.benches
        assert "python" in loaded.environment

    def test_saved_json_is_stable(self, tmp_path):
        report = self._report(100.0)
        p1, p2 = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        report.save(p1)
        report.save(p2)
        assert open(p1).read() == open(p2).read()

    def test_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/9", "benches": {}}))
        with pytest.raises(ValueError, match="schema"):
            load_report(str(path))

    def test_rejects_missing_benches(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": SCHEMA}))
        with pytest.raises(ValueError, match="benches"):
            load_report(str(path))

    def test_compare_flags_regression(self):
        comparisons = compare_reports(
            self._report(200.0), self._report(100.0), tolerance=0.25
        )
        assert len(comparisons) == 1
        assert comparisons[0].regressed
        assert comparisons[0].ratio == pytest.approx(2.0)

    def test_compare_within_tolerance_ok(self):
        comparisons = compare_reports(
            self._report(110.0), self._report(100.0), tolerance=0.25
        )
        assert not comparisons[0].regressed

    def test_compare_skips_unmatched_benches(self):
        comparisons = compare_reports(
            self._report(100.0, name="new_bench"), self._report(100.0)
        )
        assert comparisons == []

    def test_compare_rejects_negative_tolerance(self):
        with pytest.raises(ValueError, match="tolerance"):
            compare_reports(self._report(1.0), self._report(1.0), tolerance=-0.1)

    def test_format_report_smoke(self):
        text = format_report(self._report(123.0, baseline=246.0))
        assert "alloc_disjoint" in text
        assert "2.00x" in text

    def test_format_comparison_smoke(self):
        comparisons = [
            Comparison(
                name="alloc_disjoint",
                unit="ns/op",
                current=200.0,
                stored=100.0,
                ratio=2.0,
                regressed=True,
            )
        ]
        text = format_comparison(comparisons, tolerance=0.25)
        assert "REGRESSED" in text
        assert format_comparison([], tolerance=0.25).startswith("no comparable")


class TestPerfCli:
    def test_unknown_bench_is_usage_error(self, capsys, tmp_path):
        out = str(tmp_path / "b.json")
        assert main(["perf", "--only", "nope", "--out", out]) == 2
        assert "unknown bench" in capsys.readouterr().err

    def test_negative_tolerance_is_usage_error(self, tmp_path):
        out = str(tmp_path / "b.json")
        assert main(["perf", "--tolerance", "-1", "--out", out]) == 2

    def test_missing_baseline_file(self, capsys, tmp_path):
        out = str(tmp_path / "b.json")
        code = main(
            ["perf", "--quick", "--only", "event_queue", "--out", out,
             "--baseline", str(tmp_path / "absent.json")]
        )
        assert code == 2
        assert "not found" in capsys.readouterr().err

    def test_quick_run_writes_report(self, capsys, tmp_path):
        out = str(tmp_path / "bench.json")
        assert main(["perf", "--quick", "--only", "event_queue", "--out", out]) == 0
        report = load_report(out)
        assert "event_queue" in report.benches
        assert "event_queue" in capsys.readouterr().out

    def test_baseline_comparison_regression_exits_1(self, capsys, tmp_path):
        out = str(tmp_path / "bench.json")
        assert main(["perf", "--quick", "--only", "event_queue", "--out", out]) == 0
        # Doctor the stored report so the fresh run looks 10x slower.
        data = json.load(open(out))
        data["benches"]["event_queue"]["optimised"] /= 10.0
        stored = tmp_path / "stored.json"
        stored.write_text(json.dumps(data))
        code = main(
            ["perf", "--quick", "--only", "event_queue",
             "--out", str(tmp_path / "b2.json"), "--baseline", str(stored)]
        )
        assert code == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_baseline_comparison_ok_exits_0(self, tmp_path):
        out = str(tmp_path / "bench.json")
        assert main(["perf", "--quick", "--only", "event_queue", "--out", out]) == 0
        # Comparing against itself with a generous tolerance must pass.
        code = main(
            ["perf", "--quick", "--only", "event_queue",
             "--out", str(tmp_path / "b2.json"),
             "--baseline", out, "--tolerance", "5.0"]
        )
        assert code == 0


class TestSuspectCategory:
    """``repro perf --obs`` span summaries name the regressing subsystem."""

    def _report(self, optimised, spans=None):
        bench = {"unit": "ns/op", "optimised": optimised}
        if spans is not None:
            bench["obs_summary"] = {
                "spans": {
                    cat: {"count": 1, "total_time": total}
                    for cat, total in spans.items()
                }
            }
        return BenchReport(benches={"alloc_disjoint": bench}, quick=True)

    def test_names_worst_growing_category(self):
        current = self._report(200.0, spans={"transfer": 30.0, "tick": 1.0})
        stored = self._report(100.0, spans={"transfer": 10.0, "tick": 1.0})
        (cmp_,) = compare_reports(current, stored, tolerance=0.25)
        assert cmp_.regressed
        assert cmp_.suspect_category == "transfer"
        assert cmp_.suspect_growth == pytest.approx(2.0)
        text = format_comparison([cmp_], tolerance=0.25)
        assert "suspect: 'transfer' span time grew +200%" in text

    def test_new_category_surfaces_against_floor(self):
        current = self._report(200.0, spans={"tick": 1.0, "stripe": 5.0})
        stored = self._report(100.0, spans={"tick": 1.0})
        (cmp_,) = compare_reports(current, stored, tolerance=0.25)
        assert cmp_.suspect_category == "stripe"

    def test_no_obs_summary_no_suspect(self):
        (cmp_,) = compare_reports(
            self._report(200.0), self._report(100.0), tolerance=0.25
        )
        assert cmp_.regressed
        assert cmp_.suspect_category is None
        text = format_comparison([cmp_], tolerance=0.25)
        assert "run both sides with --obs" in text

    def test_not_regressed_no_suspect(self):
        current = self._report(100.0, spans={"transfer": 30.0})
        stored = self._report(100.0, spans={"transfer": 10.0})
        (cmp_,) = compare_reports(current, stored, tolerance=0.25)
        assert not cmp_.regressed
        assert cmp_.suspect_category is None

    def test_all_categories_shrank_no_suspect(self):
        current = self._report(200.0, spans={"transfer": 5.0, "tick": 0.5})
        stored = self._report(100.0, spans={"transfer": 10.0, "tick": 1.0})
        (cmp_,) = compare_reports(current, stored, tolerance=0.25)
        assert cmp_.regressed
        assert cmp_.suspect_category is None
