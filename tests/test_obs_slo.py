"""repro.obs.slo tests: spec parsing and objective evaluation."""

import math

import pytest

from repro.analysis.availability import availability_stats
from repro.analysis.chaos import chaos_cells
from repro.obs.core import Observer
from repro.obs.export import ObsTrace
from repro.obs.slo import (
    SloObjective,
    evaluate_slo,
    load_slo_spec,
    parse_slo_spec,
    render_slo,
)
from repro.trace.records import ChaosRecord, FailureRecord

SPEC_TEXT = """\
# availability objectives
name = "toy"
description = "test spec"

[[objective]]
name = "failover availability"   # trailing comment
metric = "availability"
mechanism = "failover"
fault_family = "gray"
intensity = "severe"
min = 0.5

[[objective]]
name = "stall share"
metric = "phase_fraction:stall"
max = 0.25
"""


def _chaos(**overrides):
    base = dict(
        study="chaos",
        client="Italy",
        site="eBay",
        repetition=0,
        start_time=0.0,
        set_size=2,
        offered=("R1", "R2"),
        selected_via="R1",
        direct_throughput=100_000.0,
        selected_throughput=200_000.0,
        end_to_end_throughput=150_000.0,
        probe_overhead=1.0,
        file_bytes=4_000_000.0,
        mechanism="failover",
        fault_family="gray",
        intensity="severe",
        stripe_k=3,
        bytes_received=4_000_000.0,
        direct_duration=40.0,
        selected_duration=26.7,
    )
    base.update(overrides)
    return ChaosRecord(**base)


def _failure(**overrides):
    base = dict(
        study="failures",
        client="Italy",
        site="eBay",
        repetition=0,
        start_time=0.0,
        set_size=2,
        offered=("R1", "R2"),
        selected_via="R1",
        direct_throughput=1e5,
        selected_throughput=2e5,
        end_to_end_throughput=1.8e5,
        probe_overhead=1.0,
        file_bytes=4e6,
        failure_mode="node",
        outcome="completed",
        bytes_received=4e6,
        direct_duration=40.0,
        selected_duration=20.0,
    )
    base.update(overrides)
    return FailureRecord(**base)


def _session_trace():
    obs = Observer()
    obs.span("probe", "probe:R1", 0.0, 0.5, won=True)
    obs.span("transfer", "remainder:R1", 0.5, 9.5, path="R1")
    obs.span("session", "C->S", 0.0, 10.0, outcome="completed")
    obs.count("session.outcome.completed")
    obs.gauge("engine.flows.peak", 3.0)
    obs.observe_value("session.duration", 10.0)
    return ObsTrace.from_observer(obs)


class TestParser:
    def test_parses_header_and_objectives(self):
        spec = parse_slo_spec(SPEC_TEXT)
        assert spec.name == "toy"
        assert spec.description == "test spec"
        assert len(spec.objectives) == 2
        first = spec.objectives[0]
        assert first.metric == "availability"
        assert first.filters == {
            "mechanism": "failover",
            "fault_family": "gray",
            "intensity": "severe",
        }
        assert first.min_value == 0.5 and first.max_value is None
        assert spec.objectives[1].metric == "phase_fraction:stall"

    def test_hash_inside_string_is_not_a_comment(self):
        spec = parse_slo_spec(
            'name = "a # b"\n[[objective]]\nname = "x"\nmetric = "availability"\nmin = 0.1\n'
        )
        assert spec.name == "a # b"

    def test_error_names_line_number(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_slo_spec('name = "ok"\nnot a toml line\n')

    def test_no_objectives_rejected(self):
        with pytest.raises(ValueError, match="declares no"):
            parse_slo_spec('name = "empty"\n')

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown metric"):
            parse_slo_spec(
                '[[objective]]\nname = "x"\nmetric = "bogus"\nmin = 0.0\n'
            )

    def test_objective_without_bounds_rejected(self):
        with pytest.raises(ValueError):
            SloObjective(name="x", metric="availability")

    def test_load_committed_ci_spec(self):
        spec = load_slo_spec("specs/chaos-quick.slo.toml")
        assert spec.name == "chaos-quick"
        assert len(spec.objectives) >= 6


class TestChaosMetrics:
    """The SLO evaluator must reproduce the chaos study's own numbers."""

    def _records(self):
        return [
            _chaos(outcome="failed_over", n_failovers=1, time_to_recover=4.0),
            _chaos(
                repetition=1,
                outcome="aborted",
                bytes_received=1_000_000.0,
                time_to_recover=8.0,
            ),
            _chaos(repetition=2, fault_family="none", intensity="none"),
        ]

    def _eval_one(self, metric, records, **bounds):
        spec = parse_slo_spec(
            "[[objective]]\n"
            'name = "x"\n'
            f'metric = "{metric}"\n'
            'mechanism = "failover"\n'
            'fault_family = "gray"\n'
            'intensity = "severe"\n'
            + "".join(f"{k} = {v}\n" for k, v in bounds.items())
        )
        return evaluate_slo(spec, records=records).results[0]

    def test_availability_matches_chaos_cells(self):
        records = self._records()
        cell = chaos_cells(records)[("gray", "severe", "failover")]
        res = self._eval_one("availability", records, min=0.0)
        assert res.measured == cell.availability == 0.5

    def test_mttr_matches_chaos_cells(self):
        records = self._records()
        cell = chaos_cells(records)[("gray", "severe", "failover")]
        res = self._eval_one("mttr_mean", records, max=100)
        assert res.measured == cell.mean_ttr == 6.0

    def test_p99_duration_matches_chaos_cells(self):
        records = self._records()
        cell = chaos_cells(records)[("gray", "severe", "failover")]
        res = self._eval_one("p99_duration", records, max=1000)
        assert res.measured == cell.p99_duration

    def test_goodput_retained_uses_none_baseline(self):
        records = self._records()
        cell = chaos_cells(records)[("gray", "severe", "failover")]
        res = self._eval_one("goodput_retained", records, min=0.0)
        assert res.measured == cell.goodput_retained

    def test_bound_violation_fails(self):
        res = self._eval_one("availability", self._records(), min=0.9)
        assert not res.passed

    def test_byte_unavailability(self):
        records = self._records()
        spec = parse_slo_spec(
            '[[objective]]\nname = "x"\nmetric = "byte_unavailability"\nmax = 1.0\n'
        )
        res = evaluate_slo(spec, records=records).results[0]
        # One of three 4 MB requests delivered only 1 MB.
        assert res.measured == pytest.approx(3.0 / 12.0)
        assert res.passed

    def test_duplicate_waste_without_stripe_rows_is_nan_and_fails(self):
        spec = parse_slo_spec(
            '[[objective]]\nname = "x"\nmetric = "duplicate_waste_fraction"\nmax = 1.0\n'
        )
        res = evaluate_slo(spec, records=self._records()).results[0]
        assert math.isnan(res.measured)
        assert not res.passed


class TestFailureMetrics:
    def test_availability_matches_availability_stats(self):
        records = [
            _failure(),
            _failure(repetition=1, outcome="failed_over", n_failovers=1),
            _failure(repetition=2, outcome="aborted", bytes_received=0.0),
        ]
        spec = parse_slo_spec(
            '[[objective]]\nname = "x"\nmetric = "availability"\nmin = 0.0\n'
        )
        res = evaluate_slo(spec, records=records).results[0]
        assert res.measured == availability_stats(records).availability
        assert res.measured == pytest.approx(2.0 / 3.0)

    def test_failure_mode_filter(self):
        records = [
            _failure(failure_mode="node", outcome="aborted", bytes_received=0.0),
            _failure(repetition=1, failure_mode="link"),
        ]
        spec = parse_slo_spec(
            "[[objective]]\n"
            'name = "x"\n'
            'metric = "availability"\n'
            'failure_mode = "link"\n'
            "min = 0.9\n"
        )
        res = evaluate_slo(spec, records=records).results[0]
        assert res.measured == 1.0
        assert res.passed


class TestTraceMetrics:
    def _eval(self, metric, trace, **bounds):
        spec = parse_slo_spec(
            "[[objective]]\n"
            'name = "x"\n'
            f'metric = "{metric}"\n'
            + "".join(f"{k} = {v}\n" for k, v in bounds.items())
        )
        return evaluate_slo(spec, trace=trace).results[0]

    def test_probe_overhead_fraction(self):
        res = self._eval("probe_overhead_fraction", _session_trace(), max=0.1)
        assert res.measured == pytest.approx(0.05)  # 0.5 s probe / 10 s session
        assert res.passed

    def test_phase_fraction(self):
        res = self._eval("phase_fraction:transfer", _session_trace(), min=0.5)
        assert res.measured == pytest.approx(0.9)

    def test_counter_gauge_hist(self):
        trace = _session_trace()
        assert self._eval(
            "counter:session.outcome.completed", trace, min=1
        ).measured == 1.0
        assert self._eval("gauge:engine.flows.peak", trace, max=4).measured == 3.0
        assert self._eval("hist_count:session.duration", trace, min=1).measured == 1.0

    def test_span_total_and_count(self):
        trace = _session_trace()
        assert self._eval("span_total:transfer", trace, max=100).measured == 9.0
        assert self._eval("span_count:session", trace, min=1).measured == 1.0

    def test_missing_counter_is_nan_and_fails(self):
        res = self._eval("counter:no.such", _session_trace(), max=1)
        assert math.isnan(res.measured)
        assert not res.passed


class TestMissingInputs:
    def test_trace_objective_without_trace_fails(self):
        spec = parse_slo_spec(
            '[[objective]]\nname = "x"\nmetric = "probe_overhead_fraction"\nmax = 1.0\n'
        )
        report = evaluate_slo(spec)
        assert not report.clean
        assert not report.results[0].passed

    def test_record_objective_without_records_fails(self):
        spec = parse_slo_spec(
            '[[objective]]\nname = "x"\nmetric = "availability"\nmin = 0.0\n'
        )
        report = evaluate_slo(spec)
        assert not report.clean


class TestRender:
    def test_render_lists_pass_fail_and_verdict(self):
        records = [
            _chaos(outcome="failed_over", n_failovers=1, time_to_recover=4.0)
        ]
        spec = parse_slo_spec(
            "[[objective]]\n"
            'name = "good"\nmetric = "availability"\nmin = 0.5\n'
            "[[objective]]\n"
            'name = "bad"\nmetric = "availability"\nmin = 1.5\n'
        )
        report = evaluate_slo(spec, records=records)
        text = render_slo(report)
        assert "PASS" in text and "FAIL" in text
        assert "1 of 2 objectives violated" in text

    def test_clean_verdict(self):
        spec = parse_slo_spec(
            '[[objective]]\nname = "g"\nmetric = "availability"\nmin = 0.0\n'
        )
        report = evaluate_slo(spec, records=[_chaos()])
        assert report.clean
        assert "all objectives met" in render_slo(report)
