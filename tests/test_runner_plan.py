"""Campaign planner tests: ordering, unit identity, fingerprint sensitivity."""

import dataclasses

import pytest

from repro.core.history import HistoryRankedPolicy
from repro.core.random_set import UniformRandomSetPolicy
from repro.runner.plan import (
    CampaignPlan,
    WorkUnit,
    plan_section2,
    plan_section4_policy,
    plan_section4_sweep,
    policy_is_stateless,
    section2_relay_rotation,
)
from repro.workloads.experiment import (
    SECTION4_SESSION_CONFIG,
    STUDY_SESSION_CONFIG,
    Section2Study,
    Section4Study,
)

CLIENTS = ["Italy", "Sweden", "Taiwan"]


@pytest.fixture(scope="module")
def s2_plan(section2_scenario):
    return plan_section2(
        section2_scenario,
        repetitions=3,
        interval=360.0,
        config=STUDY_SESSION_CONFIG,
        sites=["eBay"],
        clients=CLIENTS,
    )


class TestSection2Plan:
    def test_serial_order(self, section2_scenario, s2_plan):
        """Units enumerate clients outer, sites inner, reps innermost."""
        expected = []
        for client in CLIENTS:
            rotation = section2_relay_rotation(section2_scenario, client)
            for j in range(3):
                expected.append((client, "eBay", j, j * 360.0, (rotation[j % len(rotation)],)))
        actual = [
            (u.client, u.site, u.repetition, u.start_time, u.offered)
            for u in s2_plan.units
        ]
        assert actual == expected
        assert [u.index for u in s2_plan.units] == list(range(len(s2_plan)))
        assert [u.sort_key for u in s2_plan.units] == sorted(u.sort_key for u in s2_plan.units)

    def test_rotation_matches_study_method(self, section2_scenario):
        study = Section2Study(section2_scenario, repetitions=3)
        for client in CLIENTS:
            assert study.relay_rotation(client) == section2_relay_rotation(
                section2_scenario, client
            )

    def test_study_plan_equals_planner(self, section2_scenario, s2_plan):
        study = Section2Study(section2_scenario, repetitions=3, interval=360.0)
        assert study.plan(sites=["eBay"], clients=CLIENTS) == s2_plan

    def test_defaults_cover_all_clients_and_sites(self, section2_scenario):
        plan = plan_section2(
            section2_scenario,
            repetitions=1,
            interval=360.0,
            config=STUDY_SESSION_CONFIG,
        )
        clients = {u.client for u in plan.units}
        sites = {u.site for u in plan.units}
        assert clients == set(section2_scenario.client_names)
        assert sites == set(section2_scenario.site_names)


class TestUnitIdentity:
    def test_unit_id_ignores_index(self, s2_plan):
        unit = s2_plan.units[0]
        moved = dataclasses.replace(unit, index=99)
        assert moved.unit_id == unit.unit_id

    def test_unit_id_depends_on_content(self, s2_plan):
        unit = s2_plan.units[0]
        assert dataclasses.replace(unit, repetition=77).unit_id != unit.unit_id
        assert dataclasses.replace(unit, offered=("Princeton",)).unit_id != unit.unit_id
        assert dataclasses.replace(unit, set_size_label=5).unit_id != unit.unit_id

    def test_unit_ids_unique_within_plan(self, s2_plan):
        ids = [u.unit_id for u in s2_plan.units]
        assert len(set(ids)) == len(ids)

    def test_plan_rejects_misnumbered_units(self, s2_plan):
        units = list(s2_plan.units)
        units[1] = dataclasses.replace(units[1], index=5)
        with pytest.raises(ValueError, match="serial execution order"):
            CampaignPlan(
                study=s2_plan.study,
                scenario_spec=s2_plan.scenario_spec,
                seed=s2_plan.seed,
                config=s2_plan.config,
                units=tuple(units),
            )


class TestFingerprint:
    def test_stable_across_replans(self, section2_scenario, s2_plan):
        again = plan_section2(
            section2_scenario,
            repetitions=3,
            interval=360.0,
            config=STUDY_SESSION_CONFIG,
            sites=["eBay"],
            clients=CLIENTS,
        )
        assert again.fingerprint() == s2_plan.fingerprint()

    def test_sensitive_to_seed(self, s2_plan):
        drifted = dataclasses.replace(s2_plan, seed=s2_plan.seed + 1)
        assert drifted.fingerprint() != s2_plan.fingerprint()

    def test_sensitive_to_unit_stream(self, section2_scenario, s2_plan):
        fewer = plan_section2(
            section2_scenario,
            repetitions=2,
            interval=360.0,
            config=STUDY_SESSION_CONFIG,
            sites=["eBay"],
            clients=CLIENTS,
        )
        assert fewer.fingerprint() != s2_plan.fingerprint()

    def test_sensitive_to_config(self, s2_plan):
        drifted = dataclasses.replace(s2_plan, config=SECTION4_SESSION_CONFIG)
        assert drifted.fingerprint() != s2_plan.fingerprint()


class TestSection4Plans:
    def test_stateless_detection(self):
        assert policy_is_stateless(UniformRandomSetPolicy(4))
        assert not policy_is_stateless(HistoryRankedPolicy(4))

    def test_stateful_policy_refused(self, section4_scenario):
        with pytest.raises(ValueError, match="adapts to feedback"):
            plan_section4_policy(
                section4_scenario,
                HistoryRankedPolicy(4),
                repetitions=2,
                interval=30.0,
                config=SECTION4_SESSION_CONFIG,
            )

    def test_policy_plan_replays_serial_draws(self, section4_scenario):
        """Planned candidate sets equal the serial per-client stream draws."""
        policy = UniformRandomSetPolicy(3)
        plan = plan_section4_policy(
            section4_scenario,
            policy,
            repetitions=4,
            interval=30.0,
            config=SECTION4_SESSION_CONFIG,
        )
        expected = []
        full_set = section4_scenario.relay_names
        for client in section4_scenario.client_names:
            rng = section4_scenario.bank.generator("policy", "section4", policy.name, client)
            for j in range(4):
                offered = policy.candidates(client, "eBay", full_set, rng, now=j * 30.0)
                expected.append((client, j, tuple(offered)))
        actual = [(u.client, u.repetition, u.offered) for u in plan.units]
        assert actual == expected

    def test_sweep_concatenates_per_k_plans(self, section4_scenario):
        plan = plan_section4_sweep(
            section4_scenario,
            [1, 3],
            repetitions=2,
            interval=30.0,
            config=SECTION4_SESSION_CONFIG,
        )
        n_clients = len(section4_scenario.client_names)
        assert len(plan) == 2 * 2 * n_clients
        assert [u.index for u in plan.units] == list(range(len(plan)))
        sizes = [len(u.offered) for u in plan.units]
        assert sizes == [1] * (2 * n_clients) + [3] * (2 * n_clients)
        assert all(u.set_size_label is None for u in plan.units)

    def test_study_sweep_plan_equals_planner(self, section4_scenario):
        study = Section4Study(section4_scenario, repetitions=2)
        assert study.plan_random_set_sweep([1, 3]) == plan_section4_sweep(
            section4_scenario,
            [1, 3],
            repetitions=2,
            interval=30.0,
            config=SECTION4_SESSION_CONFIG,
        )


class TestWorkUnitShape:
    def test_units_are_frozen_and_picklable(self, s2_plan):
        import pickle

        unit = s2_plan.units[0]
        with pytest.raises(dataclasses.FrozenInstanceError):
            unit.index = 3  # type: ignore[misc]
        assert pickle.loads(pickle.dumps(unit)) == unit

    def test_plan_is_picklable(self, s2_plan):
        import pickle

        clone = pickle.loads(pickle.dumps(s2_plan))
        assert clone == s2_plan
        assert clone.fingerprint() == s2_plan.fingerprint()

    def test_work_unit_defaults(self):
        unit = WorkUnit(
            index=0,
            study="s",
            client="c",
            site="x",
            repetition=0,
            start_time=0.0,
            offered=("R1",),
        )
        assert unit.set_size_label is None
        assert unit.sort_key == 0
