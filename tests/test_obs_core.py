"""repro.obs.core tests: registry arithmetic, spans, determinism, env gating."""

import pytest

from repro.obs.core import (
    DEFAULT_TRACK,
    Histogram,
    Observer,
    ObsRecord,
    global_observer,
    install_observer,
    observe_enabled_from_env,
    reset_global_observer,
    shard_directory_from_env,
)


class TestEnvGating:
    @pytest.mark.parametrize("value", ["1", "true", "yes", "on", "TRUE", "On"])
    def test_truthy_values(self, value):
        assert observe_enabled_from_env({"REPRO_OBS": value})

    @pytest.mark.parametrize("value", ["", "0", "false", "off", "no", "2"])
    def test_falsy_values(self, value):
        assert not observe_enabled_from_env({"REPRO_OBS": value})

    def test_unset(self):
        assert not observe_enabled_from_env({})

    def test_shard_directory(self):
        assert shard_directory_from_env({}) is None
        assert shard_directory_from_env({"REPRO_OBS_DIR": "/tmp/x"}) == "/tmp/x"
        assert shard_directory_from_env({"REPRO_OBS_DIR": ""}) is None


class TestCounters:
    def test_count_accumulates(self):
        obs = Observer()
        obs.count("a")
        obs.count("a", 2.0)
        assert obs.counter("a") == 3.0
        assert obs.counter("missing") == 0.0

    def test_gauge_last_wins_gauge_max_keeps_peak(self):
        obs = Observer()
        obs.gauge("depth", 5.0)
        obs.gauge("depth", 2.0)
        obs.gauge_max("peak", 5.0)
        obs.gauge_max("peak", 2.0)
        assert obs.gauges["depth"] == 2.0
        assert obs.gauges["peak"] == 5.0


class TestHistogram:
    def test_observe_and_mean(self):
        h = Histogram(bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.total == 3
        assert h.mean == pytest.approx(55.5 / 3)
        assert h.min == 0.5 and h.max == 50.0

    def test_quantile_clamped_to_observed_range(self):
        h = Histogram(bounds=(1.0, 10.0, 100.0))
        for v in (2.0, 3.0, 4.0):
            h.observe(v)
        assert h.quantile(0.0) >= h.min
        assert h.quantile(1.0) <= h.max

    def test_empty_quantile_and_mean(self):
        h = Histogram()
        assert h.mean == 0.0
        assert h.quantile(0.5) == 0.0

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=())
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=(5.0, 1.0))

    def test_merge_requires_matching_bounds(self):
        a = Histogram(bounds=(1.0, 2.0))
        b = Histogram(bounds=(1.0, 3.0))
        with pytest.raises(ValueError):
            a.merge_in(b)

    def test_merge_sums_buckets_and_extremes(self):
        a = Histogram(bounds=(1.0, 10.0))
        b = Histogram(bounds=(1.0, 10.0))
        a.observe(0.5)
        b.observe(20.0)
        a.merge_in(b)
        assert a.total == 2
        assert a.min == 0.5 and a.max == 20.0

    def test_dict_roundtrip(self):
        h = Histogram(bounds=(1.0, 10.0))
        h.observe(3.0)
        again = Histogram.from_dict(h.to_dict())
        assert again.to_dict() == h.to_dict()

    def test_observer_observe_value(self):
        obs = Observer()
        obs.observe_value("wait", 0.5)
        obs.observe_value("wait", 1.5)
        assert obs.histograms["wait"].total == 2


class TestSpans:
    def test_span_records_are_ordered_and_sequenced(self):
        obs = Observer()
        obs.span("tick", "epoch", 1.0, 2.0)
        obs.event("probe", "selection", 1.5, winner="direct")
        records = obs.records
        assert [r.kind for r in records] == ["span", "event"]
        assert records[0].seq == 0 and records[1].seq == 1
        assert records[0].track == DEFAULT_TRACK
        assert records[1].args == {"winner": "direct"}
        assert sorted(records, key=lambda r: r.sort_key)[0].name == "epoch"

    def test_identical_runs_identical_records(self):
        def run():
            obs = Observer()
            obs.span("tick", "epoch", 0.0, 1.0, flows=2)
            obs.event("probe", "selection", 0.5, winner="w")
            return [r.to_dict() for r in obs.records]

        assert run() == run()

    def test_record_cap_drops_and_counts(self):
        obs = Observer(max_records=2)
        for i in range(5):
            obs.span("tick", "epoch", float(i), float(i) + 1.0)
        assert len(obs.records) == 2
        assert obs.dropped == 3

    def test_record_dict_roundtrip(self):
        rec = ObsRecord(
            kind="span",
            category="tick",
            name="epoch",
            start=1.0,
            end=2.0,
            seq=7,
            track="worker-1",
            args={"flows": 3},
        )
        again = ObsRecord.from_dict(rec.to_dict())
        assert again.to_dict() == rec.to_dict()
        assert again.duration == 1.0

    def test_span_summary_shape(self):
        obs = Observer()
        obs.span("tick", "epoch", 0.0, 2.0)
        obs.span("tick", "epoch", 2.0, 3.0)
        obs.event("probe", "selection", 1.0)
        summary = obs.span_summary()
        assert summary["spans"]["tick"] == {"count": 2, "total_time": 3.0}
        assert summary["events"] == 1
        assert summary["dropped"] == 0

    def test_has_data_and_reset(self):
        obs = Observer()
        assert not obs.has_data
        obs.count("x")
        assert obs.has_data
        obs.reset()
        assert not obs.has_data
        obs.span("tick", "epoch", 0.0, 1.0)
        assert obs.records[0].seq == 0  # sequence restarts after reset


class TestGlobalObserver:
    @pytest.fixture(autouse=True)
    def _clean(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        reset_global_observer()
        yield
        reset_global_observer()

    def test_disabled_by_default(self):
        assert global_observer() is None

    def test_env_enables_creation(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        obs = global_observer()
        assert obs is not None
        assert global_observer() is obs  # memoised

    def test_create_true_forces(self):
        obs = global_observer(create=True)
        assert obs is not None
        assert global_observer(create=False) is obs

    def test_create_false_never_creates(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        assert global_observer(create=False) is None

    def test_install_and_reset(self):
        mine = Observer(track="t")
        assert install_observer(mine) is mine
        assert global_observer(create=False) is mine
        reset_global_observer()
        assert global_observer(create=False) is None
