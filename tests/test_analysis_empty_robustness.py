"""Every analysis + renderer path must tolerate empty measurement stores.

The CLI refuses empty stores up front, but library users can feed any
subset of a campaign (e.g. a filter that matched nothing) into any
artefact; none of these calls may crash.
"""

import math

import pytest

from repro.analysis import (
    classify_clients,
    headline_stats,
    improvement_histogram,
    improvement_vs_throughput,
    indirect_throughput_series,
    mean_improvement_by_site,
    penalty_table,
    per_client_histograms,
    random_set_curves,
    render_fig1,
    render_fig2,
    render_fig3,
    render_fig4,
    render_fig5,
    render_fig6,
    render_headline,
    render_table1,
    render_table2,
    render_table3,
    top_relays_per_client,
    total_utilization_stats,
    utilization_vs_improvement,
)
from repro.analysis.variability import variability_reduction
from repro.trace.store import TraceStore


@pytest.fixture()
def empty():
    return TraceStore()


class TestEmptyAnalyses:
    def test_headline(self, empty):
        h = headline_stats(empty)
        assert h.n_transfers == 0
        assert math.isnan(h.utilization)
        render_headline(h)

    def test_histograms(self, empty):
        hist = improvement_histogram(empty)
        assert hist.n_points == 0
        render_fig1(hist)
        render_fig2(per_client_histograms(empty))

    def test_penalties(self, empty):
        rows = penalty_table(empty)
        assert len(rows) == 3
        assert all(math.isnan(r.penalty_fraction) for r in rows)
        render_table1(rows)

    def test_utilization(self, empty):
        assert top_relays_per_client(empty) == {}
        assert total_utilization_stats(empty) == {}
        assert utilization_vs_improvement(empty, "Duke") == []
        render_table2({})
        render_fig5({})
        render_table3([], client="Duke")

    def test_series(self, empty):
        assert indirect_throughput_series(empty) == {}
        render_fig4({})
        panel = improvement_vs_throughput(empty)
        assert panel.direct_mbps.size == 0
        render_fig3([panel])

    def test_random_set(self, empty):
        assert random_set_curves(empty) == {}
        render_fig6({})

    def test_grouping_helpers(self, empty):
        assert classify_clients(empty) == {}
        assert mean_improvement_by_site(empty) == {}
        assert variability_reduction(empty) == {}
