"""CLI surface of the insight layer: obs phases/diff/slo/report + --obs wiring.

Complements ``test_obs_identity.py`` (which proves obs never changes study
artefacts) with the analytics subcommands and the ``--obs`` flag on the
mhttp / chaos / scale studies.
"""

import os

import pytest

from repro.cli import main
from repro.obs.core import Observer
from repro.obs.export import ObsTrace

from tests.test_obs_identity import _run  # the shared env-pinned CLI driver

CHAOS_ARGS = ["chaos", "--quick", "--jobs", "1"]
MHTTP_ARGS = ["mhttp", "--quick", "--jobs", "1"]
SCALE_ARGS = ["scale", "--clients", "80", "--waves", "1"]


@pytest.fixture(scope="module")
def chaos_run(tmp_path_factory):
    """One quick chaos campaign with --obs: (records path, trace path)."""
    root = tmp_path_factory.mktemp("chaos")
    out = root / "chaos.jsonl"
    _run(CHAOS_ARGS + ["--out", str(out), "--obs"])
    return str(out), str(out) + ".obs.jsonl"


def _synthetic_trace(path, *, rate=1.0):
    obs = Observer()
    obs.span("probe", "probe:R1", 0.0, 0.5, won=True)
    obs.span("transfer", "remainder:R1", 0.5, 8.0 / rate, path="R1")
    obs.span("session", "C->S", 0.0, 8.0 / rate, outcome="completed")
    obs.count("session.outcome.completed")
    ObsTrace.from_observer(obs).save_jsonl(str(path))
    return str(path)


class TestObsFlagOnStudies:
    """Satellite: every study subcommand takes --obs / --obs-out."""

    @pytest.mark.parametrize(
        # The population engine is struct-of-arrays: no per-session spans,
        # but the engine's tick spans and counters still land in the trace.
        ("argv", "category"),
        [(MHTTP_ARGS, "session"), (CHAOS_ARGS, "session"), (SCALE_ARGS, "tick")],
    )
    def test_obs_writes_sidecar_trace(self, argv, category, tmp_path):
        out = tmp_path / "study.jsonl"
        _run(argv + ["--out", str(out), "--obs"])
        trace = ObsTrace.load_jsonl(str(out) + ".obs.jsonl")
        assert trace.records
        assert any(r.category == category for r in trace.records)

    def test_obs_out_overrides_path(self, tmp_path):
        out = tmp_path / "study.jsonl"
        sidecar = tmp_path / "custom.obs.jsonl"
        _run(MHTTP_ARGS + ["--out", str(out), "--obs", "--obs-out", str(sidecar)])
        assert sidecar.exists()
        assert not os.path.exists(str(out) + ".obs.jsonl")

    @pytest.mark.parametrize("argv", [MHTTP_ARGS, CHAOS_ARGS, SCALE_ARGS])
    def test_artefact_bytes_unchanged_by_obs(self, argv, tmp_path):
        plain, observed = tmp_path / "plain.jsonl", tmp_path / "obs.jsonl"
        _run(argv + ["--out", str(plain)])
        _run(argv + ["--out", str(observed), "--obs"])
        assert plain.read_bytes() == observed.read_bytes()


class TestPhasesCli:
    def test_phases_on_campaign_trace(self, chaos_run, capsys):
        _records, trace = chaos_run
        assert main(["obs", "phases", trace]) == 0
        out = capsys.readouterr().out
        assert "critical-path attribution" in out
        assert "transfer" in out

    def test_bad_quantile_exits_2(self, chaos_run):
        _records, trace = chaos_run
        assert main(["obs", "phases", trace, "--quantile", "1.5"]) == 2

    def test_missing_trace_exits_2(self, tmp_path):
        assert main(["obs", "phases", str(tmp_path / "absent.jsonl")]) == 2


class TestDiffCli:
    def test_identical_traces_exit_0(self, tmp_path, capsys):
        a = _synthetic_trace(tmp_path / "a.jsonl")
        b = _synthetic_trace(tmp_path / "b.jsonl")
        assert main(["obs", "diff", a, b]) == 0
        assert "zero drift" in capsys.readouterr().out

    def test_drift_exits_1_and_names_category(self, tmp_path, capsys):
        a = _synthetic_trace(tmp_path / "a.jsonl", rate=1.0)
        b = _synthetic_trace(tmp_path / "b.jsonl", rate=2.0)
        assert main(["obs", "diff", a, b]) == 1
        out = capsys.readouterr().out
        assert "drift in" in out and "transfer" in out

    def test_tolerance_absorbs_drift(self, tmp_path):
        a = _synthetic_trace(tmp_path / "a.jsonl", rate=1.0)
        b = _synthetic_trace(tmp_path / "b.jsonl", rate=2.0)
        assert (
            main(["obs", "diff", a, b, "--duration-rel", "0.9", "--quantile-rel", "0.9"])
            == 0
        )

    def test_negative_tolerance_exits_2(self, tmp_path):
        a = _synthetic_trace(tmp_path / "a.jsonl")
        assert main(["obs", "diff", a, a, "--duration-rel", "-0.1"]) == 2

    def test_missing_side_exits_2(self, tmp_path):
        a = _synthetic_trace(tmp_path / "a.jsonl")
        assert main(["obs", "diff", a, str(tmp_path / "absent.jsonl")]) == 2

    def test_self_diff_of_campaign_trace_is_clean(self, chaos_run):
        _records, trace = chaos_run
        assert main(["obs", "diff", trace, trace]) == 0


class TestSloCli:
    def test_committed_spec_passes_on_quick_chaos(self, chaos_run, capsys):
        records, trace = chaos_run
        rc = main(
            ["obs", "slo", "specs/chaos-quick.slo.toml",
             "--records", records, "--trace", trace]
        )
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "all objectives met" in out

    def test_violated_spec_exits_1(self, chaos_run, tmp_path, capsys):
        records, _trace = chaos_run
        spec = tmp_path / "strict.toml"
        spec.write_text(
            '[[objective]]\nname = "impossible"\nmetric = "availability"\nmin = 1.5\n'
        )
        assert main(["obs", "slo", str(spec), "--records", records]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_malformed_spec_exits_2(self, tmp_path, capsys):
        spec = tmp_path / "bad.toml"
        spec.write_text("not toml at all\n")
        assert main(["obs", "slo", str(spec)]) == 2

    def test_missing_spec_exits_2(self, tmp_path):
        assert main(["obs", "slo", str(tmp_path / "absent.toml")]) == 2


class TestReportCli:
    def test_writes_default_out(self, chaos_run, tmp_path, capsys):
        _records, trace = chaos_run
        assert main(["obs", "report", trace]) == 0
        assert "wrote" in capsys.readouterr().out
        assert os.path.exists(trace + ".health.html")

    def test_report_is_deterministic(self, chaos_run, tmp_path):
        _records, trace = chaos_run
        a, b = tmp_path / "a.html", tmp_path / "b.html"
        assert main(["obs", "report", trace, "--out", str(a)]) == 0
        assert main(["obs", "report", trace, "--out", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()

    def test_report_with_slo_section(self, chaos_run, tmp_path):
        records, trace = chaos_run
        out = tmp_path / "health.html"
        rc = main(
            ["obs", "report", trace, "--out", str(out),
             "--slo", "specs/chaos-quick.slo.toml", "--records", records,
             "--title", "chaos quick health"]
        )
        assert rc == 0
        html = out.read_text()
        assert "chaos quick health" in html
        assert 'class="pass"' in html
