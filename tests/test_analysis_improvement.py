"""Fig. 1/2/3 analysis tests."""

import numpy as np
import pytest

from repro.analysis.improvement import (
    improvement_histogram,
    improvement_vs_throughput,
    per_client_histograms,
)
from repro.trace.records import TransferRecord
from repro.trace.store import TraceStore
from repro.util.units import mbps_to_bytes_per_s


def rec(client="A", direct_mbps=1.0, selected_mbps=1.5, via="R"):
    return TransferRecord(
        study="t",
        client=client,
        site="eBay",
        repetition=0,
        start_time=0.0,
        set_size=1 if via else 0,
        offered=(via,) if via else (),
        selected_via=via,
        direct_throughput=mbps_to_bytes_per_s(direct_mbps),
        selected_throughput=mbps_to_bytes_per_s(selected_mbps),
        end_to_end_throughput=mbps_to_bytes_per_s(selected_mbps),
        probe_overhead=0.0,
        file_bytes=1e6,
    )


class TestHistogram:
    def test_summary_statistics(self):
        s = TraceStore(
            [rec(selected_mbps=1.5), rec(selected_mbps=2.0), rec(selected_mbps=0.8)]
        )
        h = improvement_histogram(s)
        assert h.n_points == 3
        assert h.mean == pytest.approx((50 + 100 - 20) / 3)
        assert h.median == pytest.approx(50.0)
        assert h.fraction_negative == pytest.approx(1 / 3)
        assert h.fraction_0_to_100 == pytest.approx(2 / 3)

    def test_direct_rows_excluded(self):
        s = TraceStore([rec(via=None), rec(selected_mbps=2.0)])
        assert improvement_histogram(s).n_points == 1

    def test_mass_sums_to_100(self):
        s = TraceStore([rec() for _ in range(10)])
        h = improvement_histogram(s)
        assert h.percentages.sum() == pytest.approx(100.0)

    def test_peak_bin(self):
        s = TraceStore([rec(selected_mbps=1.5) for _ in range(5)])
        lo, hi = improvement_histogram(s).peak_bin()
        assert lo <= 50.0 < hi

    def test_peak_bin_empty_raises(self):
        with pytest.raises(ValueError):
            improvement_histogram(TraceStore()).peak_bin()

    def test_campaign_shape(self, section2_store):
        """The simulated Fig. 1 lands in the paper's reported bands."""
        h = improvement_histogram(section2_store)
        assert 25.0 <= h.mean <= 65.0          # paper: 49%
        assert 20.0 <= h.median <= 50.0        # paper: 37%
        assert 0.01 <= h.fraction_negative <= 0.22   # paper: ~12%
        assert h.fraction_0_to_100 >= 0.65     # paper: 84%


class TestPerClient:
    def test_all_clients_present(self):
        s = TraceStore([rec(client="A"), rec(client="B")])
        hists = per_client_histograms(s)
        assert set(hists) == {"A", "B"}

    def test_explicit_client_list(self):
        s = TraceStore([rec(client="A")])
        hists = per_client_histograms(s, clients=["A", "Ghost"])
        assert hists["Ghost"].n_points == 0

    def test_labels(self):
        s = TraceStore([rec(client="A")])
        assert per_client_histograms(s)["A"].label == "A"


class TestImprovementVsThroughput:
    def build(self):
        rows = []
        # Inverse relation: improvement falls as direct throughput rises.
        for d, i in [(0.5, 200.0), (1.0, 100.0), (2.0, 40.0), (4.0, 5.0)]:
            sel = d * (1 + i / 100.0)
            rows.extend(rec(direct_mbps=d, selected_mbps=sel) for _ in range(3))
        return TraceStore(rows)

    def test_downward_slope(self):
        panel = improvement_vs_throughput(self.build())
        assert panel.is_downward
        assert panel.slope < -20.0

    def test_binned_means_monotone(self):
        centres, means = improvement_vs_throughput(self.build()).binned_means(4)
        assert list(means) == sorted(means, reverse=True)

    def test_filter_by_client_and_relay(self):
        s = TraceStore(
            [rec(client="A", via="R1"), rec(client="B", via="R2")]
        )
        panel = improvement_vs_throughput(s, client="A")
        assert panel.direct_mbps.size == 1
        panel2 = improvement_vs_throughput(s, relay="R2")
        assert panel2.direct_mbps.size == 1

    def test_empty_panel(self):
        panel = improvement_vs_throughput(TraceStore())
        assert panel.slope == 0.0
        c, m = panel.binned_means()
        assert c.size == 0 and m.size == 0

    def test_degenerate_single_x(self):
        s = TraceStore([rec(), rec()])
        panel = improvement_vs_throughput(s)
        assert panel.slope == 0.0

    def test_campaign_trend_is_downward(self, section2_store):
        """Paper Fig. 3: improvement inversely related to client throughput."""
        panel = improvement_vs_throughput(section2_store)
        assert panel.is_downward
