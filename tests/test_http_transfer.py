"""issue_download tests: HTTP over fluid flows."""

import pytest

from repro.http.messages import ByteRange, HttpRequest
from repro.http.transfer import TcpParams, issue_download
from repro.util.units import kb, mb, mbps_to_bytes_per_s


class TestDirectDownload(object):
    def test_full_download_moves_all_bytes(self, mini_world):
        w = mini_world(direct_mbps=1.0, file_mb=1.0)
        sim, net, _ = w.universe()
        path = w.builder.direct("C", "S")
        t = issue_download(net, path.route, w.server, HttpRequest("S", "/f"))
        net.run_to_completion(t.flow)
        assert t.completed
        assert t.flow.delivered == pytest.approx(mb(1))

    def test_range_download_moves_range_only(self, mini_world):
        w = mini_world()
        sim, net, _ = w.universe()
        path = w.builder.direct("C", "S")
        req = HttpRequest("S", "/f", ByteRange.first_bytes(int(kb(100))))
        t = issue_download(net, path.route, w.server, req)
        net.run_to_completion(t.flow)
        assert t.flow.size == pytest.approx(kb(100))

    def test_throughput_close_to_bottleneck(self, mini_world):
        w = mini_world(direct_mbps=2.0, file_mb=4.0)
        sim, net, _ = w.universe()
        path = w.builder.direct("C", "S")
        t = issue_download(
            net, path.route, w.server, HttpRequest("S", "/f"),
            tcp=TcpParams(max_window=1e9),
        )
        net.run_to_completion(t.flow)
        assert t.throughput() == pytest.approx(mbps_to_bytes_per_s(2.0), rel=0.05)

    def test_window_cap_limits_throughput(self, mini_world):
        w = mini_world(direct_mbps=50.0, access_mbps=100.0, file_mb=4.0)
        sim, net, _ = w.universe()
        path = w.builder.direct("C", "S")
        t = issue_download(
            net, path.route, w.server, HttpRequest("S", "/f"),
            tcp=TcpParams(max_window=65536.0),
        )
        net.run_to_completion(t.flow)
        ceiling = 65536.0 / path.route.rtt
        # Setup latency and slow start keep the average strictly below the
        # window ceiling, but close to it for a multi-megabyte file.
        assert 0.88 * ceiling <= t.throughput() <= ceiling


class TestIndirectDownload:
    def test_proxy_required(self, mini_world):
        w = mini_world()
        sim, net, _ = w.universe()
        path = w.builder.indirect("C", "R1", "S")
        with pytest.raises(ValueError, match="relay proxy"):
            issue_download(net, path.route, w.server, HttpRequest("S", "/f"))

    def test_proxy_mismatch_rejected(self, mini_world):
        w = mini_world(relay_mbps={"R1": 2.0, "R2": 3.0})
        sim, net, _ = w.universe()
        p1 = w.builder.indirect("C", "R1", "S")
        p2 = w.builder.indirect("C", "R2", "S")
        with pytest.raises(ValueError, match="via"):
            issue_download(
                net, p1.route, w.server, HttpRequest("S", "/f"), proxy=p2.proxy
            )

    def test_indirect_bottleneck_is_overlay_hop(self, mini_world, fast_tcp):
        w = mini_world(direct_mbps=1.0, relay_mbps={"R1": 3.0}, file_mb=4.0)
        sim, net, _ = w.universe()
        path = w.builder.indirect("C", "R1", "S")
        t = issue_download(
            net, path.route, w.server, HttpRequest("S", "/f"),
            proxy=path.proxy, tcp=fast_tcp,
        )
        net.run_to_completion(t.flow)
        assert t.throughput() == pytest.approx(mbps_to_bytes_per_s(3.0), rel=0.1)

    def test_forward_counted_on_proxy(self, mini_world):
        w = mini_world()
        sim, net, _ = w.universe()
        path = w.builder.indirect("C", "R1", "S")
        issue_download(
            net, path.route, w.server, HttpRequest("S", "/f"), proxy=path.proxy
        )
        assert path.proxy.forwarded_count == 1


class TestCallbacks:
    def test_on_complete_receives_transfer(self, mini_world):
        w = mini_world()
        sim, net, _ = w.universe()
        done = []
        path = w.builder.direct("C", "S")
        t = issue_download(
            net, path.route, w.server, HttpRequest("S", "/f"), on_complete=done.append
        )
        net.run_to_completion(t.flow)
        assert done == [t]

    def test_abort_prevents_completion(self, mini_world):
        w = mini_world(file_mb=8.0)
        sim, net, _ = w.universe()
        path = w.builder.direct("C", "S")
        t = issue_download(net, path.route, w.server, HttpRequest("S", "/f"))
        sim.run(until=1.0)
        t.abort(net)
        sim.run()
        assert t.done and not t.completed
