"""Failure-layer extension tests: outage edge cases, node crashes, records,
availability analysis and the runner-integrated failure study."""

import dataclasses
import json
import math

import numpy as np
import pytest

from repro.analysis.availability import (
    availability_by_mode,
    availability_stats,
    goodput_under_failure,
    recovery_times,
    render_availability,
)
from repro.core.resilience import RecoveryEvent, ResilienceConfig
from repro.net.failures import (
    Outage,
    apply_outages,
    merge_outage_plans,
    node_outage_plan,
    node_wan_links,
    total_downtime,
)
from repro.net.trace import CapacityTrace
from repro.trace.records import FailureRecord, TransferRecord
from repro.trace.store import TraceStore
from repro.workloads.failures import (
    FAILURE_MODES,
    FAILURES_SESSION_CONFIG,
    FailureStudyParams,
    FailureTransferRecord,
    failure_outage_plan,
    plan_failures,
    run_failure_unit,
)


def _zero_measure(trace: CapacityTrace, t0: float, t1: float) -> float:
    """Lebesgue measure of {t in [t0, t1] : trace(t) == 0}."""
    times = list(trace.times) + [max(t1, trace.times[-1])]
    down = 0.0
    for start, value, end in zip(trace.times, trace.values, times[1:]):
        if value == 0.0:
            down += max(0.0, min(end, t1) - max(start, t0))
    if trace.values[-1] == 0.0 and t1 > times[-1]:
        down += t1 - times[-1]
    return down


def _no_redundant_breakpoints(trace: CapacityTrace) -> bool:
    times, values = trace.times, trace.values
    strictly_increasing = all(a < b for a, b in zip(times, times[1:]))
    no_value_repeats = all(a != b for a, b in zip(values, values[1:]))
    return strictly_increasing and no_value_repeats


class TestApplyOutagesEdgeCases:
    def test_back_to_back_outages_share_one_zero_region(self):
        t = apply_outages(
            CapacityTrace.constant(100.0), [Outage(5.0, 5.0), Outage(10.0, 5.0)]
        )
        assert list(t.times) == [0.0, 5.0, 15.0]
        assert list(t.values) == [100.0, 0.0, 100.0]
        assert _no_redundant_breakpoints(t)

    def test_outage_at_last_breakpoint(self):
        base = CapacityTrace([0.0, 10.0], [100.0, 50.0])
        t = apply_outages(base, [Outage(10.0, 5.0)])
        assert t.value_at(9.9) == 100.0
        assert t.value_at(12.0) == 0.0
        assert t.value_at(15.0) == 50.0
        assert _no_redundant_breakpoints(t)

    def test_outage_after_last_breakpoint(self):
        base = CapacityTrace([0.0, 10.0], [100.0, 50.0])
        t = apply_outages(base, [Outage(20.0, 5.0)])
        assert t.value_at(22.0) == 0.0
        assert t.value_at(25.0) == 50.0
        assert _no_redundant_breakpoints(t)

    def test_resume_into_zero_coalesces(self):
        # The underlying trace is already 0 when the outage ends: the resume
        # breakpoint would repeat the value and must be dropped.
        base = CapacityTrace([0.0, 6.0], [100.0, 0.0])
        t = apply_outages(base, [Outage(5.0, 3.0)])
        assert list(t.times) == [0.0, 5.0]
        assert list(t.values) == [100.0, 0.0]

    def test_downtime_property(self):
        """total_downtime == zero-capacity measure of the rewritten trace."""
        rng = np.random.default_rng(20260806)
        horizon = 1000.0
        for _ in range(50):
            n = int(rng.integers(1, 6))
            times = [0.0] + sorted(rng.uniform(1.0, horizon, size=n - 1).tolist())
            values = rng.uniform(1.0, 10.0, size=n).tolist()  # strictly positive
            base = CapacityTrace(times, values)
            outages, t = [], float(rng.uniform(0.0, 100.0))
            while t < 0.8 * horizon and len(outages) < 8:
                duration = float(rng.uniform(1.0, 60.0))
                outages.append(Outage(t, duration))
                t += duration + float(rng.uniform(1.0, 120.0))
            rewritten = apply_outages(base, outages)
            expected = total_downtime(outages, 0.0, horizon)
            assert _zero_measure(rewritten, 0.0, horizon) == pytest.approx(expected)
            assert _no_redundant_breakpoints(rewritten)


class TestNodeFailures:
    def test_node_wan_links_excludes_access(self, mini_world):
        w = mini_world(relay_mbps={"R1": 2.0, "R2": 3.0})
        names = node_wan_links(w.topology.links, "R1")
        assert set(names) == {"wan:S->R1", "wan:R1->C"}

    def test_empty_node_name_rejected(self, mini_world):
        w = mini_world()
        with pytest.raises(ValueError):
            node_wan_links(w.topology.links, "")

    def test_node_outage_plan_covers_all_segments(self, mini_world):
        w = mini_world(relay_mbps={"R1": 2.0, "R2": 3.0})
        outages = [Outage(10.0, 5.0)]
        plan = node_outage_plan(w.topology.links, "R1", outages)
        assert set(plan) == {"wan:S->R1", "wan:R1->C"}
        assert all(plan[name] == outages for name in plan)

    def test_unknown_node_rejected(self, mini_world):
        w = mini_world()
        with pytest.raises(ValueError, match="no WAN links"):
            node_outage_plan(w.topology.links, "Narnia", [Outage(0.0, 1.0)])

    def test_merge_fuses_overlapping(self):
        merged = merge_outage_plans(
            {"L": [Outage(0.0, 10.0)]},
            {"L": [Outage(5.0, 10.0)], "M": [Outage(1.0, 2.0)]},
        )
        assert merged["L"] == [Outage(0.0, 15.0)]
        assert merged["M"] == [Outage(1.0, 2.0)]

    def test_merge_fuses_touching_and_contained(self):
        merged = merge_outage_plans(
            {"L": [Outage(0.0, 5.0), Outage(5.0, 5.0), Outage(2.0, 3.0)]}
        )
        assert merged["L"] == [Outage(0.0, 10.0)]

    def test_merged_plan_is_applicable(self):
        # The merge output must satisfy apply_outages' no-overlap contract.
        merged = merge_outage_plans(
            {"L": [Outage(0.0, 10.0), Outage(30.0, 5.0)]},
            {"L": [Outage(8.0, 10.0)]},
        )
        apply_outages(CapacityTrace.constant(1.0), merged["L"])  # must not raise


class TestDegenerateStats:
    """S1: degenerate divisions report NaN, never raise."""

    def test_speedup_nan_on_zero_durations(self):
        base = dict(
            client="C", site="eBay", repetition=0, start_time=0.0, relay="R1",
            selected_via=None, outage_overlap=True,
        )
        zero_sel = FailureTransferRecord(
            **base, direct_duration=10.0, selected_duration=0.0
        )
        zero_ctrl = FailureTransferRecord(
            **base, direct_duration=0.0, selected_duration=10.0
        )
        assert math.isnan(zero_sel.speedup)
        assert math.isnan(zero_ctrl.speedup)

    def test_masking_rate_nan_without_affected(self):
        from repro.workloads.failures import MaskingStats

        stats = MaskingStats(
            n_transfers=5, n_affected=0, n_masked=0, mean_affected_speedup=math.nan
        )
        assert math.isnan(stats.masking_rate)


def _failure_record(**overrides):
    kwargs = dict(
        study="failures",
        client="Italy",
        site="eBay",
        repetition=0,
        start_time=0.0,
        set_size=2,
        offered=("R1", "R2"),
        selected_via="R1",
        direct_throughput=1e5,
        selected_throughput=2e5,
        end_to_end_throughput=1.8e5,
        probe_overhead=1.0,
        file_bytes=4e6,
        failure_mode="node",
        outcome="completed",
        direct_outcome="completed",
        n_failovers=0,
        n_reprobes=0,
        bytes_received=4e6,
        direct_duration=40.0,
        selected_duration=20.0,
        time_to_recover=math.nan,
        outage_overlap=False,
        recovery_events=(),
    )
    kwargs.update(overrides)
    return FailureRecord(**kwargs)


class TestFailureRecord:
    def test_round_trip_with_events(self):
        events = (
            RecoveryEvent(time=5.0, kind="stall", path="R1", bytes_received=1e5, detail=4.0),
            RecoveryEvent(time=6.0, kind="failover", path="R2", bytes_received=1e5),
        )
        rec = _failure_record(
            outcome="failed_over",
            n_failovers=1,
            time_to_recover=5.0,
            recovery_events=events,
        )
        d = rec.to_dict()
        assert d["record_type"] == "failure"
        assert TransferRecord.from_dict(d) == rec

    def test_nan_ttr_survives_round_trip(self):
        back = TransferRecord.from_dict(_failure_record().to_dict())
        assert math.isnan(back.time_to_recover)

    def test_plain_records_stay_tag_free(self):
        store_row = {
            "study": "section2", "client": "Italy", "site": "eBay",
            "repetition": 0, "start_time": 0.0, "set_size": 1,
            "offered": ["R1"], "selected_via": "R1",
            "direct_throughput": 1e5, "selected_throughput": 2e5,
            "end_to_end_throughput": 1.8e5, "probe_overhead": 1.0,
            "file_bytes": 4e6,
        }
        rec = TransferRecord.from_dict(dict(store_row))
        assert type(rec) is TransferRecord
        assert "record_type" not in rec.to_dict()

    def test_unknown_tag_rejected(self):
        d = _failure_record().to_dict()
        d["record_type"] = "mystery"
        with pytest.raises(ValueError, match="unknown record_type"):
            TransferRecord.from_dict(d)

    def test_outcome_predicates(self):
        assert _failure_record(outcome="aborted").aborted
        assert _failure_record(outcome="failed_over").recovered
        clean = _failure_record()
        assert not clean.aborted and not clean.recovered

    def test_zero_throughput_is_legal(self):
        rec = _failure_record(
            outcome="aborted", selected_throughput=0.0, bytes_received=0.0
        )
        assert rec.aborted

    def test_store_round_trip(self, tmp_path):
        store = TraceStore()
        store.append(
            _failure_record(
                outcome="failed_over",
                time_to_recover=5.0,
                recovery_events=(
                    RecoveryEvent(time=5.0, kind="stall", path="R1", bytes_received=1e5),
                ),
            )
        )
        path = tmp_path / "failures.jsonl"
        store.save_jsonl(path)
        loaded = TraceStore.load_jsonl(path)
        assert loaded.records == store.records
        assert isinstance(loaded.records[0], FailureRecord)


class TestAvailabilityAnalysis:
    def _records(self):
        return [
            _failure_record(failure_mode="none"),
            _failure_record(
                failure_mode="node",
                outcome="failed_over",
                n_failovers=1,
                time_to_recover=6.0,
                selected_duration=50.0,
                outage_overlap=True,
            ),
            _failure_record(
                failure_mode="both",
                outcome="aborted",
                bytes_received=1e6,
                selected_duration=100.0,
                outage_overlap=True,
            ),
        ]

    def test_counts_and_ratios(self):
        stats = availability_stats(self._records())
        assert (stats.n_sessions, stats.n_completed, stats.n_failed_over,
                stats.n_aborted) == (3, 1, 1, 1)
        assert stats.availability == pytest.approx(2.0 / 3.0)
        assert stats.recovery_rate == pytest.approx(0.5)
        assert stats.mean_ttr == pytest.approx(6.0)
        assert stats.byte_unavailability == pytest.approx(3e6 / 12e6)

    def test_goodput_under_failure(self):
        values = goodput_under_failure(self._records())
        assert values == [pytest.approx(4e6 / 50.0), pytest.approx(1e6 / 100.0)]
        assert recovery_times(self._records()) == [6.0]

    def test_zero_duration_goodput_is_zero(self):
        rec = _failure_record(
            outcome="aborted", selected_duration=0.0, bytes_received=0.0,
            outage_overlap=True,
        )
        assert goodput_under_failure([rec]) == [0.0]

    def test_empty_input_is_all_nan(self):
        stats = availability_stats([])
        assert stats.n_sessions == 0
        for name in ("availability", "recovery_rate", "mean_ttr", "median_ttr",
                     "p95_ttr", "mean_goodput_under_failure", "byte_unavailability"):
            assert math.isnan(getattr(stats, name))

    def test_by_mode_first_occurrence_order(self):
        by_mode = availability_by_mode(self._records())
        assert list(by_mode) == ["none", "node", "both"]
        assert by_mode["both"].n_aborted == 1

    def test_render_handles_empty_and_full(self):
        assert "n/a" in render_availability([])
        text = render_availability(self._records())
        assert "Availability study" in text
        assert "failed over 1" in text
        for mode in ("none", "node", "both"):
            assert mode in text


class TestFailurePlan:
    def test_variant_cycles_modes(self, section2_scenario):
        plan = plan_failures(
            section2_scenario, repetitions=8, interval=360.0, clients=["Italy"]
        )
        assert len(plan.units) == 8
        assert [u.variant for u in plan.units] == list(FAILURE_MODES) * 2
        assert all(len(u.offered) == 2 for u in plan.units)

    def test_variant_changes_unit_id(self, section2_scenario):
        plan = plan_failures(
            section2_scenario, repetitions=4, interval=360.0, clients=["Italy"]
        )
        unit = plan.units[0]
        assert dataclasses.replace(unit, variant="both").unit_id != unit.unit_id
        assert dataclasses.replace(unit, variant=None).unit_id != unit.unit_id

    def test_params_change_fingerprint(self, section2_scenario):
        base = plan_failures(
            section2_scenario, repetitions=4, interval=360.0, clients=["Italy"]
        )
        tweaked = plan_failures(
            section2_scenario,
            repetitions=4,
            interval=360.0,
            clients=["Italy"],
            params=FailureStudyParams(link_mtbf=450.0),
        )
        assert base.fingerprint() != tweaked.fingerprint()
        assert base.fingerprint() == plan_failures(
            section2_scenario, repetitions=4, interval=360.0, clients=["Italy"]
        ).fingerprint()

    def test_default_resilience_keeps_legacy_fingerprint(self, section2_scenario):
        from repro.runner.plan import CampaignPlan
        from repro.workloads.experiment import STUDY_SESSION_CONFIG

        explicit_default = dataclasses.replace(
            STUDY_SESSION_CONFIG, resilience=ResilienceConfig()
        )
        mk = lambda config: CampaignPlan(
            study="s",
            scenario_spec=section2_scenario.spec,
            seed=section2_scenario.bank.root_seed,
            config=config,
            units=(),
        )
        assert mk(STUDY_SESSION_CONFIG).fingerprint() == mk(explicit_default).fingerprint()
        resilient = dataclasses.replace(
            STUDY_SESSION_CONFIG, resilience=ResilienceConfig(failover=True)
        )
        assert mk(STUDY_SESSION_CONFIG).fingerprint() != mk(resilient).fingerprint()

    def test_outage_plan_is_mode_gated(self, section2_scenario):
        params = FailureStudyParams()
        relay = section2_scenario.relay_names[0]
        kwargs = dict(client="Italy", site="eBay", relay=relay)
        none = failure_outage_plan(section2_scenario, params, mode="none", **kwargs)
        assert none == {}
        node = failure_outage_plan(section2_scenario, params, mode="node", **kwargs)
        assert node and all(relay in name for name in node)
        with pytest.raises(ValueError, match="unknown failure mode"):
            failure_outage_plan(section2_scenario, params, mode="meteor", **kwargs)


class TestRunFailureUnits:
    @pytest.fixture(scope="class")
    def small_plan(self, section2_scenario):
        return plan_failures(
            section2_scenario, repetitions=4, interval=360.0, clients=["Italy"]
        )

    def test_unit_execution_is_deterministic(self, section2_scenario, small_plan):
        unit = small_plan.units[2]  # the node-crash variant
        first = run_failure_unit(
            section2_scenario, FAILURES_SESSION_CONFIG, unit, small_plan.extra
        )
        second = run_failure_unit(
            section2_scenario, FAILURES_SESSION_CONFIG, unit, small_plan.extra
        )
        # JSON text comparison: NaN fields (an unrecovered session's
        # time-to-recover) would fail a plain dict equality.
        assert json.dumps(first.to_dict()) == json.dumps(second.to_dict())
        assert first.failure_mode == "node"

    def test_jobs_do_not_change_artefacts(self, section2_scenario, small_plan):
        from repro.runner.pool import execute_plan

        inline = execute_plan(small_plan, jobs=1, scenario=section2_scenario)
        workers = execute_plan(small_plan, jobs=2)
        rows = lambda result: [json.dumps(r.to_dict()) for r in result.store.records]
        assert rows(inline) == rows(workers)
        assert all(isinstance(r, FailureRecord) for r in inline.store.records)
