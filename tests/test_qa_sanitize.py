"""Runtime invariant sanitizer tests: wiring, firing, and read-only-ness."""

import numpy as np
import pytest

import repro.tcp.fluid as fluid_mod
from repro.net.link import Link
from repro.net.route import Route
from repro.net.trace import CapacityTrace
from repro.qa.sanitize import (
    InvariantViolation,
    Sanitizer,
    Violation,
    sanitize_enabled_from_env,
)
from repro.sim.simulator import Simulator
from repro.tcp.fluid import FluidNetwork


class _Flow:
    """Flow-shaped stub for feeding check_flow_progress directly."""

    def __init__(self, id=1, name="stub", delivered=0.0, size=1000.0, rate=1.0):
        self.id = id
        self.name = name
        self.delivered = delivered
        self.size = size
        self.rate = rate


def contended_world(**sim_kwargs):
    """Two flows over a shared, trace-varying link (a realistic clean run)."""
    sim = Simulator(**sim_kwargs)
    net = FluidNetwork(sim)
    shared = Link(
        "access", "a", "b",
        CapacityTrace([0.0, 5.0], [1000.0, 400.0]), delay=0.01,
    )
    tail = Link("wan", "b", "c", CapacityTrace.constant(800.0), delay=0.02)
    fa = net.start_flow(Route(links=(shared, tail)), 4000.0, name="fa")
    fb = net.start_flow(Route(links=(shared,)), 2500.0, name="fb")
    sim.run()
    return sim, net, fa, fb


class TestWiring:
    def test_env_var_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize_enabled_from_env()
        assert Simulator().sanitizer is not None

    def test_env_var_falsy_values(self, monkeypatch):
        for value in ("0", "", "off", "no"):
            monkeypatch.setenv("REPRO_SANITIZE", value)
            assert not sanitize_enabled_from_env()
        monkeypatch.delenv("REPRO_SANITIZE")
        assert Simulator().sanitizer is None

    def test_explicit_flag_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert Simulator(sanitize=False).sanitizer is None
        monkeypatch.delenv("REPRO_SANITIZE")
        assert Simulator(sanitize=True).sanitizer is not None

    def test_injected_sanitizer_is_used(self):
        sanitizer = Sanitizer(mode="collect")
        assert Simulator(sanitizer=sanitizer).sanitizer is sanitizer

    def test_mode_validated(self):
        with pytest.raises(ValueError, match="mode"):
            Sanitizer(mode="bogus")


class TestEventMonotonicity:
    """QA-R001 fires when an event executes behind the clock."""

    def backdate(self, sim):
        # Bypass schedule_at's guard the way only a kernel bug could.
        sim._queue.push(1.0, lambda: None, name="backdated")

    def test_fires_and_raises(self):
        sim = Simulator(sanitize=True)
        sim.schedule_at(3.0, lambda: self.backdate(sim), name="injector")
        with pytest.raises(InvariantViolation) as exc:
            sim.run()
        violation = exc.value.violation
        assert violation.code == "QA-R001"
        assert violation.subject == "backdated"
        assert violation.measured == 1.0 and violation.limit == 3.0

    def test_collect_mode_records_without_raising(self):
        sanitizer = Sanitizer(mode="collect")
        sim = Simulator(sanitizer=sanitizer)
        sim.schedule_at(3.0, lambda: self.backdate(sim), name="injector")
        sim.run()
        assert [v.code for v in sanitizer.violations] == ["QA-R001"]

    def test_nan_event_time_fires(self):
        sanitizer = Sanitizer(mode="collect")
        sanitizer.check_event_time(1.0, float("nan"), "nan-event")
        assert [v.code for v in sanitizer.violations] == ["QA-R001"]

    def test_silent_on_ordered_events(self):
        sim = Simulator(sanitize=True)
        sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(1.0, lambda: None)  # equal times are legal
        sim.schedule_at(2.0, lambda: None)
        sim.run()  # must not raise
        assert sim.sanitizer.checks_run == 3


class TestFlowConservation:
    """QA-R002 fires on byte regressions, over-delivery, and bad rates."""

    def test_delivered_regression_fires(self):
        sanitizer = Sanitizer(mode="collect")
        flow = _Flow(delivered=500.0)
        sanitizer.check_flow_progress(flow, now=1.0)
        flow.delivered = 400.0
        sanitizer.check_flow_progress(flow, now=2.0)
        assert [v.code for v in sanitizer.violations] == ["QA-R002"]
        assert sanitizer.violations[0].measured == 400.0

    def test_overdelivery_fires(self):
        sanitizer = Sanitizer(mode="collect")
        sanitizer.check_flow_progress(_Flow(delivered=1500.0, size=1000.0), now=1.0)
        assert [v.code for v in sanitizer.violations] == ["QA-R002"]

    def test_non_finite_rate_fires(self):
        sanitizer = Sanitizer(mode="collect")
        sanitizer.check_flow_progress(_Flow(rate=float("nan")), now=0.0)
        assert [v.code for v in sanitizer.violations] == ["QA-R002"]

    def test_forget_flow_resets_baseline(self):
        sanitizer = Sanitizer(mode="collect")
        flow = _Flow(delivered=500.0)
        sanitizer.check_flow_progress(flow, now=1.0)
        sanitizer.forget_flow(flow.id)
        flow.delivered = 100.0  # a *new* flow may reuse the id
        sanitizer.check_flow_progress(flow, now=2.0)
        assert sanitizer.violations == []

    def test_monotone_progress_is_silent(self):
        sanitizer = Sanitizer(mode="collect")
        flow = _Flow(delivered=0.0)
        for delivered in (0.0, 250.0, 1000.0):
            flow.delivered = delivered
            sanitizer.check_flow_progress(flow, now=delivered / 100.0)
        assert sanitizer.violations == []


class TestAllocation:
    """QA-R003/QA-R004 validate each installed rate vector."""

    def test_overloaded_link_fires_r004(self):
        sanitizer = Sanitizer(mode="collect")
        sanitizer.check_allocation(
            0.0,
            capacities=np.array([100.0]),
            incidence=np.array([[True, True]]),
            caps=np.array([np.inf, np.inf]),
            rates=np.array([80.0, 80.0]),
            link_names=["access"],
        )
        (violation,) = sanitizer.violations
        assert violation.code == "QA-R004"
        assert violation.subject == "access"
        assert violation.measured == pytest.approx(160.0)
        assert violation.limit == pytest.approx(100.0)

    def test_unfair_but_feasible_fires_r003(self):
        sanitizer = Sanitizer(mode="collect")
        sanitizer.check_allocation(
            0.0,
            capacities=np.array([100.0]),
            incidence=np.array([[True, True]]),
            caps=np.array([np.inf, np.inf]),
            rates=np.array([10.0, 20.0]),  # link idle, flow 0 unbottlenecked
            link_names=["access"],
        )
        assert [v.code for v in sanitizer.violations] == ["QA-R003"]

    def test_true_maxmin_allocation_is_silent(self):
        sanitizer = Sanitizer(mode="collect")
        sanitizer.check_allocation(
            0.0,
            capacities=np.array([100.0]),
            incidence=np.array([[True, True]]),
            caps=np.array([np.inf, np.inf]),
            rates=np.array([50.0, 50.0]),
            link_names=["access"],
        )
        assert sanitizer.violations == []

    def test_corrupt_engine_allocation_raises_in_run(self, monkeypatch):
        """End to end: a buggy allocator is caught at the first tick."""
        real = fluid_mod.maxmin_allocate
        monkeypatch.setattr(
            fluid_mod,
            "maxmin_allocate",
            lambda capacities, incidence, caps, **kw: real(capacities, incidence, caps, **kw) * 3.0,
        )
        with pytest.raises(InvariantViolation) as exc:
            contended_world(sanitize=True)
        assert exc.value.violation.code == "QA-R004"


class TestProbeAccounting:
    """QA-R005 validates probe-phase and session bookkeeping."""

    class _Outcome:
        def __init__(self, winner_label="direct", started_at=1.0, decided_at=2.0):
            self.winner = type("P", (), {"label": winner_label})()
            self.probes = ()
            self.started_at = started_at
            self.decided_at = decided_at
            self.probe_bytes = 100_000.0

    def test_decided_before_started_fires(self):
        sanitizer = Sanitizer(mode="collect")
        sanitizer.check_probe_outcome(
            self._Outcome(started_at=10.0, decided_at=9.0), ["direct"]
        )
        assert [v.code for v in sanitizer.violations] == ["QA-R005"]

    def test_winner_outside_candidates_fires(self):
        sanitizer = Sanitizer(mode="collect")
        sanitizer.check_probe_outcome(
            self._Outcome(winner_label="ghost"), ["direct", "via:R1"]
        )
        assert [v.code for v in sanitizer.violations] == ["QA-R005"]

    def test_healthy_outcome_is_silent(self):
        sanitizer = Sanitizer(mode="collect")
        sanitizer.check_probe_outcome(self._Outcome(), ["direct"])
        assert sanitizer.violations == []


class TestDiagnostics:
    def test_raise_mode_message_carries_code_and_hint(self):
        sanitizer = Sanitizer()  # default mode is raise
        with pytest.raises(InvariantViolation) as exc:
            sanitizer.check_event_time(5.0, 1.0, "bad")
        text = str(exc.value)
        assert "QA-R001" in text and "hint:" in text and "bad" in text

    def test_violation_format_includes_measured_and_limit(self):
        v = Violation(
            code="QA-R004", invariant="link-capacity-respected",
            sim_time=1.5, subject="access", detail="over", measured=2.0, limit=1.0,
        )
        text = v.format()
        assert "t=1.5" in text and "measured=2.0" in text and "limit=1.0" in text

    def test_summary_counts(self):
        sanitizer = Sanitizer(mode="collect")
        sanitizer.check_event_time(0.0, 1.0)
        assert sanitizer.summary() == "sanitizer: 1 check(s), 0 violation(s)"


class TestReadOnly:
    """A sanitized run must be byte-identical to an unsanitized one."""

    def test_clean_run_is_silent_and_identical(self):
        _, net_off, fa_off, fb_off = contended_world()
        sim_on, net_on, fa_on, fb_on = contended_world(sanitize=True)
        assert sim_on.sanitizer.violations == []
        assert sim_on.sanitizer.checks_run > 0
        assert net_on.completed_count == net_off.completed_count == 2
        # Exact equality on purpose: observation must not perturb the run.
        assert fa_on.completed_at == fa_off.completed_at
        assert fb_on.completed_at == fb_off.completed_at
        assert fa_on.delivered == fa_off.delivered


class TestSessionResultChecks:
    """QA-R005 post-conditions over the resilient session fields."""

    def _result(self, **overrides):
        from repro.core.session import SessionResult

        kwargs = dict(
            client="C", server="S", resource="/f", size=1000.0,
            offered=("R1",), selected_via="R1",
            requested_at=0.0, completed_at=10.0,
        )
        kwargs.update(overrides)
        return SessionResult(**kwargs)

    def _event(self, time, kind="stall"):
        from repro.core.resilience import RecoveryEvent

        return RecoveryEvent(time=time, kind=kind, path="R1", bytes_received=0.0)

    def test_clean_result_is_silent(self):
        sanitizer = Sanitizer(mode="collect")
        sanitizer.check_session_result(
            self._result(
                recovery_events=(self._event(2.0), self._event(3.0, "failover")),
                bytes_received=500.0,
            )
        )
        assert sanitizer.violations == []

    def test_event_outside_session_interval_fires(self):
        sanitizer = Sanitizer(mode="collect")
        sanitizer.check_session_result(
            self._result(recovery_events=(self._event(99.0),))
        )
        assert [v.code for v in sanitizer.violations] == ["QA-R005"]

    def test_unordered_timeline_fires(self):
        sanitizer = Sanitizer(mode="collect")
        sanitizer.check_session_result(
            self._result(
                recovery_events=(self._event(5.0), self._event(3.0, "failover"))
            )
        )
        assert [v.code for v in sanitizer.violations] == ["QA-R005"]

    def test_bytes_received_beyond_size_fires(self):
        sanitizer = Sanitizer(mode="collect")
        sanitizer.check_session_result(self._result(bytes_received=2000.0))
        assert [v.code for v in sanitizer.violations] == ["QA-R005"]


class TestFaultWindowBlackout:
    """QA-R006: no bytes cross a registered blackout during its window."""

    def _check(self, sanitizer, now, *, capacity=0.0, rate=0.0):
        sanitizer.check_allocation(
            now,
            np.array([capacity]),
            np.array([[True]]),
            np.array([np.inf]),
            np.array([rate]),
            ["wan:site->client"],
        )

    def test_load_during_blackout_fires(self):
        sanitizer = Sanitizer(mode="collect")
        sanitizer.watch_fault_windows({"wan:site->client": [(10.0, 20.0)]})
        self._check(sanitizer, 15.0, capacity=0.0, rate=5.0)
        assert [v.code for v in sanitizer.violations] == ["QA-R006"]

    def test_capacity_during_blackout_fires(self):
        sanitizer = Sanitizer(mode="collect")
        sanitizer.watch_fault_windows({"wan:site->client": [(10.0, 20.0)]})
        self._check(sanitizer, 15.0, capacity=900.0, rate=0.0)
        assert [v.code for v in sanitizer.violations] == ["QA-R006"]

    def test_outside_window_is_silent(self):
        sanitizer = Sanitizer(mode="collect")
        sanitizer.watch_fault_windows({"wan:site->client": [(10.0, 20.0)]})
        self._check(sanitizer, 20.0, capacity=900.0, rate=900.0)  # end excluded
        self._check(sanitizer, 5.0, capacity=900.0, rate=900.0)
        assert sanitizer.violations == []

    def test_unwatched_link_is_silent(self):
        sanitizer = Sanitizer(mode="collect")
        sanitizer.watch_fault_windows({"wan:other": [(0.0, 100.0)]})
        self._check(sanitizer, 15.0, capacity=900.0, rate=900.0)
        assert sanitizer.violations == []

    def test_registrations_accumulate(self):
        sanitizer = Sanitizer(mode="collect")
        sanitizer.watch_fault_windows({"wan:site->client": [(0.0, 5.0)]})
        sanitizer.watch_fault_windows({"wan:site->client": [(10.0, 20.0)]})
        self._check(sanitizer, 12.0, capacity=0.0, rate=3.0)
        assert [v.code for v in sanitizer.violations] == ["QA-R006"]


class TestRecoveryBytesMonotone:
    """QA-R007: recovery-timeline byte snapshots never regress."""

    def _result(self, events):
        from repro.core.session import SessionResult

        return SessionResult(
            client="C", server="S", resource="/f", size=1.0e6,
            offered=("R1",), selected_via="R1",
            requested_at=0.0, completed_at=100.0,
            recovery_events=events, bytes_received=1.0e6,
        )

    def _event(self, time, kind, received):
        from repro.core.resilience import RecoveryEvent

        return RecoveryEvent(
            time=time, kind=kind, path="R1", bytes_received=received
        )

    def test_regressing_snapshot_fires(self):
        sanitizer = Sanitizer(mode="collect")
        sanitizer.check_session_result(
            self._result((
                self._event(10.0, "stall", 500_000.0),
                self._event(20.0, "failover", 200_000.0),
            ))
        )
        assert [v.code for v in sanitizer.violations] == ["QA-R007"]

    def test_monotone_timeline_is_silent(self):
        sanitizer = Sanitizer(mode="collect")
        sanitizer.check_session_result(
            self._result((
                self._event(10.0, "stall", 200_000.0),
                self._event(20.0, "failover", 200_000.0),
                self._event(40.0, "reprobe", 700_000.0),
            ))
        )
        assert sanitizer.violations == []
