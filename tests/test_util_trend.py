"""Mann-Kendall / Theil-Sen trend detection tests."""

import numpy as np
import pytest

from repro.util.trend import mann_kendall, theil_sen_slope


class TestMannKendall:
    def test_strong_uptrend(self):
        r = mann_kendall(np.arange(30.0))
        assert r.trend == "increasing"
        assert r.p_value < 0.001
        assert r.slope == pytest.approx(1.0)

    def test_strong_downtrend(self):
        r = mann_kendall(np.arange(30.0)[::-1])
        assert r.trend == "decreasing"
        assert r.slope == pytest.approx(-1.0)

    def test_white_noise_has_no_trend(self):
        rng = np.random.default_rng(0)
        r = mann_kendall(rng.normal(size=200))
        assert r.trend == "none"
        assert not r.has_trend

    def test_constant_series(self):
        r = mann_kendall([3.0] * 10)
        assert r.trend == "none"
        assert r.p_value == pytest.approx(1.0)

    def test_too_short_series(self):
        r = mann_kendall([1.0, 2.0])
        assert r.trend == "none"

    def test_times_reorder_samples(self):
        values = [3.0, 1.0, 2.0]
        times = [30.0, 10.0, 20.0]  # sorted: 1, 2, 3 -> rising
        r = mann_kendall(values, times)
        assert r.s_statistic > 0

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            mann_kendall([1, 2, 3], [1, 2])

    def test_s_statistic_sign_matches_z(self):
        r = mann_kendall([1.0, 3.0, 2.0, 4.0, 5.0])
        assert (r.s_statistic > 0) == (r.z_score > 0)

    def test_alpha_controls_sensitivity(self):
        # A weak trend in noise: strict alpha should not fire.
        rng = np.random.default_rng(3)
        xs = 0.02 * np.arange(40) + rng.normal(size=40)
        strict = mann_kendall(xs, alpha=1e-9)
        assert strict.trend == "none"


class TestTheilSen:
    def test_exact_line(self):
        xs = 2.0 * np.arange(10.0) + 5.0
        assert theil_sen_slope(xs) == pytest.approx(2.0)

    def test_robust_to_outlier(self):
        xs = list(np.arange(20.0))
        xs[10] = 1000.0
        assert theil_sen_slope(xs) == pytest.approx(1.0, rel=0.2)

    def test_short_series(self):
        assert theil_sen_slope([5.0]) == 0.0

    def test_explicit_times(self):
        assert theil_sen_slope([0.0, 10.0], [0.0, 5.0]) == pytest.approx(2.0)

    def test_duplicate_times_ignored(self):
        assert theil_sen_slope([0.0, 1.0, 5.0], [0.0, 0.0, 1.0]) == pytest.approx(4.5)

    def test_all_duplicate_times(self):
        assert theil_sen_slope([1.0, 2.0], [3.0, 3.0]) == 0.0

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            theil_sen_slope([1, 2], [1, 2, 3])
