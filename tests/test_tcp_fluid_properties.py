"""Property-based tests of the fluid transport engine.

These complement the example-based tests in test_tcp_fluid.py with
hypothesis-driven invariants: byte conservation, work conservation, max-min
fairness of the instantaneous allocation, and scheduling sanity on random
topologies.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.link import Link
from repro.net.route import Route
from repro.net.trace import CapacityTrace
from repro.sim.simulator import Simulator
from repro.tcp.fluid import FluidNetwork
from repro.tcp.maxmin import verify_maxmin


@st.composite
def fluid_problems(draw):
    """A random network: L links, F flows with random routes and sizes."""
    n_links = draw(st.integers(min_value=1, max_value=4))
    links = [
        Link(
            f"l{i}",
            "s",
            "c",
            CapacityTrace.constant(draw(st.floats(min_value=100.0, max_value=1e6))),
        )
        for i in range(n_links)
    ]
    n_flows = draw(st.integers(min_value=1, max_value=5))
    flows = []
    for f in range(n_flows):
        idxs = draw(
            st.lists(
                st.integers(min_value=0, max_value=n_links - 1),
                min_size=1,
                max_size=n_links,
                unique=True,
            )
        )
        size = draw(st.floats(min_value=10.0, max_value=1e6))
        flows.append((idxs, size))
    return links, flows


class TestConservation:
    @settings(max_examples=60, deadline=None)
    @given(fluid_problems())
    def test_all_bytes_delivered(self, problem):
        links, flows = problem
        sim = Simulator()
        net = FluidNetwork(sim)
        handles = [
            net.start_flow(
                Route([links[i] for i in idxs]), size, activation_delay=0.0
            )
            for idxs, size in flows
        ]
        sim.run()
        for (idxs, size), flow in zip(flows, handles):
            assert flow.delivered == pytest.approx(size, rel=1e-6, abs=1e-2)
            assert flow.completed_at is not None

    @settings(max_examples=60, deadline=None)
    @given(fluid_problems())
    def test_no_link_overdraw(self, problem):
        """Integral of bytes through any link never exceeds capacity x time."""
        links, flows = problem
        sim = Simulator()
        net = FluidNetwork(sim)
        handles = [
            net.start_flow(Route([links[i] for i in idxs]), size, activation_delay=0.0)
            for idxs, size in flows
        ]
        sim.run()
        finish = max(f.completed_at for f in handles)
        if finish <= 0.0:
            return
        for li, link in enumerate(links):
            through = sum(
                size
                for (idxs, size), f in zip(flows, handles)
                if li in idxs
            )
            capacity_budget = link.trace.value_at(0.0) * finish
            assert through <= capacity_budget * (1 + 1e-6) + 1e-3

    @settings(max_examples=40, deadline=None)
    @given(fluid_problems())
    def test_work_conservation_single_bottleneck(self, problem):
        """When every flow crosses link 0, finish time >= total/capacity."""
        links, flows = problem
        sim = Simulator()
        net = FluidNetwork(sim)
        handles = [
            net.start_flow(
                Route([links[0]] + [links[i] for i in idxs if i != 0]),
                size,
                activation_delay=0.0,
            )
            for idxs, size in flows
        ]
        sim.run()
        finish = max(f.completed_at for f in handles)
        total = sum(size for _, size in flows)
        lower_bound = total / links[0].trace.value_at(0.0)
        assert finish >= lower_bound * (1 - 1e-9)


class TestInstantaneousFairness:
    @settings(max_examples=60, deadline=None)
    @given(fluid_problems())
    def test_rates_are_maxmin_fair_at_start(self, problem):
        links, flows = problem
        sim = Simulator()
        net = FluidNetwork(sim)
        handles = [
            net.start_flow(
                Route([links[i] for i in idxs]), size, activation_delay=0.0
            )
            for idxs, size in flows
        ]
        # Process the activation + first allocation tick only.
        sim.run(until=0.0)
        active = [f for f in handles if f.rate > 0.0 or not f.done]
        if not active:
            return
        caps = np.array([l.trace.value_at(0.0) for l in links])
        inc = np.zeros((len(links), len(active)), dtype=bool)
        for j, flow in enumerate(active):
            for link in flow.route.links:
                inc[int(link.name[1:]), j] = True
        rates = np.array([f.rate for f in active])
        assert verify_maxmin(caps, inc, rates, rtol=1e-6)


class TestSchedulingSanity:
    @settings(max_examples=40, deadline=None)
    @given(
        fluid_problems(),
        st.floats(min_value=0.0, max_value=2.0),
    )
    def test_staggered_arrivals_all_complete(self, problem, gap):
        links, flows = problem
        sim = Simulator()
        net = FluidNetwork(sim)
        handles = []
        for k, (idxs, size) in enumerate(flows):
            handles.append(
                net.start_flow(
                    Route([links[i] for i in idxs]),
                    size,
                    activation_delay=k * gap,
                )
            )
        sim.run()
        assert all(f.completed_at is not None for f in handles)
        # Completions happen after activations.
        for f in handles:
            assert f.completed_at >= f.activated_at

    @settings(max_examples=30, deadline=None)
    @given(fluid_problems())
    def test_determinism(self, problem):
        links, flows = problem

        def run():
            sim = Simulator()
            net = FluidNetwork(sim)
            hs = [
                net.start_flow(
                    Route([links[i] for i in idxs]), size, activation_delay=0.0
                )
                for idxs, size in flows
            ]
            sim.run()
            return [h.completed_at for h in hs]

        assert run() == run()
