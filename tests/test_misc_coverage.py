"""Odds-and-ends coverage: small API corners not hit elsewhere."""

import pytest

from repro.net.link import Link
from repro.net.node import Node, NodeKind
from repro.net.topology import Topology
from repro.net.trace import CapacityTrace
from repro.sim.simulator import Simulator
from repro.tcp.flow import FlowState
from repro.tcp.fluid import FluidNetwork
from repro.net.route import Route


def C(v=1000.0):
    return CapacityTrace.constant(v)


class TestTopologyCopy:
    def build(self):
        topo = Topology()
        topo.add_node(Node("C", NodeKind.CLIENT, region="europe"))
        topo.add_node(Node("S", NodeKind.SERVER, region="us"))
        topo.add_access_link("C", C(10.0))
        topo.add_access_link("S", C(20.0))
        topo.add_wan_link("S", "C", C(5.0))
        return topo

    def test_copy_transforms_traces(self):
        topo = self.build()
        clone = topo.copy_with_traces(lambda link: link.trace.scaled(2.0))
        assert clone.link("wan:S->C").trace.value_at(0) == 10.0
        assert topo.link("wan:S->C").trace.value_at(0) == 5.0  # untouched

    def test_copy_preserves_structure(self):
        topo = self.build()
        clone = topo.copy_with_traces(lambda link: link.trace)
        assert [n.name for n in clone.nodes] == [n.name for n in topo.nodes]
        assert clone.link("access:C").delay == topo.link("access:C").delay
        clone.validate()

    def test_bad_transform_rejected(self):
        topo = self.build()
        with pytest.raises(TypeError, match="CapacityTrace"):
            topo.copy_with_traces(lambda link: 42)

    def test_routes_on_copy_use_new_traces(self):
        topo = self.build()
        clone = topo.copy_with_traces(lambda link: link.trace.clipped(1.0))
        route = clone.direct_route("C", "S")
        assert route.bottleneck_at(0.0) == 1.0


class TestFlowDeliveredAt:
    def test_interpolates_within_segment(self):
        sim = Simulator()
        net = FluidNetwork(sim)
        route = Route([Link("l", "s", "c", C(1000.0))])
        flow = net.start_flow(route, 10_000.0, activation_delay=0.0)
        sim.run(until=0.0)  # allocation tick
        assert flow.rate == pytest.approx(1000.0)
        assert flow.delivered_at(2.0) == pytest.approx(2000.0)
        assert flow.delivered_at(0.0) == pytest.approx(0.0)

    def test_clamps_at_size(self):
        sim = Simulator()
        net = FluidNetwork(sim)
        route = Route([Link("l", "s", "c", C(1000.0))])
        flow = net.start_flow(route, 1000.0, activation_delay=0.0)
        sim.run(until=0.0)
        assert flow.delivered_at(100.0) == pytest.approx(1000.0)

    def test_inactive_flow_returns_materialised_value(self):
        sim = Simulator()
        net = FluidNetwork(sim)
        route = Route([Link("l", "s", "c", C(1000.0))])
        flow = net.start_flow(route, 500.0, activation_delay=0.0)
        sim.run()
        assert flow.state is FlowState.COMPLETED
        assert flow.delivered_at(1e9) == 500.0


class TestRequestLatencyFactor:
    def test_factor_scales_default_activation(self):
        sim = Simulator()
        net = FluidNetwork(sim, default_request_latency=2.0)
        route = Route([Link("l", "s", "c", C(1000.0), delay=0.1)])
        flow = net.start_flow(route, 100.0)
        net.run_to_completion(flow)
        # activation = 2.0 * rtt = 0.4
        assert flow.activated_at == pytest.approx(0.4)


class TestTraceShifted:
    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            CapacityTrace.constant(1.0).shifted(-1.0)

    def test_shift_past_end_keeps_last_value(self):
        t = CapacityTrace([0.0, 5.0], [1.0, 2.0]).shifted(100.0)
        assert t.n_pieces == 1
        assert t.value_at(0.0) == 2.0


class TestSummaryModule:
    def test_full_report_orders_sections(self, section4_store):
        from repro.analysis import full_report

        text = full_report(section4_store, table3_client="Duke")
        assert text.index("Headline rates") < text.index("Figure 1")
        assert text.index("Figure 1") < text.index("Figure 6")
        assert "Table III" in text

    def test_table3_client_missing_is_skipped(self, section2_store):
        from repro.analysis import full_report

        text = full_report(section2_store, table3_client="NotAClient")
        assert "Table III" not in text
