"""Property-based round-trip tests for trace records and stores."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.records import TransferRecord
from repro.trace.store import TraceStore

names = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), whitelist_characters=" -"),
    min_size=1,
    max_size=16,
).map(str.strip).filter(bool)


@st.composite
def records(draw):
    n_offered = draw(st.integers(min_value=0, max_value=4))
    offered = tuple(f"R{i}-{draw(st.integers(0, 99))}" for i in range(n_offered))
    if offered and draw(st.booleans()):
        selected = offered[draw(st.integers(0, len(offered) - 1))]
    else:
        selected = None
    return TransferRecord(
        study=draw(names),
        client=draw(names),
        site=draw(st.sampled_from(["eBay", "Google", "Microsoft", "Yahoo"])),
        repetition=draw(st.integers(0, 10_000)),
        start_time=draw(st.floats(min_value=0, max_value=1e6)),
        set_size=len(offered),
        offered=offered,
        selected_via=selected,
        direct_throughput=draw(st.floats(min_value=1.0, max_value=1e8)),
        selected_throughput=draw(st.floats(min_value=1.0, max_value=1e8)),
        end_to_end_throughput=draw(st.floats(min_value=1.0, max_value=1e8)),
        probe_overhead=draw(st.floats(min_value=0.0, max_value=1e3)),
        file_bytes=draw(st.floats(min_value=1.0, max_value=1e9)),
        direct_class=draw(st.sampled_from(["low", "medium", "high", ""])),
        direct_variability=draw(st.sampled_from(["low", "high", ""])),
    )


class TestRecordProperties:
    @settings(max_examples=100, deadline=None)
    @given(records())
    def test_dict_round_trip(self, rec):
        assert TransferRecord.from_dict(rec.to_dict()) == rec

    @settings(max_examples=100, deadline=None)
    @given(records())
    def test_improvement_penalty_consistency(self, rec):
        if rec.is_penalty:
            assert rec.used_indirect
            assert rec.improvement < 0
            assert rec.penalty_percent > 0
        if not rec.used_indirect:
            assert rec.penalty_percent == 0.0

    @settings(max_examples=100, deadline=None)
    @given(records())
    def test_penalty_improvement_algebra(self, rec):
        """penalty and improvement are two views of the same ratio."""
        if rec.is_penalty:
            # improvement = s/d - 1, penalty = d/s - 1 (in fractions).
            imp = rec.improvement
            pen = rec.penalty_percent / 100.0
            # Float rounding grows with extreme throughput ratios (the
            # generator allows d/s up to 1e8), so compare loosely.
            assert (1 + imp) * (1 + pen) == pytest.approx(1.0, rel=1e-6)


class TestStoreProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(records(), max_size=20))
    def test_jsonl_round_trip(self, recs):
        import tempfile
        from pathlib import Path

        store = TraceStore(recs)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "s.jsonl"
            store.save_jsonl(path)
            assert TraceStore.load_jsonl(path).records == store.records

    @settings(max_examples=30, deadline=None)
    @given(st.lists(records(), max_size=20))
    def test_group_by_partitions(self, recs):
        store = TraceStore(recs)
        groups = store.group_by("client")
        assert sum(len(g) for g in groups.values()) == len(store)
        for client, sub in groups.items():
            assert all(r.client == client for r in sub)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(records(), max_size=20))
    def test_filter_complement(self, recs):
        store = TraceStore(recs)
        used = store.filter(used_indirect=True)
        not_used = store.filter(used_indirect=False)
        assert len(used) + len(not_used) == len(store)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(records(), min_size=1, max_size=20))
    def test_column_matches_rows(self, recs):
        store = TraceStore(recs)
        col = store.column("direct_throughput")
        assert isinstance(col, np.ndarray)
        assert col.tolist() == [r.direct_throughput for r in recs]
