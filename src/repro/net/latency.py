"""Propagation-latency model.

One-way propagation delay between two nodes is looked up from a coarse
region-pair table (continental distances dominate) plus a small per-node
jitter assigned at scenario-build time.  Latency matters in this study only
through TCP dynamics: it sets slow-start duration (why the paper needs
x = 100 KB probes) and the maximum window-limited rate ``W_max / RTT``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Tuple

from repro.util.validation import check_non_negative

__all__ = ["LatencyModel", "REGIONS", "DEFAULT_ONE_WAY_DELAYS"]

#: Regions used by the PlanetLab workload (Tables IV/V).
REGIONS: Tuple[str, ...] = (
    "us",
    "canada",
    "europe",
    "middle_east",
    "asia",
    "oceania",
    "south_america",
)


def _key(a: str, b: str) -> FrozenSet[str]:
    return frozenset((a, b))


#: One-way propagation delay in seconds between region pairs.  Values are
#: typical great-circle RTT/2 figures for 2005-era Internet paths.
DEFAULT_ONE_WAY_DELAYS: Dict[FrozenSet[str], float] = {
    _key("us", "us"): 0.025,
    _key("us", "canada"): 0.030,
    _key("us", "europe"): 0.055,
    _key("us", "middle_east"): 0.085,
    _key("us", "asia"): 0.090,
    _key("us", "oceania"): 0.095,
    _key("us", "south_america"): 0.080,
    _key("canada", "canada"): 0.020,
    _key("canada", "europe"): 0.060,
    _key("canada", "middle_east"): 0.090,
    _key("canada", "asia"): 0.090,
    _key("canada", "oceania"): 0.100,
    _key("canada", "south_america"): 0.085,
    _key("europe", "europe"): 0.020,
    _key("europe", "middle_east"): 0.040,
    _key("europe", "asia"): 0.120,
    _key("europe", "oceania"): 0.150,
    _key("europe", "south_america"): 0.110,
    _key("middle_east", "middle_east"): 0.015,
    _key("middle_east", "asia"): 0.090,
    _key("middle_east", "oceania"): 0.140,
    _key("middle_east", "south_america"): 0.130,
    _key("asia", "asia"): 0.040,
    _key("asia", "oceania"): 0.070,
    _key("asia", "south_america"): 0.160,
    _key("oceania", "oceania"): 0.020,
    _key("oceania", "south_america"): 0.150,
    _key("south_america", "south_america"): 0.030,
}


@dataclass(frozen=True)
class LatencyModel:
    """Region-pair one-way delay lookup with an additive access delay.

    Parameters
    ----------
    table:
        Mapping from region pairs to one-way propagation delay (seconds).
    access_delay:
        Extra one-way delay added per path endpoint pair (last-mile and
        queueing), in seconds.
    """

    table: Dict[FrozenSet[str], float] = field(default_factory=lambda: dict(DEFAULT_ONE_WAY_DELAYS))
    access_delay: float = 0.005

    def __post_init__(self) -> None:
        check_non_negative(self.access_delay, "access_delay")
        for k, v in self.table.items():
            check_non_negative(v, f"delay[{sorted(k)}]")

    def one_way(self, region_a: str, region_b: str) -> float:
        """One-way delay in seconds between two regions."""
        key = _key(region_a, region_b)
        if key not in self.table:
            raise KeyError(f"no latency entry for regions {region_a!r}, {region_b!r}")
        return self.table[key] + self.access_delay

    def rtt(self, region_a: str, region_b: str) -> float:
        """Round-trip time in seconds between two regions."""
        return 2.0 * self.one_way(region_a, region_b)
