"""Network node model.

Nodes come in three kinds matching the paper's deployment: *clients*
(PlanetLab international nodes), *relays* (PlanetLab USA nodes running the
forwarding service; the paper's "intermediate nodes") and *servers* (the
destination web sites).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["NodeKind", "Node"]


class NodeKind(enum.Enum):
    """Role of a node in the overlay experiment."""

    CLIENT = "client"
    RELAY = "relay"
    SERVER = "server"


@dataclass(frozen=True)
class Node:
    """An endpoint or overlay node.

    Attributes
    ----------
    name:
        Unique human-readable identifier (e.g. ``"Italy"``, ``"Texas"``,
        ``"eBay"``).
    kind:
        The node's role.
    region:
        Coarse geographic region used by the latency model (e.g.
        ``"europe"``, ``"us"``); see :mod:`repro.net.latency`.
    hostname:
        Optional PlanetLab domain name (Tables IV/V of the paper), carried
        for provenance only.
    """

    name: str
    kind: NodeKind
    region: str = "us"
    hostname: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("node name must be non-empty")
        if not isinstance(self.kind, NodeKind):
            raise TypeError(f"kind must be a NodeKind, got {self.kind!r}")

    @property
    def is_client(self) -> bool:
        return self.kind is NodeKind.CLIENT

    @property
    def is_relay(self) -> bool:
        return self.kind is NodeKind.RELAY

    @property
    def is_server(self) -> bool:
        return self.kind is NodeKind.SERVER

    def __str__(self) -> str:
        return self.name
