"""Stochastic models of time-varying available link capacity.

The paper's phenomenology rests on *throughput diversity*: direct Internet
paths exhibit time-varying available bandwidth (load and statistical
multiplexing change during a transfer, cf. He et al. [11]), while overlay
links to well-connected relays are comparatively stable (paper Fig. 4).

Each process model here compiles, for a given duration and RNG, to a
:class:`~repro.net.trace.CapacityTrace`.  All rates are bytes/second.

Models
------
ConstantCapacity
    Fixed available capacity; the stable baseline.
MarkovModulatedCapacity
    A continuous-time Markov chain over discrete congestion states, each a
    multiplier on a base capacity, with exponential holding times.  This is
    the classic model for background-load regimes and produces the abrupt
    "jumps" the paper observes on direct paths.
LognormalAR1Capacity
    Log-space AR(1) sampled on a regular grid; smooth medium-frequency
    wander around a base capacity.
CompositeCapacity
    Pointwise minimum/product composition of sub-processes, e.g. a stable
    base with occasional congestion episodes layered on top.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.net.trace import CapacityTrace
from repro.util.validation import (
    check_non_negative,
    check_positive,
    check_probability,
    check_same_length,
)

__all__ = [
    "CapacityProcess",
    "ConstantCapacity",
    "MarkovModulatedCapacity",
    "LognormalAR1Capacity",
    "DiurnalCapacity",
    "TraceReplayCapacity",
    "CompositeCapacity",
]


class CapacityProcess(abc.ABC):
    """A generative model of available capacity over time."""

    @abc.abstractmethod
    def sample(self, duration: float, rng: np.random.Generator) -> CapacityTrace:
        """Draw one realisation covering at least ``[0, duration]``."""

    @abc.abstractmethod
    def mean_capacity(self) -> float:
        """The process's stationary mean capacity (bytes/second)."""


@dataclass(frozen=True)
class ConstantCapacity(CapacityProcess):
    """Deterministic constant capacity."""

    capacity: float

    def __post_init__(self) -> None:
        check_non_negative(self.capacity, "capacity")

    def sample(self, duration: float, rng: np.random.Generator) -> CapacityTrace:
        check_non_negative(duration, "duration")
        return CapacityTrace.constant(self.capacity)

    def mean_capacity(self) -> float:
        return self.capacity


@dataclass(frozen=True)
class MarkovModulatedCapacity(CapacityProcess):
    """CTMC over congestion states; capacity = base * multiplier(state).

    Parameters
    ----------
    base:
        Base capacity in bytes/second.
    multipliers:
        Capacity multiplier per state (e.g. ``(1.0, 0.4, 1.5)``).
    stationary:
        Stationary probability of each state (sums to 1).  Transitions are
        sampled by drawing the next state from the stationary distribution
        excluding the current state (a "jump-to-stationary" chain), which has
        exactly ``stationary`` as its long-run state occupancy when holding
        times are proportional to ``stationary``.
    mean_holding:
        Mean sojourn time of each state in seconds.
    """

    base: float
    multipliers: Tuple[float, ...] = (1.0, 0.45, 1.4)
    stationary: Tuple[float, ...] = (0.70, 0.15, 0.15)
    mean_holding: Tuple[float, ...] = (300.0, 120.0, 180.0)

    def __post_init__(self) -> None:
        check_positive(self.base, "base")
        check_same_length(self.multipliers, self.stationary, "multipliers", "stationary")
        check_same_length(self.multipliers, self.mean_holding, "multipliers", "mean_holding")
        if len(self.multipliers) < 2:
            raise ValueError("need at least two states")
        for m in self.multipliers:
            check_non_negative(m, "multiplier")
        for h in self.mean_holding:
            check_positive(h, "mean_holding")
        total = float(sum(self.stationary))
        if not math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-9):
            raise ValueError(f"stationary probabilities must sum to 1, got {total}")
        for p in self.stationary:
            check_probability(p, "stationary probability")

    def sample(self, duration: float, rng: np.random.Generator) -> CapacityTrace:
        check_non_negative(duration, "duration")
        pi = np.asarray(self.stationary, dtype=np.float64)
        holds = np.asarray(self.mean_holding, dtype=np.float64)
        mults = np.asarray(self.multipliers, dtype=np.float64)
        n = pi.size

        times: List[float] = [0.0]
        states: List[int] = [int(rng.choice(n, p=pi))]
        t = 0.0
        while t <= duration:
            state = states[-1]
            t += float(rng.exponential(holds[state]))
            times.append(t)
            # Draw the next (different) state in proportion to stationary mass.
            weights = pi.copy()
            weights[state] = 0.0
            weights /= weights.sum()
            states.append(int(rng.choice(n, p=weights)))
        values = self.base * mults[np.asarray(states, dtype=np.intp)]
        return CapacityTrace(np.asarray(times), values)

    def mean_capacity(self) -> float:
        pi = np.asarray(self.stationary)
        mults = np.asarray(self.multipliers)
        return float(self.base * np.dot(pi, mults))

    @property
    def dynamic_range(self) -> float:
        """max/min multiplier ratio; a crude variability index."""
        lo = min(m for m in self.multipliers if m > 0.0)
        return max(self.multipliers) / lo


@dataclass(frozen=True)
class LognormalAR1Capacity(CapacityProcess):
    """Log-space AR(1) wander around a base capacity, sampled on a grid.

    ``log(c_t / base)`` follows an AR(1) with autocorrelation ``phi`` per
    step and stationary standard deviation ``sigma`` (in log space).  The
    grid step controls how often capacity changes.
    """

    base: float
    sigma: float = 0.25
    phi: float = 0.9
    step: float = 60.0

    def __post_init__(self) -> None:
        check_positive(self.base, "base")
        check_non_negative(self.sigma, "sigma")
        check_probability(abs(self.phi), "abs(phi)")
        check_positive(self.step, "step")

    def sample(self, duration: float, rng: np.random.Generator) -> CapacityTrace:
        check_non_negative(duration, "duration")
        n = int(math.floor(duration / self.step)) + 2
        # Innovation std chosen so the stationary std is exactly sigma.
        innov = self.sigma * math.sqrt(max(1.0 - self.phi * self.phi, 0.0))
        eps = rng.normal(0.0, 1.0, size=n)
        log_dev = np.empty(n)
        log_dev[0] = rng.normal(0.0, self.sigma) if self.sigma > 0 else 0.0
        for i in range(1, n):  # short loop; n ~ duration/step
            log_dev[i] = self.phi * log_dev[i - 1] + innov * eps[i]
        times = np.arange(n, dtype=np.float64) * self.step
        # Divide by the lognormal mean so mean_capacity() == base.
        correction = math.exp(0.5 * self.sigma * self.sigma)
        values = self.base * np.exp(log_dev) / correction
        return CapacityTrace(times, values)

    def mean_capacity(self) -> float:
        return self.base


@dataclass(frozen=True)
class DiurnalCapacity(CapacityProcess):
    """Sinusoidal time-of-day modulation around a base capacity.

    The paper's §4 methodology interleaves its two client processes "so that
    time-of-day effects are minimized"; this process makes those effects
    available to model explicitly:

    ``c(t) = base * (1 + amplitude * sin(2*pi*(t + phase)/period))``

    sampled on a regular grid.  ``amplitude`` must stay below 1 so capacity
    remains positive.
    """

    base: float
    amplitude: float = 0.3
    period: float = 86_400.0
    phase: float = 0.0
    step: float = 600.0

    def __post_init__(self) -> None:
        check_positive(self.base, "base")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError(f"amplitude must lie in [0, 1), got {self.amplitude}")
        check_positive(self.period, "period")
        check_positive(self.step, "step")

    def sample(self, duration: float, rng: np.random.Generator) -> CapacityTrace:
        check_non_negative(duration, "duration")
        n = int(math.floor(duration / self.step)) + 2
        times = np.arange(n, dtype=np.float64) * self.step
        values = self.base * (
            1.0
            + self.amplitude
            * np.sin(2.0 * math.pi * (times + self.phase) / self.period)
        )
        return CapacityTrace(times, values)

    def mean_capacity(self) -> float:
        return self.base


@dataclass(frozen=True)
class TraceReplayCapacity(CapacityProcess):
    """Replay a recorded capacity trace (e.g. from real measurements).

    The substitution path for users who *do* have bandwidth measurements:
    wrap them in a trace and drop them into any scenario.  ``loop`` repeats
    the recording to cover longer horizons (the trace's final piece must
    then have the same duration as its mean piece, which we approximate by
    tiling breakpoints).
    """

    trace: CapacityTrace
    loop: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.trace, CapacityTrace):
            raise TypeError(f"trace must be a CapacityTrace, got {type(self.trace)!r}")

    def sample(self, duration: float, rng: np.random.Generator) -> CapacityTrace:
        check_non_negative(duration, "duration")
        span = float(self.trace.times[-1])
        if not self.loop or span <= 0.0 or duration <= span:
            return self.trace
        reps = int(math.ceil(duration / span)) + 1
        times = np.concatenate(
            [self.trace.times[:-1] + k * span for k in range(reps)] + [[reps * span]]
        )
        values = np.concatenate(
            [self.trace.values[:-1] for _ in range(reps)] + [[self.trace.values[-1]]]
        )
        return CapacityTrace(times, values)

    def mean_capacity(self) -> float:
        span = float(self.trace.times[-1])
        if span <= 0.0:
            return float(self.trace.values[0])
        return self.trace.integrate(0.0, span) / span


@dataclass(frozen=True)
class CompositeCapacity(CapacityProcess):
    """Pointwise-minimum composition of independent sub-processes.

    The capacity at time t is ``min_i c_i(t)``.  Useful for "a stable access
    pipe intersected with an occasionally congested WAN segment".  The mean
    reported is the minimum of component means (a lower bound used only for
    calibration sanity checks).
    """

    components: Tuple[CapacityProcess, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if len(self.components) == 0:
            raise ValueError("CompositeCapacity needs at least one component")

    def sample(self, duration: float, rng: np.random.Generator) -> CapacityTrace:
        traces = [c.sample(duration, rng) for c in self.components]
        return CapacityTrace.minimum(traces)

    def mean_capacity(self) -> float:
        return min(c.mean_capacity() for c in self.components)
