"""Piecewise-constant capacity traces.

A :class:`CapacityTrace` represents a link's available capacity over time as
a right-continuous step function: capacity is ``values[i]`` on
``[times[i], times[i+1])`` and ``values[-1]`` from ``times[-1]`` onward.

Traces are the *only* representation of time-varying link state seen by the
transport engine.  Stochastic capacity processes (``repro.net.capacity``) are
compiled to traces ahead of simulation, which gives us:

* determinism - the control (direct-only) client and the selecting client
  observe the identical network, mirroring the paper's concurrent-pair
  methodology;
* speed - queries are numpy ``searchsorted`` lookups, integration is a
  vectorised prefix-sum.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.util.validation import check_non_negative, check_same_length, check_sorted

__all__ = ["CapacityTrace", "TraceCursor"]


class CapacityTrace:
    """An immutable piecewise-constant non-negative function of time.

    Parameters
    ----------
    times:
        Breakpoints, non-decreasing, with ``times[0] == 0.0``.
    values:
        Capacity (bytes/second) on each piece; same length as ``times``.
    """

    __slots__ = ("_times", "_values", "_cum", "_times_list", "_values_list")

    def __init__(self, times: Sequence[float], values: Sequence[float]):
        t = check_sorted(times, "times")
        v = np.asarray(values, dtype=np.float64).reshape(-1)
        check_same_length(t, v, "times", "values")
        if t.size == 0:
            raise ValueError("a trace needs at least one piece")
        if t[0] != 0.0:
            raise ValueError(f"times[0] must be 0.0, got {t[0]}")
        if np.any(v < 0.0):
            raise ValueError("capacities must be non-negative")
        # Drop zero-length pieces (repeated breakpoints keep the last value).
        if t.size > 1:
            keep = np.empty(t.size, dtype=bool)
            keep[:-1] = t[1:] > t[:-1]
            keep[-1] = True
            t = t[keep]
            v = v[keep]
        self._finalize(t, v)

    def _finalize(self, t: np.ndarray, v: np.ndarray) -> None:
        """Install validated breakpoint arrays and derived state."""
        self._times = t
        self._values = v
        self._times.setflags(write=False)
        self._values.setflags(write=False)
        # Cumulative integral up to each breakpoint, for O(log n) integration.
        seg = np.diff(t) * v[:-1]
        self._cum = np.concatenate(([0.0], np.cumsum(seg)))
        self._cum.setflags(write=False)
        # Python-scalar mirrors of the arrays, materialised lazily for the
        # cursor fast path (scalar list indexing beats numpy scalar indexing
        # by ~5x and the lists are shared by every cursor over this trace).
        self._times_list: Optional[List[float]] = None
        self._values_list: Optional[List[float]] = None

    @classmethod
    def _trusted(cls, times: np.ndarray, values: np.ndarray) -> "CapacityTrace":
        """Internal constructor for inputs that already satisfy the trace
        invariants (float64, strictly increasing from 0.0, non-negative,
        equal length).  Used by the algebra methods, whose outputs preserve
        those invariants structurally, to skip revalidation and re-dedup.
        """
        self = cls.__new__(cls)
        self._finalize(
            np.ascontiguousarray(times, dtype=np.float64),
            np.ascontiguousarray(values, dtype=np.float64),
        )
        return self

    def _scalar_lists(self) -> Tuple[List[float], List[float]]:
        """The breakpoints as plain-float lists (cached; cursor fast path)."""
        tl = self._times_list
        vl = self._values_list
        if tl is None or vl is None:
            tl = self._times_list = self._times.tolist()
            vl = self._values_list = self._values.tolist()
        return tl, vl

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def constant(cls, capacity: float) -> "CapacityTrace":
        """A trace with a single constant capacity."""
        check_non_negative(capacity, "capacity")
        return cls([0.0], [capacity])

    @classmethod
    def from_steps(cls, steps: Iterable[Tuple[float, float]]) -> "CapacityTrace":
        """Build from ``(time, value)`` pairs (must start at time 0)."""
        pairs = list(steps)
        return cls([p[0] for p in pairs], [p[1] for p in pairs])

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def times(self) -> np.ndarray:
        """Breakpoint times (read-only view)."""
        return self._times

    @property
    def values(self) -> np.ndarray:
        """Per-piece capacities (read-only view)."""
        return self._values

    @property
    def n_pieces(self) -> int:
        """Number of constant pieces."""
        return int(self._times.size)

    def value_at(self, t: float) -> float:
        """Capacity at time ``t`` (right-continuous; clamped before 0)."""
        if t <= 0.0:
            return float(self._values[0])
        idx = int(np.searchsorted(self._times, t, side="right")) - 1
        return float(self._values[idx])

    def values_at(self, ts: Sequence[float]) -> np.ndarray:
        """Vectorised :meth:`value_at` over an array of times."""
        arr = np.asarray(ts, dtype=np.float64)
        idx = np.searchsorted(self._times, arr, side="right") - 1
        np.clip(idx, 0, None, out=idx)
        return self._values[idx]

    def next_change_after(self, t: float) -> float:
        """First breakpoint strictly after ``t``, or ``inf`` if none."""
        idx = int(np.searchsorted(self._times, t, side="right"))
        if idx >= self._times.size:
            return float("inf")
        return float(self._times[idx])

    def integrate(self, t0: float, t1: float) -> float:
        """Integral of capacity over ``[t0, t1]`` (bytes deliverable)."""
        if t1 < t0:
            raise ValueError(f"t1={t1} must be >= t0={t0}")
        return self._antiderivative(t1) - self._antiderivative(t0)

    def _antiderivative(self, t: float) -> float:
        if t <= 0.0:
            return float(self._values[0]) * t  # linear extension before 0
        idx = int(np.searchsorted(self._times, t, side="right")) - 1
        return float(self._cum[idx] + (t - self._times[idx]) * self._values[idx])

    def min_over(self, t0: float, t1: float) -> float:
        """Minimum capacity attained anywhere in ``[t0, t1]``."""
        if t1 < t0:
            raise ValueError(f"t1={t1} must be >= t0={t0}")
        i0 = max(int(np.searchsorted(self._times, t0, side="right")) - 1, 0)
        i1 = max(int(np.searchsorted(self._times, t1, side="right")) - 1, i0)
        return float(np.min(self._values[i0 : i1 + 1]))

    def mean_over(self, t0: float, t1: float) -> float:
        """Time-average capacity over ``[t0, t1]`` (value at a point if t0==t1)."""
        if t1 < t0:
            raise ValueError(f"t1={t1} must be >= t0={t0}")
        if t1 == t0:
            return self.value_at(t0)
        return self.integrate(t0, t1) / (t1 - t0)

    # ------------------------------------------------------------------ #
    # algebra
    # ------------------------------------------------------------------ #
    def scaled(self, factor: float) -> "CapacityTrace":
        """A new trace with every capacity multiplied by ``factor >= 0``."""
        check_non_negative(factor, "factor")
        # Times are unchanged (already validated/deduped); scaling by a
        # non-negative factor keeps values non-negative.
        return CapacityTrace._trusted(self._times, self._values * factor)

    def clipped(self, cap: float) -> "CapacityTrace":
        """A new trace with capacities clipped from above at ``cap``."""
        check_non_negative(cap, "cap")
        return CapacityTrace._trusted(self._times, np.minimum(self._values, cap))

    def shifted(self, offset: float) -> "CapacityTrace":
        """A new trace time-shifted *left* by ``offset`` (view from t=offset).

        The returned trace at time ``s`` equals this trace at ``offset + s``.
        Used to re-base a long scenario trace to a transfer's start time.
        """
        check_non_negative(offset, "offset")
        idx = max(int(np.searchsorted(self._times, offset, side="right")) - 1, 0)
        new_times = np.concatenate(([0.0], self._times[idx + 1 :] - offset))
        new_values = self._values[idx:]
        # times[idx+1:] are strictly greater than offset, so new_times is
        # strictly increasing from 0.0 and the invariants hold by construction.
        return CapacityTrace._trusted(new_times, new_values)

    @staticmethod
    def minimum(traces: Sequence["CapacityTrace"]) -> "CapacityTrace":
        """Pointwise minimum of several traces (union of breakpoints)."""
        if not traces:
            raise ValueError("need at least one trace")
        if len(traces) == 1:
            return traces[0]
        all_times = np.unique(np.concatenate([t._times for t in traces]))
        stacked = np.vstack([t.values_at(all_times) for t in traces])
        # np.unique returns a sorted, duplicate-free array; every input trace
        # starts at 0.0, so the union does too.
        return CapacityTrace._trusted(all_times, np.min(stacked, axis=0))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CapacityTrace)
            and np.array_equal(self._times, other._times)
            and np.array_equal(self._values, other._values)
        )

    def __hash__(self) -> int:
        return hash((self._times.tobytes(), self._values.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CapacityTrace(pieces={self.n_pieces}, "
            f"mean={float(np.mean(self._values)):.1f} B/s)"
        )

    def cursor(self) -> "TraceCursor":
        """A fresh :class:`TraceCursor` over this trace."""
        return TraceCursor(self)


class TraceCursor:
    """Amortised-O(1) scalar queries over a :class:`CapacityTrace`.

    The transport engine queries each link's trace at event times, which are
    non-decreasing within a simulation.  A cursor exploits that monotonicity:
    it remembers the piece index of the last query and walks forward from
    there, so a whole simulation's worth of scalar queries costs O(pieces)
    total instead of O(queries x log pieces) ``searchsorted`` calls.

    Contract
    --------
    * Results are *identical* to :meth:`CapacityTrace.value_at` /
      :meth:`CapacityTrace.next_change_after` for every ``t`` — the cursor
      indexes the same breakpoint data, it only changes how the piece is
      located.
    * Queries at non-decreasing ``t`` are amortised O(1).  A backward seek
      (``t`` earlier than the previous query's piece) stays correct via an
      O(log pieces) ``searchsorted`` fallback.
    * The underlying trace is immutable, so a cursor never goes stale; one
      cursor per (consumer, trace) pair is the intended usage.
    """

    __slots__ = ("_trace", "_times", "_values", "_n", "_idx")

    def __init__(self, trace: CapacityTrace):
        self._trace = trace
        self._times, self._values = trace._scalar_lists()
        self._n = len(self._times)
        self._idx = 0

    @property
    def trace(self) -> CapacityTrace:
        """The trace this cursor reads."""
        return self._trace

    def _seek(self, t: float) -> int:
        """Index of the piece containing ``t`` (clamped to 0 before t=0)."""
        times = self._times
        i = self._idx
        if t < times[i]:
            # Backward seek: rare (only a non-monotone consumer); fall back
            # to the same bisection value_at() uses.
            i = int(np.searchsorted(self._trace.times, t, side="right")) - 1
            if i < 0:
                i = 0
        else:
            n = self._n
            while i + 1 < n and times[i + 1] <= t:
                i += 1
        self._idx = i
        return i

    def value_at(self, t: float) -> float:
        """Capacity at time ``t``; equals ``trace.value_at(t)``."""
        if t <= 0.0:
            return self._values[0]
        return self._values[self._seek(t)]

    def next_change_after(self, t: float) -> float:
        """First breakpoint strictly after ``t``; equals the trace method."""
        i = self._seek(t)
        times = self._times
        if t < times[i]:
            # Only reachable for t < times[0] == 0.0: the first breakpoint
            # itself is the next change.
            return times[i]
        if i + 1 < self._n:
            return times[i + 1]
        return float("inf")
