"""Piecewise-constant capacity traces.

A :class:`CapacityTrace` represents a link's available capacity over time as
a right-continuous step function: capacity is ``values[i]`` on
``[times[i], times[i+1])`` and ``values[-1]`` from ``times[-1]`` onward.

Traces are the *only* representation of time-varying link state seen by the
transport engine.  Stochastic capacity processes (``repro.net.capacity``) are
compiled to traces ahead of simulation, which gives us:

* determinism - the control (direct-only) client and the selecting client
  observe the identical network, mirroring the paper's concurrent-pair
  methodology;
* speed - queries are numpy ``searchsorted`` lookups, integration is a
  vectorised prefix-sum.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.util.validation import check_non_negative, check_same_length, check_sorted

__all__ = ["CapacityTrace"]


class CapacityTrace:
    """An immutable piecewise-constant non-negative function of time.

    Parameters
    ----------
    times:
        Breakpoints, non-decreasing, with ``times[0] == 0.0``.
    values:
        Capacity (bytes/second) on each piece; same length as ``times``.
    """

    __slots__ = ("_times", "_values", "_cum")

    def __init__(self, times: Sequence[float], values: Sequence[float]):
        t = check_sorted(times, "times")
        v = np.asarray(values, dtype=np.float64).reshape(-1)
        check_same_length(t, v, "times", "values")
        if t.size == 0:
            raise ValueError("a trace needs at least one piece")
        if t[0] != 0.0:
            raise ValueError(f"times[0] must be 0.0, got {t[0]}")
        if np.any(v < 0.0):
            raise ValueError("capacities must be non-negative")
        # Drop zero-length pieces (repeated breakpoints keep the last value).
        if t.size > 1:
            keep = np.empty(t.size, dtype=bool)
            keep[:-1] = t[1:] > t[:-1]
            keep[-1] = True
            t = t[keep]
            v = v[keep]
        self._times = t
        self._values = v
        self._times.setflags(write=False)
        self._values.setflags(write=False)
        # Cumulative integral up to each breakpoint, for O(log n) integration.
        seg = np.diff(t) * v[:-1]
        self._cum = np.concatenate(([0.0], np.cumsum(seg)))
        self._cum.setflags(write=False)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def constant(cls, capacity: float) -> "CapacityTrace":
        """A trace with a single constant capacity."""
        check_non_negative(capacity, "capacity")
        return cls([0.0], [capacity])

    @classmethod
    def from_steps(cls, steps: Iterable[Tuple[float, float]]) -> "CapacityTrace":
        """Build from ``(time, value)`` pairs (must start at time 0)."""
        pairs = list(steps)
        return cls([p[0] for p in pairs], [p[1] for p in pairs])

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def times(self) -> np.ndarray:
        """Breakpoint times (read-only view)."""
        return self._times

    @property
    def values(self) -> np.ndarray:
        """Per-piece capacities (read-only view)."""
        return self._values

    @property
    def n_pieces(self) -> int:
        """Number of constant pieces."""
        return int(self._times.size)

    def value_at(self, t: float) -> float:
        """Capacity at time ``t`` (right-continuous; clamped before 0)."""
        if t <= 0.0:
            return float(self._values[0])
        idx = int(np.searchsorted(self._times, t, side="right")) - 1
        return float(self._values[idx])

    def values_at(self, ts: Sequence[float]) -> np.ndarray:
        """Vectorised :meth:`value_at` over an array of times."""
        arr = np.asarray(ts, dtype=np.float64)
        idx = np.searchsorted(self._times, arr, side="right") - 1
        np.clip(idx, 0, None, out=idx)
        return self._values[idx]

    def next_change_after(self, t: float) -> float:
        """First breakpoint strictly after ``t``, or ``inf`` if none."""
        idx = int(np.searchsorted(self._times, t, side="right"))
        if idx >= self._times.size:
            return float("inf")
        return float(self._times[idx])

    def integrate(self, t0: float, t1: float) -> float:
        """Integral of capacity over ``[t0, t1]`` (bytes deliverable)."""
        if t1 < t0:
            raise ValueError(f"t1={t1} must be >= t0={t0}")
        return self._antiderivative(t1) - self._antiderivative(t0)

    def _antiderivative(self, t: float) -> float:
        if t <= 0.0:
            return float(self._values[0]) * t  # linear extension before 0
        idx = int(np.searchsorted(self._times, t, side="right")) - 1
        return float(self._cum[idx] + (t - self._times[idx]) * self._values[idx])

    def min_over(self, t0: float, t1: float) -> float:
        """Minimum capacity attained anywhere in ``[t0, t1]``."""
        if t1 < t0:
            raise ValueError(f"t1={t1} must be >= t0={t0}")
        i0 = max(int(np.searchsorted(self._times, t0, side="right")) - 1, 0)
        i1 = max(int(np.searchsorted(self._times, t1, side="right")) - 1, i0)
        return float(np.min(self._values[i0 : i1 + 1]))

    def mean_over(self, t0: float, t1: float) -> float:
        """Time-average capacity over ``[t0, t1]`` (value at a point if t0==t1)."""
        if t1 < t0:
            raise ValueError(f"t1={t1} must be >= t0={t0}")
        if t1 == t0:
            return self.value_at(t0)
        return self.integrate(t0, t1) / (t1 - t0)

    # ------------------------------------------------------------------ #
    # algebra
    # ------------------------------------------------------------------ #
    def scaled(self, factor: float) -> "CapacityTrace":
        """A new trace with every capacity multiplied by ``factor >= 0``."""
        check_non_negative(factor, "factor")
        return CapacityTrace(self._times, self._values * factor)

    def clipped(self, cap: float) -> "CapacityTrace":
        """A new trace with capacities clipped from above at ``cap``."""
        check_non_negative(cap, "cap")
        return CapacityTrace(self._times, np.minimum(self._values, cap))

    def shifted(self, offset: float) -> "CapacityTrace":
        """A new trace time-shifted *left* by ``offset`` (view from t=offset).

        The returned trace at time ``s`` equals this trace at ``offset + s``.
        Used to re-base a long scenario trace to a transfer's start time.
        """
        check_non_negative(offset, "offset")
        idx = max(int(np.searchsorted(self._times, offset, side="right")) - 1, 0)
        new_times = np.concatenate(([0.0], self._times[idx + 1 :] - offset))
        new_values = self._values[idx:]
        return CapacityTrace(new_times, new_values)

    @staticmethod
    def minimum(traces: Sequence["CapacityTrace"]) -> "CapacityTrace":
        """Pointwise minimum of several traces (union of breakpoints)."""
        if not traces:
            raise ValueError("need at least one trace")
        if len(traces) == 1:
            return traces[0]
        all_times = np.unique(np.concatenate([t._times for t in traces]))
        stacked = np.vstack([t.values_at(all_times) for t in traces])
        return CapacityTrace(all_times, np.min(stacked, axis=0))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CapacityTrace)
            and np.array_equal(self._times, other._times)
            and np.array_equal(self._values, other._values)
        )

    def __hash__(self) -> int:
        return hash((self._times.tobytes(), self._values.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CapacityTrace(pieces={self.n_pieces}, "
            f"mean={float(np.mean(self._values)):.1f} B/s)"
        )
