"""Network substrate: nodes, links, capacity processes, topology, routes."""

from repro.net.capacity import (
    CapacityProcess,
    CompositeCapacity,
    ConstantCapacity,
    DiurnalCapacity,
    LognormalAR1Capacity,
    MarkovModulatedCapacity,
    TraceReplayCapacity,
)
from repro.net.failures import (
    Outage,
    OutageGenerator,
    apply_outages,
    merge_outage_plans,
    node_outage_plan,
    node_wan_links,
    total_downtime,
)
from repro.net.latency import DEFAULT_ONE_WAY_DELAYS, REGIONS, LatencyModel
from repro.net.link import Link
from repro.net.node import Node, NodeKind
from repro.net.route import Route
from repro.net.topology import Topology, access_link_name, wan_link_name
from repro.net.trace import CapacityTrace

__all__ = [
    "CapacityTrace",
    "CapacityProcess",
    "ConstantCapacity",
    "MarkovModulatedCapacity",
    "LognormalAR1Capacity",
    "CompositeCapacity",
    "DiurnalCapacity",
    "TraceReplayCapacity",
    "Outage",
    "OutageGenerator",
    "apply_outages",
    "total_downtime",
    "node_wan_links",
    "node_outage_plan",
    "merge_outage_plans",
    "LatencyModel",
    "REGIONS",
    "DEFAULT_ONE_WAY_DELAYS",
    "Node",
    "NodeKind",
    "Link",
    "Route",
    "Topology",
    "access_link_name",
    "wan_link_name",
]
