"""Routes: ordered sequences of links between endpoints.

A route knows its round-trip time and can compose its links' capacity traces
into a single bottleneck trace (the fluid model's view of an uncontended
path).  Contention between concurrent flows sharing links is resolved by the
max-min allocator in :mod:`repro.tcp.fluid`, not here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.net.link import Link
from repro.net.trace import CapacityTrace

__all__ = ["Route"]


@dataclass(frozen=True)
class Route:
    """An ordered path of links from a source to a destination.

    Attributes
    ----------
    links:
        The traversed links, in order.
    via:
        Name of the intermediate (relay) node for indirect routes, ``None``
        for the direct route.  Used for bookkeeping and utilisation stats.
    """

    links: Tuple[Link, ...]
    via: Optional[str] = None

    def __init__(self, links: Sequence[Link], via: Optional[str] = None):
        if len(links) == 0:
            raise ValueError("a route needs at least one link")
        names = [l.name for l in links]
        if len(set(names)) != len(names):
            raise ValueError(f"route repeats a link: {names}")
        object.__setattr__(self, "links", tuple(links))
        object.__setattr__(self, "via", via)
        # Links are immutable, so the delay sum is fixed at construction.
        # Cached here because route RTT sits on the engine's per-flow hot
        # path (activation delays, ramp construction) and summing per call
        # is measurable at population scale.
        object.__setattr__(
            self, "_one_way", float(sum(l.delay for l in self.links))
        )

    @property
    def is_indirect(self) -> bool:
        """True for routes through an intermediate node."""
        return self.via is not None

    @property
    def source(self) -> str:
        """Name of the route's first endpoint."""
        return self.links[0].src

    @property
    def destination(self) -> str:
        """Name of the route's last endpoint."""
        return self.links[-1].dst

    @property
    def one_way_delay(self) -> float:
        """Sum of link propagation delays, in seconds."""
        return self._one_way

    @property
    def rtt(self) -> float:
        """Round-trip time in seconds (2x one-way delay)."""
        return 2.0 * self._one_way

    @property
    def leg_rtts(self) -> Tuple[float, ...]:
        """Round-trip time of each TCP leg along this route.

        A relay proxy terminates TCP: the indirect path is two separate
        connections (server<->relay and relay<->client), each running slow
        start against its *own* RTT.  The split happens at the relay's
        access link.  Direct routes have a single leg equal to :attr:`rtt`.
        """
        if not self.is_indirect:
            return (self.rtt,)
        legs: list = [[]]
        for link in self.links:
            legs[-1].append(link)
            if link.src == link.dst == self.via:  # the relay's access link
                legs.append([])
        if not legs[-1]:  # route ended exactly at the relay (defensive)
            legs.pop()
        return tuple(2.0 * sum(l.delay for l in leg) for leg in legs)

    @property
    def ramp_rtt(self) -> float:
        """The RTT governing the end-to-end slow-start ramp and window cap.

        With split TCP the end-to-end rate is the min of the legs' rates,
        and every leg's ramp scales with its own RTT - so the *slowest leg*
        (largest RTT) governs.
        """
        return max(self.leg_rtts)

    def bottleneck_trace(self) -> CapacityTrace:
        """Pointwise-minimum capacity over the route's links."""
        return CapacityTrace.minimum([l.trace for l in self.links])

    def bottleneck_at(self, t: float) -> float:
        """Uncontended capacity of the route at time ``t``."""
        return min(l.capacity_at(t) for l in self.links)

    def shares_link_with(self, other: "Route") -> bool:
        """True if the two routes traverse at least one common link.

        Shared links are the paper's "common bottleneck" hazard: an indirect
        path sharing its bottleneck with the direct path cannot win.
        """
        mine = {l.name for l in self.links}
        return any(l.name in mine for l in other.links)

    def describe(self) -> str:
        """Human-readable hop list, e.g. ``Italy =(Texas)=> eBay``."""
        hops = " -> ".join([self.links[0].src] + [l.dst for l in self.links])
        tag = f" via {self.via}" if self.via else " (direct)"
        return hops + tag

    def __len__(self) -> int:
        return len(self.links)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Route({self.describe()!r})"
