"""Path failure (outage) modelling.

The paper's lineage - RON [1], one-hop source routing [2], MONET [12] -
motivates indirect routing with *failure masking*: when the default route
dies, a one-hop detour keeps the transfer alive.  The paper itself measures
only throughput, but its mechanism inherits the masking property for free
(a dead direct path simply loses the probe race).

An :class:`Outage` zeroes a link's capacity for an interval;
:func:`apply_outages` rewrites a capacity trace accordingly, and
:class:`OutageGenerator` draws Poisson outage processes (exponential
inter-failure gaps and repair times), the standard availability model.

Failures come at two granularities.  A *link flap* kills one WAN segment; a
*node (relay) crash* kills **every** WAN segment through that node at once -
correlated downtime that one-hop detours through the crashed relay cannot
mask.  :func:`node_wan_links` enumerates a node's WAN segments,
:func:`node_outage_plan` expands node crashes into the per-link outage map
the scenario layer consumes, and :func:`merge_outage_plans` combines link-
and node-level plans (coalescing overlaps, which `apply_outages` forbids).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence

import numpy as np

from repro.net.link import Link
from repro.net.trace import CapacityTrace
from repro.util.validation import check_non_negative, check_positive

__all__ = [
    "Outage",
    "apply_outages",
    "OutageGenerator",
    "total_downtime",
    "node_wan_links",
    "node_outage_plan",
    "merge_outage_plans",
]


@dataclass(frozen=True)
class Outage:
    """One link failure interval ``[start, start + duration)``.

    A zero-length outage (``duration == 0``) is a legal degenerate window:
    it covers no time, so it must leave any trace it is applied to
    untouched.  Generators never emit them, but fault-plan arithmetic
    (clipping a window to a horizon, chaos duty cycles) can.
    """

    start: float
    duration: float

    def __post_init__(self) -> None:
        check_non_negative(self.start, "start")
        check_non_negative(self.duration, "duration")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def overlaps(self, t0: float, t1: float) -> bool:
        """True when the outage intersects ``[t0, t1)``."""
        return self.start < t1 and t0 < self.end


def apply_outages(trace: CapacityTrace, outages: Sequence[Outage]) -> CapacityTrace:
    """Return a copy of ``trace`` with capacity forced to 0 during outages.

    Outages must be non-overlapping (as produced by
    :class:`OutageGenerator`); the underlying capacity resumes at each
    outage's end (right-continuous semantics preserved).  Back-to-back
    outages (``prev.end == next.start``) and outages starting at or past
    the trace's last breakpoint are fine: the rewritten trace never carries
    duplicate or value-repeating breakpoints, so its zero-capacity measure
    over any window equals :func:`total_downtime` over the same window.
    Zero-length outages cover no time and are dropped before rewriting -
    naively inserting their start/end breakpoints would leave a duplicate
    breakpoint time carrying two values (0 then the resumed capacity),
    which the trace constructor resolves by *discarding the blackout*,
    silently inverting the window's intent.
    """
    outages = [o for o in outages if o.duration > 0.0]
    if not outages:
        return trace
    ordered = sorted(outages, key=lambda o: o.start)
    for prev, nxt in zip(ordered, ordered[1:]):
        if nxt.start < prev.end:
            raise ValueError(
                f"outages overlap: [{prev.start}, {prev.end}) and "
                f"[{nxt.start}, {nxt.end})"
            )
    times = list(trace.times)
    values = list(trace.values)
    for outage in ordered:
        new_times: List[float] = []
        new_values: List[float] = []
        resumed_value = trace.value_at(outage.end)
        inserted_start = False
        inserted_end = False
        for t, v in zip(times, values):
            if t < outage.start:
                new_times.append(t)
                new_values.append(v)
            elif t < outage.end:
                if not inserted_start:
                    new_times.append(outage.start)
                    new_values.append(0.0)
                    inserted_start = True
                # breakpoints inside the outage are swallowed (capacity 0).
            else:
                if not inserted_start:
                    new_times.append(outage.start)
                    new_values.append(0.0)
                    inserted_start = True
                if not inserted_end:
                    new_times.append(outage.end)
                    new_values.append(resumed_value)
                    inserted_end = True
                if t > outage.end:
                    new_times.append(t)
                    new_values.append(v)
        if not inserted_start:  # outage starts after the last breakpoint
            new_times.append(outage.start)
            new_values.append(0.0)
        if not inserted_end:
            new_times.append(outage.end)
            new_values.append(resumed_value)
        times, values = new_times, new_values
    # Coalesce value-repeating breakpoints: rewriting around back-to-back
    # outages leaves a redundant 0.0 -> 0.0 breakpoint at the seam (and a
    # resume into an equal underlying value does the same).  They carry no
    # capacity information but would surface as spurious engine re-tick
    # points, so drop them.
    kept_times = [times[0]]
    kept_values = [values[0]]
    for t, v in zip(times[1:], values[1:]):
        if v == kept_values[-1]:
            continue
        kept_times.append(t)
        kept_values.append(v)
    return CapacityTrace(kept_times, kept_values)


@dataclass(frozen=True)
class OutageGenerator:
    """Poisson failures with exponential repair times.

    Parameters
    ----------
    mtbf:
        Mean time between failure *starts*, seconds.
    mean_duration:
        Mean outage length, seconds.
    """

    mtbf: float
    mean_duration: float

    def __post_init__(self) -> None:
        check_positive(self.mtbf, "mtbf")
        check_positive(self.mean_duration, "mean_duration")

    def sample(self, horizon: float, rng: np.random.Generator) -> List[Outage]:
        """Draw the outages striking within ``[0, horizon]``."""
        check_non_negative(horizon, "horizon")
        outages: List[Outage] = []
        t = float(rng.exponential(self.mtbf))
        while t < horizon:
            duration = max(float(rng.exponential(self.mean_duration)), 1e-3)
            outages.append(Outage(start=t, duration=duration))
            t = t + duration + float(rng.exponential(self.mtbf))
        return outages

    @property
    def availability(self) -> float:
        """Long-run fraction of time the link is up."""
        return self.mtbf / (self.mtbf + self.mean_duration)


def total_downtime(outages: Iterable[Outage], t0: float, t1: float) -> float:
    """Seconds of outage overlapping ``[t0, t1]`` (outages must not overlap)."""
    if t1 < t0:
        raise ValueError(f"t1={t1} must be >= t0={t0}")
    down = 0.0
    for o in outages:
        down += max(0.0, min(o.end, t1) - max(o.start, t0))
    return down


# --------------------------------------------------------------------------- #
# node-level (relay crash) failures
# --------------------------------------------------------------------------- #
def node_wan_links(links: Iterable[Link], node: str) -> List[str]:
    """Names of every WAN segment through ``node``, in iteration order.

    WAN segments are the links with distinct endpoints; access links (which
    use the node name for both ends) model the *local* pipe and survive a
    relay crash, so they are excluded.  An empty result means the node has
    no WAN presence (e.g. a pure client behind its access link).
    """
    if not node:
        raise ValueError("node name must be non-empty")
    return [
        link.name
        for link in links
        if link.src != link.dst and node in (link.src, link.dst)
    ]


def node_outage_plan(
    links: Iterable[Link], node: str, outages: Sequence[Outage]
) -> Dict[str, List[Outage]]:
    """Expand node crashes into the per-link outage map scenarios consume.

    Every outage interval takes down **all** WAN segments through ``node``
    simultaneously - the correlated-failure signature that distinguishes a
    relay crash from an independent link flap.  Raises when the node has no
    WAN segments (a crash there would silently do nothing).
    """
    wan = node_wan_links(links, node)
    if not wan:
        raise ValueError(f"node {node!r} has no WAN links to take down")
    return {name: list(outages) for name in wan}


def merge_outage_plans(
    *plans: Mapping[str, Sequence[Outage]],
) -> Dict[str, List[Outage]]:
    """Union per-link outage plans, coalescing overlapping intervals.

    Link-flap and node-crash processes are sampled independently, so the
    same link can appear in several plans with overlapping outages - which
    :func:`apply_outages` rejects.  The merge unions the intervals per link
    (touching intervals fuse into one), yielding a plan that is safe to
    apply and whose :func:`total_downtime` is the measure of the union.
    """
    merged: Dict[str, List[Outage]] = {}
    for plan in plans:
        for name, outages in plan.items():
            merged.setdefault(name, []).extend(outages)
    for name, outages in merged.items():
        ordered = sorted(outages, key=lambda o: (o.start, o.end))
        fused: List[Outage] = []
        for o in ordered:
            if fused and o.start <= fused[-1].end:
                last = fused[-1]
                if o.end > last.end:
                    fused[-1] = Outage(last.start, o.end - last.start)
            else:
                fused.append(o)
        merged[name] = fused
    return merged
