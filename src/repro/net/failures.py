"""Path failure (outage) modelling.

The paper's lineage - RON [1], one-hop source routing [2], MONET [12] -
motivates indirect routing with *failure masking*: when the default route
dies, a one-hop detour keeps the transfer alive.  The paper itself measures
only throughput, but its mechanism inherits the masking property for free
(a dead direct path simply loses the probe race).

An :class:`Outage` zeroes a link's capacity for an interval;
:func:`apply_outages` rewrites a capacity trace accordingly, and
:class:`OutageGenerator` draws Poisson outage processes (exponential
inter-failure gaps and repair times), the standard availability model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from repro.net.trace import CapacityTrace
from repro.util.validation import check_non_negative, check_positive

__all__ = ["Outage", "apply_outages", "OutageGenerator", "total_downtime"]


@dataclass(frozen=True)
class Outage:
    """One link failure interval ``[start, start + duration)``."""

    start: float
    duration: float

    def __post_init__(self) -> None:
        check_non_negative(self.start, "start")
        check_positive(self.duration, "duration")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def overlaps(self, t0: float, t1: float) -> bool:
        """True when the outage intersects ``[t0, t1)``."""
        return self.start < t1 and t0 < self.end


def apply_outages(trace: CapacityTrace, outages: Sequence[Outage]) -> CapacityTrace:
    """Return a copy of ``trace`` with capacity forced to 0 during outages.

    Outages must be non-overlapping (as produced by
    :class:`OutageGenerator`); the underlying capacity resumes at each
    outage's end (right-continuous semantics preserved).
    """
    if not outages:
        return trace
    ordered = sorted(outages, key=lambda o: o.start)
    for prev, nxt in zip(ordered, ordered[1:]):
        if nxt.start < prev.end:
            raise ValueError(
                f"outages overlap: [{prev.start}, {prev.end}) and "
                f"[{nxt.start}, {nxt.end})"
            )
    times = list(trace.times)
    values = list(trace.values)
    for outage in ordered:
        new_times: List[float] = []
        new_values: List[float] = []
        resumed_value = trace.value_at(outage.end)
        inserted_start = False
        inserted_end = False
        for t, v in zip(times, values):
            if t < outage.start:
                new_times.append(t)
                new_values.append(v)
            elif t < outage.end:
                if not inserted_start:
                    new_times.append(outage.start)
                    new_values.append(0.0)
                    inserted_start = True
                # breakpoints inside the outage are swallowed (capacity 0).
            else:
                if not inserted_start:
                    new_times.append(outage.start)
                    new_values.append(0.0)
                    inserted_start = True
                if not inserted_end:
                    new_times.append(outage.end)
                    new_values.append(resumed_value)
                    inserted_end = True
                if t > outage.end:
                    new_times.append(t)
                    new_values.append(v)
        if not inserted_start:  # outage starts after the last breakpoint
            new_times.append(outage.start)
            new_values.append(0.0)
        if not inserted_end:
            new_times.append(outage.end)
            new_values.append(resumed_value)
        times, values = new_times, new_values
    return CapacityTrace(times, values)


@dataclass(frozen=True)
class OutageGenerator:
    """Poisson failures with exponential repair times.

    Parameters
    ----------
    mtbf:
        Mean time between failure *starts*, seconds.
    mean_duration:
        Mean outage length, seconds.
    """

    mtbf: float
    mean_duration: float

    def __post_init__(self) -> None:
        check_positive(self.mtbf, "mtbf")
        check_positive(self.mean_duration, "mean_duration")

    def sample(self, horizon: float, rng: np.random.Generator) -> List[Outage]:
        """Draw the outages striking within ``[0, horizon]``."""
        check_non_negative(horizon, "horizon")
        outages: List[Outage] = []
        t = float(rng.exponential(self.mtbf))
        while t < horizon:
            duration = max(float(rng.exponential(self.mean_duration)), 1e-3)
            outages.append(Outage(start=t, duration=duration))
            t = t + duration + float(rng.exponential(self.mtbf))
        return outages

    @property
    def availability(self) -> float:
        """Long-run fraction of time the link is up."""
        return self.mtbf / (self.mtbf + self.mean_duration)


def total_downtime(outages: Iterable[Outage], t0: float, t1: float) -> float:
    """Seconds of outage overlapping ``[t0, t1]`` (outages must not overlap)."""
    if t1 < t0:
        raise ValueError(f"t1={t1} must be >= t0={t0}")
    down = 0.0
    for o in outages:
        down += max(0.0, min(o.end, t1) - max(o.start, t0))
    return down
