"""Topology assembly: nodes, access links, WAN segments, route construction.

The study's network reduces to a star-of-stars: every node owns an *access
link* (its last-mile/campus pipe) and every communicating pair owns a *WAN
segment* capturing the wide-area portion of their Internet path.  Routes are
built in the **data direction** (server towards client), since the workload
is download-dominated:

* direct route:    ``access:server -> wan:server->client -> access:client``
* indirect route:  ``access:server -> wan:server->relay -> access:relay ->
  wan:relay->client -> access:client``

The shared ``access:client`` (and ``access:server``) links are what make the
direct and indirect paths contend when probed concurrently, and are one of
the paper's "common bottleneck" penalty scenarios.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import networkx as nx

from repro.net.latency import LatencyModel
from repro.net.link import Link
from repro.net.node import Node, NodeKind
from repro.net.route import Route
from repro.net.trace import CapacityTrace

__all__ = ["Topology", "access_link_name", "wan_link_name"]


def access_link_name(node: str) -> str:
    """Canonical name of a node's access link."""
    return f"access:{node}"


def wan_link_name(src: str, dst: str) -> str:
    """Canonical name of the WAN segment carrying data from src to dst."""
    return f"wan:{src}->{dst}"


class Topology:
    """A collection of nodes and capacity-carrying links with route building.

    Parameters
    ----------
    latency:
        Latency model used to derive WAN propagation delays from node
        regions when a delay is not given explicitly.
    """

    def __init__(self, latency: Optional[LatencyModel] = None):
        self.latency = latency or LatencyModel()
        self._nodes: Dict[str, Node] = {}
        self._links: Dict[str, Link] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_node(self, node: Node) -> Node:
        """Register a node; names must be unique."""
        if node.name in self._nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        return node

    def add_access_link(self, node_name: str, trace: CapacityTrace, *, delay: float = 0.0) -> Link:
        """Attach an access link to an existing node."""
        node = self.node(node_name)
        name = access_link_name(node.name)
        if name in self._links:
            raise ValueError(f"node {node_name!r} already has an access link")
        link = Link(name, node.name, node.name, trace, delay)
        self._links[name] = link
        return link

    def add_wan_link(
        self,
        src: str,
        dst: str,
        trace: CapacityTrace,
        *,
        delay: Optional[float] = None,
    ) -> Link:
        """Add the WAN segment carrying data from ``src`` to ``dst``.

        ``delay`` defaults to the latency model's one-way delay between the
        endpoints' regions.
        """
        a = self.node(src)
        b = self.node(dst)
        if delay is None:
            delay = self.latency.one_way(a.region, b.region)
        name = wan_link_name(src, dst)
        if name in self._links:
            raise ValueError(f"duplicate WAN link {name!r}")
        link = Link(name, src, dst, trace, delay)
        self._links[name] = link
        return link

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def node(self, name: str) -> Node:
        """Look up a node by name (KeyError with context if absent)."""
        try:
            return self._nodes[name]
        except KeyError:
            raise KeyError(f"unknown node {name!r}") from None

    def link(self, name: str) -> Link:
        """Look up a link by canonical name."""
        try:
            return self._links[name]
        except KeyError:
            raise KeyError(f"unknown link {name!r}") from None

    def has_wan_link(self, src: str, dst: str) -> bool:
        """True if the ``src -> dst`` WAN segment exists."""
        return wan_link_name(src, dst) in self._links

    @property
    def nodes(self) -> List[Node]:
        """All registered nodes (insertion order)."""
        return list(self._nodes.values())

    @property
    def links(self) -> List[Link]:
        """All registered links (insertion order)."""
        return list(self._links.values())

    def nodes_of_kind(self, kind: NodeKind) -> List[Node]:
        """All nodes with the given role."""
        return [n for n in self._nodes.values() if n.kind is kind]

    @property
    def clients(self) -> List[Node]:
        return self.nodes_of_kind(NodeKind.CLIENT)

    @property
    def relays(self) -> List[Node]:
        return self.nodes_of_kind(NodeKind.RELAY)

    @property
    def servers(self) -> List[Node]:
        return self.nodes_of_kind(NodeKind.SERVER)

    # ------------------------------------------------------------------ #
    # routes (data direction: server -> client)
    # ------------------------------------------------------------------ #
    def direct_route(self, client: str, server: str) -> Route:
        """The default Internet route delivering data from server to client."""
        self._require_kind(client, NodeKind.CLIENT)
        self._require_kind(server, NodeKind.SERVER)
        return Route(
            [
                self.link(access_link_name(server)),
                self.link(wan_link_name(server, client)),
                self.link(access_link_name(client)),
            ],
            via=None,
        )

    def indirect_route(self, client: str, relay: str, server: str) -> Route:
        """The one-hop overlay route via ``relay`` (data direction)."""
        self._require_kind(client, NodeKind.CLIENT)
        self._require_kind(relay, NodeKind.RELAY)
        self._require_kind(server, NodeKind.SERVER)
        return Route(
            [
                self.link(access_link_name(server)),
                self.link(wan_link_name(server, relay)),
                self.link(access_link_name(relay)),
                self.link(wan_link_name(relay, client)),
                self.link(access_link_name(client)),
            ],
            via=relay,
        )

    def _require_kind(self, name: str, kind: NodeKind) -> None:
        node = self.node(name)
        if node.kind is not kind:
            raise ValueError(f"node {name!r} is a {node.kind.value}, expected {kind.value}")

    def copy_with_traces(self, transform) -> "Topology":
        """A structural copy with every link's trace passed through
        ``transform(link) -> CapacityTrace``.

        Nodes are shared (immutable); links are rebuilt.  Used for what-if
        studies such as failure injection, which must not mutate the
        original scenario's links.
        """
        clone = Topology(self.latency)
        clone._nodes = dict(self._nodes)
        for link in self._links.values():
            new_trace = transform(link)
            if not isinstance(new_trace, CapacityTrace):
                raise TypeError(
                    f"transform must return a CapacityTrace, got {type(new_trace)!r}"
                )
            clone._links[link.name] = Link(
                link.name, link.src, link.dst, new_trace, link.delay
            )
        return clone

    # ------------------------------------------------------------------ #
    # analysis helpers
    # ------------------------------------------------------------------ #
    def to_graph(self) -> nx.DiGraph:
        """Export as a networkx digraph (nodes + WAN edges, access as attrs)."""
        g = nx.DiGraph()
        for node in self._nodes.values():
            access = self._links.get(access_link_name(node.name))
            g.add_node(node.name, kind=node.kind.value, region=node.region, access=access)
        for link in self._links.values():
            if link.src != link.dst:  # WAN segments only
                g.add_edge(link.src, link.dst, link=link, delay=link.delay)
        return g

    def validate(self) -> None:
        """Check that every node has an access link; raise ValueError if not."""
        missing = [n for n in self._nodes if access_link_name(n) not in self._links]
        if missing:
            raise ValueError(f"nodes missing access links: {missing}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology(clients={len(self.clients)}, relays={len(self.relays)}, "
            f"servers={len(self.servers)}, links={len(self._links)})"
        )
