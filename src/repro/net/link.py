"""Directed logical links with capacity traces and propagation delay.

A *link* here is a logical path segment (a client's access pipe, a WAN
segment between two sites), not a physical hop.  Each link carries:

* a :class:`~repro.net.trace.CapacityTrace` of available capacity;
* a one-way propagation delay.

Links are directional in name but symmetric in use: the study's transfers are
strongly download-dominated, so we model the data direction only and fold the
request direction into the RTT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.trace import CapacityTrace, TraceCursor
from repro.util.units import s_to_ms
from repro.util.validation import check_non_negative

__all__ = ["Link"]


@dataclass
class Link:
    """A logical capacity-carrying segment between two named nodes.

    Attributes
    ----------
    name:
        Unique identifier, conventionally ``"src->dst"`` or
        ``"access:Node"``.  Equality and hashing use the name, so two
        ``Link`` objects sharing a name are treated as the *same* capacity
        constraint; the transport engine raises if distinct objects with the
        same name disagree on their capacity trace (a silent merge would
        drop a constraint).
    src, dst:
        Endpoint node names.  Access links use the node name for both.
    trace:
        Available capacity over time (bytes/second).
    delay:
        One-way propagation delay in seconds.
    """

    name: str
    src: str
    dst: str
    trace: CapacityTrace
    delay: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("link name must be non-empty")
        if not isinstance(self.trace, CapacityTrace):
            raise TypeError(f"trace must be a CapacityTrace, got {type(self.trace)!r}")
        check_non_negative(self.delay, "delay")

    def capacity_at(self, t: float) -> float:
        """Available capacity (bytes/second) at time ``t``."""
        return self.trace.value_at(t)

    def capacity_cursor(self) -> TraceCursor:
        """A monotone query cursor over this link's capacity trace.

        Amortised-O(1) for the non-decreasing query times of a simulation
        consumer; see :class:`~repro.net.trace.TraceCursor`.
        """
        return TraceCursor(self.trace)

    def with_trace(self, trace: CapacityTrace) -> "Link":
        """A copy of this link with a different capacity trace."""
        return Link(self.name, self.src, self.dst, trace, self.delay)

    def __hash__(self) -> int:
        return hash(self.name)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Link) and other.name == self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link({self.name!r}, delay={s_to_ms(self.delay):.1f}ms, {self.trace!r})"
