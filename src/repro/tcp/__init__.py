"""Transport substrate: TCP models, max-min fairness, fluid flow engine."""

from repro.tcp.cross_traffic import CrossTrafficConfig, CrossTrafficSource
from repro.tcp.flow import FlowState, FluidFlow
from repro.tcp.fluid import FluidNetwork
from repro.tcp.maxmin import maxmin_allocate, verify_maxmin
from repro.tcp.model import (
    DEFAULT_INITIAL_WINDOW,
    DEFAULT_MAX_WINDOW,
    MSS,
    SlowStartRamp,
    ideal_transfer_time,
    pftk_throughput,
    slow_start_bytes,
    slow_start_exit_time,
    slow_start_time_to_bytes,
    window_limited_rate,
)
from repro.tcp.reno import RenoConfig, RenoResult, simulate_reno_transfer

__all__ = [
    "MSS",
    "DEFAULT_INITIAL_WINDOW",
    "DEFAULT_MAX_WINDOW",
    "SlowStartRamp",
    "pftk_throughput",
    "window_limited_rate",
    "slow_start_bytes",
    "slow_start_time_to_bytes",
    "slow_start_exit_time",
    "ideal_transfer_time",
    "FlowState",
    "FluidFlow",
    "FluidNetwork",
    "maxmin_allocate",
    "verify_maxmin",
    "RenoConfig",
    "RenoResult",
    "simulate_reno_transfer",
    "CrossTrafficConfig",
    "CrossTrafficSource",
]
