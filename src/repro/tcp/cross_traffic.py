"""Background (cross) traffic generation.

The scenario capacity traces already embed aggregate background load as
Markov-modulated *available* capacity.  For experiments that want explicit
competing flows - e.g. testing that concurrent probes contend correctly, or
stressing the max-min allocator - this module injects discrete background
flows with Poisson arrivals and heavy-tailed (lognormal) sizes, the standard
empirical model for web-transfer workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.net.route import Route
from repro.tcp.flow import FluidFlow
from repro.tcp.fluid import FluidNetwork
from repro.util.validation import check_non_negative, check_positive

__all__ = ["CrossTrafficConfig", "CrossTrafficSource"]


@dataclass(frozen=True)
class CrossTrafficConfig:
    """Statistical shape of a background-traffic source.

    Attributes
    ----------
    arrival_rate:
        Mean flow arrivals per second (Poisson process).
    mean_size:
        Mean flow size in bytes (lognormal).
    sigma:
        Lognormal shape parameter; ~1.0-2.0 gives realistic heavy tails.
    """

    arrival_rate: float
    mean_size: float = 500_000.0
    sigma: float = 1.2

    def __post_init__(self) -> None:
        check_positive(self.arrival_rate, "arrival_rate")
        check_positive(self.mean_size, "mean_size")
        check_non_negative(self.sigma, "sigma")

    def sample_size(self, rng: np.random.Generator) -> float:
        """Draw one flow size (bytes, >= 1)."""
        # mu chosen so the lognormal mean equals mean_size.
        mu = np.log(self.mean_size) - 0.5 * self.sigma**2
        return float(max(1.0, rng.lognormal(mu, self.sigma)))

    def sample_gap(self, rng: np.random.Generator) -> float:
        """Draw one inter-arrival gap (seconds)."""
        return float(rng.exponential(1.0 / self.arrival_rate))


class CrossTrafficSource:
    """Schedules an endless stream of background flows on fixed routes.

    Each arrival picks one of ``routes`` uniformly at random and starts a
    flow of lognormal size.  The source stops scheduling after ``horizon``
    (flows in flight run to completion) so simulations terminate.
    """

    def __init__(
        self,
        network: FluidNetwork,
        routes: Sequence[Route],
        config: CrossTrafficConfig,
        rng: np.random.Generator,
        *,
        horizon: float = float("inf"),
    ):
        if not routes:
            raise ValueError("need at least one route for cross traffic")
        self._network = network
        self._routes = list(routes)
        self._config = config
        self._rng = rng
        self._horizon = float(horizon)
        self.flows_started = 0
        self._spawned: List[FluidFlow] = []

    @property
    def flows(self) -> List[FluidFlow]:
        """All flows this source has started (completed or not)."""
        return list(self._spawned)

    def start(self) -> None:
        """Begin generating arrivals from the current simulation time."""
        self._schedule_next()

    def _schedule_next(self) -> None:
        gap = self._config.sample_gap(self._rng)
        t = self._network.sim.now + gap
        if t > self._horizon:
            return
        self._network.sim.schedule_after(gap, self._arrive, name="xtraffic-arrival")

    def _arrive(self) -> None:
        route = self._routes[int(self._rng.integers(len(self._routes)))]
        size = self._config.sample_size(self._rng)
        flow = self._network.start_flow(
            route, size, name=f"xtraffic{self.flows_started}"
        )
        self._spawned.append(flow)
        self.flows_started += 1
        self._schedule_next()
