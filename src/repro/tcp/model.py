"""Analytic TCP throughput models.

Two classical results are used across the library:

* the **PFTK** steady-state throughput formula (Padhye et al.) relating rate
  to RTT and loss probability - used to sanity-check calibrated link
  capacities against plausible 2005-era TCP behaviour;
* the **slow-start ramp**: an idealised TCP connection delivers
  ``cwnd0 * (2^k - 1)`` bytes in its first ``k`` round-trips, so measuring
  throughput over too small an initial range is dominated by slow-start.
  This is exactly why the paper probes with ``x = 100 KB``: the probe must
  outlast slow-start to predict steady-state throughput.

All rates are bytes/second, times seconds, sizes bytes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.util.validation import check_non_negative, check_positive, check_probability

__all__ = [
    "MSS",
    "DEFAULT_INITIAL_WINDOW",
    "DEFAULT_MAX_WINDOW",
    "pftk_throughput",
    "window_limited_rate",
    "slow_start_bytes",
    "slow_start_time_to_bytes",
    "slow_start_exit_time",
    "ideal_transfer_time",
    "SlowStartRamp",
]

#: TCP maximum segment size in bytes (Ethernet-typical).
MSS: float = 1460.0

#: Initial congestion window in bytes (2 segments, RFC 3390-era).
DEFAULT_INITIAL_WINDOW: float = 2.0 * MSS

#: Default maximum window in bytes (64 KB classic receive window).
DEFAULT_MAX_WINDOW: float = 65_536.0


def pftk_throughput(rtt: float, loss: float, *, mss: float = MSS, rto: float = 1.0) -> float:
    """PFTK steady-state TCP throughput estimate in bytes/second.

    Implements the full formula from Padhye, Firoiu, Towsley and Kurose,
    "Modeling TCP Throughput: A Simple Model and its Empirical Validation"
    (SIGCOMM 1998), with the timeout term.  ``loss`` is the packet loss
    probability; the result is capped at the window-free limit for loss -> 0
    by returning ``inf`` when ``loss == 0``.
    """
    check_positive(rtt, "rtt")
    check_probability(loss, "loss")
    check_positive(mss, "mss")
    check_positive(rto, "rto")
    if loss == 0.0:
        return float("inf")
    p = loss
    term = rtt * math.sqrt(2.0 * p / 3.0) + rto * min(
        1.0, 3.0 * math.sqrt(3.0 * p / 8.0)
    ) * p * (1.0 + 32.0 * p * p)
    return mss / term


def window_limited_rate(max_window: float, rtt: float) -> float:
    """Maximum achievable rate ``W_max / RTT`` in bytes/second."""
    check_positive(rtt, "rtt")
    check_non_negative(max_window, "max_window")
    return max_window / rtt


def slow_start_bytes(rounds: int, *, initial_window: float = DEFAULT_INITIAL_WINDOW) -> float:
    """Bytes delivered after ``rounds`` complete slow-start round-trips.

    Window doubles each RTT: total = w0 * (2^rounds - 1).
    """
    if rounds < 0:
        raise ValueError(f"rounds must be >= 0, got {rounds}")
    check_positive(initial_window, "initial_window")
    return initial_window * (2.0**rounds - 1.0)


def slow_start_time_to_bytes(
    size: float,
    rtt: float,
    *,
    initial_window: float = DEFAULT_INITIAL_WINDOW,
) -> float:
    """Time for unconstrained slow start to deliver ``size`` bytes.

    Assumes window doubling every RTT with no capacity ceiling; the answer is
    ``ceil(log2(size/w0 + 1))`` round trips, linearly interpolated within the
    final round (fluid view).
    """
    check_non_negative(size, "size")
    check_positive(rtt, "rtt")
    check_positive(initial_window, "initial_window")
    if size == 0.0:
        return 0.0
    delivered = 0.0
    window = initial_window
    t = 0.0
    while delivered + window < size:
        delivered += window
        window *= 2.0
        t += rtt
    # Fraction of the final round needed.
    return t + rtt * (size - delivered) / window


def slow_start_exit_time(
    target_rate: float,
    rtt: float,
    *,
    initial_window: float = DEFAULT_INITIAL_WINDOW,
) -> float:
    """Time until the doubling ramp first reaches ``target_rate``.

    The ramp's rate during round k is ``w0 * 2^k / rtt``; the exit time is
    the start of the first round whose rate meets the target.
    """
    check_positive(rtt, "rtt")
    check_positive(initial_window, "initial_window")
    check_non_negative(target_rate, "target_rate")
    base_rate = initial_window / rtt
    if target_rate <= base_rate:
        return 0.0
    rounds = math.ceil(math.log2(target_rate / base_rate))
    return rounds * rtt


def ideal_transfer_time(
    size: float,
    capacity: float,
    rtt: float,
    *,
    initial_window: float = DEFAULT_INITIAL_WINDOW,
    max_window: float = float("inf"),
) -> float:
    """Transfer time under slow start followed by capacity-limited delivery.

    A fluid idealisation: rate ramps as ``w0 * 2^k / rtt`` per round until it
    reaches ``min(capacity, max_window / rtt)``, then stays there.  This is
    the closed-form counterpart of the simulator's per-flow rate cap and is
    used in tests to validate the engine on a single uncontended link.
    """
    check_non_negative(size, "size")
    check_positive(capacity, "capacity")
    check_positive(rtt, "rtt")
    if size == 0.0:
        return 0.0
    ceiling = min(capacity, max_window / rtt if max_window != float("inf") else float("inf"))
    if ceiling <= 0.0:
        raise ValueError("effective rate ceiling must be positive")
    t = 0.0
    delivered = 0.0
    rate = initial_window / rtt
    while rate < ceiling:
        step_bytes = rate * rtt
        if delivered + step_bytes >= size:
            return t + (size - delivered) / rate
        delivered += step_bytes
        t += rtt
        rate *= 2.0
    return t + (size - delivered) / ceiling


@dataclass(frozen=True)
class SlowStartRamp:
    """A per-flow rate-cap schedule implementing the doubling ramp.

    The cap during round ``k`` (rounds last one RTT, starting when the flow
    activates) is ``min(w0 * 2^k, W_max) / RTT``.  The fluid engine treats
    this as a private per-flow ceiling on top of max-min fair sharing.
    """

    rtt: float
    initial_window: float = DEFAULT_INITIAL_WINDOW
    max_window: float = DEFAULT_MAX_WINDOW
    _rounds_to_peak: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        check_positive(self.rtt, "rtt")
        check_positive(self.initial_window, "initial_window")
        check_positive(self.max_window, "max_window")
        if self.max_window < self.initial_window:
            raise ValueError("max_window must be >= initial_window")
        # Cached on the (frozen, immutable) ramp: cap_at/next_increase_after
        # run on the engine's per-tick hot path, and log2/ceil per query is
        # measurable there.
        object.__setattr__(
            self,
            "_rounds_to_peak",
            int(math.ceil(math.log2(self.max_window / self.initial_window))),
        )

    @property
    def peak_rate(self) -> float:
        """The window-limited ceiling ``W_max / RTT``."""
        return self.max_window / self.rtt

    # Relative slack when mapping elapsed time to a doubling round: event
    # times accumulate float error, so an elapsed value one ulp short of a
    # round boundary must count as *in* that round, or the engine would
    # schedule a zero-length wait and stall the clock.
    _ROUND_EPS = 1e-9

    def _round_of(self, elapsed: float) -> int:
        return int(math.floor(elapsed / self.rtt + self._ROUND_EPS))

    def cap_at(self, elapsed: float) -> float:
        """Rate cap (bytes/second) a time ``elapsed`` after activation."""
        if elapsed < 0.0:
            return 0.0
        # Clamp the exponent: past rounds_to_peak the window is max_window
        # anyway, and 2.0**k overflows for very long-lived flows.
        k = min(self._round_of(elapsed), self.rounds_to_peak())
        window = self.initial_window * (2.0**k)
        return min(window, self.max_window) / self.rtt

    def next_increase_after(self, elapsed: float) -> float:
        """Elapsed time of the next cap increase, or ``inf`` when capped out."""
        if elapsed < 0.0:
            return 0.0
        k = self._round_of(elapsed) + 1
        if k > self.rounds_to_peak():
            return float("inf")
        return k * self.rtt

    def rounds_to_peak(self) -> int:
        """Number of doubling rounds until the window cap is reached."""
        return self._rounds_to_peak
