"""Fluid flow objects: the transport engine's unit of work.

A :class:`FluidFlow` is one TCP transfer rendered in the fluid model: a fixed
number of bytes moving along a :class:`~repro.net.route.Route`, rate-limited
by (a) max-min fair sharing with concurrent flows and (b) its private
slow-start/window ramp.  Flows progress through a small lifecycle::

    PENDING --activate--> ACTIVE --deliver all bytes--> COMPLETED
                             \\--abort()--> ABORTED

Flows are created and driven exclusively by
:class:`~repro.tcp.fluid.FluidNetwork`.
"""

from __future__ import annotations

import enum
import itertools
from typing import Callable, Optional

from repro.net.route import Route
from repro.tcp.model import SlowStartRamp
from repro.util.validation import check_positive

__all__ = ["FlowState", "FluidFlow"]

_flow_ids = itertools.count(1)


class FlowState(enum.Enum):
    """Lifecycle states of a fluid flow."""

    PENDING = "pending"
    ACTIVE = "active"
    COMPLETED = "completed"
    ABORTED = "aborted"


class FluidFlow:
    """One fixed-size transfer over a route.

    Attributes
    ----------
    route:
        The links traversed (data direction).
    size:
        Total bytes to deliver.
    ramp:
        Optional slow-start/window rate-cap schedule; ``None`` means the flow
        is only limited by fair sharing (used for background traffic).
    requested_at:
        Simulation time the transfer was requested.
    activated_at:
        Time the first payload byte could flow (request latency elapsed).
    completed_at:
        Completion time, or ``None``.
    """

    __slots__ = (
        "id",
        "name",
        "route",
        "size",
        "ramp",
        "on_complete",
        "state",
        "requested_at",
        "activated_at",
        "completed_at",
        "_delivered",
        "_rate",
        "_last_update",
        "_sync",
    )

    def __init__(
        self,
        route: Route,
        size: float,
        *,
        ramp: Optional[SlowStartRamp] = None,
        on_complete: Optional[Callable[["FluidFlow"], None]] = None,
        name: str = "",
        requested_at: float = 0.0,
    ):
        check_positive(size, "size")
        self.id = next(_flow_ids)
        self.name = name or f"flow{self.id}"
        self.route = route
        self.size = float(size)
        self.ramp = ramp
        self.on_complete = on_complete
        self.state = FlowState.PENDING
        self.requested_at = float(requested_at)
        self.activated_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        self._delivered = 0.0
        self._rate = 0.0
        self._last_update = float(requested_at)
        self._sync: Optional[Callable[["FluidFlow"], None]] = None

    # ------------------------------------------------------------------ #
    # engine-facing interface
    # ------------------------------------------------------------------ #
    def _activate(self, now: float) -> None:
        if self.state is not FlowState.PENDING:
            raise RuntimeError(f"cannot activate flow in state {self.state}")
        self.state = FlowState.ACTIVE
        self.activated_at = now
        self._last_update = now

    def _advance(self, now: float) -> None:
        """Accrue bytes delivered at the current rate since the last update."""
        if self.state is FlowState.ACTIVE and now > self._last_update:
            self._delivered = min(
                self.size, self._delivered + self._rate * (now - self._last_update)
            )
        self._last_update = now

    def _complete(self, now: float) -> None:
        self.state = FlowState.COMPLETED
        self.completed_at = now
        self._delivered = self.size
        self._rate = 0.0
        self._sync = None

    def _abort(self, now: float) -> None:
        self.state = FlowState.ABORTED
        self.completed_at = now
        self._rate = 0.0
        self._sync = None

    def cap_at(self, now: float) -> float:
        """Current private rate ceiling from the slow-start ramp."""
        if self.ramp is None:
            return float("inf")
        if self.activated_at is None:
            return 0.0
        return self.ramp.cap_at(now - self.activated_at)

    def next_cap_increase(self, now: float) -> float:
        """Absolute time of the next ramp increase (``inf`` when capped out)."""
        if self.ramp is None or self.activated_at is None:
            return float("inf")
        nxt = self.ramp.next_increase_after(now - self.activated_at)
        return self.activated_at + nxt if nxt != float("inf") else float("inf")

    # ------------------------------------------------------------------ #
    # observers
    # ------------------------------------------------------------------ #
    @property
    def delivered(self) -> float:
        """Bytes delivered as of the engine's last tick.

        When a batched engine owns this flow, the authoritative value lives in
        its arrays; a sync hook materialises it here on first read.
        """
        if self._sync is not None:
            self._sync(self)
        return self._delivered

    @delivered.setter
    def delivered(self, value: float) -> None:
        self._delivered = value

    @property
    def rate(self) -> float:
        """Current allocated rate (bytes/second)."""
        if self._sync is not None:
            self._sync(self)
        return self._rate

    @rate.setter
    def rate(self, value: float) -> None:
        self._rate = value

    @property
    def remaining(self) -> float:
        """Bytes still to deliver."""
        return max(0.0, self.size - self.delivered)

    def delivered_at(self, now: float) -> float:
        """Bytes delivered by time ``now``, interpolating within the current
        constant-rate segment (the engine only materialises ``delivered`` at
        tick events; observers like the adaptive watchdog sample between
        them)."""
        delivered = self.delivered
        if self.state is FlowState.ACTIVE and now > self._last_update:
            return min(self.size, delivered + self._rate * (now - self._last_update))
        return delivered

    @property
    def done(self) -> bool:
        """True once the flow has completed or been aborted."""
        return self.state in (FlowState.COMPLETED, FlowState.ABORTED)

    def duration(self) -> float:
        """Request-to-completion wall time (raises if not completed)."""
        if self.state is not FlowState.COMPLETED or self.completed_at is None:
            raise RuntimeError(f"flow {self.name} has not completed")
        return self.completed_at - self.requested_at

    def throughput(self) -> float:
        """Achieved end-to-end throughput (bytes/second), request to finish.

        This matches the paper's client-observed metric: total bytes divided
        by total elapsed time, *including* connection setup latency.
        """
        d = self.duration()
        if d <= 0.0:
            raise RuntimeError(f"flow {self.name} has non-positive duration {d}")
        return self.size / d

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FluidFlow({self.name!r}, {self.state.value}, "
            f"{self.delivered:.0f}/{self.size:.0f}B via {self.route.via or 'direct'})"
        )
