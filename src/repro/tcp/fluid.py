"""Event-driven fluid transport engine.

:class:`FluidNetwork` simulates concurrent TCP transfers at flow level on top
of the discrete-event kernel.  Between events every flow moves at a constant
rate, so the engine only needs to wake at moments a rate could change:

* a flow activates (its request latency elapsed) or completes;
* a link's capacity trace hits a breakpoint;
* a flow's slow-start ramp doubles its cap;
* the user starts or aborts a flow.

At each wake-up the engine advances delivered byte counts, fires completion
callbacks, re-solves the max-min fair allocation over the active flows
(:func:`repro.tcp.maxmin.maxmin_allocate`) and schedules the next wake-up.

Hot-path design (see DESIGN.md §"Engine performance"): the allocation
*structure* — the link list, the link-flow incidence matrix and the
per-link trace cursors — depends only on the set of active flows, which
changes far less often than rates do (every capacity breakpoint and ramp
doubling re-solves rates over an unchanged flow set).  The engine therefore
caches that structure and invalidates it only when a flow activates,
completes or aborts; per-tick work reduces to refreshing the capacity and
cap vectors in preallocated buffers and re-running the allocator.  Scalar
trace queries go through per-link :class:`~repro.net.trace.TraceCursor`
objects, which are amortised O(1) because event times never decrease.

Setting ``REPRO_ENGINE_BASELINE=1`` (or constructing with
``incremental=False``) disables the caches and fast paths and restores the
seed engine's rebuild-every-tick path.  Both modes produce byte-identical
results; the flag exists so ``repro perf`` can measure the speedup and CI
can diff campaign artefacts across the two paths.
"""

from __future__ import annotations

import math
import os
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.net.link import Link
from repro.net.route import Route
from repro.net.trace import TraceCursor
from repro.sim.errors import TransferError
from repro.sim.event_queue import Event
from repro.sim.simulator import Simulator
from repro.tcp.flow import FlowState, FluidFlow
from repro.tcp.maxmin import maxmin_allocate
from repro.tcp.model import SlowStartRamp

__all__ = ["FluidNetwork", "baseline_engine_from_env", "vector_engine_from_env"]

#: Bytes of slack when deciding a flow has finished (float-precision guard).
_COMPLETION_SLACK = 1e-3
#: Relative completion-time safety margin (schedule exactly, detect with slack).
_TIME_EPS = 1e-12

_BASELINE_ENV_VAR = "REPRO_ENGINE_BASELINE"
_VECTOR_ENV_VAR = "REPRO_ENGINE_VECTOR"
_TRUTHY = {"1", "true", "yes", "on"}


def baseline_engine_from_env() -> bool:
    """True when ``REPRO_ENGINE_BASELINE`` requests the seed engine path."""
    return os.environ.get(_BASELINE_ENV_VAR, "").strip().lower() in _TRUTHY


def vector_engine_from_env(default: bool = False) -> bool:
    """Resolve ``REPRO_ENGINE_VECTOR``: unset -> ``default``, else truthiness.

    ``REPRO_ENGINE_VECTOR=1`` turns the struct-of-arrays engine on globally;
    ``REPRO_ENGINE_VECTOR=0`` forces the classic per-object path even for
    callers (like the ``repro scale`` study) whose default is the vector
    engine.
    """
    raw = os.environ.get(_VECTOR_ENV_VAR)
    if raw is None or not raw.strip():
        return default
    return raw.strip().lower() in _TRUTHY


class _AllocState:
    """Cached allocation structure for one active-flow set.

    Valid exactly as long as the active-flow set is unchanged: flows and
    routes are immutable while active, and capacity traces are immutable
    always, so only set membership can invalidate this.  ``capacities`` and
    ``caps`` are per-tick scratch buffers refreshed in place; ``disjoint``
    (no link carries two flows) is a property of the structure and is
    decided once here rather than on every tick.
    """

    __slots__ = (
        "flows",
        "links",
        "link_names",
        "cursors",
        "incidence",
        "flow_links",
        "disjoint",
        "capacities",
        "caps",
    )

    def __init__(
        self,
        flows: List[FluidFlow],
        links: List[Link],
        flow_links: List[List[int]],
        cursors: List[TraceCursor],
    ):
        self.flows = flows
        self.links = links
        self.link_names = [link.name for link in links]
        self.cursors = cursors
        self.flow_links = flow_links
        incidence = np.zeros((len(links), len(flows)), dtype=bool)
        for j, idxs in enumerate(flow_links):
            for i in idxs:
                incidence[i, j] = True
        self.incidence = incidence
        self.disjoint = bool(incidence.sum(axis=1).max(initial=0) <= 1)
        self.capacities = np.empty(len(links), dtype=np.float64)
        self.caps = np.empty(len(flows), dtype=np.float64)


class FluidNetwork:
    """Fluid-model transport engine bound to a simulator.

    Parameters
    ----------
    sim:
        The discrete-event kernel driving this network.
    default_request_latency:
        When :meth:`start_flow` is not given an explicit activation delay,
        the flow activates after ``route.rtt`` (one RTT covers the request
        and the first payload byte's propagation) scaled by this factor.
    incremental:
        Use the incremental allocation-state cache and allocator fast paths
        (default).  ``False`` restores the seed engine's rebuild-every-tick
        path; ``None`` reads ``REPRO_ENGINE_BASELINE`` from the environment.
        Both modes are byte-identical in output.
    vector:
        Delegate ticks to the struct-of-arrays population engine
        (:class:`repro.vec.engine.VectorCore`).  ``None`` reads
        ``REPRO_ENGINE_VECTOR`` from the environment (default off).  The
        vector engine requires the incremental path and is disabled under
        the runtime sanitizer (whose per-flow invariant hooks assume the
        per-object tick); artefacts are byte-identical to the classic
        engine at populations the pinning suite covers (see DESIGN.md §12).
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        default_request_latency: float = 1.0,
        incremental: Optional[bool] = None,
        vector: Optional[bool] = None,
        coalesce_activations: bool = False,
    ):
        self._sim = sim
        self._active: Dict[int, FluidFlow] = {}
        self._tick_event: Optional[Event] = None
        self._default_request_latency = float(default_request_latency)
        #: Opt-in: flows sharing an activation instant share one simulator
        #: event (population-scale workloads create thousands of flows per
        #: instant; one heap entry each is measurable).  Off by default -
        #: activation *order* is unchanged either way (creation order within
        #: an instant), but coalescing does reorder activations relative to
        #: unrelated events scheduled at the same instant, which classic
        #: session studies may observe.
        self._coalesce = bool(coalesce_activations)
        self._pending_activations: Dict[float, List[FluidFlow]] = {}
        if incremental is None:
            incremental = not baseline_engine_from_env()
        self._incremental = bool(incremental)
        if vector is None:
            vector = vector_engine_from_env()
        self._vec = None
        if vector and self._incremental and sim.sanitizer is None:
            from repro.vec.engine import VectorCore  # deferred: import cycle

            self._vec = VectorCore(self)
        #: Cached allocation structure; None whenever the active set changed.
        self._alloc_state: Optional[_AllocState] = None
        #: Persistent per-link trace cursors (survive alloc-state rebuilds,
        #: so their monotone position is kept across flow churn).
        self._cursors: Dict[str, TraceCursor] = {}
        #: Bound-method reference reused by every tick (re)schedule, so the
        #: hot reschedule path allocates no new callable per tick.
        self._tick_cb = self._tick
        #: Count of completed flows (monitoring/testing aid).
        self.completed_count = 0
        #: Cached observer handle (None = disabled; one attribute test on
        #: the hot paths).  Observation never alters allocation decisions —
        #: in particular the disjoint scalar fast path stays gated on the
        #: sanitizer alone.
        self._obs = sim.observer
        self._last_tick_at: Optional[float] = None

    @property
    def sim(self) -> Simulator:
        """The simulator this network schedules on."""
        return self._sim

    @property
    def incremental(self) -> bool:
        """True when the incremental hot path is enabled (default)."""
        return self._incremental

    @property
    def vector(self) -> bool:
        """True when ticks run on the struct-of-arrays population engine."""
        return self._vec is not None

    @property
    def active_flows(self) -> List[FluidFlow]:
        """Currently active (transferring) flows."""
        return list(self._active.values())

    # ------------------------------------------------------------------ #
    # user API
    # ------------------------------------------------------------------ #
    def start_flow(
        self,
        route: Route,
        size: float,
        *,
        ramp: Optional[SlowStartRamp] = None,
        on_complete: Optional[Callable[[FluidFlow], None]] = None,
        name: str = "",
        activation_delay: Optional[float] = None,
    ) -> FluidFlow:
        """Request a transfer of ``size`` bytes along ``route``.

        The flow begins delivering bytes after ``activation_delay`` seconds
        (default: one route RTT, modelling request propagation and the first
        data byte's return).  Returns the flow handle immediately.
        """
        flow = FluidFlow(
            route,
            size,
            ramp=ramp,
            on_complete=on_complete,
            name=name,
            requested_at=self._sim.now,
        )
        if activation_delay is None:
            activation_delay = route.rtt * self._default_request_latency
        if activation_delay < 0.0:
            raise ValueError(f"activation_delay must be >= 0, got {activation_delay}")
        if self._coalesce:
            at = self._sim.now + activation_delay
            batch = self._pending_activations.get(at)
            if batch is None:
                self._pending_activations[at] = batch = []
                self._sim.schedule_at(
                    at, lambda: self._activate_batch(at), name="activate-batch"
                )
            batch.append(flow)
        else:
            self._sim.schedule_after(
                activation_delay,
                lambda: self._activate(flow),
                name=f"activate:{flow.name}",
            )
        return flow

    def abort_flow(self, flow: FluidFlow) -> None:
        """Cancel a pending or active flow (idempotent for finished flows)."""
        if flow.done:
            return
        if flow.state is FlowState.ACTIVE:
            if self._vec is not None:
                self._vec.detach_flow(flow)  # materialises the row first
            flow._advance(self._sim.now)
            self._active.pop(flow.id, None)
            self._invalidate_alloc("abort")
        flow._abort(self._sim.now)
        if self._sim.sanitizer is not None:
            self._sim.sanitizer.forget_flow(flow.id)
        self._request_tick()

    # ------------------------------------------------------------------ #
    # engine internals
    # ------------------------------------------------------------------ #
    def _activate(self, flow: FluidFlow) -> None:
        if flow.state is FlowState.ABORTED:
            return  # aborted while pending
        flow._activate(self._sim.now)
        self._active[flow.id] = flow
        if self._vec is not None:
            self._vec.add_flow(flow)
        self._invalidate_alloc("activate")
        self._request_tick()

    def _activate_batch(self, at: float) -> None:
        """Activate every flow whose activation instant is ``at``.

        Flows activate in creation order - exactly the order the per-flow
        events would have fired in (the heap breaks time ties by sequence
        number).
        """
        for flow in self._pending_activations.pop(at):
            self._activate(flow)

    def _invalidate_alloc(self, reason: str) -> None:
        """Drop the cached allocation structure, counting the cause."""
        if self._alloc_state is not None:
            self._alloc_state = None
            if self._obs is not None:
                self._obs.count("alloc.cache_invalidate." + reason)

    def _request_tick(self) -> None:
        """Coalesce mutations into a single recompute at the current instant."""
        if self._tick_event is not None and self._tick_event.active:
            if self._tick_event.time <= self._sim.now + _TIME_EPS:
                return  # a tick at (or before) now is already pending
            self._sim.cancel(self._tick_event)
        self._tick_event = self._sim.schedule_at(self._sim.now, self._tick_cb, name="fluid-tick")

    def _cursor(self, link: Link) -> TraceCursor:
        """The persistent monotone cursor for ``link``'s trace."""
        cursor = self._cursors.get(link.name)
        if cursor is None or cursor.trace is not link.trace:
            cursor = TraceCursor(link.trace)
            self._cursors[link.name] = cursor
        return cursor

    def _build_alloc_state(self, flows: List[FluidFlow]) -> _AllocState:
        """Collect links and incidence for the current active-flow set."""
        links: List[Link] = []
        link_index: Dict[str, int] = {}
        flow_links: List[List[int]] = []
        for flow in flows:
            idxs: List[int] = []
            for link in flow.route.links:
                idx = link_index.get(link.name)
                if idx is None:
                    idx = link_index[link.name] = len(links)
                    links.append(link)
                else:
                    self._check_link_merge(links[idx], link)
                idxs.append(idx)
            flow_links.append(idxs)
        return _AllocState(flows, links, flow_links, [self._cursor(link) for link in links])

    @staticmethod
    def _check_link_merge(kept: Link, dup: Link) -> None:
        """Refuse to merge distinct links that share a name but disagree.

        Links are keyed by name, so two distinct :class:`Link` objects with
        the same name become a *single* capacity constraint.  That is the
        intended sharing mechanism when they carry the same trace, but a
        silent merge of links with *different* traces would drop one
        constraint entirely — raise instead.
        """
        if kept is dup or kept.trace is dup.trace:
            return
        if kept.trace != dup.trace:
            raise TransferError(
                f"two distinct links named {kept.name!r} with different "
                "capacity traces are in use by concurrent flows; link names "
                "must identify a unique capacity constraint"
            )

    def _tick(self) -> None:
        if self._vec is not None:
            self._vec.tick()
            return
        now = self._sim.now
        self._tick_event = None
        sanitizer = self._sim.sanitizer
        obs = self._obs
        if obs is not None:
            # One span per constant-rate epoch: from the previous tick to
            # this one, annotated with the flow count that held during it.
            prev = self._last_tick_at
            if prev is not None and now > prev:
                obs.span("tick", "fluid-epoch", prev, now, flows=len(self._active))
            self._last_tick_at = now
            obs.count("engine.ticks")

        # 1. Accrue bytes at the rates chosen at the previous tick.
        for flow in self._active.values():
            flow._advance(now)
        if sanitizer is not None:
            for flow in self._active.values():
                sanitizer.check_flow_progress(flow, now)

        # 2. Detect and finalise completions; callbacks run after removal so
        #    they observe a consistent active set and may start/abort flows.
        finished = [f for f in self._active.values() if f.remaining <= _COMPLETION_SLACK]
        for flow in finished:
            del self._active[flow.id]
            flow._complete(now)
            self.completed_count += 1
            if sanitizer is not None:
                sanitizer.forget_flow(flow.id)
        if finished:
            self._invalidate_alloc("complete")
        for flow in finished:
            if flow.on_complete is not None:
                flow.on_complete(flow)

        # A callback may have scheduled a same-instant tick; drop it, we are
        # about to do that work right now.
        if self._tick_event is not None and self._tick_event.active:
            self._sim.cancel(self._tick_event)
            self._tick_event = None

        if not self._active:
            return

        # 3. Re-solve the allocation over the current active set.
        if self._incremental:
            state = self._alloc_state
            if state is None:
                state = self._alloc_state = self._build_alloc_state(
                    list(self._active.values())
                )
                if obs is not None:
                    obs.count("alloc.cache_rebuild")
            flows = state.flows
            cursors = state.cursors
            capv = [cursor.value_at(now) for cursor in cursors]
            if obs is not None:
                obs.span(
                    "alloc", "solve", now, now,
                    flows=len(flows), links=len(state.links),
                    disjoint=state.disjoint,
                )
            if state.disjoint and sanitizer is None:
                # No link is shared, so no sharing to arbitrate: each flow
                # gets min(bottleneck, cap) in plain floats, skipping numpy
                # entirely.  Identical values to maxmin_allocate's disjoint
                # fast path (same candidates, same exact min).
                for flow, idxs in zip(flows, state.flow_links):
                    bottleneck = capv[idxs[0]]
                    for i in idxs:
                        v = capv[i]
                        if v < bottleneck:
                            bottleneck = v
                    cap = flow.cap_at(now)
                    flow._rate = bottleneck if bottleneck < cap else cap
                if obs is not None:
                    obs.count("alloc.solve_disjoint_scalar")
            else:
                capacities = state.capacities
                for i, value in enumerate(capv):
                    capacities[i] = value
                caps = state.caps
                for j, flow in enumerate(flows):
                    caps[j] = flow.cap_at(now)
                rates = maxmin_allocate(
                    capacities, state.incidence, caps,
                    validate=False, fast=state.disjoint, observer=obs,
                )
                if sanitizer is not None:
                    sanitizer.check_allocation(
                        now, capacities, state.incidence, caps, rates, state.link_names
                    )
                for flow, rate in zip(flows, rates):
                    flow._rate = float(rate)
            next_time = float("inf")
            for flow in flows:
                if flow._rate > 0.0:
                    next_time = min(next_time, now + flow.remaining / flow._rate)
                next_time = min(next_time, flow.next_cap_increase(now))
            for cursor in cursors:
                next_time = min(next_time, cursor.next_change_after(now))
        else:
            # Seed engine path: rebuild every structure from scratch at every
            # tick.  Kept verbatim as the perf yardstick (REPRO_ENGINE_BASELINE)
            # and as executable documentation of the semantics the incremental
            # path must reproduce byte-for-byte.
            flows = list(self._active.values())
            links = []
            link_index: Dict[str, int] = {}
            for flow in flows:
                for link in flow.route.links:
                    idx = link_index.get(link.name)
                    if idx is None:
                        link_index[link.name] = len(links)
                        links.append(link)
                    else:
                        self._check_link_merge(links[idx], link)
            n_links, n_flows = len(links), len(flows)
            capacities = np.fromiter(
                (link.trace.value_at(now) for link in links), dtype=np.float64, count=n_links
            )
            incidence = np.zeros((n_links, n_flows), dtype=bool)
            for j, flow in enumerate(flows):
                for link in flow.route.links:
                    incidence[link_index[link.name], j] = True
            caps = np.fromiter((f.cap_at(now) for f in flows), dtype=np.float64, count=n_flows)
            if obs is not None:
                obs.span("alloc", "solve", now, now, flows=n_flows, links=n_links)
            rates = maxmin_allocate(capacities, incidence, caps, fast=False, observer=obs)
            if sanitizer is not None:
                sanitizer.check_allocation(
                    now, capacities, incidence, caps, rates,
                    [link.name for link in links],
                )
            for flow, rate in zip(flows, rates):
                flow._rate = float(rate)
            next_time = float("inf")
            for flow in flows:
                if flow._rate > 0.0:
                    next_time = min(next_time, now + flow.remaining / flow._rate)
                next_time = min(next_time, flow.next_cap_increase(now))
            for link in links:
                next_time = min(next_time, link.trace.next_change_after(now))

        # 4. Schedule the next moment any rate could change.
        if math.isinf(next_time):
            raise TransferError(
                f"transfer deadlock at t={now:.3f}: {len(flows)} active flow(s) "
                "have zero rate and no future capacity or window changes"
            )
        # Defensive minimum step: a wake-up so close that float addition
        # cannot advance the clock would spin forever at one instant.
        min_step = 1e-9 * max(now, 1.0)
        self._tick_event = self._sim.schedule_at(
            max(next_time, now + min_step), self._tick_cb, name="fluid-tick"
        )

    # ------------------------------------------------------------------ #
    # convenience
    # ------------------------------------------------------------------ #
    def run_to_completion(self, flow: FluidFlow, *, limit: Optional[float] = None) -> FluidFlow:
        """Advance the simulation until ``flow`` finishes; return it.

        Raises :class:`~repro.sim.errors.SimulationDeadlock` if the event
        queue drains first (which indicates an engine bug or an aborted
        flow).
        """
        self._sim.run_until_true(lambda: flow.done, limit=limit)
        return flow
