"""Event-driven fluid transport engine.

:class:`FluidNetwork` simulates concurrent TCP transfers at flow level on top
of the discrete-event kernel.  Between events every flow moves at a constant
rate, so the engine only needs to wake at moments a rate could change:

* a flow activates (its request latency elapsed) or completes;
* a link's capacity trace hits a breakpoint;
* a flow's slow-start ramp doubles its cap;
* the user starts or aborts a flow.

At each wake-up the engine advances delivered byte counts, fires completion
callbacks, re-solves the max-min fair allocation over the active flows
(:func:`repro.tcp.maxmin.maxmin_allocate`) and schedules the next wake-up.
The allocation inputs are rebuilt as numpy arrays each time; with tens of
flows this is microseconds, and it keeps the engine allocation-free between
events.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.net.link import Link
from repro.net.route import Route
from repro.sim.errors import TransferError
from repro.sim.event_queue import Event
from repro.sim.simulator import Simulator
from repro.tcp.flow import FlowState, FluidFlow
from repro.tcp.maxmin import maxmin_allocate
from repro.tcp.model import SlowStartRamp

__all__ = ["FluidNetwork"]

#: Bytes of slack when deciding a flow has finished (float-precision guard).
_COMPLETION_SLACK = 1e-3
#: Relative completion-time safety margin (schedule exactly, detect with slack).
_TIME_EPS = 1e-12


class FluidNetwork:
    """Fluid-model transport engine bound to a simulator.

    Parameters
    ----------
    sim:
        The discrete-event kernel driving this network.
    default_request_latency:
        When :meth:`start_flow` is not given an explicit activation delay,
        the flow activates after ``route.rtt`` (one RTT covers the request
        and the first payload byte's propagation) scaled by this factor.
    """

    def __init__(self, sim: Simulator, *, default_request_latency: float = 1.0):
        self._sim = sim
        self._active: Dict[int, FluidFlow] = {}
        self._tick_event: Optional[Event] = None
        self._default_request_latency = float(default_request_latency)
        #: Count of completed flows (monitoring/testing aid).
        self.completed_count = 0

    @property
    def sim(self) -> Simulator:
        """The simulator this network schedules on."""
        return self._sim

    @property
    def active_flows(self) -> List[FluidFlow]:
        """Currently active (transferring) flows."""
        return list(self._active.values())

    # ------------------------------------------------------------------ #
    # user API
    # ------------------------------------------------------------------ #
    def start_flow(
        self,
        route: Route,
        size: float,
        *,
        ramp: Optional[SlowStartRamp] = None,
        on_complete: Optional[Callable[[FluidFlow], None]] = None,
        name: str = "",
        activation_delay: Optional[float] = None,
    ) -> FluidFlow:
        """Request a transfer of ``size`` bytes along ``route``.

        The flow begins delivering bytes after ``activation_delay`` seconds
        (default: one route RTT, modelling request propagation and the first
        data byte's return).  Returns the flow handle immediately.
        """
        flow = FluidFlow(
            route,
            size,
            ramp=ramp,
            on_complete=on_complete,
            name=name,
            requested_at=self._sim.now,
        )
        if activation_delay is None:
            activation_delay = route.rtt * self._default_request_latency
        if activation_delay < 0.0:
            raise ValueError(f"activation_delay must be >= 0, got {activation_delay}")
        self._sim.schedule_after(
            activation_delay, lambda: self._activate(flow), name=f"activate:{flow.name}"
        )
        return flow

    def abort_flow(self, flow: FluidFlow) -> None:
        """Cancel a pending or active flow (idempotent for finished flows)."""
        if flow.done:
            return
        if flow.state is FlowState.ACTIVE:
            flow._advance(self._sim.now)
            self._active.pop(flow.id, None)
        flow._abort(self._sim.now)
        if self._sim.sanitizer is not None:
            self._sim.sanitizer.forget_flow(flow.id)
        self._request_tick()

    # ------------------------------------------------------------------ #
    # engine internals
    # ------------------------------------------------------------------ #
    def _activate(self, flow: FluidFlow) -> None:
        if flow.state is FlowState.ABORTED:
            return  # aborted while pending
        flow._activate(self._sim.now)
        self._active[flow.id] = flow
        self._request_tick()

    def _request_tick(self) -> None:
        """Coalesce mutations into a single recompute at the current instant."""
        if self._tick_event is not None and self._tick_event.active:
            if self._tick_event.time <= self._sim.now + _TIME_EPS:
                return  # a tick at (or before) now is already pending
            self._sim.cancel(self._tick_event)
        self._tick_event = self._sim.schedule_at(self._sim.now, self._tick, name="fluid-tick")

    def _tick(self) -> None:
        now = self._sim.now
        self._tick_event = None
        sanitizer = self._sim.sanitizer

        # 1. Accrue bytes at the rates chosen at the previous tick.
        for flow in self._active.values():
            flow._advance(now)
        if sanitizer is not None:
            for flow in self._active.values():
                sanitizer.check_flow_progress(flow, now)

        # 2. Detect and finalise completions; callbacks run after removal so
        #    they observe a consistent active set and may start/abort flows.
        finished = [f for f in self._active.values() if f.remaining <= _COMPLETION_SLACK]
        for flow in finished:
            del self._active[flow.id]
            flow._complete(now)
            self.completed_count += 1
            if sanitizer is not None:
                sanitizer.forget_flow(flow.id)
        for flow in finished:
            if flow.on_complete is not None:
                flow.on_complete(flow)

        # A callback may have scheduled a same-instant tick; drop it, we are
        # about to do that work right now.
        if self._tick_event is not None and self._tick_event.active:
            self._sim.cancel(self._tick_event)
            self._tick_event = None

        if not self._active:
            return

        # 3. Re-solve the allocation over the current active set.
        flows = list(self._active.values())
        links: List[Link] = []
        link_index: Dict[str, int] = {}
        for flow in flows:
            for link in flow.route.links:
                if link.name not in link_index:
                    link_index[link.name] = len(links)
                    links.append(link)
        n_links, n_flows = len(links), len(flows)
        capacities = np.fromiter(
            (link.trace.value_at(now) for link in links), dtype=np.float64, count=n_links
        )
        incidence = np.zeros((n_links, n_flows), dtype=bool)
        for j, flow in enumerate(flows):
            for link in flow.route.links:
                incidence[link_index[link.name], j] = True
        caps = np.fromiter((f.cap_at(now) for f in flows), dtype=np.float64, count=n_flows)
        rates = maxmin_allocate(capacities, incidence, caps)
        if sanitizer is not None:
            sanitizer.check_allocation(
                now, capacities, incidence, caps, rates,
                [link.name for link in links],
            )
        for flow, rate in zip(flows, rates):
            flow.rate = float(rate)

        # 4. Find the next moment any rate could change.
        next_time = float("inf")
        for flow in flows:
            if flow.rate > 0.0:
                next_time = min(next_time, now + flow.remaining / flow.rate)
            next_time = min(next_time, flow.next_cap_increase(now))
        for link in links:
            next_time = min(next_time, link.trace.next_change_after(now))

        if math.isinf(next_time):
            raise TransferError(
                f"transfer deadlock at t={now:.3f}: {n_flows} active flow(s) "
                "have zero rate and no future capacity or window changes"
            )
        # Defensive minimum step: a wake-up so close that float addition
        # cannot advance the clock would spin forever at one instant.
        min_step = 1e-9 * max(now, 1.0)
        self._tick_event = self._sim.schedule_at(
            max(next_time, now + min_step), self._tick, name="fluid-tick"
        )

    # ------------------------------------------------------------------ #
    # convenience
    # ------------------------------------------------------------------ #
    def run_to_completion(self, flow: FluidFlow, *, limit: Optional[float] = None) -> FluidFlow:
        """Advance the simulation until ``flow`` finishes; return it.

        Raises :class:`~repro.sim.errors.SimulationDeadlock` if the event
        queue drains first (which indicates an engine bug or an aborted
        flow).
        """
        self._sim.run_until_true(lambda: flow.done, limit=limit)
        return flow
