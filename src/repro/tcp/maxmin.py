"""Max-min fair bandwidth allocation with per-flow rate caps.

Given link capacities, a boolean link-flow incidence matrix and per-flow rate
ceilings (TCP window / slow-start caps), :func:`maxmin_allocate` computes the
classic water-filling allocation:

* **feasible** - no link's capacity is exceeded;
* **cap-respecting** - no flow exceeds its ceiling;
* **max-min fair** - a flow's rate can only be increased by decreasing the
  rate of some flow with an already smaller-or-equal rate.

The implementation is the standard progressive-filling loop, vectorised with
numpy per the HPC guides: each iteration does O(L*F) array work and freezes
at least one flow, so the loop runs at most F times.  Two fast paths cover
the campaign-dominant shapes in O(L*F) total:

* a **single flow** simply receives its bottleneck (sequential probing,
  uncontended bulk transfers);
* **link-disjoint flows** (each link carries at most one flow — the usual
  case for a control transfer running against selector probes on disjoint
  relay paths) each receive ``min(bottleneck, cap)`` directly.

Both fast paths produce the same allocation as the progressive-filling loop;
the property-based suite cross-checks them against the loop and
:func:`verify_maxmin` on random topologies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.obs.core import Observer

__all__ = ["maxmin_allocate", "verify_maxmin"]

#: Relative slack used when comparing rates/capacities.
_EPS = 1e-9


def maxmin_allocate(
    capacities: np.ndarray,
    incidence: np.ndarray,
    caps: Optional[np.ndarray] = None,
    *,
    validate: bool = True,
    fast: bool = True,
    observer: Optional["Observer"] = None,
) -> np.ndarray:
    """Compute max-min fair rates.

    Parameters
    ----------
    capacities:
        Shape ``(L,)`` link capacities (bytes/second), non-negative.
    incidence:
        Shape ``(L, F)`` boolean; ``incidence[l, f]`` is True when flow ``f``
        traverses link ``l``.  Every flow must traverse at least one link.
    caps:
        Optional shape ``(F,)`` per-flow ceilings; ``inf`` means uncapped.
    validate:
        Skip the value-domain checks (negative capacities/caps, flows with
        no links) when False.  The transport engine builds its inputs
        structurally valid and calls with ``validate=False``; validation
        never changes the result for valid inputs, only whether invalid
        ones raise.  Shape mismatches always raise.
    fast:
        Enable the vectorised link-disjoint fast path.  ``fast=False``
        forces the progressive-filling reference loop (used by the
        property-based suite and the ``REPRO_ENGINE_BASELINE`` perf
        yardstick); the single-flow path predates this flag and is always
        on, as in the seed engine.
    observer:
        Optional :class:`repro.obs.core.Observer`; when given, counts which
        solver path ran (``maxmin.single_flow`` / ``maxmin.disjoint_fast`` /
        ``maxmin.progressive`` plus ``maxmin.progressive_rounds``).
        Observation never affects the allocation.

    Returns
    -------
    numpy.ndarray
        Shape ``(F,)`` allocated rates.
    """
    c = np.asarray(capacities, dtype=np.float64)
    a = np.asarray(incidence, dtype=bool)
    if a.ndim != 2:
        raise ValueError(f"incidence must be 2-D, got shape {a.shape}")
    n_links, n_flows = a.shape
    if c.shape != (n_links,):
        raise ValueError(
            f"capacities shape {c.shape} does not match incidence rows {n_links}"
        )
    if validate and np.any(c < 0.0):
        raise ValueError("capacities must be non-negative")
    if n_flows == 0:
        return np.zeros(0)
    if validate and not np.all(a.any(axis=0)):
        raise ValueError("every flow must traverse at least one link")
    if n_flows == 1:
        # Fast path: a lone flow simply gets its bottleneck (profiling shows
        # this is the dominant allocator call during sequential probing and
        # uncontended bulk transfers).
        rate = float(np.min(c[a[:, 0]]))
        if caps is not None:
            cap0 = float(np.asarray(caps, dtype=np.float64).reshape(-1)[0])
            if validate and cap0 < 0.0:
                raise ValueError("caps must be non-negative")
            rate = min(rate, cap0)
        if observer is not None:
            observer.count("maxmin.single_flow")
        return np.array([rate])
    if caps is None:
        caps_arr = np.full(n_flows, np.inf)
    else:
        caps_arr = np.asarray(caps, dtype=np.float64)
        if caps_arr.shape != (n_flows,):
            raise ValueError(f"caps shape {caps_arr.shape} != ({n_flows},)")
        if validate and np.any(caps_arr < 0.0):
            raise ValueError("caps must be non-negative")

    af = None
    if fast and n_links > 0:
        # Disjoint fast path: when no link carries two flows there is no
        # sharing to arbitrate — every flow independently receives
        # min(bottleneck, cap), exactly the loop's fixed point.  This is the
        # dominant campaign shape (control + selector probes on disjoint
        # relay paths) and costs one O(L*F) pass instead of up to F.
        # Pigeonhole pre-reject: more nonzeros than links cannot be
        # disjoint, and the flat count is several times cheaper than the
        # per-link reduction, so shared problems pay almost nothing here.
        if np.count_nonzero(a) <= n_links and int(a.sum(axis=1).max()) <= 1:
            bottleneck = np.where(a, c[:, None], np.inf).min(axis=0)
            if observer is not None:
                observer.count("maxmin.disjoint_fast")
            return np.minimum(bottleneck, caps_arr)
        # Shared problem: the loop below runs several matvecs per round
        # over the incidence matrix, and each converts bool->float64 anew.
        # Converting once roughly halves them.  Every value involved is a
        # small integer, exact in float64 under any summation order, so
        # the allocation stays byte-identical to the fast=False reference.
        af = a.astype(np.float64)

    rates = np.zeros(n_flows)
    frozen = np.zeros(n_flows, dtype=bool)
    remaining = c.copy()

    # Freeze zero-cap flows immediately.
    zero_cap = caps_arr <= 0.0
    frozen[zero_cap] = True

    if observer is not None:
        observer.count("maxmin.progressive")

    shares = np.empty(n_links) if af is not None else None
    while not frozen.all():
        if observer is not None:
            observer.count("maxmin.progressive_rounds")
        active = ~frozen
        actf = active.astype(np.float64)
        counts = (a if af is None else af) @ actf  # unfrozen flows per link
        used = counts > 0.0
        if not used.any():
            break
        # Equal-share water level each congested link could still grant.
        if af is None:
            shares = np.full(n_links, np.inf)
        else:
            shares.fill(np.inf)
        np.divide(remaining, counts, out=shares, where=used)
        link_level = float(shares[used].min())
        cap_level = float(caps_arr[active].min())
        level = min(link_level, cap_level)

        if cap_level <= link_level * (1.0 + _EPS):
            # Some flows hit their private ceiling first: freeze them at
            # cap.  The decrement sums real-valued caps, where summation
            # order does matter — both modes keep the column-subset matvec.
            hit = active & (caps_arr <= level * (1.0 + _EPS))
            rates[hit] = caps_arr[hit]
            remaining -= a[:, hit] @ caps_arr[hit]
        else:
            # Some link saturates: freeze all unfrozen flows crossing it.
            saturated = used & (shares <= level * (1.0 + _EPS))
            if af is None:
                hit = active & (a[saturated, :].any(axis=0))
                rates[hit] = level
                remaining -= (a[:, hit].sum(axis=1)) * level
            else:
                # Integer-valued matvecs replace the boolean fancy
                # indexing (identical exact values, about half the cost).
                hit = active & ((saturated.astype(np.float64) @ af) > 0.0)
                rates[hit] = level
                remaining -= (af @ hit.astype(np.float64)) * level
        frozen[hit] = True
        np.clip(remaining, 0.0, None, out=remaining)

    return rates


def verify_maxmin(
    capacities: np.ndarray,
    incidence: np.ndarray,
    rates: np.ndarray,
    caps: Optional[np.ndarray] = None,
    *,
    rtol: float = 1e-6,
) -> bool:
    """Check feasibility, cap-respect and max-min optimality of ``rates``.

    A rate vector is max-min fair iff every flow is *saturated*: it either
    sits at its cap, or crosses at least one bottleneck link - a link that is
    full and on which this flow has the maximal rate.  Used by tests and the
    property-based suite.
    """
    c = np.asarray(capacities, dtype=np.float64)
    a = np.asarray(incidence, dtype=bool)
    r = np.asarray(rates, dtype=np.float64)
    n_links, n_flows = a.shape
    caps_arr = np.full(n_flows, np.inf) if caps is None else np.asarray(caps, dtype=np.float64)

    if np.any(r < -rtol):
        return False
    load = a @ r
    scale = np.maximum(c, 1.0)
    if np.any(load > c + rtol * scale):
        return False  # infeasible
    if np.any(r > caps_arr * (1.0 + rtol) + rtol):
        return False  # cap violated

    for f in range(n_flows):
        if caps_arr[f] <= r[f] * (1.0 + rtol) + rtol:
            continue  # saturated at its cap
        links_f = np.flatnonzero(a[:, f])
        bottlenecked = False
        for l in links_f:
            full = load[l] >= c[l] - rtol * scale[l]
            if not full:
                continue
            others = a[l, :]
            if r[f] >= np.max(r[others]) - rtol * max(r[f], 1.0):
                bottlenecked = True
                break
        if not bottlenecked:
            return False
    return True
