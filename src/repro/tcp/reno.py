"""Round-based TCP Reno reference model (single bottleneck).

A deliberately small packet-epoch simulator used to *validate* the fluid
engine's idealisations, not to run the paper's experiments.  It models one
TCP Reno connection through a single bottleneck of capacity ``C`` with a
drop-tail buffer:

* slow start doubles ``cwnd`` each round until ``ssthresh`` or loss;
* congestion avoidance adds one MSS per round;
* when the window exceeds ``BDP + buffer`` the round ends in loss:
  ``ssthresh = cwnd / 2`` and the window halves (fast recovery);
* the effective round time stretches with queueing delay
  ``RTT + queue / C``.

The ablation bench A4 compares transfer times from this model against the
fluid engine across file sizes, demonstrating that the fluid slow-start ramp
plus a capacity ceiling reproduces Reno's behaviour to within a small
constant factor - which is all the paper's probe mechanism relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.tcp.model import DEFAULT_INITIAL_WINDOW, MSS
from repro.util.validation import check_non_negative, check_positive

__all__ = ["RenoConfig", "RenoResult", "simulate_reno_transfer"]


@dataclass(frozen=True)
class RenoConfig:
    """Parameters of the single-bottleneck Reno model."""

    capacity: float  # bytes/second
    rtt: float  # seconds (propagation)
    buffer_bytes: float = 64_000.0
    mss: float = MSS
    initial_window: float = DEFAULT_INITIAL_WINDOW
    initial_ssthresh: float = float("inf")

    def __post_init__(self) -> None:
        check_positive(self.capacity, "capacity")
        check_positive(self.rtt, "rtt")
        check_non_negative(self.buffer_bytes, "buffer_bytes")
        check_positive(self.mss, "mss")
        check_positive(self.initial_window, "initial_window")

    @property
    def bdp(self) -> float:
        """Bandwidth-delay product in bytes."""
        return self.capacity * self.rtt


@dataclass(frozen=True)
class RenoResult:
    """Outcome of a Reno transfer simulation."""

    duration: float
    bytes_sent: float
    rounds: int
    losses: int
    cwnd_series: Tuple[float, ...]
    time_series: Tuple[float, ...]

    @property
    def throughput(self) -> float:
        """Average throughput in bytes/second."""
        if self.duration <= 0.0:
            raise ValueError("transfer has non-positive duration")
        return self.bytes_sent / self.duration


def simulate_reno_transfer(
    size: float,
    config: RenoConfig,
    *,
    max_rounds: int = 10_000_000,
) -> RenoResult:
    """Simulate transferring ``size`` bytes; return timing and window trace.

    The loop is per-round (one RTT epoch per iteration): a multi-megabyte
    transfer at megabit rates is a few thousand rounds, so plain Python is
    fast enough and keeps the reference model easy to audit.
    """
    check_positive(size, "size")
    cwnd = config.initial_window
    ssthresh = config.initial_ssthresh
    sent = 0.0
    t = config.rtt  # request round
    rounds = 0
    losses = 0
    limit = config.bdp + config.buffer_bytes
    cwnd_series: List[float] = []
    time_series: List[float] = []

    while sent < size:
        rounds += 1
        if rounds > max_rounds:
            raise RuntimeError("Reno simulation exceeded max_rounds; check parameters")
        cwnd_series.append(cwnd)
        time_series.append(t)

        # The network drains at most capacity*round_time; the window bounds
        # what is in flight.  Queue above BDP adds queueing delay.
        effective_window = min(cwnd, limit)
        queue = max(0.0, effective_window - config.bdp)
        round_time = config.rtt + queue / config.capacity
        deliverable = min(effective_window, config.capacity * round_time)
        payload = min(deliverable, size - sent)
        sent += payload
        # Partial final round: time advances proportionally to data moved.
        t += round_time * (payload / deliverable) if deliverable > 0 else round_time
        if sent >= size:
            break

        if cwnd > limit:
            # Overflow: the round suffered loss.  Standard Reno reaction.
            losses += 1
            ssthresh = max(cwnd / 2.0, 2.0 * config.mss)
            cwnd = ssthresh
        elif cwnd < ssthresh:
            cwnd = min(cwnd * 2.0, ssthresh + config.mss)
        else:
            cwnd += config.mss

    return RenoResult(
        duration=t,
        bytes_sent=sent,
        rounds=rounds,
        losses=losses,
        cwnd_series=tuple(cwnd_series),
        time_series=tuple(time_series),
    )
