"""Measurement records and their storage."""

from repro.trace.records import FailureRecord, TransferRecord
from repro.trace.store import TraceStore

__all__ = ["TransferRecord", "FailureRecord", "TraceStore"]
