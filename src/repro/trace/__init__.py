"""Measurement records and their storage."""

from repro.trace.records import FailureRecord, StripeRecord, TransferRecord
from repro.trace.store import TraceStore

__all__ = ["TransferRecord", "FailureRecord", "StripeRecord", "TraceStore"]
