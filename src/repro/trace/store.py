"""Append-only store of transfer records with columnar export.

The analysis layer consumes measurements as numpy arrays;
:class:`TraceStore` provides filtered views and column extraction so every
figure/table computation is a vectorised pass over the selected rows.
Persistence uses JSON Lines (self-describing, diff-friendly) and CSV.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.trace.records import TransferRecord

__all__ = ["TraceStore"]

PathLike = Union[str, Path]


class TraceStore:
    """An in-memory collection of :class:`TransferRecord` rows."""

    def __init__(self, records: Optional[Iterable[TransferRecord]] = None):
        self._records: List[TransferRecord] = list(records or [])

    # ------------------------------------------------------------------ #
    # collection basics
    # ------------------------------------------------------------------ #
    def append(self, record: TransferRecord) -> None:
        """Add one record."""
        if not isinstance(record, TransferRecord):
            raise TypeError(f"expected TransferRecord, got {type(record)!r}")
        self._records.append(record)

    def extend(self, records: Iterable[TransferRecord]) -> None:
        """Add many records."""
        for r in records:
            self.append(r)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TransferRecord]:
        return iter(self._records)

    def __getitem__(self, idx: int) -> TransferRecord:
        return self._records[idx]

    @property
    def records(self) -> List[TransferRecord]:
        """A shallow copy of the rows."""
        return list(self._records)

    # ------------------------------------------------------------------ #
    # querying
    # ------------------------------------------------------------------ #
    def where(self, predicate: Callable[[TransferRecord], bool]) -> "TraceStore":
        """Rows matching an arbitrary predicate, as a new store."""
        return TraceStore(r for r in self._records if predicate(r))

    def filter(self, **equals) -> "TraceStore":
        """Rows whose attributes equal the given values.

        >>> store.filter(client="Italy", used_indirect=True)  # doctest: +SKIP
        """
        def match(r: TransferRecord) -> bool:
            for key, value in equals.items():
                if getattr(r, key) != value:
                    return False
            return True

        return self.where(match)

    def column(self, name: str) -> np.ndarray:
        """Extract one attribute/property across all rows as an array."""
        values = [getattr(r, name) for r in self._records]
        return np.asarray(values)

    def unique(self, name: str) -> List:
        """Sorted unique values of an attribute (None sorts last)."""
        values = {getattr(r, name) for r in self._records}
        return sorted(values, key=lambda v: (v is None, v))

    def group_by(self, name: str) -> dict:
        """Partition rows by an attribute value -> sub-stores."""
        groups: dict = {}
        for r in self._records:
            groups.setdefault(getattr(r, name), TraceStore()).append(r)
        return groups

    # ------------------------------------------------------------------ #
    # merging
    # ------------------------------------------------------------------ #
    @classmethod
    def merge(cls, stores: Iterable["TraceStore"]) -> "TraceStore":
        """Combine stores into one, ordered by the records' stable sort key.

        Because :attr:`TransferRecord.sort_key` is a total order over a
        campaign's coordinates, merging the same records partitioned any
        way (per-shard outputs, per-client stores, resumed fragments)
        yields an identical sequence - the property the campaign runner's
        shard merge relies on.  Duplicate records are kept; deduplicate
        upstream if shards may overlap.
        """
        records = [r for store in stores for r in store]
        records.sort(key=lambda r: r.sort_key)
        return cls(records)

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save_jsonl(self, path: PathLike, *, append: bool = False) -> None:
        """Write one JSON object per line.

        ``append=True`` adds to an existing file instead of truncating -
        the idiom for accumulating shard outputs into one store file
        (pair with :meth:`merge` / a stable sort for determinism).
        """
        p = Path(path)
        with p.open("a" if append else "w", encoding="utf-8") as fh:
            for r in self._records:
                fh.write(json.dumps(r.to_dict(), sort_keys=True))
                fh.write("\n")

    @classmethod
    def load_jsonl(cls, path: PathLike) -> "TraceStore":
        """Read a store written by :meth:`save_jsonl`."""
        p = Path(path)
        store = cls()
        with p.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    store.append(TransferRecord.from_dict(json.loads(line)))
        return store

    _CSV_FIELDS = (
        "study",
        "client",
        "site",
        "repetition",
        "start_time",
        "set_size",
        "offered",
        "selected_via",
        "direct_throughput",
        "selected_throughput",
        "end_to_end_throughput",
        "probe_overhead",
        "file_bytes",
        "direct_class",
        "direct_variability",
    )

    def save_csv(self, path: PathLike) -> None:
        """Write a flat CSV (offered set is pipe-joined)."""
        p = Path(path)
        with p.open("w", newline="", encoding="utf-8") as fh:
            writer = csv.DictWriter(fh, fieldnames=self._CSV_FIELDS)
            writer.writeheader()
            for r in self._records:
                d = r.to_dict()
                d["offered"] = "|".join(d["offered"])
                d["selected_via"] = d["selected_via"] or ""
                writer.writerow({k: d[k] for k in self._CSV_FIELDS})

    @classmethod
    def load_csv(cls, path: PathLike) -> "TraceStore":
        """Read a store written by :meth:`save_csv`."""
        p = Path(path)
        store = cls()
        with p.open("r", newline="", encoding="utf-8") as fh:
            for row in csv.DictReader(fh):
                store.append(
                    TransferRecord(
                        study=row["study"],
                        client=row["client"],
                        site=row["site"],
                        repetition=int(row["repetition"]),
                        start_time=float(row["start_time"]),
                        set_size=int(row["set_size"]),
                        offered=tuple(x for x in row["offered"].split("|") if x),
                        selected_via=row["selected_via"] or None,
                        direct_throughput=float(row["direct_throughput"]),
                        selected_throughput=float(row["selected_throughput"]),
                        end_to_end_throughput=float(row["end_to_end_throughput"]),
                        probe_overhead=float(row["probe_overhead"]),
                        file_bytes=float(row["file_bytes"]),
                        direct_class=row["direct_class"],
                        direct_variability=row["direct_variability"],
                    )
                )
        return store
