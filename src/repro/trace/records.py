"""Measurement records: one row per paired (control, selecting) transfer.

A :class:`TransferRecord` captures everything the paper's analysis needs
about one experiment repetition: what was offered, what was chosen, and the
throughputs both clients observed.  Records are plain data - the analysis
layer derives improvements, penalties and utilisations from them.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional, Tuple

__all__ = ["TransferRecord"]


@dataclass(frozen=True)
class TransferRecord:
    """One paired measurement.

    Attributes
    ----------
    study:
        Study identifier, e.g. ``"section2"`` or ``"section4"``.
    client / site:
        The endpoints.
    repetition:
        Repetition index within the study schedule.
    start_time:
        Simulation time the pair started (seconds).
    set_size:
        Size of the offered relay set (0 for control-style schedules).
    offered:
        Relay names offered to the selector for this transfer.
    selected_via:
        The winning relay, or ``None`` when the direct path was selected.
    direct_throughput:
        The control client's full-file throughput (bytes/second).
    selected_throughput:
        The selecting client's bulk-phase throughput (bytes/second) - the
        paper's "throughput of the selected path".
    end_to_end_throughput:
        The selecting client's whole-session throughput including the probe
        phase (bytes/second).
    probe_overhead:
        Seconds spent in the probe phase.
    file_bytes:
        Transfer size.
    direct_class / direct_variability:
        The client's ground-truth profile (for Table I filtering).
    """

    study: str
    client: str
    site: str
    repetition: int
    start_time: float
    set_size: int
    offered: Tuple[str, ...]
    selected_via: Optional[str]
    direct_throughput: float
    selected_throughput: float
    end_to_end_throughput: float
    probe_overhead: float
    file_bytes: float
    direct_class: str = ""
    direct_variability: str = ""

    def __post_init__(self) -> None:
        if self.direct_throughput <= 0.0:
            raise ValueError("direct_throughput must be positive")
        if self.selected_throughput <= 0.0:
            raise ValueError("selected_throughput must be positive")
        if self.selected_via is not None and self.selected_via not in self.offered:
            raise ValueError(
                f"selected relay {self.selected_via!r} not in offered set {self.offered}"
            )

    # ------------------------------------------------------------------ #
    @property
    def used_indirect(self) -> bool:
        """True when the indirect path carried the bulk transfer."""
        return self.selected_via is not None

    @property
    def improvement(self) -> float:
        """The paper's improvement ratio: (selected - direct) / direct."""
        return (self.selected_throughput - self.direct_throughput) / self.direct_throughput

    @property
    def improvement_percent(self) -> float:
        """Improvement expressed in percent."""
        return 100.0 * self.improvement

    @property
    def is_penalty(self) -> bool:
        """True when selecting the indirect path lost to the direct path."""
        return self.used_indirect and self.selected_throughput < self.direct_throughput

    @property
    def penalty_percent(self) -> float:
        """Penalty magnitude: the direct path's advantage relative to the
        *selected* path, in percent (see DESIGN.md §5 on why the paper's
        >100% penalties force this definition).  0 when not a penalty."""
        if not self.is_penalty:
            return 0.0
        return 100.0 * (
            (self.direct_throughput - self.selected_throughput) / self.selected_throughput
        )

    @property
    def sort_key(self) -> Tuple:
        """Stable total-order key for merging stores deterministically.

        Orders by campaign coordinates first (study, client, site, set
        size, repetition, schedule slot) and then by the offered set, so
        any partition of a campaign into shards concatenates back to the
        same sequence regardless of shard boundaries or arrival order.
        """
        return (
            self.study,
            self.client,
            self.site,
            self.set_size,
            self.repetition,
            self.start_time,
            self.offered,
        )

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Serialise to plain JSON-compatible types."""
        d = asdict(self)
        d["offered"] = list(self.offered)
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "TransferRecord":
        """Inverse of :meth:`to_dict`."""
        d = dict(d)
        d["offered"] = tuple(d["offered"])
        return cls(**d)
