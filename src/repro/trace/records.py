"""Measurement records: one row per paired (control, selecting) transfer.

A :class:`TransferRecord` captures everything the paper's analysis needs
about one experiment repetition: what was offered, what was chosen, and the
throughputs both clients observed.  Records are plain data - the analysis
layer derives improvements, penalties and utilisations from them.

Studies that need more columns subclass :class:`TransferRecord` and register
under a ``record_type`` tag (see :class:`FailureRecord`): serialised rows of
a subclass carry the tag, while plain rows stay exactly as before, so old
artefacts and checkpoints load unchanged and `TransferRecord.from_dict`
round-trips every registered type from a single entry point.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field
from typing import Any, ClassVar, Dict, Optional, Tuple, Type

from repro.core.resilience import RecoveryEvent

__all__ = [
    "TransferRecord",
    "FailureRecord",
    "StripeRecord",
    "ScaleRecord",
    "ChaosRecord",
]

#: record_type tag -> record class, for :meth:`TransferRecord.from_dict`.
_RECORD_TYPES: Dict[str, Type["TransferRecord"]] = {}


@dataclass(frozen=True)
class TransferRecord:
    """One paired measurement.

    Attributes
    ----------
    study:
        Study identifier, e.g. ``"section2"`` or ``"section4"``.
    client / site:
        The endpoints.
    repetition:
        Repetition index within the study schedule.
    start_time:
        Simulation time the pair started (seconds).
    set_size:
        Size of the offered relay set (0 for control-style schedules).
    offered:
        Relay names offered to the selector for this transfer.
    selected_via:
        The winning relay, or ``None`` when the direct path was selected.
    direct_throughput:
        The control client's full-file throughput (bytes/second).
    selected_throughput:
        The selecting client's bulk-phase throughput (bytes/second) - the
        paper's "throughput of the selected path".
    end_to_end_throughput:
        The selecting client's whole-session throughput including the probe
        phase (bytes/second).
    probe_overhead:
        Seconds spent in the probe phase.
    file_bytes:
        Transfer size.
    direct_class / direct_variability:
        The client's ground-truth profile (for Table I filtering).
    """

    #: Serialisation tag; subclasses override and register below.
    RECORD_TYPE: ClassVar[str] = "transfer"

    study: str
    client: str
    site: str
    repetition: int
    start_time: float
    set_size: int
    offered: Tuple[str, ...]
    selected_via: Optional[str]
    direct_throughput: float
    selected_throughput: float
    end_to_end_throughput: float
    probe_overhead: float
    file_bytes: float
    direct_class: str = ""
    direct_variability: str = ""

    def __post_init__(self) -> None:
        if self.direct_throughput <= 0.0:
            raise ValueError("direct_throughput must be positive")
        if self.selected_throughput <= 0.0:
            raise ValueError("selected_throughput must be positive")
        if self.selected_via is not None and self.selected_via not in self.offered:
            raise ValueError(
                f"selected relay {self.selected_via!r} not in offered set {self.offered}"
            )

    # ------------------------------------------------------------------ #
    @property
    def used_indirect(self) -> bool:
        """True when the indirect path carried the bulk transfer."""
        return self.selected_via is not None

    @property
    def improvement(self) -> float:
        """The paper's improvement ratio: (selected - direct) / direct."""
        return (self.selected_throughput - self.direct_throughput) / self.direct_throughput

    @property
    def improvement_percent(self) -> float:
        """Improvement expressed in percent."""
        return 100.0 * self.improvement

    @property
    def is_penalty(self) -> bool:
        """True when selecting the indirect path lost to the direct path."""
        return self.used_indirect and self.selected_throughput < self.direct_throughput

    @property
    def penalty_percent(self) -> float:
        """Penalty magnitude: the direct path's advantage relative to the
        *selected* path, in percent (see DESIGN.md §5 on why the paper's
        >100% penalties force this definition).  0 when not a penalty."""
        if not self.is_penalty:
            return 0.0
        return 100.0 * (
            (self.direct_throughput - self.selected_throughput) / self.selected_throughput
        )

    @property
    def sort_key(self) -> Tuple:
        """Stable total-order key for merging stores deterministically.

        Orders by campaign coordinates first (study, client, site, set
        size, repetition, schedule slot) and then by the offered set, so
        any partition of a campaign into shards concatenates back to the
        same sequence regardless of shard boundaries or arrival order.
        """
        return (
            self.study,
            self.client,
            self.site,
            self.set_size,
            self.repetition,
            self.start_time,
            self.offered,
        )

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Serialise to plain JSON-compatible types.

        Plain :class:`TransferRecord` rows carry no type tag (their wire
        format predates the registry and must stay byte-identical);
        subclasses are tagged with their ``record_type``.
        """
        d = asdict(self)
        d["offered"] = list(self.offered)
        if type(self) is not TransferRecord:
            d["record_type"] = type(self).RECORD_TYPE
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "TransferRecord":
        """Inverse of :meth:`to_dict` for any registered record type."""
        d = dict(d)
        tag = d.pop("record_type", None)
        if tag is not None and tag != cls.RECORD_TYPE:
            try:
                target = _RECORD_TYPES[tag]
            except KeyError:
                raise ValueError(f"unknown record_type {tag!r}") from None
            return target._decode(d)
        return cls._decode(d)

    @classmethod
    def _decode(cls, d: Dict[str, Any]) -> "TransferRecord":
        """Rebuild from a tag-free field dict; subclasses extend."""
        d["offered"] = tuple(d["offered"])
        return cls(**d)


@dataclass(frozen=True)
class FailureRecord(TransferRecord):
    """One paired measurement from the failure/availability study.

    Extends :class:`TransferRecord` with the resilient protocol's outcome
    data.  Unlike the base record, zero throughputs and durations are legal
    here - an aborted session delivered nothing, and that is precisely the
    signal the availability analysis aggregates.

    Attributes
    ----------
    failure_mode:
        What was injected for this unit: ``"none"``, ``"link"`` (direct WAN
        flap), ``"node"`` (relay crash) or ``"both"``.
    outcome / direct_outcome:
        :class:`~repro.core.resilience.SessionOutcome` values of the
        selector and control sessions (as strings, for the wire format).
    n_failovers / n_reprobes:
        Recovery actions the selector session took.
    bytes_received:
        Payload the selector actually delivered (equals ``file_bytes``
        unless the session aborted).
    direct_duration / selected_duration:
        Wall durations of the control and selector sessions, seconds.
    time_to_recover:
        Seconds from the selector's first stall to the recovery action that
        answered it; NaN when it never stalled or never recovered.
    outage_overlap:
        True when the control session overlapped an injected outage.
    recovery_events:
        The selector session's recovery timeline.
    """

    RECORD_TYPE: ClassVar[str] = "failure"

    failure_mode: str = "none"
    outcome: str = "completed"
    direct_outcome: str = "completed"
    n_failovers: int = 0
    n_reprobes: int = 0
    bytes_received: float = 0.0
    direct_duration: float = 0.0
    selected_duration: float = 0.0
    time_to_recover: float = math.nan
    outage_overlap: bool = False
    recovery_events: Tuple[RecoveryEvent, ...] = ()

    def __post_init__(self) -> None:
        # Deliberately looser than the base class: failure studies produce
        # legitimate zero-throughput (aborted) rows.
        if self.direct_throughput < 0.0:
            raise ValueError("direct_throughput must be >= 0")
        if self.selected_throughput < 0.0:
            raise ValueError("selected_throughput must be >= 0")
        if self.selected_via is not None and self.selected_via not in self.offered:
            raise ValueError(
                f"selected relay {self.selected_via!r} not in offered set {self.offered}"
            )

    @property
    def aborted(self) -> bool:
        """True when the selector session gave up."""
        return self.outcome == "aborted"

    @property
    def recovered(self) -> bool:
        """True when the selector completed only via recovery actions."""
        return self.outcome == "failed_over"

    @property
    def speedup(self) -> float:
        """Control duration / selector duration (>1 = selector faster).

        NaN when either duration is non-positive (degenerate or aborted
        sessions have no meaningful duration ratio) - never raises.
        """
        if self.selected_duration <= 0.0 or self.direct_duration <= 0.0:
            return math.nan
        return self.direct_duration / self.selected_duration

    def to_dict(self) -> Dict[str, Any]:
        d = super().to_dict()
        d["recovery_events"] = [e.to_dict() for e in self.recovery_events]
        return d

    @classmethod
    def _decode(cls, d: Dict[str, Any]) -> "FailureRecord":
        d["offered"] = tuple(d["offered"])
        d["recovery_events"] = tuple(
            RecoveryEvent.from_dict(e) for e in d.get("recovery_events", ())
        )
        return cls(**d)


@dataclass(frozen=True)
class StripeRecord(TransferRecord):
    """One paired measurement from the mHTTP striping study.

    Each row compares one mechanism run (probe-race *select-one* or
    *stripe-k*) against the direct control on the same - possibly
    failure-injected - scenario.  As with :class:`FailureRecord`, zero
    throughputs and durations are legal: an aborted session delivered
    nothing and the analysis wants to see that.

    Attributes
    ----------
    mechanism:
        ``"select"`` (probe race + single winner, the paper's protocol
        with PR 4 resilience) or ``"stripe"`` (mHTTP block striping).
    stripe_k:
        Paths the mechanism used, direct included (select-one probes the
        same k paths the stripe fetches over).
    block_bytes / n_blocks:
        Stripe geometry (0 for select rows).
    wasted_bytes / n_reissues / n_duplicate_blocks:
        Striping overhead: discarded duplicate/partial payload bytes and
        the straggler re-issues that caused them (0 for select rows).
    n_path_failures:
        Stripe paths declared dead mid-session (select rows count their
        failovers here instead, making the column comparable).
    failure_mode:
        Injection for this unit: ``"none"`` or ``"node"`` (primary-relay
        crash timed to hit the transfer - the PR 4 failure model).
    outcome / direct_outcome:
        :class:`~repro.core.resilience.SessionOutcome` strings of the
        mechanism and control sessions.
    bytes_received:
        Payload the mechanism session delivered.
    direct_duration / selected_duration:
        Wall durations of the control and mechanism sessions, seconds.
    outage_overlap:
        True when the mechanism session overlapped an injected outage.
    bytes_by_path:
        Committed payload per path label (``("direct", ...)`` first for
        stripe rows; empty for select rows) - the load-balance picture.
    recovery_events:
        The mechanism session's recovery timeline (``path_dead`` /
        ``reissue`` for stripes; failover events for select rows).
    """

    RECORD_TYPE: ClassVar[str] = "stripe"

    mechanism: str = "stripe"
    stripe_k: int = 0
    block_bytes: float = 0.0
    n_blocks: int = 0
    wasted_bytes: float = 0.0
    n_reissues: int = 0
    n_duplicate_blocks: int = 0
    n_path_failures: int = 0
    failure_mode: str = "none"
    outcome: str = "completed"
    direct_outcome: str = "completed"
    bytes_received: float = 0.0
    direct_duration: float = 0.0
    selected_duration: float = 0.0
    outage_overlap: bool = False
    bytes_by_path: Tuple[Tuple[str, float], ...] = ()
    recovery_events: Tuple[RecoveryEvent, ...] = ()

    def __post_init__(self) -> None:
        # Loosened like FailureRecord: aborted rows carry legitimate zeros.
        if self.mechanism not in ("select", "stripe"):
            raise ValueError(
                f"mechanism must be 'select' or 'stripe', got {self.mechanism!r}"
            )
        if self.direct_throughput < 0.0:
            raise ValueError("direct_throughput must be >= 0")
        if self.selected_throughput < 0.0:
            raise ValueError("selected_throughput must be >= 0")
        if self.wasted_bytes < 0.0:
            raise ValueError("wasted_bytes must be >= 0")
        if self.selected_via is not None and self.selected_via not in self.offered:
            raise ValueError(
                f"selected relay {self.selected_via!r} not in offered set {self.offered}"
            )

    @property
    def aborted(self) -> bool:
        """True when the mechanism session gave up."""
        return self.outcome == "aborted"

    @property
    def degraded(self) -> bool:
        """True when a striped session lost a path but still delivered."""
        return self.outcome == "degraded"

    @property
    def delivered_fraction(self) -> float:
        """Payload delivered relative to the object size (1.0 when whole)."""
        if self.file_bytes <= 0.0:
            return 0.0
        return min(self.bytes_received, self.file_bytes) / self.file_bytes

    @property
    def wasted_fraction(self) -> float:
        """Duplicate/discarded bytes relative to the object size."""
        if self.file_bytes <= 0.0:
            return 0.0
        return self.wasted_bytes / self.file_bytes

    @property
    def speedup(self) -> float:
        """Control duration / mechanism duration (>1 = mechanism faster).

        NaN when either duration is non-positive - never raises.
        """
        if self.selected_duration <= 0.0 or self.direct_duration <= 0.0:
            return math.nan
        return self.direct_duration / self.selected_duration

    @property
    def sort_key(self) -> Tuple:
        """Extends the base total order with the mechanism coordinates.

        A select-k and a stripe-k row from the same repetition slot share
        every base coordinate (client, site, set size, repetition, slot,
        offered), so without this the shard merge would not be a total
        order and ``--jobs`` byte-identity would depend on shard layout.
        """
        return (*super().sort_key, self.mechanism, self.stripe_k)

    def to_dict(self) -> Dict[str, Any]:
        d = super().to_dict()
        d["bytes_by_path"] = [[label, got] for label, got in self.bytes_by_path]
        d["recovery_events"] = [e.to_dict() for e in self.recovery_events]
        return d

    @classmethod
    def _decode(cls, d: Dict[str, Any]) -> "StripeRecord":
        d["offered"] = tuple(d["offered"])
        d["bytes_by_path"] = tuple(
            (str(label), float(got)) for label, got in d.get("bytes_by_path", ())
        )
        d["recovery_events"] = tuple(
            RecoveryEvent.from_dict(e) for e in d.get("recovery_events", ())
        )
        return cls(**d)


@dataclass(frozen=True)
class ChaosRecord(TransferRecord):
    """One measurement cell of the chaos resilience study.

    Each row compares one mechanism arm (``select``, ``failover`` or
    ``stripe``) against the direct control on the same fault-injected
    scenario.  As with :class:`FailureRecord`, zero throughputs and
    durations are legal - an aborted session delivered nothing, and the
    resilience analysis wants exactly that signal.

    Attributes
    ----------
    mechanism:
        ``"select"`` (probe race, no mid-transfer recovery),
        ``"failover"`` (probe race + the PR 4 resilient protocol) or
        ``"stripe"`` (mHTTP block striping over the same path set).
    fault_family / intensity:
        The injected fault coordinate: a family from
        :data:`~repro.chaos.faults.FAULT_FAMILIES` at ``"mild"`` or
        ``"severe"`` intensity (``"none"`` rows are the in-cell baseline).
    stripe_k:
        Paths the mechanism had available, direct included.
    outcome / direct_outcome:
        :class:`~repro.core.resilience.SessionOutcome` strings of the
        mechanism and control sessions.
    n_failovers / n_path_failures:
        Recovery actions: failover switches for select/failover rows,
        stripe paths declared dead for stripe rows (both columns kept so
        the analysis can tell them apart).
    bytes_received:
        Payload the mechanism session delivered.
    direct_duration / selected_duration:
        Wall durations of the control and mechanism sessions, seconds.
    time_to_recover:
        Seconds from the first stall (or dead stripe path) to the recovery
        action that answered it; NaN when nothing stalled or nothing
        recovered.
    fault_downtime:
        Seconds of the mechanism session's lifetime during which some link
        in the unit's fault plan was degraded or dark.
    fault_overlap:
        True when the mechanism session overlapped a fault window.
    recovery_events:
        The mechanism session's recovery timeline.
    """

    RECORD_TYPE: ClassVar[str] = "chaos"

    #: Mechanism arms a chaos row may carry.
    MECHANISMS: ClassVar[Tuple[str, ...]] = ("select", "failover", "stripe")

    mechanism: str = "select"
    fault_family: str = "none"
    intensity: str = "mild"
    stripe_k: int = 0
    outcome: str = "completed"
    direct_outcome: str = "completed"
    n_failovers: int = 0
    n_path_failures: int = 0
    bytes_received: float = 0.0
    direct_duration: float = 0.0
    selected_duration: float = 0.0
    time_to_recover: float = math.nan
    fault_downtime: float = 0.0
    fault_overlap: bool = False
    recovery_events: Tuple[RecoveryEvent, ...] = ()

    def __post_init__(self) -> None:
        # Loosened like FailureRecord: aborted rows carry legitimate zeros.
        if self.mechanism not in self.MECHANISMS:
            raise ValueError(
                f"mechanism must be one of {self.MECHANISMS}, got {self.mechanism!r}"
            )
        if self.direct_throughput < 0.0:
            raise ValueError("direct_throughput must be >= 0")
        if self.selected_throughput < 0.0:
            raise ValueError("selected_throughput must be >= 0")
        if self.fault_downtime < 0.0:
            raise ValueError("fault_downtime must be >= 0")
        if self.selected_via is not None and self.selected_via not in self.offered:
            raise ValueError(
                f"selected relay {self.selected_via!r} not in offered set {self.offered}"
            )

    @property
    def aborted(self) -> bool:
        """True when the mechanism session gave up."""
        return self.outcome == "aborted"

    @property
    def delivered_fraction(self) -> float:
        """Payload delivered relative to the object size (1.0 when whole)."""
        if self.file_bytes <= 0.0:
            return 0.0
        return min(self.bytes_received, self.file_bytes) / self.file_bytes

    @property
    def available(self) -> bool:
        """The availability bit: the mechanism delivered the whole object."""
        return not self.aborted and self.delivered_fraction >= 1.0

    @property
    def speedup(self) -> float:
        """Control duration / mechanism duration (>1 = mechanism faster).

        NaN when either duration is non-positive - never raises.
        """
        if self.selected_duration <= 0.0 or self.direct_duration <= 0.0:
            return math.nan
        return self.direct_duration / self.selected_duration

    @property
    def sort_key(self) -> Tuple:
        """Extends the base total order with the chaos-grid coordinates.

        All mechanism arms of one (family, intensity) cell - and all cells
        of one repetition slot - share every base coordinate, so the grid
        coordinates must participate for the shard merge to stay a total
        order (the ``--jobs`` byte-identity requirement).
        """
        return (*super().sort_key, self.mechanism, self.fault_family, self.intensity)

    def to_dict(self) -> Dict[str, Any]:
        d = super().to_dict()
        d["recovery_events"] = [e.to_dict() for e in self.recovery_events]
        return d

    @classmethod
    def _decode(cls, d: Dict[str, Any]) -> "ChaosRecord":
        d["offered"] = tuple(d["offered"])
        d["recovery_events"] = tuple(
            RecoveryEvent.from_dict(e) for e in d.get("recovery_events", ())
        )
        return cls(**d)


@dataclass(frozen=True)
class ScaleRecord(TransferRecord):
    """One wave of the population-scale study: aggregate, not a pair.

    A scale wave simulates its whole client population concurrently on one
    shared topology, so the record carries population aggregates instead of
    a single paired measurement.  The base columns are reinterpreted:
    ``client`` is the wave label, ``direct_throughput`` /
    ``selected_throughput`` are the mean per-client throughputs of the
    direct-winner and relay-winner cohorts (legitimately 0 when a cohort is
    empty), ``end_to_end_throughput`` is aggregate bytes over the wave
    makespan, and ``probe_overhead`` is the mean per-client probe-race
    duration.

    Percentiles are exact (computed from the full per-client result arrays
    with ``numpy.quantile``), so records are byte-identical for any worker
    count; wall-clock rates live in obs, never here.

    Attributes
    ----------
    n_clients / n_completed:
        Population size and how many clients finished their transfer
        (a wave raises if these ever differ, so they agree on disk).
    n_direct / n_indirect:
        Probe-race outcomes: clients whose direct path won vs. clients a
        relay path won.
    makespan:
        Simulation seconds from wave start to the last completion.
    mean_throughput:
        Mean per-client end-to-end throughput (bytes/second).
    throughput_p10 / p50 / p90 / p99:
        Per-client throughput percentiles (bytes/second).
    latency_p50 / p90 / p99 / latency_max:
        Per-client request-to-completion latency percentiles (seconds).
    """

    RECORD_TYPE: ClassVar[str] = "scale"

    n_clients: int = 0
    n_completed: int = 0
    n_direct: int = 0
    n_indirect: int = 0
    makespan: float = 0.0
    mean_throughput: float = 0.0
    throughput_p10: float = 0.0
    throughput_p50: float = 0.0
    throughput_p90: float = 0.0
    throughput_p99: float = 0.0
    latency_p50: float = 0.0
    latency_p90: float = 0.0
    latency_p99: float = 0.0
    latency_max: float = 0.0

    def __post_init__(self) -> None:
        # Aggregates, not a pair: cohort means are legitimately zero when a
        # cohort is empty, so only sanity-check signs and counts.
        if self.direct_throughput < 0.0 or self.selected_throughput < 0.0:
            raise ValueError("cohort throughputs must be >= 0")
        if self.n_clients < 0 or self.n_completed < 0:
            raise ValueError("population counts must be >= 0")
        if self.n_direct + self.n_indirect > self.n_clients:
            raise ValueError("cohort counts exceed the population")

    @property
    def indirect_fraction(self) -> float:
        """Share of the population a relay path won (0 when empty)."""
        if self.n_clients == 0:
            return 0.0
        return self.n_indirect / self.n_clients

    @property
    def sim_transfers_per_sec(self) -> float:
        """Completed transfers per *simulated* second (0 for empty waves)."""
        if self.makespan <= 0.0:
            return 0.0
        return self.n_completed / self.makespan

    @property
    def sort_key(self) -> Tuple:
        """Extends the base total order with the population size.

        Wave labels are unique per plan, but two plans merged into one
        store could reuse a label at different scales; the population
        size disambiguates.
        """
        return (*super().sort_key, self.n_clients)


_RECORD_TYPES[TransferRecord.RECORD_TYPE] = TransferRecord
_RECORD_TYPES[FailureRecord.RECORD_TYPE] = FailureRecord
_RECORD_TYPES[StripeRecord.RECORD_TYPE] = StripeRecord
_RECORD_TYPES[ChaosRecord.RECORD_TYPE] = ChaosRecord
_RECORD_TYPES[ScaleRecord.RECORD_TYPE] = ScaleRecord
