"""Campaign executor: run a plan's work units on N processes, deterministically.

The executor is a classic parent/worker pool specialised for simulation
campaigns:

* **Spawn-safe workers.**  Workers are started with the ``spawn`` context
  and rebuild their execution context (the immutable
  :class:`~repro.workloads.scenario.Scenario`) from the plan's
  ``(scenario_spec, seed)`` - nothing live crosses the process boundary, so
  the pool behaves identically on fork- and spawn-default platforms.
* **Bounded queues.**  Each worker owns a short task queue
  (:data:`QUEUE_DEPTH`); the parent keeps them topped up and tracks the
  in-flight units per worker, which is what makes per-unit timeouts and
  crash recovery precise.
* **Retry with structured failure.**  A unit that fails (exception in the
  worker, worker crash, or timeout) is retried up to ``max_retries`` times;
  exhaustion raises :class:`UnitExecutionError` carrying a
  :class:`UnitFailure` (unit id, attempts, last traceback) after the
  checkpoint has been flushed.
* **Graceful SIGINT drain.**  Ctrl-C stops dispatch, collects any finished
  results, flushes the checkpoint and summary, then re-raises
  ``KeyboardInterrupt`` - an interrupted campaign resumes with ``--resume``.
* **Deterministic output.**  Results are keyed by plan index and merged in
  plan order (:func:`repro.runner.checkpoint.merge_completed`), so the final
  store is byte-identical to the serial path for every ``jobs`` value.
  Duplicate executions (a timed-out unit that finished anyway) are harmless:
  units are pure functions of the plan, and completion is idempotent.

``jobs=1`` never touches ``multiprocessing``: the same planner/checkpoint/
retry machinery runs inline, which is both the migration path for the old
serial API and the fast path for small campaigns.
"""

from __future__ import annotations

import multiprocessing as mp
import multiprocessing.connection as mp_connection
import queue as queue_mod
import signal
import time
import traceback
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Deque, Dict, List, Optional, Set, TextIO, Tuple

from repro.core.session import SessionConfig
from repro.obs.core import Observer, global_observer, shard_directory_from_env
from repro.runner.checkpoint import CheckpointStore, merge_completed
from repro.runner.plan import CampaignPlan, WorkUnit
from repro.runner.progress import ProgressReporter, RunSummary
from repro.trace.records import TransferRecord
from repro.trace.store import TraceStore
from repro.workloads.scenario import Scenario

__all__ = [
    "DEFAULT_CHECKPOINT_EVERY",
    "DEFAULT_MAX_RETRIES",
    "ExecutionResult",
    "RunnerError",
    "UnitExecutionError",
    "UnitFailure",
    "execute_plan",
    "run_unit",
]

#: Units buffered per worker so result/dispatch latency overlaps compute.
QUEUE_DEPTH = 4
#: Seconds the parent blocks on the result queue before re-checking workers.
_POLL_INTERVAL = 0.1
#: Flush the checkpoint after this many newly completed units by default.
DEFAULT_CHECKPOINT_EVERY = 25
#: Failed attempts tolerated per unit before the campaign aborts.
DEFAULT_MAX_RETRIES = 2

RunUnitFn = Callable[[Scenario, SessionConfig, WorkUnit], TransferRecord]


class RunnerError(RuntimeError):
    """The execution machinery itself failed (e.g. workers cannot boot)."""


@dataclass(frozen=True)
class UnitFailure:
    """Structured description of a unit whose retries were exhausted."""

    unit_index: int
    unit_id: str
    attempts: int
    error: str

    def __str__(self) -> str:
        return (
            f"unit {self.unit_index} (id {self.unit_id}) failed "
            f"{self.attempts} attempt(s); last error:\n{self.error}"
        )


class UnitExecutionError(RuntimeError):
    """A work unit kept failing after every allowed retry."""

    def __init__(self, failure: UnitFailure):
        super().__init__(str(failure))
        self.failure = failure


@dataclass
class ExecutionResult:
    """Outcome of :func:`execute_plan`.

    ``store`` is the merged campaign store; it is ``None`` only for
    deliberately partial runs (``max_units``), where the checkpoint holds
    the completed prefix.
    """

    store: Optional[TraceStore]
    summary: RunSummary


def run_unit(
    scenario: Scenario,
    config: SessionConfig,
    unit: WorkUnit,
    extra: Optional[Any] = None,
) -> TransferRecord:
    """Execute one work unit (the default unit runner, used by workers).

    Units carrying a ``runner`` name dispatch to that study's execution
    function; units carrying only a ``variant`` belong to the failure
    study.  Both receive the plan's ``extra`` parameters.  Plain units run
    the classic paired transfer.
    """
    if unit.runner is not None:
        if unit.runner == "mhttp":
            from repro.workloads.mhttp import run_mhttp_unit

            return run_mhttp_unit(scenario, config, unit, extra)
        if unit.runner == "scale":
            from repro.workloads.scale import run_scale_unit

            return run_scale_unit(scenario, config, unit, extra)
        if unit.runner == "chaos":
            from repro.workloads.chaos import run_chaos_unit

            return run_chaos_unit(scenario, config, unit, extra)
        raise ValueError(f"unknown unit runner {unit.runner!r}")
    if unit.variant is not None:
        from repro.workloads.failures import run_failure_unit

        return run_failure_unit(scenario, config, unit, extra)
    from repro.workloads.experiment import run_paired_transfer

    record = run_paired_transfer(
        scenario,
        study=unit.study,
        client=unit.client,
        site=unit.site,
        repetition=unit.repetition,
        start_time=unit.start_time,
        offered=list(unit.offered),
        config=config,
    )
    if unit.set_size_label is not None:
        record = replace(record, set_size=unit.set_size_label)
    return record


# --------------------------------------------------------------------------- #
# worker process
# --------------------------------------------------------------------------- #
def _worker_main(
    worker_id: int,
    spec: Any,
    seed: int,
    config: SessionConfig,
    extra: Any,
    task_q: Any,
    result_conn: Any,
) -> None:
    """Worker loop: build the scenario once, then execute units until sentinel.

    SIGINT is ignored so Ctrl-C is handled solely by the parent's drain
    logic; the parent terminates workers explicitly.  Results travel over a
    pipe owned by this worker alone: a crash mid-``send`` can tear at most
    this worker's own stream, never a sibling's (the parent discards the
    pipe when it reaps the process).
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # When the parent enabled observability (REPRO_OBS travels through the
    # spawn environment), label this worker's records with its own track so
    # merged traces keep one timeline per worker.
    obs = global_observer()
    if obs is not None:
        # Same name the parent uses for this worker's unit spans, so the
        # worker's engine spans land on the same Chrome-trace track.
        obs.track = f"worker-{worker_id}"
    def send(message: Tuple[str, int, int, Any]) -> bool:
        try:
            result_conn.send(message)
        except (BrokenPipeError, OSError):
            return False  # parent is gone; nothing left to report to
        return True

    try:
        scenario = Scenario.build(spec, seed=seed)
    except BaseException:
        send(("boot", worker_id, -1, traceback.format_exc()))
        return
    while True:
        unit = task_q.get()
        if unit is None:
            _dump_obs_shard(worker_id)
            return
        try:
            record = run_unit(scenario, config, unit, extra)
        except BaseException:
            alive = send(("err", worker_id, unit.index, traceback.format_exc()))
        else:
            alive = send(("ok", worker_id, unit.index, record))
        if not alive:
            return


def _dump_obs_shard(worker_id: int) -> None:
    """Write this worker's trace shard for the parent to merge.

    Only runs on the orderly (sentinel) shutdown path: a worker killed by a
    timeout or crash loses its shard, which is a documented limitation -
    study artefacts never depend on traces, and the shard loader tolerates
    a torn final line.
    """
    shard_dir = shard_directory_from_env()
    if shard_dir is None:
        return
    obs = global_observer(create=False)
    if obs is None or not obs.has_data:
        return
    from repro.obs.export import ObsTrace

    import os

    path = os.path.join(shard_dir, f"worker-{worker_id:03d}.obs.jsonl")
    try:
        ObsTrace.from_observer(obs).save_jsonl(path)
    except OSError:
        pass  # telemetry is best-effort; never fail the campaign over it


@dataclass
class _WorkerHandle:
    """Parent-side bookkeeping for one worker process."""

    worker_id: int
    process: Any
    task_q: Any
    result_conn: Any
    inflight: Deque[WorkUnit] = field(default_factory=deque)
    head_since: float = 0.0

    @property
    def name(self) -> str:
        return f"worker-{self.worker_id}"


# --------------------------------------------------------------------------- #
# executor state
# --------------------------------------------------------------------------- #
class _Execution:
    """Shared completion/retry/checkpoint bookkeeping for one invocation."""

    def __init__(
        self,
        plan: CampaignPlan,
        *,
        reporter: ProgressReporter,
        ckpt: Optional[CheckpointStore],
        checkpoint_every: int,
        max_retries: int,
        clock: Callable[[], float],
        done: Dict[int, Tuple[str, TransferRecord]],
        observer: Optional[Observer] = None,
    ):
        self.plan = plan
        self.reporter = reporter
        self.ckpt = ckpt
        self.checkpoint_every = max(1, checkpoint_every)
        self.max_retries = max(0, max_retries)
        self.clock = clock
        self.done = done
        self.executed = 0
        self.failed_attempts: Dict[int, int] = {}
        self.retried_units: Set[int] = set()
        self._since_flush = 0
        #: Trace sink for per-unit spans (None = observability off).  Span
        #: times are executor-clock seconds relative to this origin, so a
        #: campaign trace always starts at t=0.
        self.obs = observer
        self.origin = clock()

    def unit_span(
        self, unit: WorkUnit, started_at: float, ended_at: float, track: str, ok: bool
    ) -> None:
        """Record one execution attempt as a span on the worker's track."""
        if self.obs is not None:
            self.obs.span(
                "unit",
                unit.unit_id,
                started_at - self.origin,
                ended_at - self.origin,
                track=track,
                index=unit.index,
                ok=ok,
            )

    def complete(self, unit: WorkUnit, record: TransferRecord, worker: str) -> None:
        """Record a finished unit; idempotent for duplicate completions."""
        if unit.index in self.done:
            return
        self.done[unit.index] = (unit.unit_id, record)
        self.executed += 1
        if self.ckpt is not None:
            self.ckpt.append(unit.index, unit.unit_id, record)
            self._since_flush += 1
            if self._since_flush >= self.checkpoint_every:
                self.ckpt.flush()
                self._since_flush = 0
        self.reporter.unit_finished(worker)

    def register_failure(self, unit: WorkUnit, error: str, worker: str) -> None:
        """Record a failed attempt; raise when the unit's retries are spent."""
        count = self.failed_attempts.get(unit.index, 0) + 1
        self.failed_attempts[unit.index] = count
        retrying = count <= self.max_retries
        self.reporter.attempt_failed(worker, unit_index=unit.index, retrying=retrying)
        if self.obs is not None and retrying:
            self.obs.count("runner.retries")
        if not retrying:
            raise UnitExecutionError(
                UnitFailure(
                    unit_index=unit.index,
                    unit_id=unit.unit_id,
                    attempts=count,
                    error=error,
                )
            )
        self.retried_units.add(unit.index)

    @property
    def total_failed_attempts(self) -> int:
        return sum(self.failed_attempts.values())


# --------------------------------------------------------------------------- #
# inline backend
# --------------------------------------------------------------------------- #
def _run_inline(
    state: _Execution,
    pending: List[WorkUnit],
    scenario: Optional[Scenario],
    run_unit_fn: RunUnitFn,
) -> None:
    """Execute units in-process (``jobs=1``), sharing the retry machinery."""
    if scenario is None:
        scenario = Scenario.build(state.plan.scenario_spec, seed=state.plan.seed)
    for unit in pending:
        while True:
            attempt_started = state.clock()
            try:
                record = run_unit_fn(scenario, state.plan.config, unit)
            except KeyboardInterrupt:
                raise
            except Exception:
                state.unit_span(unit, attempt_started, state.clock(), "inline", False)
                state.register_failure(unit, traceback.format_exc(), "inline")
                continue
            state.unit_span(unit, attempt_started, state.clock(), "inline", True)
            state.complete(unit, record, "inline")
            break


# --------------------------------------------------------------------------- #
# multiprocessing backend
# --------------------------------------------------------------------------- #
def _spawn_worker(ctx: Any, worker_id: int, plan: CampaignPlan) -> _WorkerHandle:
    task_q = ctx.Queue(maxsize=QUEUE_DEPTH)
    # One result pipe per worker.  A shared result queue would let a worker
    # that dies mid-``send`` (chaos SIGKILL, OOM) leave a truncated pickle
    # frame in the common stream and wedge every survivor; with a private
    # pipe the damage is confined to a channel the parent throws away.
    recv_conn, send_conn = ctx.Pipe(duplex=False)
    process = ctx.Process(
        target=_worker_main,
        args=(
            worker_id,
            plan.scenario_spec,
            plan.seed,
            plan.config,
            plan.extra,
            task_q,
            send_conn,
        ),
        daemon=True,
        name=f"repro-runner-{worker_id}",
    )
    process.start()
    # Drop the parent's copy of the write end: once the worker dies, reads
    # hit EOF instead of blocking forever on a half-written frame.
    send_conn.close()
    return _WorkerHandle(
        worker_id=worker_id, process=process, task_q=task_q, result_conn=recv_conn
    )


def _retire_worker(handle: _WorkerHandle) -> None:
    handle.task_q.cancel_join_thread()
    handle.task_q.close()
    try:
        handle.result_conn.close()
    except OSError:  # pragma: no cover - close is best-effort
        pass


def _drain_conn(handle: _WorkerHandle, deliver: Callable[[Any], None]) -> None:
    """Deliver every complete message already buffered on a worker's pipe.

    Safe on dead workers: the parent holds no write end, so a torn frame
    (killed mid-``send``) raises ``EOFError``/``OSError`` instead of
    blocking, and we simply stop there.
    """
    while True:
        try:
            if not handle.result_conn.poll(0):
                return
            message = handle.result_conn.recv()
        except (EOFError, OSError):
            return
        deliver(message)


def _shutdown_workers(workers: Dict[int, _WorkerHandle]) -> None:
    """Best-effort orderly stop: sentinel, short join, then terminate."""
    for handle in workers.values():
        try:
            handle.task_q.put_nowait(None)
        except (queue_mod.Full, ValueError, OSError):
            pass
    for handle in workers.values():
        handle.process.join(timeout=1.0)
        if handle.process.is_alive():
            handle.process.terminate()
            handle.process.join(timeout=1.0)
        _retire_worker(handle)


def _run_parallel(
    state: _Execution,
    pending: List[WorkUnit],
    *,
    jobs: int,
    unit_timeout: Optional[float],
    runner_faults: Optional[Any] = None,
) -> None:
    """Dispatch units to a spawn pool, handling crashes, timeouts, retries.

    ``runner_faults`` (a :class:`~repro.chaos.runner.RunnerFaultPlan`)
    SIGKILLs a worker at each of its completion counts - chaos for the
    executor itself.  The kill lands between completions, so the dead
    worker's in-flight units ride the ordinary crash path (head charged,
    rest requeued, respawn) and the artefact stays byte-identical.
    """
    injector = runner_faults.injector() if runner_faults is not None else None
    ctx = mp.get_context("spawn")
    todo: Deque[WorkUnit] = deque(pending)
    target = len(pending)
    next_worker_id = 0
    workers: Dict[int, _WorkerHandle] = {}
    #: Dispatch time per unit index, for the queue-wait histogram.
    enqueued_at: Dict[int, float] = {}

    def spawn_one() -> None:
        nonlocal next_worker_id
        handle = _spawn_worker(ctx, next_worker_id, state.plan)
        handle.head_since = state.clock()
        workers[handle.worker_id] = handle
        next_worker_id += 1

    def requeue_inflight(handle: _WorkerHandle, *, error: str) -> None:
        """A worker died or was killed: charge the head unit, requeue the rest."""
        inflight = list(handle.inflight)
        handle.inflight.clear()
        if not inflight:
            return
        head, rest = inflight[0], inflight[1:]
        # Queued-but-unstarted units never ran; they go back without penalty.
        for unit in reversed(rest):
            todo.appendleft(unit)
        state.register_failure(head, error, handle.name)
        todo.appendleft(head)

    def _deliver(message: Any) -> None:
        kind, worker_id, index, payload = message
        handle = workers.get(worker_id)
        if kind == "boot":
            # Scenario construction is deterministic: if one worker
            # cannot build it, every respawn would fail the same way.
            raise RunnerError(
                f"worker-{worker_id} failed to build its scenario:\n"
                f"{payload}"
            )
        if handle is None:  # pragma: no cover - defensive
            # Result drained from a worker we already reaped.  Completion
            # is idempotent, so credit successes and drop errors.
            if kind == "ok":
                state.complete(state.plan.units[index], payload, "stale")
        elif kind == "ok" or kind == "err":
            unit = handle.inflight.popleft()
            if unit.index != index:  # pragma: no cover - invariant
                raise RunnerError(
                    f"{handle.name} returned unit {index} but "
                    f"{unit.index} was at the head of its queue"
                )
            started_at = handle.head_since  # when the unit became head
            handle.head_since = state.clock()
            if state.obs is not None:
                dispatched = enqueued_at.pop(unit.index, started_at)
                state.obs.observe_value(
                    "runner.queue_wait_seconds",
                    max(0.0, started_at - dispatched),
                )
                state.unit_span(
                    unit, started_at, handle.head_since,
                    handle.name, kind == "ok",
                )
            if kind == "ok":
                state.complete(unit, payload, handle.name)
            else:
                state.register_failure(unit, payload, handle.name)
                todo.appendleft(unit)

    for _ in range(max(1, min(jobs, len(pending)))):
        spawn_one()

    try:
        while state.executed < target:
            # Top up every live worker's bounded queue.
            for handle in workers.values():
                while (
                    todo
                    and handle.process.is_alive()
                    and len(handle.inflight) < QUEUE_DEPTH
                ):
                    unit = todo.popleft()
                    try:
                        handle.task_q.put_nowait(unit)
                    except queue_mod.Full:
                        todo.appendleft(unit)
                        break
                    enqueued_at[unit.index] = state.clock()
                    if not handle.inflight:
                        handle.head_since = state.clock()
                    handle.inflight.append(unit)

            ready = mp_connection.wait(
                [h.result_conn for h in workers.values()],
                timeout=_POLL_INTERVAL,
            )
            for conn in ready:
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    # Worker died, possibly mid-send; whatever completed
                    # before the torn frame was already delivered.  The
                    # liveness sweep below requeues its in-flight units.
                    continue
                _deliver(message)

            if injector is not None and workers:
                victim = injector.victim(state.executed, sorted(workers))
                if victim is not None:
                    # SIGKILL, not terminate: a chaos kill models a hard
                    # crash (OOM, power loss), so the victim gets no chance
                    # to flush anything.  The sweep below treats it exactly
                    # like any other dead worker.
                    workers[victim].process.kill()

            now = state.clock()
            for worker_id in list(workers):
                handle = workers[worker_id]
                dead = not handle.process.is_alive()
                timed_out = (
                    unit_timeout is not None
                    and bool(handle.inflight)
                    and now - handle.head_since > unit_timeout
                )
                if not dead and not timed_out:
                    continue
                if not dead:
                    handle.process.terminate()
                cause = (
                    f"unit exceeded the {unit_timeout}s timeout on {handle.name}"
                    if timed_out and not dead
                    else f"{handle.name} exited with code "
                    f"{handle.process.exitcode} mid-campaign"
                )
                handle.process.join(timeout=2.0)
                # Credit any results the worker finished sending before it
                # died (or was timed out) - they must not be re-charged as
                # failures.  A frame torn by the kill just ends the drain.
                _drain_conn(handle, _deliver)
                del workers[worker_id]
                _retire_worker(handle)
                requeue_inflight(handle, error=cause)
                if state.executed < target:
                    spawn_one()

            if state.executed < target and not workers:  # pragma: no cover
                raise RunnerError(
                    "no live workers remain but the campaign is incomplete"
                )
    except KeyboardInterrupt:
        # Graceful drain: credit anything that already finished, then stop.
        for handle in list(workers.values()):
            _drain_conn(handle, _deliver)
        raise
    finally:
        _shutdown_workers(workers)


# --------------------------------------------------------------------------- #
# public entry point
# --------------------------------------------------------------------------- #
def execute_plan(
    plan: CampaignPlan,
    *,
    jobs: int = 1,
    scenario: Optional[Scenario] = None,
    checkpoint: Optional[Any] = None,
    resume: bool = False,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    progress: bool = False,
    progress_stream: Optional[TextIO] = None,
    unit_timeout: Optional[float] = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    max_units: Optional[int] = None,
    run_unit_fn: Optional[RunUnitFn] = None,
    runner_faults: Optional[Any] = None,
    clock: Callable[[], float] = time.monotonic,
) -> ExecutionResult:
    """Execute a campaign plan and return the merged store plus a summary.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) runs inline in this process
        through the identical planner/checkpoint/retry path.
    scenario:
        Pre-built scenario to reuse on the inline path (workers always
        rebuild from the plan).  Must match the plan's spec and seed.
    checkpoint / resume / checkpoint_every:
        Shard-store directory, resume switch, and flush granularity; see
        :mod:`repro.runner.checkpoint`.
    progress / progress_stream:
        Stderr telemetry (off by default; the summary is always produced).
    unit_timeout:
        Seconds a single unit may run on a worker before that worker is
        killed and the unit retried (parallel path only).
    max_retries:
        Failed attempts tolerated per unit before
        :class:`UnitExecutionError` aborts the campaign.
    max_units:
        Execute at most this many *new* units, then stop with a flushed
        checkpoint (``store=None`` in the result).  Useful for smoke tests
        and budgeted runs; resuming later completes the campaign.
    run_unit_fn:
        Test hook replacing :func:`run_unit` on the inline path.
    runner_faults:
        Optional :class:`~repro.chaos.runner.RunnerFaultPlan` killing
        workers at deterministic completion counts (parallel path only;
        there is no worker to murder inline).  Artefacts never depend on
        it - that is the property the kill/resume fuzz asserts.
    clock:
        Monotonic clock used for telemetry and timeouts only; measurement
        results never depend on it.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if run_unit_fn is not None and jobs > 1:
        raise ValueError("run_unit_fn is an inline-only test hook; use jobs=1")
    if runner_faults is not None and jobs == 1:
        raise ValueError("runner_faults needs worker processes; use jobs > 1")
    if scenario is not None and (
        scenario.spec != plan.scenario_spec
        or scenario.bank.root_seed != plan.seed
    ):
        raise ValueError("provided scenario does not match the plan's spec/seed")

    ckpt: Optional[CheckpointStore] = None
    done: Dict[int, Tuple[str, TransferRecord]] = {}
    if checkpoint is not None:
        ckpt = CheckpointStore.open_or_create(checkpoint, plan, resume=resume)
        done = ckpt.completed_units()
        for index, (unit_id, _record) in sorted(done.items()):
            if index >= len(plan) or plan.units[index].unit_id != unit_id:
                raise RunnerError(
                    f"checkpoint unit {index} does not belong to this plan "
                    "despite a matching fingerprint; checkpoint is corrupt"
                )
    skipped = len(done)

    pending = [u for u in plan.units if u.index not in done]
    if max_units is not None:
        pending = pending[: max(0, max_units)]

    # The process-global observer (None unless REPRO_OBS / --obs enabled it):
    # the reporter accounts into it and the executor adds per-unit spans.
    obs = global_observer()
    reporter = ProgressReporter(
        total=len(plan),
        skipped=skipped,
        clock=clock,
        stream=progress_stream,
        enabled=progress,
        label=plan.study,
        observer=obs,
    )
    state = _Execution(
        plan,
        reporter=reporter,
        ckpt=ckpt,
        checkpoint_every=checkpoint_every,
        max_retries=max_retries,
        clock=clock,
        done=done,
        observer=obs,
    )

    started = clock()
    interrupted = False
    try:
        reporter.start()
        if pending:
            if jobs == 1:

                def _default_fn(
                    s: Scenario, c: SessionConfig, u: WorkUnit
                ) -> TransferRecord:
                    return run_unit(s, c, u, plan.extra)

                _run_inline(state, pending, scenario, run_unit_fn or _default_fn)
            else:
                _run_parallel(
                    state,
                    pending,
                    jobs=jobs,
                    unit_timeout=unit_timeout,
                    runner_faults=runner_faults,
                )
    except KeyboardInterrupt:
        interrupted = True
        raise
    finally:
        reporter.finish()
        summary = RunSummary(
            study=plan.study,
            fingerprint=ckpt.fingerprint if ckpt is not None else plan.fingerprint(),
            total_units=len(plan),
            skipped_units=skipped,
            executed_units=state.executed,
            failed_attempts=state.total_failed_attempts,
            retried_units=len(state.retried_units),
            jobs=jobs,
            wall_seconds=clock() - started,
            interrupted=interrupted,
            worker_failures=dict(reporter.worker_failures),
        )
        if ckpt is not None:
            ckpt.write_summary(summary.to_dict())
            ckpt.close()

    store: Optional[TraceStore] = None
    if len(done) == len(plan):
        store = merge_completed(plan, done)
    return ExecutionResult(store=store, summary=summary)
