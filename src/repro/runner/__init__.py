"""Campaign-execution subsystem: plan, execute, checkpoint, merge.

The paper's campaigns are thousands of *independent* paired measurements,
so they parallelise perfectly - provided nothing about the results depends
on execution order.  This package makes that guarantee structural:

:mod:`repro.runner.plan`
    Decompose a study into an ordered stream of self-describing
    :class:`~repro.runner.plan.WorkUnit` s with a campaign fingerprint.
:mod:`repro.runner.pool`
    Execute a plan inline (``jobs=1``) or on N spawn-safe worker processes,
    with bounded queues, per-unit timeout, bounded retry and a graceful
    SIGINT drain.
:mod:`repro.runner.checkpoint`
    Incremental shard JSONL stores plus an atomic fingerprinted manifest;
    ``resume`` skips completed units and refuses drifted campaigns.
:mod:`repro.runner.progress`
    stderr progress telemetry and the machine-readable run summary.

Typical use goes through the study drivers
(:meth:`~repro.workloads.experiment.Section2Study.run` and friends accept
``jobs=...``), or directly::

    plan = plan_section2(scenario, repetitions=30, interval=360.0,
                         config=STUDY_SESSION_CONFIG)
    result = execute_plan(plan, jobs=4, checkpoint="ckpt/", progress=True)
    result.store.save_jsonl("s2.jsonl")
"""

from repro.runner.checkpoint import (
    CheckpointError,
    CheckpointExistsError,
    CheckpointMismatchError,
    CheckpointStore,
    merge_completed,
    read_manifest,
)
from repro.runner.plan import (
    CampaignPlan,
    WorkUnit,
    plan_section2,
    plan_section4_policy,
    plan_section4_sweep,
    policy_is_stateless,
    section2_relay_rotation,
)
from repro.runner.pool import (
    DEFAULT_CHECKPOINT_EVERY,
    DEFAULT_MAX_RETRIES,
    ExecutionResult,
    RunnerError,
    UnitExecutionError,
    UnitFailure,
    execute_plan,
    run_unit,
)
from repro.runner.progress import ProgressReporter, RunSummary

__all__ = [
    "CampaignPlan",
    "CheckpointError",
    "CheckpointExistsError",
    "CheckpointMismatchError",
    "CheckpointStore",
    "DEFAULT_CHECKPOINT_EVERY",
    "DEFAULT_MAX_RETRIES",
    "ExecutionResult",
    "ProgressReporter",
    "RunnerError",
    "RunSummary",
    "UnitExecutionError",
    "UnitFailure",
    "WorkUnit",
    "execute_plan",
    "merge_completed",
    "plan_section2",
    "plan_section4_policy",
    "plan_section4_sweep",
    "policy_is_stateless",
    "read_manifest",
    "run_unit",
    "section2_relay_rotation",
]
