"""Campaign planning: decompose a study into a deterministic work-unit stream.

The executor (:mod:`repro.runner.pool`) parallelises campaigns by treating
them as a flat sequence of independent :class:`WorkUnit`\\ s.  Determinism
rests on three properties established here, *before* any worker starts:

1. **Total order.**  Units are enumerated in exactly the order the legacy
   serial loops visited them (clients outer, sites inner for §2; set sizes
   outer for the §4 sweep) and carry their position as :attr:`WorkUnit.index`.
   The merged store is sorted by that index, so the output is byte-identical
   for any worker count, dispatch order, or shard layout.
2. **Pre-drawn randomness.**  Everything random about a unit - the §2 relay
   rotation, the §4 candidate sets - is drawn at planning time from the
   scenario's :class:`~repro.util.rng.SeedBank`, consuming the exact label
   paths and stream positions the serial code used.  Workers receive fully
   materialised units and derive any remaining noise from stable
   ``noise_labels`` (see :func:`repro.workloads.experiment.run_paired_transfer`),
   never from execution order.
3. **Fingerprint.**  :meth:`CampaignPlan.fingerprint` hashes the scenario
   spec, root seed, session config and every unit id.  Checkpoints record it
   and refuse to resume a campaign whose plan has drifted.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Sequence, Tuple

from repro.core.policy import SelectionPolicy
from repro.core.resilience import ResilienceConfig
from repro.core.session import SessionConfig
from repro.workloads.scenario import Scenario, ScenarioSpec

__all__ = [
    "WorkUnit",
    "CampaignPlan",
    "plan_section2",
    "plan_section4_policy",
    "plan_section4_sweep",
    "policy_is_stateless",
    "section2_relay_rotation",
]


def _canonical(obj: Any) -> str:
    """Stable JSON rendering used by unit ids and fingerprints."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), default=_json_default)


def _json_default(obj: Any) -> Any:
    if isinstance(obj, enum.Enum):
        return obj.value
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return dataclasses.asdict(obj)
    raise TypeError(f"cannot canonicalise {type(obj)!r} for hashing")


def _config_payload(config: SessionConfig) -> dict:
    """Fingerprint rendering of the session config.

    A default (legacy-equivalent) resilience block is omitted so that
    campaigns planned before the resilience layer existed keep their
    fingerprints - the default config is behaviourally byte-identical, and
    stamping it into the hash would orphan every existing checkpoint for
    no reason.  Any non-default resilience setting *is* hashed.
    """
    d = dataclasses.asdict(config)
    if d.get("resilience") == dataclasses.asdict(ResilienceConfig()):
        del d["resilience"]
    return d


@dataclass(frozen=True)
class WorkUnit:
    """One atomic paired measurement, fully determined at planning time.

    ``index`` is the unit's position in the serial execution order and the
    merge sort key; everything else is the argument list of
    :func:`~repro.workloads.experiment.run_paired_transfer` plus the optional
    recorded-set-size override used by policy runs.
    """

    index: int
    study: str
    client: str
    site: str
    repetition: int
    start_time: float
    offered: Tuple[str, ...]
    set_size_label: Optional[int] = None
    #: Study-specific discriminator (e.g. the failure study's injection
    #: mode); ``None`` for the classic §2/§4 campaigns.
    variant: Optional[str] = None
    #: Unit-runner selector for studies with their own execution function
    #: (e.g. ``"mhttp"`` for the striping study); ``None`` routes through
    #: the legacy paired-transfer / failure-study dispatch.
    runner: Optional[str] = None

    @property
    def unit_id(self) -> str:
        """Content hash of the unit (independent of its plan position)."""
        payload_dict = {
            "study": self.study,
            "client": self.client,
            "site": self.site,
            "repetition": self.repetition,
            "start_time": repr(self.start_time),
            "offered": list(self.offered),
            "set_size_label": self.set_size_label,
        }
        # Variant-free (and runner-free) units hash exactly as they did
        # before those fields existed, keeping historical checkpoints
        # resumable.
        if self.variant is not None:
            payload_dict["variant"] = self.variant
        if self.runner is not None:
            payload_dict["runner"] = self.runner
        payload = _canonical(payload_dict)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    @property
    def sort_key(self) -> int:
        """The plan's total order (identical to the serial execution order)."""
        return self.index


@dataclass(frozen=True)
class CampaignPlan:
    """A study decomposed into an ordered tuple of work units.

    The plan carries everything a worker process needs to rebuild its
    execution context from scratch (scenario spec + root seed + session
    config), which is what makes the pool spawn-safe: nothing live is
    pickled, workers reconstruct the same immutable scenario the parent
    planned against.
    """

    study: str
    scenario_spec: ScenarioSpec
    seed: int
    config: SessionConfig
    units: Tuple[WorkUnit, ...]
    #: Study-specific plan-level parameters (a dataclass), shipped to every
    #: worker and hashed into the fingerprint; ``None`` for §2/§4 plans.
    extra: Optional[Any] = None

    def __post_init__(self) -> None:
        for pos, unit in enumerate(self.units):
            if unit.index != pos:
                raise ValueError(
                    f"unit at position {pos} carries index {unit.index}; "
                    "plan indices must be the serial execution order"
                )

    def __len__(self) -> int:
        return len(self.units)

    def fingerprint(self) -> str:
        """Hash identifying the campaign: spec + seed + config + unit ids.

        Any drift in the scenario (catalogues, calibration constants,
        horizon), the root seed, the client mechanism config, or the unit
        stream (repetitions, sites, offered sets, ordering) changes the
        fingerprint, which is exactly the condition under which resuming a
        checkpoint would silently mix incompatible measurements.
        """
        payload_dict = {
            "version": 1,
            "study": self.study,
            "seed": self.seed,
            "scenario": dataclasses.asdict(self.scenario_spec),
            "config": _config_payload(self.config),
            "units": [u.unit_id for u in self.units],
        }
        # Extra-free plans hash exactly as version 1 always did.
        if self.extra is not None:
            payload_dict["extra"] = dataclasses.asdict(self.extra)
        payload = _canonical(payload_dict)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------------- #
# planners
# --------------------------------------------------------------------------- #
def section2_relay_rotation(scenario: Scenario, client: str) -> List[str]:
    """The seeded per-client order in which relays take the indirect path.

    This is the single source of truth for the §2 rotation; the study's
    legacy method delegates here so planner and serial path cannot diverge.
    """
    relays = list(scenario.relay_names)
    rng = scenario.bank.generator("rotation", client)
    rng.shuffle(relays)
    return relays


def plan_section2(
    scenario: Scenario,
    *,
    repetitions: int,
    interval: float,
    config: SessionConfig,
    sites: Optional[Sequence[str]] = None,
    clients: Optional[Sequence[str]] = None,
    study: str = "section2",
) -> CampaignPlan:
    """Decompose the §2-3 campaign (rotating single relay) into work units."""
    site_list = list(sites) if sites is not None else scenario.site_names
    client_list = list(clients) if clients is not None else scenario.client_names
    units: List[WorkUnit] = []
    for client in client_list:
        rotation = section2_relay_rotation(scenario, client)
        for site in site_list:
            for j in range(repetitions):
                units.append(
                    WorkUnit(
                        index=len(units),
                        study=study,
                        client=client,
                        site=site,
                        repetition=j,
                        start_time=j * interval,
                        offered=(rotation[j % len(rotation)],),
                    )
                )
    return CampaignPlan(
        study=study,
        scenario_spec=scenario.spec,
        seed=scenario.bank.root_seed,
        config=config,
        units=tuple(units),
    )


def policy_is_stateless(policy: SelectionPolicy) -> bool:
    """True when the policy ignores per-transfer feedback.

    A policy that overrides :meth:`SelectionPolicy.observe` adapts its
    candidate sets to earlier selection outcomes, so its campaign is a
    sequential chain and cannot be decomposed into independent units.
    Stateless policies (the paper's §2-4 configurations) draw candidates
    from the seeded stream alone, so the planner can replay the draws.
    """
    return type(policy).observe is SelectionPolicy.observe


def plan_section4_policy(
    scenario: Scenario,
    policy: SelectionPolicy,
    *,
    repetitions: int,
    interval: float,
    config: SessionConfig,
    study: str = "section4",
    site: str = "eBay",
    clients: Optional[Sequence[str]] = None,
    set_size_label: Optional[int] = None,
) -> CampaignPlan:
    """Decompose one stateless-policy run into work units.

    Candidate sets are pre-drawn here with the same generator labels and
    draw order the serial :meth:`Section4Study.run_policy` loop uses
    (one stream per client, one ``candidates`` call per repetition), so a
    planned campaign offers byte-identical sets.
    """
    if not policy_is_stateless(policy):
        raise ValueError(
            f"policy {policy.name!r} adapts to feedback (overrides observe); "
            "its campaign is sequential and cannot be planned as independent "
            "units - run it with jobs=1 via Section4Study.run_policy"
        )
    client_list = list(clients) if clients is not None else scenario.client_names
    full_set = scenario.relay_names
    units: List[WorkUnit] = []
    for client in client_list:
        rng = scenario.bank.generator("policy", study, policy.name, client)
        for j in range(repetitions):
            start = j * interval
            offered = policy.candidates(client, site, full_set, rng, now=start)
            units.append(
                WorkUnit(
                    index=len(units),
                    study=study,
                    client=client,
                    site=site,
                    repetition=j,
                    start_time=start,
                    offered=tuple(offered),
                    set_size_label=set_size_label,
                )
            )
    return CampaignPlan(
        study=study,
        scenario_spec=scenario.spec,
        seed=scenario.bank.root_seed,
        config=config,
        units=tuple(units),
    )


def plan_section4_sweep(
    scenario: Scenario,
    k_values: Iterable[int],
    *,
    repetitions: int,
    interval: float,
    config: SessionConfig,
    site: str = "eBay",
    clients: Optional[Sequence[str]] = None,
) -> CampaignPlan:
    """Decompose the paper's Fig. 6 random-set sweep into one flat plan.

    The sweep is the concatenation of one :class:`UniformRandomSetPolicy`
    campaign per ``k``, in the caller's ``k`` order - exactly the serial
    :meth:`Section4Study.run_random_set_sweep` ordering.
    """
    from repro.core.random_set import UniformRandomSetPolicy

    units: List[WorkUnit] = []
    for k in k_values:
        sub = plan_section4_policy(
            scenario,
            UniformRandomSetPolicy(k),
            repetitions=repetitions,
            interval=interval,
            config=config,
            study="section4",
            site=site,
            clients=clients,
        )
        base = len(units)
        units.extend(
            dataclasses.replace(u, index=base + u.index) for u in sub.units
        )
    return CampaignPlan(
        study="section4",
        scenario_spec=scenario.spec,
        seed=scenario.bank.root_seed,
        config=config,
        units=tuple(units),
    )
