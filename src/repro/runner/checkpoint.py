"""Incremental shard checkpoints with a fingerprinted, atomically-written manifest.

Layout of a checkpoint directory::

    <dir>/
        manifest.json          # campaign fingerprint + plan shape (atomic)
        summary.json           # machine-readable run summary (atomic, on finish)
        shards/shard-0000.jsonl
        shards/shard-0001.jsonl
        ...

Each shard line is one completed work unit::

    {"unit": <plan index>, "id": "<unit id>", "record": {...TransferRecord...}}

Shard assignment is a pure function of the plan (contiguous index blocks),
so it is identical for every worker count; workers never write shards -
the parent process appends results as they arrive, which keeps writes
single-writer and makes a half-written final line (from a kill) the only
corruption *this code* can produce.  :meth:`CheckpointStore.completed_units`
tolerates exactly that: a torn *final* line per shard is dropped and the
unit re-executes.  Corruption anywhere else (disk fault, truncation, an
editor mangling a shard) cannot come from a crash, so the damaged shard is
*quarantined* rather than trusted or fatal: the file is renamed aside, a
structured :class:`ShardQuarantine` records what happened, and every unit
the shard held re-executes into a fresh shard file - resume survives, and
nothing half-readable leaks into the merge.

Resume protocol: the manifest records :meth:`CampaignPlan.fingerprint`.
Opening an existing checkpoint requires ``resume=True`` (refusing to
silently clobber prior work) *and* a fingerprint match (refusing to mix
measurements from drifted campaigns).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, IO, List, Optional, Tuple, Union

from repro.runner.plan import CampaignPlan
from repro.trace.records import TransferRecord
from repro.trace.store import TraceStore

__all__ = [
    "CheckpointError",
    "CheckpointExistsError",
    "CheckpointMismatchError",
    "CheckpointStore",
    "DEFAULT_NUM_SHARDS",
    "MANIFEST_NAME",
    "SUMMARY_NAME",
    "ShardQuarantine",
]

MANIFEST_NAME = "manifest.json"
SUMMARY_NAME = "summary.json"
SHARD_DIR = "shards"
MANIFEST_FORMAT = 1

#: Default shard count.  Fixed by the plan (not the worker count) so the
#: on-disk layout is identical however a campaign is executed.
DEFAULT_NUM_SHARDS = 8

PathLike = Union[str, Path]


class CheckpointError(RuntimeError):
    """A checkpoint directory is unusable (corrupt, wrong format, ...)."""


@dataclass(frozen=True)
class ShardQuarantine:
    """Structured record of one corrupted shard set aside during resume.

    Attributes
    ----------
    shard:
        Original path of the damaged shard file.
    line:
        1-based number of the first unreadable line.
    reason:
        The decode error that made the line unreadable.
    quarantined_to:
        Where the damaged file was moved (same directory, ``.quarantined``
        suffix) for post-mortem inspection.
    """

    shard: str
    line: int
    reason: str
    quarantined_to: str

    def __str__(self) -> str:
        return (
            f"checkpoint shard {self.shard} is corrupt at line {self.line} "
            f"({self.reason}); moved to {self.quarantined_to} and its units "
            "will re-execute"
        )


class CheckpointExistsError(CheckpointError):
    """The directory already holds a campaign and ``resume`` was not given."""


class CheckpointMismatchError(CheckpointError):
    """The on-disk campaign fingerprint does not match the plan's."""


def _atomic_write_json(path: Path, payload: Dict[str, Any]) -> None:
    """Write JSON via a temp file + rename so readers never see a torn file."""
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True, indent=2)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


class CheckpointStore:
    """Single-writer shard store for one campaign's completed units.

    Use :meth:`open_or_create`; the constructor trusts its arguments.
    """

    def __init__(
        self,
        directory: Path,
        *,
        fingerprint: str,
        total_units: int,
        num_shards: int,
    ):
        self.directory = directory
        self.fingerprint = fingerprint
        self.total_units = total_units
        self.num_shards = num_shards
        self._handles: Dict[int, IO[str]] = {}
        self._dirty: Dict[int, bool] = {}
        self._appended = 0
        #: Corrupted shards set aside by the last :meth:`completed_units`.
        self.quarantines: List[ShardQuarantine] = []

    # ------------------------------------------------------------------ #
    # opening
    # ------------------------------------------------------------------ #
    @classmethod
    def open_or_create(
        cls,
        directory: PathLike,
        plan: CampaignPlan,
        *,
        resume: bool = False,
        num_shards: int = DEFAULT_NUM_SHARDS,
    ) -> "CheckpointStore":
        """Open ``directory`` for the given plan, creating it when fresh.

        A fresh (or manifest-less) directory is initialised regardless of
        ``resume``.  An existing campaign requires ``resume=True`` or raises
        :class:`CheckpointExistsError`; a fingerprint mismatch always raises
        :class:`CheckpointMismatchError`.
        """
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        root = Path(directory)
        manifest_path = root / MANIFEST_NAME
        fingerprint = plan.fingerprint()
        if manifest_path.exists():
            try:
                manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
            except (OSError, ValueError) as exc:
                raise CheckpointError(
                    f"unreadable checkpoint manifest {manifest_path}: {exc}"
                ) from exc
            if manifest.get("format") != MANIFEST_FORMAT:
                raise CheckpointError(
                    f"unsupported checkpoint format {manifest.get('format')!r} "
                    f"in {manifest_path} (expected {MANIFEST_FORMAT})"
                )
            if not resume:
                raise CheckpointExistsError(
                    f"{root} already holds a campaign checkpoint "
                    f"({manifest.get('completed', 'unknown')} units recorded); "
                    "pass resume=True (--resume) to continue it, or remove the "
                    "directory to start over"
                )
            if manifest.get("fingerprint") != fingerprint:
                raise CheckpointMismatchError(
                    f"checkpoint at {root} was written for campaign fingerprint "
                    f"{manifest.get('fingerprint')!r} but the current plan has "
                    f"{fingerprint!r}; the scenario, seed, config or unit "
                    "stream changed - refusing to mix measurements"
                )
            return cls(
                root,
                fingerprint=fingerprint,
                total_units=int(manifest["total_units"]),
                num_shards=int(manifest["num_shards"]),
            )

        (root / SHARD_DIR).mkdir(parents=True, exist_ok=True)
        store = cls(
            root,
            fingerprint=fingerprint,
            total_units=len(plan),
            num_shards=min(num_shards, max(len(plan), 1)),
        )
        _atomic_write_json(
            manifest_path,
            {
                "format": MANIFEST_FORMAT,
                "fingerprint": fingerprint,
                "study": plan.study,
                "seed": plan.seed,
                "total_units": store.total_units,
                "num_shards": store.num_shards,
            },
        )
        return store

    # ------------------------------------------------------------------ #
    # shard mapping
    # ------------------------------------------------------------------ #
    def shard_of(self, index: int) -> int:
        """Deterministic contiguous-block shard assignment for a plan index."""
        if not 0 <= index < self.total_units:
            raise IndexError(f"unit index {index} outside plan of {self.total_units}")
        return index * self.num_shards // self.total_units

    def shard_path(self, shard: int) -> Path:
        return self.directory / SHARD_DIR / f"shard-{shard:04d}.jsonl"

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def append(self, index: int, unit_id: str, record: TransferRecord) -> None:
        """Append one completed unit to its shard (buffered; see :meth:`flush`)."""
        shard = self.shard_of(index)
        handle = self._handles.get(shard)
        if handle is None:
            handle = self.shard_path(shard).open("a", encoding="utf-8")
            self._handles[shard] = handle
        handle.write(
            json.dumps(
                {"unit": index, "id": unit_id, "record": record.to_dict()},
                sort_keys=True,
            )
        )
        handle.write("\n")
        self._dirty[shard] = True
        self._appended += 1

    @property
    def appended(self) -> int:
        """Units appended through this handle (excludes pre-existing ones)."""
        return self._appended

    def flush(self) -> None:
        """Flush and fsync every dirty shard handle."""
        for shard, dirty in list(self._dirty.items()):
            if dirty:
                handle = self._handles[shard]
                handle.flush()
                os.fsync(handle.fileno())
                self._dirty[shard] = False

    def close(self) -> None:
        self.flush()
        for handle in self._handles.values():
            handle.close()
        self._handles.clear()
        self._dirty.clear()

    def __enter__(self) -> "CheckpointStore":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def completed_units(self) -> Dict[int, Tuple[str, TransferRecord]]:
        """Read back every durably recorded unit: index -> (unit id, record).

        A torn final line (the signature of a mid-write kill) is dropped
        per shard.  Malformed content anywhere *else* cannot come from a
        crash of this single-writer store, so the whole shard is
        quarantined: moved aside, recorded in :attr:`quarantines`, and
        every entry it held discarded - the renamed file no longer backs
        those rows, so trusting the readable prefix would hand the merge
        records with no durable home.  The dropped units simply
        re-execute.  Duplicate indices keep the first occurrence, matching
        the executor's skip-completed semantics.
        """
        done: Dict[int, Tuple[str, TransferRecord]] = {}
        self.quarantines = []
        shard_dir = self.directory / SHARD_DIR
        if not shard_dir.is_dir():
            return done
        for path in sorted(shard_dir.glob("shard-*.jsonl")):
            entries: List[Tuple[int, str, TransferRecord]] = []
            damage: Optional[Tuple[int, str]] = None
            lines = path.read_text(encoding="utf-8").split("\n")
            for lineno, line in enumerate(lines):
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    index = int(entry["unit"])
                    unit_id = str(entry["id"])
                    record = TransferRecord.from_dict(entry["record"])
                except (KeyError, TypeError, ValueError) as exc:
                    if lineno == len(lines) - 1 or (
                        lineno == len(lines) - 2 and not lines[-1].strip()
                    ):
                        # Torn trailing write from a killed run; the unit
                        # will simply be re-executed.
                        break
                    damage = (lineno + 1, str(exc))
                    break
                entries.append((index, unit_id, record))
            if damage is not None:
                target = self._quarantine_shard(path)
                self.quarantines.append(
                    ShardQuarantine(
                        shard=str(path),
                        line=damage[0],
                        reason=damage[1],
                        quarantined_to=str(target),
                    )
                )
                continue
            for index, unit_id, record in entries:
                done.setdefault(index, (unit_id, record))
        return done

    def _quarantine_shard(self, path: Path) -> Path:
        """Move a damaged shard aside (never clobbering a prior quarantine)."""
        target = path.with_name(path.name + ".quarantined")
        n = 1
        while target.exists():
            target = path.with_name(f"{path.name}.quarantined.{n}")
            n += 1
        os.replace(path, target)
        return target

    def merge(self, plan: CampaignPlan) -> TraceStore:
        """Merge all shards into one store ordered by the plan's sort key.

        Every plan unit must be present and carry the expected unit id.
        """
        done = self.completed_units()
        return merge_completed(plan, done)

    # ------------------------------------------------------------------ #
    # summary
    # ------------------------------------------------------------------ #
    def write_summary(self, summary: Dict[str, Any]) -> None:
        """Persist the machine-readable run summary atomically."""
        _atomic_write_json(self.directory / SUMMARY_NAME, summary)


def merge_completed(
    plan: CampaignPlan,
    done: Dict[int, Tuple[str, TransferRecord]],
) -> TraceStore:
    """Assemble the final store from completed units, in plan order.

    This is the runner's deterministic merge: output depends only on the
    plan, never on completion order, worker count or shard layout.
    """
    store = TraceStore()
    missing = []
    for unit in plan.units:
        entry = done.get(unit.index)
        if entry is None:
            missing.append(unit.index)
            continue
        unit_id, record = entry
        if unit_id != unit.unit_id:
            raise CheckpointError(
                f"unit {unit.index} was recorded with id {unit_id!r} but the "
                f"plan expects {unit.unit_id!r}; the checkpoint belongs to a "
                "different campaign"
            )
        store.append(record)
    if missing:
        head = ", ".join(str(i) for i in missing[:8])
        raise CheckpointError(
            f"cannot merge: {len(missing)} of {len(plan)} units missing "
            f"(first: {head})"
        )
    return store


def read_manifest(directory: PathLike) -> Optional[Dict[str, Any]]:
    """Return the parsed manifest of a checkpoint directory, or None."""
    path = Path(directory) / MANIFEST_NAME
    if not path.exists():
        return None
    return json.loads(path.read_text(encoding="utf-8"))
