"""Campaign progress telemetry: stderr reporting + machine-readable summary.

The reporter lives entirely at the execution edge: it observes unit
completions and renders ``done/total | rate | eta`` lines, but nothing it
measures can flow back into the measurements (workers never see it, and the
merge order is fixed by the plan).  The clock is injected so tests can drive
it deterministically; the real executor passes ``time.monotonic``.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, TextIO

__all__ = ["ProgressReporter", "RunSummary"]

#: Seconds between stderr updates on a tty; non-tty streams (CI logs) are
#: additionally throttled to 10-percent steps so logs stay readable.
_TTY_INTERVAL = 0.5
_PERCENT_STEP = 10


@dataclass
class RunSummary:
    """Machine-readable outcome of one executor invocation."""

    study: str
    fingerprint: str
    total_units: int
    skipped_units: int
    executed_units: int
    failed_attempts: int
    retried_units: int
    jobs: int
    wall_seconds: float
    interrupted: bool = False
    worker_failures: Dict[str, int] = field(default_factory=dict)

    @property
    def completed_units(self) -> int:
        return self.skipped_units + self.executed_units

    @property
    def units_per_second(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.executed_units / self.wall_seconds

    def to_dict(self) -> Dict[str, Any]:
        return {
            "study": self.study,
            "fingerprint": self.fingerprint,
            "total_units": self.total_units,
            "completed_units": self.completed_units,
            "skipped_units": self.skipped_units,
            "executed_units": self.executed_units,
            "failed_attempts": self.failed_attempts,
            "retried_units": self.retried_units,
            "jobs": self.jobs,
            "wall_seconds": self.wall_seconds,
            "units_per_second": self.units_per_second,
            "interrupted": self.interrupted,
            "worker_failures": dict(self.worker_failures),
        }


class ProgressReporter:
    """Renders campaign progress to a stream (stderr by default).

    Parameters
    ----------
    total:
        Units in the plan.
    skipped:
        Units already satisfied by a resumed checkpoint.
    clock:
        Monotonic-seconds callable; injected for testability.
    stream:
        Defaults to ``sys.stderr``.
    enabled:
        When False every call is a no-op (the executor still builds the
        :class:`RunSummary`).
    """

    def __init__(
        self,
        total: int,
        *,
        skipped: int = 0,
        clock: Callable[[], float],
        stream: Optional[TextIO] = None,
        enabled: bool = True,
        label: str = "campaign",
    ):
        self.total = total
        self.skipped = skipped
        self.done = skipped
        self.failed_attempts = 0
        self.worker_failures: Dict[str, int] = {}
        self._clock = clock
        self._stream = stream if stream is not None else sys.stderr
        self._enabled = enabled
        self._label = label
        self._started_at = clock()
        self._last_emit = float("-inf")
        self._last_percent = -1
        self._tty = bool(getattr(self._stream, "isatty", lambda: False)())

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        if self.skipped:
            self._write(
                f"[{self._label}] resuming: {self.skipped}/{self.total} units "
                "already checkpointed\n"
            )
        self._emit(force=True)

    def unit_finished(self, worker: str) -> None:
        """One unit completed successfully on ``worker``."""
        self.done += 1
        self._emit(force=self.done >= self.total)

    def attempt_failed(self, worker: str, *, unit_index: int, retrying: bool) -> None:
        """One execution attempt failed (the unit may be retried)."""
        self.failed_attempts += 1
        self.worker_failures[worker] = self.worker_failures.get(worker, 0) + 1
        verb = "retrying" if retrying else "giving up"
        self._write(
            f"[{self._label}] unit {unit_index} failed on {worker} "
            f"({self.worker_failures[worker]} failure(s) there); {verb}\n"
        )

    def note(self, message: str) -> None:
        self._write(f"[{self._label}] {message}\n")

    def finish(self) -> None:
        self._emit(force=True)
        if self._tty and self._enabled:
            self._stream.write("\n")
            self._stream.flush()

    # ------------------------------------------------------------------ #
    def _emit(self, *, force: bool = False) -> None:
        if not self._enabled:
            return
        now = self._clock()
        percent = int(100 * self.done / self.total) if self.total else 100
        if not force:
            if self._tty:
                if now - self._last_emit < _TTY_INTERVAL:
                    return
            elif percent < self._last_percent + _PERCENT_STEP:
                return
        self._last_emit = now
        self._last_percent = percent
        elapsed = max(now - self._started_at, 1e-9)
        executed = self.done - self.skipped
        rate = executed / elapsed
        remaining = self.total - self.done
        if rate > 0.0 and remaining > 0:
            eta = f"{remaining / rate:.0f}s"
        elif remaining == 0:
            eta = "done"
        else:
            eta = "?"
        failures = (
            f" | failures {self.failed_attempts}" if self.failed_attempts else ""
        )
        line = (
            f"[{self._label}] {self.done}/{self.total} units ({percent}%)"
            f" | {rate:.1f} units/s | eta {eta}{failures}"
        )
        end = "\r" if self._tty else "\n"
        self._stream.write(line + end)
        self._stream.flush()

    def _write(self, text: str) -> None:
        if not self._enabled:
            return
        if self._tty:
            # Clear the in-place progress line before a full-line message.
            self._stream.write("\x1b[2K\r")
        self._stream.write(text)
        self._stream.flush()
