"""Campaign progress telemetry: stderr reporting + machine-readable summary.

The reporter lives entirely at the execution edge: it observes unit
completions and renders ``done/total | rate | eta`` lines, but nothing it
measures can flow back into the measurements (workers never see it, and the
merge order is fixed by the plan).  The clock is injected so tests can drive
it deterministically; the real executor passes ``time.monotonic``.

All accounting lives in a :class:`repro.obs.core.Observer` registry
(``runner.units_done``, ``runner.failed_attempts``,
``runner.worker_failures.<worker>``) rather than private counters: when the
executor hands the reporter the process-global observer, campaign telemetry
lands in the same trace as the engine's.  A reporter created without one
uses a private registry, so behaviour is identical with observability off.
Because a shared observer outlives a single campaign, the reporter
snapshots each counter at construction and reports deltas.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, TextIO

from repro.obs.core import Observer

__all__ = ["ProgressReporter", "RunSummary"]

_DONE_COUNTER = "runner.units_done"
_FAILED_COUNTER = "runner.failed_attempts"
_WORKER_FAILURE_PREFIX = "runner.worker_failures."

#: Seconds between stderr updates on a tty; non-tty streams (CI logs) are
#: additionally throttled to 10-percent steps so logs stay readable.
_TTY_INTERVAL = 0.5
_PERCENT_STEP = 10


@dataclass
class RunSummary:
    """Machine-readable outcome of one executor invocation."""

    study: str
    fingerprint: str
    total_units: int
    skipped_units: int
    executed_units: int
    failed_attempts: int
    retried_units: int
    jobs: int
    wall_seconds: float
    interrupted: bool = False
    worker_failures: Dict[str, int] = field(default_factory=dict)

    @property
    def completed_units(self) -> int:
        return self.skipped_units + self.executed_units

    @property
    def units_per_second(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.executed_units / self.wall_seconds

    def to_dict(self) -> Dict[str, Any]:
        return {
            "study": self.study,
            "fingerprint": self.fingerprint,
            "total_units": self.total_units,
            "completed_units": self.completed_units,
            "skipped_units": self.skipped_units,
            "executed_units": self.executed_units,
            "failed_attempts": self.failed_attempts,
            "retried_units": self.retried_units,
            "jobs": self.jobs,
            "wall_seconds": self.wall_seconds,
            "units_per_second": self.units_per_second,
            "interrupted": self.interrupted,
            "worker_failures": dict(self.worker_failures),
        }


class ProgressReporter:
    """Renders campaign progress to a stream (stderr by default).

    Parameters
    ----------
    total:
        Units in the plan.
    skipped:
        Units already satisfied by a resumed checkpoint.
    clock:
        Monotonic-seconds callable; injected for testability.
    stream:
        Defaults to ``sys.stderr``.
    enabled:
        When False every call is a no-op (the executor still builds the
        :class:`RunSummary`).
    observer:
        The metrics registry to account into; the executor passes the
        process-global observer when observability is on.  ``None`` (the
        default) uses a private registry - same arithmetic, no shared trace.
    """

    def __init__(
        self,
        total: int,
        *,
        skipped: int = 0,
        clock: Callable[[], float],
        stream: Optional[TextIO] = None,
        enabled: bool = True,
        label: str = "campaign",
        observer: Optional[Observer] = None,
    ):
        self.total = total
        self.skipped = skipped
        self._obs = observer if observer is not None else Observer()
        # A shared observer may carry counts from an earlier campaign in
        # this process; all public readings are deltas from these baselines.
        self._base_done = self._obs.counter(_DONE_COUNTER)
        self._base_failed = self._obs.counter(_FAILED_COUNTER)
        self._base_worker = {
            name: value
            for name, value in self._obs.counters.items()
            if name.startswith(_WORKER_FAILURE_PREFIX)
        }
        self._clock = clock
        self._stream = stream if stream is not None else sys.stderr
        self._enabled = enabled
        self._label = label
        self._started_at = clock()
        self._last_emit = float("-inf")
        self._last_percent = -1
        self._tty = bool(getattr(self._stream, "isatty", lambda: False)())

    # ------------------------------------------------------------------ #
    @property
    def observer(self) -> Observer:
        """The metrics registry this reporter accounts into."""
        return self._obs

    @property
    def done(self) -> int:
        """Completed units, the resumed (skipped) prefix included."""
        return self.skipped + int(self._obs.counter(_DONE_COUNTER) - self._base_done)

    @property
    def failed_attempts(self) -> int:
        """Failed execution attempts seen by this reporter."""
        return int(self._obs.counter(_FAILED_COUNTER) - self._base_failed)

    @property
    def worker_failures(self) -> Dict[str, int]:
        """Failed attempts per worker name."""
        out: Dict[str, int] = {}
        for name, value in self._obs.counters.items():
            if not name.startswith(_WORKER_FAILURE_PREFIX):
                continue
            delta = int(value - self._base_worker.get(name, 0.0))
            if delta > 0:
                out[name[len(_WORKER_FAILURE_PREFIX):]] = delta
        return out

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        if self.skipped:
            self._write(
                f"[{self._label}] resuming: {self.skipped}/{self.total} units "
                "already checkpointed\n"
            )
        self._emit(force=True)

    def unit_finished(self, worker: str) -> None:
        """One unit completed successfully on ``worker``."""
        self._obs.count(_DONE_COUNTER)
        self._emit(force=self.done >= self.total)

    def attempt_failed(self, worker: str, *, unit_index: int, retrying: bool) -> None:
        """One execution attempt failed (the unit may be retried)."""
        self._obs.count(_FAILED_COUNTER)
        self._obs.count(_WORKER_FAILURE_PREFIX + worker)
        verb = "retrying" if retrying else "giving up"
        self._write(
            f"[{self._label}] unit {unit_index} failed on {worker} "
            f"({self.worker_failures[worker]} failure(s) there); {verb}\n"
        )

    def note(self, message: str) -> None:
        self._write(f"[{self._label}] {message}\n")

    def finish(self) -> None:
        self._emit(force=True)
        if self._tty and self._enabled:
            self._stream.write("\n")
            self._stream.flush()

    # ------------------------------------------------------------------ #
    def _emit(self, *, force: bool = False) -> None:
        if not self._enabled:
            return
        now = self._clock()
        percent = int(100 * self.done / self.total) if self.total else 100
        if not force:
            if self._tty:
                if now - self._last_emit < _TTY_INTERVAL:
                    return
            elif percent < self._last_percent + _PERCENT_STEP:
                return
        self._last_emit = now
        self._last_percent = percent
        elapsed = max(now - self._started_at, 1e-9)
        executed = self.done - self.skipped
        rate = executed / elapsed
        remaining = self.total - self.done
        if rate > 0.0 and remaining > 0:
            eta = f"{remaining / rate:.0f}s"
        elif remaining == 0:
            eta = "done"
        else:
            eta = "?"
        failures = (
            f" | failures {self.failed_attempts}" if self.failed_attempts else ""
        )
        line = (
            f"[{self._label}] {self.done}/{self.total} units ({percent}%)"
            f" | {rate:.1f} units/s | eta {eta}{failures}"
        )
        end = "\r" if self._tty else "\n"
        self._stream.write(line + end)
        self._stream.flush()

    def _write(self, text: str) -> None:
        if not self._enabled:
            return
        if self._tty:
            # Clear the in-place progress line before a full-line message.
            self._stream.write("\x1b[2K\r")
        self._stream.write(text)
        self._stream.flush()
