"""HTTP substrate: messages, range algebra, origin servers, relay proxies."""

from repro.http.messages import ByteRange, HttpRequest, HttpResponse, RangeError
from repro.http.proxy import RelayProxy
from repro.http.server import WebServer
from repro.http.transfer import HttpTransfer, TcpParams, issue_download

__all__ = [
    "ByteRange",
    "HttpRequest",
    "HttpResponse",
    "RangeError",
    "WebServer",
    "RelayProxy",
    "HttpTransfer",
    "TcpParams",
    "issue_download",
]
