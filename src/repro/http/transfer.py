"""Binding HTTP messages to fluid flows: the download primitive.

:func:`issue_download` performs one HTTP GET (full or range) over a given
route: the request is resolved against the origin (directly, or through the
relay proxy for indirect routes), and the response body becomes a fluid flow
with a TCP slow-start ramp sized from the route's RTT.  Every higher layer -
the probe engine, the selection session, the experiment drivers - downloads
through this function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.http.messages import HttpRequest, HttpResponse
from repro.http.proxy import RelayProxy
from repro.http.server import WebServer
from repro.net.route import Route
from repro.tcp.flow import FluidFlow
from repro.tcp.fluid import FluidNetwork
from repro.tcp.model import DEFAULT_INITIAL_WINDOW, DEFAULT_MAX_WINDOW, SlowStartRamp

__all__ = ["HttpTransfer", "issue_download", "TcpParams"]


@dataclass(frozen=True)
class TcpParams:
    """Per-connection TCP parameters used to build slow-start ramps."""

    initial_window: float = DEFAULT_INITIAL_WINDOW
    max_window: float = DEFAULT_MAX_WINDOW

    def ramp_for(self, route: Route) -> SlowStartRamp:
        """Build the rate-cap schedule for a connection over ``route``.

        Uses :attr:`~repro.net.route.Route.ramp_rtt`: relay proxies split
        TCP, so an indirect path's ramp is governed by its slowest leg's
        RTT, not the concatenated end-to-end RTT.
        """
        return SlowStartRamp(
            rtt=max(route.ramp_rtt, 1e-4),
            initial_window=self.initial_window,
            max_window=self.max_window,
        )


@dataclass
class HttpTransfer:
    """One HTTP download in flight (or finished).

    Couples the message-level exchange (request/response) with the fluid
    flow moving the body.  Throughput and duration delegate to the flow.
    """

    request: HttpRequest
    response: HttpResponse
    route: Route
    flow: FluidFlow

    @property
    def done(self) -> bool:
        """True once the body finished (or the transfer was aborted)."""
        return self.flow.done

    @property
    def completed(self) -> bool:
        """True only for successfully completed transfers."""
        return self.flow.completed_at is not None and self.flow.remaining == 0.0

    @property
    def delivered(self) -> float:
        """Body bytes delivered so far (full size once completed).

        Striped sessions poll this for duplicate-byte accounting when a
        losing block copy is torn down mid-flight.
        """
        return float(self.flow.delivered)

    def duration(self) -> float:
        """Request-to-last-byte time in seconds."""
        return self.flow.duration()

    def throughput(self) -> float:
        """Client-observed throughput (bytes/second) including setup latency."""
        return self.flow.throughput()

    def abort(self, network: FluidNetwork) -> None:
        """Cancel the body transfer (the paper's losing-probe teardown)."""
        network.abort_flow(self.flow)


def issue_download(
    network: FluidNetwork,
    route: Route,
    server: WebServer,
    request: HttpRequest,
    *,
    proxy: Optional[RelayProxy] = None,
    tcp: TcpParams = TcpParams(),
    on_complete: Optional[Callable[[HttpTransfer], None]] = None,
    name: str = "",
) -> HttpTransfer:
    """Issue ``request`` over ``route`` and start the response body flow.

    For indirect routes a ``proxy`` must be supplied and the request is
    forwarded through it (exercising the relay's origin lookup); for the
    direct route the origin answers itself.

    Returns the :class:`HttpTransfer` immediately; completion is observed
    via ``on_complete`` or by advancing the simulator.
    """
    if route.is_indirect:
        if proxy is None:
            raise ValueError("indirect route requires a relay proxy")
        if proxy.name != route.via:
            raise ValueError(
                f"route goes via {route.via!r} but proxy is {proxy.name!r}"
            )
        response = proxy.forward(request)
    else:
        response = server.handle(request)

    transfer: HttpTransfer

    def _flow_done(_flow: FluidFlow) -> None:
        if on_complete is not None:
            on_complete(transfer)

    flow = network.start_flow(
        route,
        float(response.body_bytes),
        ramp=tcp.ramp_for(route),
        on_complete=_flow_done,
        name=name or f"GET {request.host}{request.path} via {route.via or 'direct'}",
    )
    transfer = HttpTransfer(request=request, response=response, route=route, flow=flow)
    return transfer
