"""HTTP message and byte-range modelling.

The paper's mechanism is built entirely on HTTP/1.1 features: **range
requests** (RFC 7233 ``Range: bytes=first-last``) to fetch the first
``x`` bytes as a throughput probe, and **proxying** to interpose a relay.
This module models exactly the message semantics the mechanism needs -
resources, range headers and their algebra, and response status logic -
without the wire format.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.util.validation import check_positive

__all__ = ["ByteRange", "HttpRequest", "HttpResponse", "RangeError"]


class RangeError(ValueError):
    """An unsatisfiable or malformed byte range."""


_RANGE_RE = re.compile(r"^bytes=(\d+)-(\d*)$")


@dataclass(frozen=True)
class ByteRange:
    """A half-open byte interval ``[first, last]`` (inclusive, RFC style).

    ``last`` of ``None`` means "to the end of the resource".
    """

    first: int
    last: Optional[int] = None

    def __post_init__(self) -> None:
        if self.first < 0:
            raise RangeError(f"range start must be >= 0, got {self.first}")
        if self.last is not None and self.last < self.first:
            raise RangeError(f"range end {self.last} precedes start {self.first}")

    @classmethod
    def first_bytes(cls, x: int) -> "ByteRange":
        """The probe range: the first ``x`` bytes (``bytes=0-(x-1)``)."""
        if x <= 0:
            raise RangeError(f"probe size must be positive, got {x}")
        return cls(0, x - 1)

    @classmethod
    def suffix_from(cls, offset: int) -> "ByteRange":
        """Everything from ``offset`` to the end (``bytes=offset-``)."""
        return cls(offset, None)

    @classmethod
    def parse(cls, header: str) -> "ByteRange":
        """Parse a ``bytes=first-last`` header value."""
        m = _RANGE_RE.match(header.strip())
        if not m:
            raise RangeError(f"malformed Range header {header!r}")
        first = int(m.group(1))
        last = int(m.group(2)) if m.group(2) else None
        return cls(first, last)

    def header_value(self) -> str:
        """Render as a ``Range`` header value."""
        last = "" if self.last is None else str(self.last)
        return f"bytes={self.first}-{last}"

    def resolve(self, resource_size: int) -> "ByteRange":
        """Clamp against a concrete resource size; raise if unsatisfiable."""
        if resource_size <= 0:
            raise RangeError(f"resource size must be positive, got {resource_size}")
        if self.first >= resource_size:
            raise RangeError(
                f"range starts at {self.first} but resource has {resource_size} bytes"
            )
        last = resource_size - 1 if self.last is None else min(self.last, resource_size - 1)
        return ByteRange(self.first, last)

    @property
    def length(self) -> Optional[int]:
        """Number of bytes covered, or ``None`` for open-ended ranges."""
        if self.last is None:
            return None
        return self.last - self.first + 1

    def remainder(self, resource_size: int) -> Optional["ByteRange"]:
        """The range covering everything *after* this one, or ``None``.

        This is the paper's two-phase fetch: after probing
        ``first_bytes(x)``, the client requests ``remainder(n)`` =
        ``bytes=x-(n-1)`` over the selected path.
        """
        resolved = self.resolve(resource_size)
        assert resolved.last is not None
        if resolved.last >= resource_size - 1:
            return None
        return ByteRange(resolved.last + 1, resource_size - 1)

    def __str__(self) -> str:
        return self.header_value()


@dataclass(frozen=True)
class HttpRequest:
    """A GET request for a resource, optionally with a byte range.

    Attributes
    ----------
    host:
        Target server name (the paper hard-codes server IPs; we use names).
    path:
        Resource path on the server.
    byte_range:
        Optional range; ``None`` requests the entire resource.
    via:
        Relay name when the request travels the indirect path, for logging.
    """

    host: str
    path: str
    byte_range: Optional[ByteRange] = None
    via: Optional[str] = None

    def headers(self) -> Dict[str, str]:
        """The request headers this message carries."""
        h = {"Host": self.host}
        if self.byte_range is not None:
            h["Range"] = self.byte_range.header_value()
        return h

    def forwarded(self, relay: str) -> "HttpRequest":
        """The request as re-issued by a relay proxy toward the origin."""
        return HttpRequest(self.host, self.path, self.byte_range, via=relay)

    @property
    def is_range_request(self) -> bool:
        return self.byte_range is not None


@dataclass(frozen=True)
class HttpResponse:
    """The server's answer: status plus the byte span it will send."""

    status: int
    resource_size: int
    body_range: ByteRange

    def __post_init__(self) -> None:
        check_positive(self.resource_size, "resource_size")
        if self.body_range.last is None:
            raise RangeError("response body range must be fully resolved")

    @property
    def body_bytes(self) -> int:
        """Payload size in bytes."""
        length = self.body_range.length
        assert length is not None
        return length

    @property
    def is_partial(self) -> bool:
        """True for 206 Partial Content responses."""
        return self.status == 206

    def content_range_header(self) -> str:
        """Render the ``Content-Range`` header (206 responses)."""
        return f"bytes {self.body_range.first}-{self.body_range.last}/{self.resource_size}"
