"""Origin web server model.

A :class:`WebServer` owns named resources of known sizes (the paper downloads
multi-megabyte files from eBay/Google/Microsoft/Yahoo) and answers GET and
range-GET requests with the byte span it will transmit.  Actual byte movement
happens in the fluid engine; the server decides *what* is sent.
"""

from __future__ import annotations

from typing import Dict

from repro.http.messages import ByteRange, HttpRequest, HttpResponse, RangeError
from repro.util.validation import check_positive

__all__ = ["WebServer"]


class WebServer:
    """A named origin server with a resource catalogue.

    Parameters
    ----------
    name:
        Server name; must match the request's ``Host`` header.
    """

    def __init__(self, name: str):
        if not name:
            raise ValueError("server name must be non-empty")
        self.name = name
        self._resources: Dict[str, int] = {}

    def publish(self, path: str, size_bytes: int) -> None:
        """Register (or replace) a resource of ``size_bytes`` at ``path``."""
        if not path:
            raise ValueError("resource path must be non-empty")
        check_positive(size_bytes, "size_bytes")
        self._resources[path] = int(size_bytes)

    def resource_size(self, path: str) -> int:
        """Size of the resource at ``path`` (KeyError with context if absent)."""
        try:
            return self._resources[path]
        except KeyError:
            raise KeyError(f"server {self.name!r} has no resource {path!r}") from None

    def has_resource(self, path: str) -> bool:
        """True if ``path`` is published on this server."""
        return path in self._resources

    @property
    def resources(self) -> Dict[str, int]:
        """A copy of the catalogue (path -> size)."""
        return dict(self._resources)

    def handle(self, request: HttpRequest) -> HttpResponse:
        """Answer a request: 200 for full GETs, 206 for satisfiable ranges.

        Raises
        ------
        ValueError
            If the request is addressed to a different host.
        KeyError
            If the resource does not exist.
        RangeError
            If the requested range is unsatisfiable (maps to HTTP 416).
        """
        if request.host != self.name:
            raise ValueError(
                f"request for host {request.host!r} reached server {self.name!r}"
            )
        size = self.resource_size(request.path)
        if request.byte_range is None:
            return HttpResponse(200, size, ByteRange(0, size - 1))
        resolved = request.byte_range.resolve(size)  # raises RangeError if bad
        return HttpResponse(206, size, resolved)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WebServer({self.name!r}, resources={len(self._resources)})"
