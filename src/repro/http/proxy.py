"""Relay proxy model: the paper's "forwarding service".

Each intermediate node runs a proxy that accepts a client's HTTP request,
re-issues it to the origin server and streams the response back
(*cut-through*: bytes are forwarded as they arrive, so the end-to-end
indirect transfer behaves as one flow whose bottleneck is the slowest hop).
The proxy layer here handles the message-level mechanics; byte movement is
one fluid flow over the concatenated route built by
:meth:`repro.net.topology.Topology.indirect_route`.
"""

from __future__ import annotations

from typing import Dict

from repro.http.messages import HttpRequest, HttpResponse
from repro.http.server import WebServer

__all__ = ["RelayProxy"]


class RelayProxy:
    """The forwarding service on an intermediate node.

    Parameters
    ----------
    name:
        The relay node's name (must match a relay in the topology).
    """

    def __init__(self, name: str):
        if not name:
            raise ValueError("relay name must be non-empty")
        self.name = name
        self._origins: Dict[str, WebServer] = {}
        #: Number of requests this relay has forwarded (bookkeeping).
        self.forwarded_count = 0

    def register_origin(self, server: WebServer) -> None:
        """Make an origin server reachable through this relay."""
        self._origins[server.name] = server

    def knows_origin(self, host: str) -> bool:
        """True if this relay can forward to ``host``."""
        return host in self._origins

    def forward(self, request: HttpRequest) -> HttpResponse:
        """Re-issue ``request`` to its origin and relay the response.

        The returned response describes the bytes that will stream through
        this relay to the client.  Raises ``KeyError`` when the origin is
        unknown (a relay misconfiguration, surfaced loudly).
        """
        try:
            origin = self._origins[request.host]
        except KeyError:
            raise KeyError(
                f"relay {self.name!r} has no route to origin {request.host!r}"
            ) from None
        response = origin.handle(request.forwarded(self.name))
        self.forwarded_count += 1
        return response

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RelayProxy({self.name!r}, origins={sorted(self._origins)})"
