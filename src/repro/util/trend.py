"""Trend detection for throughput time series (paper Fig. 4).

The paper observes that indirect-path throughput over time shows "no
discernable uptrend or downtrend".  We make that statement testable with the
non-parametric Mann-Kendall trend test plus Theil-Sen slope estimation, both
standard for noisy network measurement series (no distributional assumptions,
robust to outliers/jumps).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as sps

__all__ = ["TrendResult", "mann_kendall", "theil_sen_slope"]


@dataclass(frozen=True)
class TrendResult:
    """Outcome of a Mann-Kendall trend test.

    Attributes
    ----------
    s_statistic:
        The raw Mann-Kendall S statistic (sum of pairwise sign comparisons).
    z_score:
        Normal-approximation test statistic with tie correction.
    p_value:
        Two-sided p-value.
    trend:
        ``"increasing"``, ``"decreasing"`` or ``"none"`` at the supplied
        significance level.
    slope:
        Theil-Sen median pairwise slope (units: value per unit of time).
    """

    s_statistic: int
    z_score: float
    p_value: float
    trend: str
    slope: float

    @property
    def has_trend(self) -> bool:
        """True when a statistically significant monotone trend was found."""
        return self.trend != "none"


def _mk_variance(values: np.ndarray) -> float:
    """Variance of S with the standard correction for tied groups."""
    n = values.size
    var = n * (n - 1) * (2 * n + 5)
    _, counts = np.unique(values, return_counts=True)
    ties = counts[counts > 1]
    if ties.size:
        var -= int(np.sum(ties * (ties - 1) * (2 * ties + 5)))
    return var / 18.0


def mann_kendall(
    values: Sequence[float],
    times: Sequence[float] | None = None,
    *,
    alpha: float = 0.05,
) -> TrendResult:
    """Run the Mann-Kendall test on ``values`` (optionally with ``times``).

    Parameters
    ----------
    values:
        The measurement series, in time order if ``times`` is omitted.
    times:
        Optional sample times; when given, samples are sorted by time first.
    alpha:
        Two-sided significance level for declaring a trend.
    """
    arr = np.asarray(values, dtype=np.float64).reshape(-1)
    if times is not None:
        t = np.asarray(times, dtype=np.float64).reshape(-1)
        if t.size != arr.size:
            raise ValueError("times and values must have the same length")
        order = np.argsort(t, kind="stable")
        arr = arr[order]
        t = t[order]
    else:
        t = np.arange(arr.size, dtype=np.float64)
    if arr.size < 3:
        return TrendResult(0, 0.0, 1.0, "none", 0.0)

    # S = sum_{i<j} sign(x_j - x_i), computed vectorised over the pair matrix.
    diffs = np.sign(arr[None, :] - arr[:, None])
    s = int(np.sum(np.triu(diffs, k=1)))

    var_s = _mk_variance(arr)
    if var_s <= 0.0:  # constant series
        return TrendResult(s, 0.0, 1.0, "none", 0.0)
    if s > 0:
        z = (s - 1) / math.sqrt(var_s)
    elif s < 0:
        z = (s + 1) / math.sqrt(var_s)
    else:
        z = 0.0
    p = 2.0 * (1.0 - sps.norm.cdf(abs(z)))

    slope = theil_sen_slope(arr, t)
    if p < alpha:
        trend = "increasing" if z > 0 else "decreasing"
    else:
        trend = "none"
    return TrendResult(s, float(z), float(p), trend, slope)


def theil_sen_slope(values: Sequence[float], times: Sequence[float] | None = None) -> float:
    """Median of pairwise slopes; 0.0 for series shorter than 2 points."""
    arr = np.asarray(values, dtype=np.float64).reshape(-1)
    if times is None:
        t = np.arange(arr.size, dtype=np.float64)
    else:
        t = np.asarray(times, dtype=np.float64).reshape(-1)
        if t.size != arr.size:
            raise ValueError("times and values must have the same length")
    if arr.size < 2:
        return 0.0
    dv = arr[None, :] - arr[:, None]
    dt = t[None, :] - t[:, None]
    iu = np.triu_indices(arr.size, k=1)
    dt_pairs = dt[iu]
    dv_pairs = dv[iu]
    valid = dt_pairs != 0.0
    if not np.any(valid):
        return 0.0
    return float(np.median(dv_pairs[valid] / dt_pairs[valid]))
