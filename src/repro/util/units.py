"""Unit conventions and conversions used throughout the library.

Internal conventions
--------------------
* **Time** is measured in seconds (float).
* **Data sizes** are measured in bytes (float; fractional bytes are fine in
  the fluid model).
* **Rates** are measured in bytes per second internally.  The paper reports
  throughput in megabits per second (Mbps), so converters are provided and
  all user-facing statistics use Mbps.

The module deliberately exposes plain floats and free functions rather than a
unit-wrapper class: the simulator's hot paths operate on numpy arrays of
rates and byte counts, and wrapper objects would defeat vectorisation.
"""

from __future__ import annotations

__all__ = [
    "KB",
    "MB",
    "GB",
    "BITS_PER_BYTE",
    "MS_PER_S",
    "US_PER_S",
    "mbps_to_bytes_per_s",
    "bytes_per_s_to_mbps",
    "s_to_ms",
    "s_to_us",
    "kb",
    "mb",
    "seconds_to_transfer",
    "MINUTE",
    "HOUR",
]

#: Bytes in a kilobyte (decimal, as in the paper's "100KB").
KB: float = 1_000.0
#: Bytes in a megabyte (decimal, as in the paper's "2 MB" files).
MB: float = 1_000_000.0
#: Bytes in a gigabyte.
GB: float = 1_000_000_000.0

BITS_PER_BYTE: float = 8.0

#: Milliseconds in a second (display helper for latencies).
MS_PER_S: float = 1_000.0

#: Microseconds in a second (Chrome ``trace_event`` timestamps are in µs).
US_PER_S: float = 1_000_000.0

#: Seconds in a minute / hour, for readable workload definitions.
MINUTE: float = 60.0
HOUR: float = 3_600.0


def mbps_to_bytes_per_s(mbps: float) -> float:
    """Convert a rate in megabits/second to bytes/second.

    >>> mbps_to_bytes_per_s(8.0)
    1000000.0
    """
    return float(mbps) * 1e6 / BITS_PER_BYTE


def bytes_per_s_to_mbps(rate: float) -> float:
    """Convert a rate in bytes/second to megabits/second.

    Accepts numpy arrays as well as scalars (pure arithmetic).
    """
    return rate * (BITS_PER_BYTE / 1e6)


def s_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds (used for human-facing latency text).

    >>> s_to_ms(0.075)
    75.0
    """
    return float(seconds) * MS_PER_S


def s_to_us(seconds: float) -> float:
    """Convert seconds to microseconds (Chrome trace timestamp unit).

    >>> s_to_us(0.002)
    2000.0
    """
    return float(seconds) * US_PER_S


def kb(n: float) -> float:
    """``n`` kilobytes expressed in bytes."""
    return float(n) * KB


def mb(n: float) -> float:
    """``n`` megabytes expressed in bytes."""
    return float(n) * MB


def seconds_to_transfer(size_bytes: float, rate_bytes_per_s: float) -> float:
    """Time to move ``size_bytes`` at a constant ``rate_bytes_per_s``.

    Raises :class:`ValueError` for a non-positive rate with a positive size,
    because the fluid engine must never divide by a zero rate silently.
    """
    if size_bytes <= 0.0:
        return 0.0
    if rate_bytes_per_s <= 0.0:
        raise ValueError(
            f"cannot transfer {size_bytes} bytes at non-positive rate "
            f"{rate_bytes_per_s}"
        )
    return size_bytes / rate_bytes_per_s
