"""Lightweight argument validation helpers.

The simulator's public entry points validate their inputs eagerly and raise
informative exceptions; internal hot paths assume validated data.  These
helpers keep the validation one-liners readable and the error messages
uniform.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

__all__ = [
    "require",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_probability",
    "check_sorted",
    "check_same_length",
]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def check_positive(value: float, name: str) -> float:
    """Validate ``value > 0`` and return it as a float."""
    value = float(value)
    if not value > 0.0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Validate ``value >= 0`` and return it as a float."""
    value = float(value)
    if value < 0.0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_in_range(
    value: float,
    name: str,
    low: float,
    high: float,
    *,
    inclusive: bool = True,
) -> float:
    """Validate ``low <= value <= high`` (or strict if ``inclusive=False``)."""
    value = float(value)
    ok = (low <= value <= high) if inclusive else (low < value < high)
    if not ok:
        bounds = f"[{low}, {high}]" if inclusive else f"({low}, {high})"
        raise ValueError(f"{name} must lie in {bounds}, got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` is a probability in [0, 1]."""
    return check_in_range(value, name, 0.0, 1.0)


def check_sorted(values: Sequence[float], name: str) -> np.ndarray:
    """Validate that ``values`` is non-decreasing; return as float array."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size > 1 and np.any(np.diff(arr) < 0.0):
        raise ValueError(f"{name} must be sorted in non-decreasing order")
    return arr


def check_same_length(a: Sequence[Any], b: Sequence[Any], name_a: str, name_b: str) -> None:
    """Validate that two sequences have equal length."""
    if len(a) != len(b):
        raise ValueError(
            f"{name_a} and {name_b} must have the same length "
            f"({len(a)} != {len(b)})"
        )


def optional_positive(value: Optional[float], name: str) -> Optional[float]:
    """Validate an optional positive float (``None`` passes through)."""
    if value is None:
        return None
    return check_positive(value, name)
