"""Deterministic random-number stream management.

Every experiment in this reproduction is driven by a single *root seed*.
Sub-streams are derived with :class:`numpy.random.SeedSequence` spawning keyed
by stable string labels, so that:

* adding a new consumer of randomness never perturbs existing streams;
* any (client, relay, repetition) sub-experiment can be re-run in isolation
  and produce byte-identical results;
* parallel execution order cannot change results (streams are independent).

This is the standard reproducibility idiom for scientific numpy code: never
share one ``Generator`` across logically distinct processes.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Tuple, Union

import numpy as np

__all__ = ["SeedBank", "derive_seed"]

Label = Union[str, int]


def derive_seed(root: int, *labels: Label) -> int:
    """Derive a 64-bit child seed from ``root`` and a label path.

    The derivation hashes the label path with SHA-256, so it is stable across
    Python versions and platforms (unlike ``hash()``), and collisions between
    distinct label paths are negligible.
    """
    h = hashlib.sha256()
    h.update(str(int(root)).encode("ascii"))
    for label in labels:
        h.update(b"\x1f")  # unit separator: ("a","b") != ("ab",)
        h.update(str(label).encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "little")


class SeedBank:
    """A factory for independent, label-addressed random generators.

    Parameters
    ----------
    root_seed:
        The experiment's root seed.  Two ``SeedBank`` instances with the same
        root seed produce identical streams for identical label paths.

    Examples
    --------
    >>> bank = SeedBank(42)
    >>> g1 = bank.generator("client", "Italy", 3)
    >>> g2 = bank.generator("client", "Italy", 3)
    >>> float(g1.random()) == float(g2.random())
    True
    """

    __slots__ = ("_root",)

    def __init__(self, root_seed: int):
        self._root = int(root_seed)

    @property
    def root_seed(self) -> int:
        """The root seed this bank derives all streams from."""
        return self._root

    def seed(self, *labels: Label) -> int:
        """Return the derived integer seed for a label path."""
        return derive_seed(self._root, *labels)

    def sequence(self, *labels: Label) -> np.random.SeedSequence:
        """Return a :class:`~numpy.random.SeedSequence` for a label path."""
        return np.random.SeedSequence(self.seed(*labels))

    def generator(self, *labels: Label) -> np.random.Generator:
        """Return a fresh PCG64 :class:`~numpy.random.Generator` for a path."""
        return np.random.Generator(np.random.PCG64(self.sequence(*labels)))

    def child(self, *labels: Label) -> "SeedBank":
        """Return a sub-bank rooted at the derived seed of ``labels``.

        Useful for handing a subsystem its own namespace:
        ``bank.child("workload")`` cannot collide with ``bank.child("net")``.
        """
        return SeedBank(self.seed(*labels))

    def spawn_generators(self, label: Label, n: int) -> Tuple[np.random.Generator, ...]:
        """Return ``n`` independent generators under a common label."""
        return tuple(self.generator(label, i) for i in range(int(n)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeedBank(root_seed={self._root})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SeedBank) and other._root == self._root

    def __hash__(self) -> int:
        return hash(("SeedBank", self._root))


def interleave_labels(labels: Iterable[Label]) -> Tuple[Label, ...]:
    """Normalise an iterable of labels to a tuple (helper for callers that
    build label paths programmatically)."""
    return tuple(labels)
