"""Descriptive statistics used by the analysis layer.

The paper reports means, medians, standard deviations, maxima, RMS values
(Fig. 5) and percentage histograms (Figs. 1-2).  These helpers are thin,
vectorised wrappers around numpy with the edge cases (empty inputs) handled
explicitly so analysis code never has to special-case them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "Summary",
    "summarize",
    "rms",
    "percent_histogram",
    "fraction_between",
    "fraction_below",
    "weighted_mean",
    "percentile",
    "coefficient_of_variation",
]


def _as_array(values: Sequence[float]) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        arr = arr.reshape(-1)
    return arr


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a sample.

    ``std`` is the population standard deviation (``ddof=0``): the paper's
    per-node statistics describe the full measured population, not a sample
    estimate of a larger one.
    """

    count: int
    mean: float
    median: float
    std: float
    minimum: float
    maximum: float

    def as_tuple(self) -> Tuple[int, float, float, float, float, float]:
        """Return ``(count, mean, median, std, min, max)``."""
        return (self.count, self.mean, self.median, self.std, self.minimum, self.maximum)


_EMPTY_SUMMARY = Summary(0, float("nan"), float("nan"), float("nan"), float("nan"), float("nan"))


def summarize(values: Sequence[float]) -> Summary:
    """Compute a :class:`Summary` of ``values``; NaN-filled when empty."""
    arr = _as_array(values)
    if arr.size == 0:
        return _EMPTY_SUMMARY
    return Summary(
        count=int(arr.size),
        mean=float(np.mean(arr)),
        median=float(np.median(arr)),
        std=float(np.std(arr)),
        minimum=float(np.min(arr)),
        maximum=float(np.max(arr)),
    )


def rms(values: Sequence[float]) -> float:
    """Root mean square of ``values`` (NaN when empty).

    Fig. 5 of the paper reports RMS alongside average and standard deviation
    as a robustness measure of relay utilisation.
    """
    arr = _as_array(values)
    if arr.size == 0:
        return float("nan")
    return float(np.sqrt(np.mean(np.square(arr))))


def percent_histogram(
    values: Sequence[float],
    bin_edges: Sequence[float],
) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram of ``values`` with counts expressed as percentages.

    Returns ``(percentages, edges)``.  Values outside the outermost edges are
    clipped into the first/last bin so that percentages always total 100 for
    non-empty input (the paper's histograms account for every data point,
    with extreme penalties folded into the tail bins).
    """
    arr = _as_array(values)
    edges = np.asarray(bin_edges, dtype=np.float64)
    if edges.ndim != 1 or edges.size < 2:
        raise ValueError("bin_edges must contain at least two edges")
    if np.any(np.diff(edges) <= 0):
        raise ValueError("bin_edges must be strictly increasing")
    if arr.size == 0:
        return np.zeros(edges.size - 1), edges
    clipped = np.clip(arr, edges[0], np.nextafter(edges[-1], -np.inf))
    counts, _ = np.histogram(clipped, bins=edges)
    return counts * (100.0 / arr.size), edges


def fraction_between(values: Sequence[float], low: float, high: float) -> float:
    """Fraction of values with ``low <= v <= high`` (NaN when empty)."""
    arr = _as_array(values)
    if arr.size == 0:
        return float("nan")
    return float(np.mean((arr >= low) & (arr <= high)))


def fraction_below(values: Sequence[float], threshold: float) -> float:
    """Fraction of values strictly below ``threshold`` (NaN when empty)."""
    arr = _as_array(values)
    if arr.size == 0:
        return float("nan")
    return float(np.mean(arr < threshold))


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Weighted mean; raises on mismatched lengths or zero total weight."""
    v = _as_array(values)
    w = _as_array(weights)
    if v.size != w.size:
        raise ValueError(f"values and weights differ in length ({v.size} != {w.size})")
    total = float(np.sum(w))
    if total <= 0.0:
        raise ValueError("total weight must be positive")
    return float(np.dot(v, w) / total)


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) of ``values`` (NaN when empty)."""
    arr = _as_array(values)
    if arr.size == 0:
        return float("nan")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must lie in [0, 100], got {q!r}")
    return float(np.percentile(arr, q))


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Std/|mean| of ``values``; NaN when empty or mean is zero.

    Used to classify clients as having "low" vs "high" direct-path
    throughput variability (Table I's filtering step).
    """
    arr = _as_array(values)
    if arr.size == 0:
        return float("nan")
    mean = float(np.mean(arr))
    if mean == 0.0:
        return float("nan")
    return float(np.std(arr) / abs(mean))
