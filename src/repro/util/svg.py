"""Dependency-free SVG chart rendering.

matplotlib is unavailable in this environment, so the benchmark harness
renders the paper's figures as standalone SVG files with this module: a
histogram (Fig. 1/2), multi-series line charts (Figs. 3, 4, 6) and grouped
bar charts (Fig. 5).  The goal is honest, legible output - axes, ticks,
labels, a legend - not a plotting library.

All functions return the SVG document as a string; callers decide where to
write it.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple
from xml.sax.saxutils import escape

import numpy as np

__all__ = [
    "svg_histogram",
    "svg_line_chart",
    "svg_grouped_bars",
    "svg_stacked_bars",
    "svg_sparkline",
]

#: Categorical palette (colour-blind-safe Okabe-Ito subset).
PALETTE = ("#0072B2", "#E69F00", "#009E73", "#CC79A7", "#56B4E9", "#D55E00")

_W, _H = 720, 440
_MARGIN = dict(left=70, right=160, top=50, bottom=60)


def _nice_ticks(lo: float, hi: float, n: int = 6) -> List[float]:
    """Round tick positions covering [lo, hi] (inclusive-ish)."""
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    raw = span / max(n - 1, 1)
    mag = 10.0 ** math.floor(math.log10(raw))
    for mult in (1.0, 2.0, 2.5, 5.0, 10.0):
        step = mult * mag
        if step >= raw:
            break
    start = math.floor(lo / step) * step
    ticks = []
    t = start
    while t <= hi + 1e-9 * span:
        if t >= lo - 1e-9 * span:
            ticks.append(round(t, 10))
        t += step
    return ticks or [lo, hi]


def _fmt(v: float) -> str:
    if v == int(v) and abs(v) < 1e6:
        return str(int(v))
    return f"{v:g}"


class _Canvas:
    """Accumulates SVG elements with a data-to-pixel transform."""

    def __init__(self, x_range: Tuple[float, float], y_range: Tuple[float, float]):
        self.x0, self.x1 = x_range
        self.y0, self.y1 = y_range
        if self.x1 <= self.x0:
            self.x1 = self.x0 + 1.0
        if self.y1 <= self.y0:
            self.y1 = self.y0 + 1.0
        self.parts: List[str] = []
        self.plot_w = _W - _MARGIN["left"] - _MARGIN["right"]
        self.plot_h = _H - _MARGIN["top"] - _MARGIN["bottom"]

    def px(self, x: float) -> float:
        return _MARGIN["left"] + (x - self.x0) / (self.x1 - self.x0) * self.plot_w

    def py(self, y: float) -> float:
        return _MARGIN["top"] + (1.0 - (y - self.y0) / (self.y1 - self.y0)) * self.plot_h

    # ------------------------------------------------------------------ #
    def add(self, element: str) -> None:
        self.parts.append(element)

    def text(self, x: float, y: float, s: str, *, size=12, anchor="middle",
             rotate: Optional[float] = None, color="#333") -> None:
        transform = f' transform="rotate({rotate} {x:.1f} {y:.1f})"' if rotate else ""
        self.add(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" fill="{color}" '
            f'text-anchor="{anchor}" font-family="sans-serif"{transform}>'
            f"{escape(s)}</text>"
        )

    def axes(self, *, title: str, xlabel: str, ylabel: str,
             x_ticks: Sequence[float], y_ticks: Sequence[float],
             x_tick_labels: Optional[Sequence[str]] = None) -> None:
        left, top = _MARGIN["left"], _MARGIN["top"]
        right = _W - _MARGIN["right"]
        bottom = _H - _MARGIN["bottom"]
        # Frame.
        self.add(
            f'<rect x="{left}" y="{top}" width="{self.plot_w}" '
            f'height="{self.plot_h}" fill="none" stroke="#999"/>'
        )
        # Gridlines + ticks.
        for t in y_ticks:
            y = self.py(t)
            if top - 1 <= y <= bottom + 1:
                self.add(
                    f'<line x1="{left}" y1="{y:.1f}" x2="{right}" y2="{y:.1f}" '
                    'stroke="#e5e5e5"/>'
                )
                self.text(left - 8, y + 4, _fmt(t), anchor="end", size=11)
        labels = x_tick_labels or [_fmt(t) for t in x_ticks]
        for t, lab in zip(x_ticks, labels):
            x = self.px(t)
            if left - 1 <= x <= right + 1:
                self.add(
                    f'<line x1="{x:.1f}" y1="{bottom}" x2="{x:.1f}" '
                    f'y2="{bottom + 5}" stroke="#666"/>'
                )
                self.text(x, bottom + 20, lab, size=11)
        self.text(_W / 2, 24, title, size=15, color="#111")
        self.text((left + right) / 2, _H - 14, xlabel, size=12)
        self.text(18, (top + bottom) / 2, ylabel, size=12, rotate=-90.0)

    def legend(self, entries: Sequence[Tuple[str, str]]) -> None:
        x = _W - _MARGIN["right"] + 14
        y = _MARGIN["top"] + 10
        for label, color in entries:
            self.add(
                f'<rect x="{x}" y="{y - 9}" width="12" height="12" fill="{color}"/>'
            )
            self.text(x + 18, y + 2, label, anchor="start", size=11)
            y += 20

    def render(self) -> str:
        body = "\n".join(self.parts)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{_W}" height="{_H}" '
            f'viewBox="0 0 {_W} {_H}">\n'
            f'<rect width="{_W}" height="{_H}" fill="white"/>\n{body}\n</svg>\n'
        )


def svg_histogram(
    percentages: Sequence[float],
    edges: Sequence[float],
    *,
    title: str,
    xlabel: str = "improvement (%)",
    ylabel: str = "% of data points",
    color: str = PALETTE[0],
) -> str:
    """Render a histogram (bins given by ``edges``, heights in percent)."""
    pct = np.asarray(percentages, dtype=float)
    edg = np.asarray(edges, dtype=float)
    if edg.size != pct.size + 1:
        raise ValueError("edges must have one more element than percentages")
    top = float(pct.max()) if pct.size and pct.max() > 0 else 1.0
    canvas = _Canvas((float(edg[0]), float(edg[-1])), (0.0, top * 1.1))
    baseline = canvas.py(0.0)
    for i, p in enumerate(pct):
        if p <= 0:
            continue
        x_left = canvas.px(float(edg[i]))
        x_right = canvas.px(float(edg[i + 1]))
        y = canvas.py(float(p))
        canvas.add(
            f'<rect x="{x_left + 1:.1f}" y="{y:.1f}" '
            f'width="{max(x_right - x_left - 2, 1):.1f}" '
            f'height="{max(baseline - y, 0):.1f}" fill="{color}" '
            'fill-opacity="0.85"/>'
        )
    canvas.axes(
        title=title,
        xlabel=xlabel,
        ylabel=ylabel,
        x_ticks=_nice_ticks(float(edg[0]), float(edg[-1]), 8),
        y_ticks=_nice_ticks(0.0, top * 1.1),
    )
    return canvas.render()


def svg_line_chart(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    *,
    title: str,
    xlabel: str,
    ylabel: str,
    markers: bool = True,
) -> str:
    """Render one line per entry of ``series`` (label -> (xs, ys))."""
    if not series:
        raise ValueError("need at least one series")
    all_x: List[float] = []
    all_y: List[float] = []
    for xs, ys in series.values():
        if len(xs) != len(ys):
            raise ValueError("series x and y lengths differ")
        all_x.extend(float(v) for v in xs)
        all_y.extend(float(v) for v in ys)
    if not all_x:
        raise ValueError("series are empty")
    y_lo, y_hi = min(all_y + [0.0]), max(all_y)
    pad = 0.08 * max(y_hi - y_lo, 1.0)
    canvas = _Canvas((min(all_x), max(all_x)), (y_lo - pad, y_hi + pad))
    legend = []
    for idx, (label, (xs, ys)) in enumerate(series.items()):
        color = PALETTE[idx % len(PALETTE)]
        pts = " ".join(
            f"{canvas.px(float(x)):.1f},{canvas.py(float(y)):.1f}"
            for x, y in zip(xs, ys)
        )
        canvas.add(
            f'<polyline points="{pts}" fill="none" stroke="{color}" '
            'stroke-width="2"/>'
        )
        if markers:
            for x, y in zip(xs, ys):
                canvas.add(
                    f'<circle cx="{canvas.px(float(x)):.1f}" '
                    f'cy="{canvas.py(float(y)):.1f}" r="3" fill="{color}"/>'
                )
        legend.append((label, color))
    canvas.axes(
        title=title,
        xlabel=xlabel,
        ylabel=ylabel,
        x_ticks=_nice_ticks(min(all_x), max(all_x)),
        y_ticks=_nice_ticks(y_lo - pad, y_hi + pad),
    )
    canvas.legend(legend)
    return canvas.render()


def svg_grouped_bars(
    categories: Sequence[str],
    groups: Dict[str, Sequence[float]],
    *,
    title: str,
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render grouped vertical bars: one bar per (category, group)."""
    if not categories or not groups:
        raise ValueError("need categories and at least one group")
    n_cat, n_grp = len(categories), len(groups)
    for name, values in groups.items():
        if len(values) != n_cat:
            raise ValueError(f"group {name!r} has {len(values)} values, "
                             f"expected {n_cat}")
    top = max(max(float(v) for v in vals) for vals in groups.values())
    top = top if top > 0 else 1.0
    canvas = _Canvas((0.0, float(n_cat)), (0.0, top * 1.12))
    baseline = canvas.py(0.0)
    slot = canvas.plot_w / n_cat
    bar_w = slot * 0.8 / n_grp
    legend = []
    for g, (name, values) in enumerate(groups.items()):
        color = PALETTE[g % len(PALETTE)]
        legend.append((name, color))
        for c, v in enumerate(values):
            x = _MARGIN["left"] + c * slot + slot * 0.1 + g * bar_w
            y = canvas.py(float(v))
            canvas.add(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_w - 1:.1f}" '
                f'height="{max(baseline - y, 0):.1f}" fill="{color}" '
                'fill-opacity="0.9"/>'
            )
    canvas.axes(
        title=title,
        xlabel=xlabel,
        ylabel=ylabel,
        x_ticks=[c + 0.5 for c in range(n_cat)],
        y_ticks=_nice_ticks(0.0, top * 1.12),
        x_tick_labels=list(categories),
    )
    canvas.legend(legend)
    return canvas.render()


def svg_stacked_bars(
    categories: Sequence[str],
    layers: Dict[str, Sequence[float]],
    *,
    title: str,
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render stacked vertical bars: one bar per category, layered.

    ``layers`` maps each layer name to one value per category; stacking
    follows the dict's insertion order (the campaign health report passes
    phases in priority order so the chart reads like the attribution).
    """
    if not categories or not layers:
        raise ValueError("need categories and at least one layer")
    n_cat = len(categories)
    for name, values in layers.items():
        if len(values) != n_cat:
            raise ValueError(f"layer {name!r} has {len(values)} values, "
                             f"expected {n_cat}")
    totals = [
        sum(float(values[c]) for values in layers.values()) for c in range(n_cat)
    ]
    top = max(totals) if totals and max(totals) > 0 else 1.0
    canvas = _Canvas((0.0, float(n_cat)), (0.0, top * 1.12))
    slot = canvas.plot_w / n_cat
    bar_w = slot * 0.64
    legend = [
        (name, PALETTE[i % len(PALETTE)]) for i, name in enumerate(layers)
    ]
    for c in range(n_cat):
        x = _MARGIN["left"] + c * slot + (slot - bar_w) / 2
        running = 0.0
        for layer_idx, values in enumerate(layers.values()):
            v = float(values[c])
            if v <= 0:
                continue
            y_top = canvas.py(running + v)
            y_bot = canvas.py(running)
            canvas.add(
                f'<rect x="{x:.1f}" y="{y_top:.1f}" width="{bar_w:.1f}" '
                f'height="{max(y_bot - y_top, 0):.1f}" '
                f'fill="{PALETTE[layer_idx % len(PALETTE)]}" fill-opacity="0.9"/>'
            )
            running += v
    canvas.axes(
        title=title,
        xlabel=xlabel,
        ylabel=ylabel,
        x_ticks=[c + 0.5 for c in range(n_cat)],
        y_ticks=_nice_ticks(0.0, top * 1.12),
        x_tick_labels=list(categories),
    )
    canvas.legend(legend)
    return canvas.render()


def svg_sparkline(
    values: Sequence[float],
    *,
    width: int = 140,
    height: int = 32,
    color: str = PALETTE[0],
) -> str:
    """Render a tiny inline sparkline (no axes) over ``values``.

    Used by the campaign health report for histogram bucket profiles;
    returns an ``<svg>`` element sized to sit inside a table cell.  An
    empty or all-zero series renders as a flat baseline.
    """
    vals = [float(v) for v in values]
    if not vals:
        vals = [0.0]
    top = max(vals)
    if top <= 0.0:
        top = 1.0
    n = len(vals)
    pad = 2.0
    span_x = width - 2 * pad
    span_y = height - 2 * pad
    pts = []
    for i, v in enumerate(vals):
        x = pad + (span_x * i / max(n - 1, 1))
        y = pad + span_y * (1.0 - v / top)
        pts.append(f"{x:.1f},{y:.1f}")
    baseline = height - pad
    area = " ".join([f"{pad:.1f},{baseline:.1f}"] + pts + [f"{pad + span_x:.1f},{baseline:.1f}"])
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">'
        f'<polygon points="{area}" fill="{color}" fill-opacity="0.25"/>'
        f'<polyline points="{" ".join(pts)}" fill="none" stroke="{color}" '
        'stroke-width="1.5"/></svg>'
    )
