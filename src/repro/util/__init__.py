"""Shared utilities: units, seeded RNG streams, statistics, rendering."""

from repro.util.rng import SeedBank, derive_seed
from repro.util.stats import (
    Summary,
    coefficient_of_variation,
    fraction_below,
    fraction_between,
    percent_histogram,
    percentile,
    rms,
    summarize,
    weighted_mean,
)
from repro.util.svg import svg_grouped_bars, svg_histogram, svg_line_chart
from repro.util.tables import render_histogram, render_kv, render_series, render_table
from repro.util.trend import TrendResult, mann_kendall, theil_sen_slope
from repro.util.units import (
    GB,
    HOUR,
    KB,
    MB,
    MINUTE,
    bytes_per_s_to_mbps,
    kb,
    mb,
    mbps_to_bytes_per_s,
    seconds_to_transfer,
)

__all__ = [
    "SeedBank",
    "derive_seed",
    "Summary",
    "summarize",
    "rms",
    "percent_histogram",
    "fraction_between",
    "fraction_below",
    "weighted_mean",
    "percentile",
    "coefficient_of_variation",
    "TrendResult",
    "mann_kendall",
    "theil_sen_slope",
    "render_table",
    "svg_histogram",
    "svg_line_chart",
    "svg_grouped_bars",
    "render_histogram",
    "render_series",
    "render_kv",
    "KB",
    "MB",
    "GB",
    "MINUTE",
    "HOUR",
    "kb",
    "mb",
    "mbps_to_bytes_per_s",
    "bytes_per_s_to_mbps",
    "seconds_to_transfer",
]
