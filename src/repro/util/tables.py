"""Plain-text rendering of tables and simple charts.

The benchmark harness regenerates every table and figure of the paper as
terminal output.  These renderers keep that output aligned, diff-friendly and
free of third-party plotting dependencies (matplotlib is not available in
this environment).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

__all__ = ["render_table", "render_histogram", "render_series", "render_kv"]


def _fmt_cell(value: object, float_fmt: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, (int, np.integer)):
        return str(int(value))
    if isinstance(value, (float, np.floating)):
        if np.isnan(value):
            return "-"
        return format(float(value), float_fmt)
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: Optional[str] = None,
    float_fmt: str = ".1f",
) -> str:
    """Render an aligned ASCII table.

    ``rows`` may contain ints, floats (formatted with ``float_fmt``; NaN is
    shown as ``-``) and strings.  Column widths are computed from content.
    """
    str_rows: List[List[str]] = [
        [_fmt_cell(cell, float_fmt) for cell in row] for row in rows
    ]
    for r in str_rows:
        if len(r) != len(headers):
            raise ValueError(
                f"row has {len(r)} cells but table has {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for r in str_rows:
        for i, cell in enumerate(r):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def render_histogram(
    percentages: Sequence[float],
    edges: Sequence[float],
    *,
    title: Optional[str] = None,
    width: int = 50,
    label_fmt: str = ".0f",
) -> str:
    """Render a horizontal bar histogram (one bin per line).

    ``percentages`` has one entry per bin; ``edges`` has ``len+1`` entries.
    """
    pct = np.asarray(percentages, dtype=np.float64)
    edg = np.asarray(edges, dtype=np.float64)
    if edg.size != pct.size + 1:
        raise ValueError("edges must have exactly one more element than percentages")
    peak = float(np.max(pct)) if pct.size and np.max(pct) > 0 else 1.0
    out: List[str] = []
    if title:
        out.append(title)
    labels = [
        f"[{format(edg[i], label_fmt)}, {format(edg[i + 1], label_fmt)})"
        for i in range(pct.size)
    ]
    lab_w = max((len(x) for x in labels), default=0)
    for label, p in zip(labels, pct):
        bar = "#" * int(round(width * p / peak))
        out.append(f"{label.rjust(lab_w)} {p:6.2f}% |{bar}")
    return "\n".join(out)


def render_series(
    x: Sequence[float],
    y: Sequence[float],
    *,
    x_name: str = "x",
    y_name: str = "y",
    title: Optional[str] = None,
    float_fmt: str = ".2f",
) -> str:
    """Render an (x, y) series as a two-column table (a "figure" in text)."""
    xs = list(x)
    ys = list(y)
    if len(xs) != len(ys):
        raise ValueError("x and y must have the same length")
    return render_table([x_name, y_name], zip(xs, ys), title=title, float_fmt=float_fmt)


def render_kv(pairs: Sequence[tuple], *, title: Optional[str] = None, float_fmt: str = ".2f") -> str:
    """Render key/value pairs, one per line, keys left-aligned."""
    out: List[str] = []
    if title:
        out.append(title)
    key_w = max((len(str(k)) for k, _ in pairs), default=0)
    for k, v in pairs:
        out.append(f"{str(k).ljust(key_w)} : {_fmt_cell(v, float_fmt)}")
    return "\n".join(out)
