"""repro.vec — batched struct-of-arrays fluid transport engine.

The vector engine holds the whole flow population in numpy arrays (rates,
remaining bytes, CSR path->link incidence, per-link capacities), solves
max-min fairness for the entire population per epoch and replaces per-flow
Python bookkeeping with vectorized next-completion / next-breakpoint scans.
The classic per-object engine in :mod:`repro.tcp.fluid` stays as the oracle;
at small populations the vector engine routes its allocation through the
very same :func:`repro.tcp.maxmin.maxmin_allocate` dense solver, which makes
its artefacts byte-identical to the oracle's (pinned by the test suite).

Enable with ``REPRO_ENGINE_VECTOR=1`` or ``FluidNetwork(sim, vector=True)``;
``REPRO_ENGINE_VECTOR=0`` / ``vector=False`` restores the oracle path
verbatim.  See DESIGN.md §12.
"""

from repro.vec.engine import VectorCore
from repro.vec.solver import waterfill_sparse

__all__ = ["VectorCore", "waterfill_sparse"]
