"""Sparse progressive water-filling over a CSR flow->link incidence.

This is the population-scale counterpart of the dense progressive-filling
loop in :func:`repro.tcp.maxmin.maxmin_allocate`.  The math is identical
round for round — the same water levels, the same freeze decisions — but
every reduction runs over the CSR coordinate lists (``lids``/``frow``)
instead of an L x F dense matrix, so one round costs O(nnz) independent of
how many dead links the global link table carries.

Reductions use :func:`numpy.bincount`, which sums sequentially in input
order, so results are deterministic across runs.  They can differ from the
dense loop's BLAS matvec partial sums in the last ulp, which is why the
vector engine only uses this path *above* the population size where it
cross-checks against the oracle (see ``repro.vec.engine._DENSE_MAX_FLOWS``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.core import Observer

__all__ = ["waterfill_sparse"]

#: Relative slack when comparing rates/capacities (== repro.tcp.maxmin._EPS).
_EPS = 1e-9


def waterfill_sparse(
    link_cap: np.ndarray,
    lids: np.ndarray,
    frow: np.ndarray,
    n_flows: int,
    caps: np.ndarray,
    *,
    observer: Optional["Observer"] = None,
) -> Tuple[np.ndarray, int]:
    """Max-min fair rates for ``n_flows`` flows over a sparse incidence.

    Parameters
    ----------
    link_cap:
        Shape ``(M,)`` capacities for the *global* link table.  Links not
        referenced by ``lids`` never influence the result.
    lids, frow:
        Coordinate lists: entry ``i`` says flow ``frow[i]`` traverses link
        ``lids[i]``.  One entry per (flow, link) pair, no duplicates.
    n_flows:
        Number of flows (``frow`` values are in ``[0, n_flows)``).
    caps:
        Shape ``(n_flows,)`` per-flow rate ceilings (``inf`` = uncapped).

    Returns
    -------
    (rates, rounds):
        The allocation and the number of water-filling rounds executed.
    """
    rates = np.zeros(n_flows)
    if n_flows == 0:
        return rates, 0
    m = int(link_cap.shape[0])
    frozen = caps <= 0.0  # zero-cap flows freeze immediately at rate 0
    remaining = link_cap.copy()
    rounds = 0

    while not frozen.all():
        rounds += 1
        active = ~frozen
        amask = active[frow]
        counts = np.bincount(lids[amask], minlength=m).astype(np.float64)
        used = counts > 0.0
        if not used.any():
            break
        # Equal-share water level each congested link could still grant.
        shares = np.full(m, np.inf)
        np.divide(remaining, counts, out=shares, where=used)
        link_level = float(shares[used].min())
        cap_level = float(caps[active].min())
        level = min(link_level, cap_level)

        if cap_level <= link_level * (1.0 + _EPS):
            # Some flows hit their private ceiling first: freeze them at cap.
            hit = active & (caps <= level * (1.0 + _EPS))
            rates[hit] = caps[hit]
            hm = hit[frow]
            remaining -= np.bincount(
                lids[hm], weights=caps[frow[hm]], minlength=m
            )
            frozen |= hit
        else:
            # Some link saturates: freeze all unfrozen flows crossing it.
            saturated = used & (shares <= level * (1.0 + _EPS))
            sm = saturated[lids] & amask
            hit = np.zeros(n_flows, dtype=bool)
            hit[frow[sm]] = True
            hit &= active
            rates[hit] = level
            remaining -= np.bincount(lids[hit[frow]], minlength=m) * level
            frozen |= hit
        np.clip(remaining, 0.0, None, out=remaining)

    if observer is not None:
        observer.count("vec.solver_rounds", rounds)
    return rates, rounds
