"""Struct-of-arrays core driving :class:`repro.tcp.fluid.FluidNetwork`.

When a ``FluidNetwork`` is constructed with ``vector=True`` (or
``REPRO_ENGINE_VECTOR=1``), every fluid tick is delegated to a
:class:`VectorCore`.  The core keeps the *entire* active population in numpy
arrays:

* per-flow: total/delivered bytes, current rate, activation time and the
  slow-start ramp parameters (rtt, w0, w_max, rounds-to-peak);
* path->link incidence as an append-only CSR (``indptr``/``link_idx``) over
  a persistent global link table;
* per-link: cached capacities for constant traces, a live
  :class:`~repro.net.trace.TraceCursor` for the (few) time-varying ones,
  and an active-flow refcount.

One tick then mirrors the oracle's steps with array ops: accrue bytes for
the whole population with one fused ``delivered = min(size, delivered +
rate*dt)`` (valid because every row's last accrual time is the previous
tick — new rows carry rate 0), detect completions with one vectorized scan,
re-solve max-min fairness for everyone at once, and compute the next wake-up
with vectorized next-completion / next-ramp-increase scans plus the dynamic
trace cursors.  The simulator's event queue is only touched at epoch
boundaries — exactly one pending ``fluid-tick`` event, as in the oracle.

Byte-identity contract: rows are append-only in activation order (dead rows
are tombstoned and compacted without reordering), so completion callbacks
fire in the oracle's dict order and the solver sees columns in the oracle's
order.  At populations up to ``_DENSE_MAX_FLOWS`` the allocation is routed
through the *same* dense :func:`repro.tcp.maxmin.maxmin_allocate` call the
oracle makes, making artefacts bit-identical; above it the sparse
water-filling of :mod:`repro.vec.solver` takes over (same math, reductions
ordered by CSR position).

Flow objects stay lazily consistent: the core installs a sync hook on each
:class:`~repro.tcp.flow.FluidFlow` so external readers (watchdogs, stripe
windows, probes) that touch ``flow.delivered`` / ``flow.rate`` mid-flight
transparently materialise the row's array state.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from repro.net.link import Link
from repro.net.trace import TraceCursor
from repro.sim.errors import TransferError
from repro.tcp.flow import FluidFlow
from repro.tcp.maxmin import maxmin_allocate
from repro.vec.solver import waterfill_sparse

__all__ = ["VectorCore"]

#: Population size up to which the allocation goes through the oracle's
#: dense maxmin_allocate call (bit-identical artefacts); above it the sparse
#: water-filling solver takes over.
_DENSE_MAX_FLOWS = 384

#: Mirrors repro.tcp.fluid._COMPLETION_SLACK (import deferred: fluid imports
#: this module lazily, keeping the constant local avoids a cycle at runtime).
_COMPLETION_SLACK = 1e-3

#: Slow-start round mapping slack (== SlowStartRamp._ROUND_EPS).
_ROUND_EPS = 1e-9

_GROW_MIN = 64


def _grow(arr: np.ndarray, need: int) -> np.ndarray:
    """Return ``arr`` or an enlarged copy with capacity >= ``need``."""
    cap = arr.shape[0]
    if need <= cap:
        return arr
    new_cap = max(_GROW_MIN, cap * 2, need)
    out = np.empty(new_cap, dtype=arr.dtype)
    out[:cap] = arr
    return out


class VectorCore:
    """Batched population state for one :class:`FluidNetwork`."""

    def __init__(self, net) -> None:  # net: repro.tcp.fluid.FluidNetwork
        self._net = net
        # --- per-flow SoA (capacity-doubling arrays, first _n rows live) ---
        self._size = np.empty(_GROW_MIN)
        self._deliv = np.empty(_GROW_MIN)
        self._rate = np.empty(_GROW_MIN)
        self._act = np.empty(_GROW_MIN)
        self._rtt = np.empty(_GROW_MIN)
        self._w0 = np.empty(_GROW_MIN)
        self._wmax = np.empty(_GROW_MIN)
        self._rtp = np.empty(_GROW_MIN)
        self._has_ramp = np.empty(_GROW_MIN, dtype=bool)
        self._alive = np.empty(_GROW_MIN, dtype=bool)
        self._flows: List[Optional[FluidFlow]] = []
        self._row_of: Dict[int, int] = {}
        self._n = 0
        self._dead = 0
        #: Flows activated since the last tick, not yet materialised as
        #: rows.  Bulk-appending at tick start amortises the per-row numpy
        #: scalar writes across the whole batch (a same-instant tick is
        #: always pending when this list is non-empty).
        self._pending: List[FluidFlow] = []
        #: Shared capacity of all per-flow arrays (they grow in lockstep,
        #: so one comparison per add_flow covers every array).
        self._row_cap = _GROW_MIN
        # --- CSR incidence: row r uses link_idx[indptr[r]:indptr[r+1]] ---
        self._indptr = np.zeros(_GROW_MIN + 1, dtype=np.int64)
        self._link_idx = np.empty(_GROW_MIN, dtype=np.int64)
        self._nnz = 0
        # --- global link table (persistent; grows only) ---
        self._lid: Dict[str, int] = {}
        self._links: List[Link] = []
        self._link_cap = np.empty(_GROW_MIN)
        self._link_refs = np.zeros(_GROW_MIN, dtype=np.int64)
        self._dyn: Dict[int, TraceCursor] = {}
        #: Simulation time the delivered array was last accrued to.
        self._accrued_at = float(net._sim.now)

    # ------------------------------------------------------------------ #
    # population maintenance (called by FluidNetwork)
    # ------------------------------------------------------------------ #
    def _grow_rows(self, need: int) -> None:
        self._size = _grow(self._size, need)
        self._deliv = _grow(self._deliv, need)
        self._rate = _grow(self._rate, need)
        self._act = _grow(self._act, need)
        self._rtt = _grow(self._rtt, need)
        self._w0 = _grow(self._w0, need)
        self._wmax = _grow(self._wmax, need)
        self._rtp = _grow(self._rtp, need)
        self._has_ramp = _grow(self._has_ramp, need)
        self._alive = _grow(self._alive, need)
        self._row_cap = int(self._size.shape[0])
        self._indptr = _grow(self._indptr, self._row_cap + 1)

    def add_flow(self, flow: FluidFlow) -> None:
        """Buffer a just-activated flow; rows materialise at the next tick.

        A same-instant ``fluid-tick`` is always scheduled right after this
        call (the network requests one on every activation), so the buffer
        is flushed before any allocation or completion logic can observe
        the population.  Until then the flow's own scalars are authoritative
        (rate 0, delivered as at activation), so readers stay consistent.
        """
        self._pending.append(flow)

    def _flush_pending(self) -> None:
        """Materialise buffered flows as rows, in activation order."""
        pend = self._pending
        row0 = self._n
        need = row0 + len(pend)
        if need > self._row_cap:
            self._grow_rows(need)
        intern = self._intern_link
        row_of = self._row_of
        flows = self._flows
        size_l: List[float] = []
        deliv_l: List[float] = []
        act_l: List[float] = []
        rtt_l: List[float] = []
        w0_l: List[float] = []
        wmax_l: List[float] = []
        rtp_l: List[float] = []
        ramp_l: List[bool] = []
        deg_l: List[int] = []
        lids_l: List[int] = []
        row = row0
        for flow in pend:
            lids = [intern(link) for link in flow.route.links]
            # Refcounts go up per flow (not deferred to the batch end) so
            # _intern_link's in-use conflict check sees earlier flows of
            # this same batch.  Route links are name-unique, and interning
            # may have reallocated the refs array, so re-read it here.
            refs = self._link_refs
            for l in lids:
                refs[l] += 1
            lids_l.extend(lids)
            deg_l.append(len(lids))
            size_l.append(flow.size)
            deliv_l.append(flow._delivered)
            act_l.append(
                flow.activated_at if flow.activated_at is not None else 0.0
            )
            ramp = flow.ramp
            if ramp is None:
                ramp_l.append(False)
                rtt_l.append(1.0)
                w0_l.append(1.0)
                wmax_l.append(1.0)
                rtp_l.append(0.0)
            else:
                ramp_l.append(True)
                rtt_l.append(ramp.rtt)
                w0_l.append(ramp.initial_window)
                wmax_l.append(ramp.max_window)
                rtp_l.append(float(ramp.rounds_to_peak()))
            flows.append(flow)
            row_of[flow.id] = row
            flow._sync = self._sync_flow
            row += 1
        pend.clear()

        self._size[row0:row] = size_l
        self._deliv[row0:row] = deliv_l
        self._rate[row0:row] = 0.0
        self._act[row0:row] = act_l
        self._rtt[row0:row] = rtt_l
        self._w0[row0:row] = w0_l
        self._wmax[row0:row] = wmax_l
        self._rtp[row0:row] = rtp_l
        self._has_ramp[row0:row] = ramp_l
        self._alive[row0:row] = True

        start = self._nnz
        end = start + len(lids_l)
        self._link_idx = _grow(self._link_idx, end)
        self._link_idx[start:end] = lids_l
        self._indptr[row0 + 1 : row + 1] = start + np.cumsum(deg_l)
        self._nnz = end
        self._n = row

    def detach_flow(self, flow: FluidFlow) -> None:
        """Materialise and drop an active flow's row (abort path)."""
        row = self._row_of.get(flow.id)
        if row is None:
            # Activated but not yet flushed (aborted between the activation
            # event and the same-instant tick): drop it from the buffer.
            pend = self._pending
            for i, f in enumerate(pend):
                if f is flow:
                    del pend[i]
                    break
            return
        self._sync_flow(flow)
        self._release_row(row)
        flow._sync = None

    def _release_row(self, row: int) -> None:
        flow = self._flows[row]
        assert flow is not None
        del self._row_of[flow.id]
        self._flows[row] = None
        self._alive[row] = False
        self._rate[row] = 0.0
        s, e = int(self._indptr[row]), int(self._indptr[row + 1])
        self._link_refs[self._link_idx[s:e]] -= 1
        self._dead += 1

    def _sync_flow(self, flow: FluidFlow) -> None:
        """Sync hook: copy a row's array state back onto the flow object."""
        row = self._row_of.get(flow.id)
        if row is None:
            return
        flow._delivered = float(self._deliv[row])
        flow._rate = float(self._rate[row])
        flow._last_update = self._accrued_at

    # ------------------------------------------------------------------ #
    # link table
    # ------------------------------------------------------------------ #
    def _intern_link(self, link: Link) -> int:
        lid = self._lid.get(link.name)
        if lid is None:
            lid = len(self._links)
            self._links.append(link)
            self._link_cap = _grow(self._link_cap, lid + 1)
            self._link_refs = _grow(self._link_refs, lid + 1)
            self._link_refs[lid] = 0
            self._lid[link.name] = lid
            self._install_link(lid, link)
            return lid
        stored = self._links[lid]
        if stored is link or stored.trace is link.trace:
            return lid
        if self._link_refs[lid] > 0:
            if stored.trace != link.trace:
                raise TransferError(
                    f"two distinct links named {stored.name!r} with different "
                    "capacity traces are in use by concurrent flows; link names "
                    "must identify a unique capacity constraint"
                )
            return lid
        # No active flow uses the old entry: adopt the new link's trace
        # (mirrors the oracle replacing a stale cursor after e.g. an outage
        # rebuild swapped in a modified trace under the same link name).
        self._links[lid] = link
        self._install_link(lid, link)
        return lid

    def _install_link(self, lid: int, link: Link) -> None:
        trace = link.trace
        if trace.n_pieces == 1:
            # Constant trace: capacity never changes, no cursor needed.
            self._dyn.pop(lid, None)
            self._link_cap[lid] = float(trace.values[0])
        else:
            self._dyn[lid] = TraceCursor(trace)
            self._link_cap[lid] = float(trace.values[0])

    # ------------------------------------------------------------------ #
    # the tick
    # ------------------------------------------------------------------ #
    def tick(self) -> None:
        """One fluid tick over the whole population (mirrors the oracle)."""
        net = self._net
        sim = net._sim
        now = sim.now
        net._tick_event = None
        obs = net._obs
        if obs is not None:
            prev = net._last_tick_at
            if prev is not None and now > prev:
                obs.span("tick", "fluid-epoch", prev, now, flows=len(net._active))
            net._last_tick_at = now
            obs.count("engine.ticks")

        # 1. Accrue bytes at the rates chosen at the previous tick.  Every
        # live row's rate was assigned at the previous tick (rows added since
        # carry rate 0), so one global dt is exact.  Buffered activations
        # flush afterwards — their rows also enter at rate 0, before the
        # completion scan, exactly where the oracle would see them.
        n = self._n
        if n and now > self._accrued_at:
            dt = now - self._accrued_at
            d = self._deliv[:n]
            np.minimum(self._size[:n], d + self._rate[:n] * dt, out=d)
        self._accrued_at = now
        if self._pending:
            self._flush_pending()
            n = self._n

        # 2. Detect and finalise completions in activation (row) order;
        # callbacks run after removal, exactly as in the oracle.
        finished: List[FluidFlow] = []
        if n:
            done_rows = np.flatnonzero(
                self._alive[:n]
                & (self._size[:n] - self._deliv[:n] <= _COMPLETION_SLACK)
            )
            if done_rows.size > 8:
                # Batch the array-side release; the per-flow loop below
                # keeps the oracle's removal/callback ordering.
                degd = (
                    self._indptr[done_rows + 1] - self._indptr[done_rows]
                )
                offs = np.arange(int(degd.sum()), dtype=np.int64) - np.repeat(
                    np.cumsum(degd) - degd, degd
                )
                dlids = self._link_idx[
                    np.repeat(self._indptr[done_rows], degd) + offs
                ]
                counts = np.bincount(dlids, minlength=len(self._links))
                self._link_refs[: counts.size] -= counts
                self._alive[done_rows] = False
                self._rate[done_rows] = 0.0
                self._dead += int(done_rows.size)
                for r in done_rows:
                    flow = self._flows[int(r)]
                    assert flow is not None
                    finished.append(flow)
                    del net._active[flow.id]
                    del self._row_of[flow.id]
                    self._flows[int(r)] = None
                    flow._complete(now)
                    net.completed_count += 1
            else:
                for r in done_rows:
                    flow = self._flows[int(r)]
                    assert flow is not None
                    finished.append(flow)
                    del net._active[flow.id]
                    self._release_row(int(r))
                    flow._complete(now)
                    net.completed_count += 1
        for flow in finished:
            if flow.on_complete is not None:
                flow.on_complete(flow)

        # A callback may have scheduled a same-instant tick; drop it.
        if net._tick_event is not None and net._tick_event.active:
            sim.cancel(net._tick_event)
            net._tick_event = None

        if not net._active:
            return

        if self._dead > _GROW_MIN and self._dead * 2 > self._n:
            self._compact()
            if obs is not None:
                obs.count("vec.compactions")

        # 3. Re-solve the allocation over the whole population.  Gather the
        # population's CSR coordinates (activation order): with no
        # tombstones the stored CSR *is* the gather; otherwise mask dead
        # rows' segments out of it.
        n = self._n
        deg = self._indptr[1 : n + 1] - self._indptr[:n]
        if self._dead == 0:
            n_flows = n
            rows = np.arange(n, dtype=np.int64)
            lids = self._link_idx[: self._nnz]
            frow = np.repeat(rows, deg)
        else:
            alive = self._alive[:n]
            rows = np.flatnonzero(alive)
            n_flows = int(rows.size)
            degr = deg[rows]
            keep_nz = np.repeat(alive, deg)
            lids = self._link_idx[: self._nnz][keep_nz]
            frow = np.repeat(np.arange(n_flows, dtype=np.int64), degr)
        caps = self._flow_caps(rows, now)

        # Refresh time-varying link capacities through their cursors.
        for lid, cursor in sorted(self._dyn.items()):
            if self._link_refs[lid] > 0:
                self._link_cap[lid] = cursor.value_at(now)

        if obs is not None:
            obs.gauge("vec.population", float(n_flows))
            n_used = int(np.count_nonzero(self._link_refs[: len(self._links)] > 0))
            obs.span("alloc", "solve", now, now, flows=n_flows, links=n_used)

        if n_flows <= _DENSE_MAX_FLOWS:
            # Small population: run the oracle's own dense solver on the
            # oracle's own inputs — bit-identical rates by construction.
            ulinks, inv = np.unique(lids, return_inverse=True)
            incidence = np.zeros((ulinks.size, n_flows), dtype=bool)
            incidence[inv, frow] = True
            link_counts = np.bincount(inv, minlength=ulinks.size)
            disjoint = bool(link_counts.max(initial=0) <= 1)
            rates = maxmin_allocate(
                self._link_cap[ulinks],
                incidence,
                caps,
                validate=False,
                fast=disjoint,
                observer=obs,
            )
            if obs is not None:
                obs.count("vec.solve_dense")
        else:
            m = len(self._links)
            rates, _ = waterfill_sparse(
                self._link_cap[:m], lids, frow, n_flows, caps, observer=obs
            )
            if obs is not None:
                obs.count("vec.solve_sparse")
        self._rate[rows] = rates

        # 4. Next wake-up: first completion, ramp increase or trace change.
        next_time = float("inf")
        pos = rates > 0.0
        if pos.any():
            t_done = now + (self._size[rows][pos] - self._deliv[rows][pos]) / rates[pos]
            next_time = float(t_done.min())
        ramp_next = self._next_cap_increase(rows, now)
        if ramp_next < next_time:
            next_time = ramp_next
        for lid, cursor in sorted(self._dyn.items()):
            if self._link_refs[lid] > 0:
                nxt = cursor.next_change_after(now)
                if nxt < next_time:
                    next_time = nxt

        if math.isinf(next_time):
            raise TransferError(
                f"transfer deadlock at t={now:.3f}: {n_flows} active flow(s) "
                "have zero rate and no future capacity or window changes"
            )
        min_step = 1e-9 * max(now, 1.0)
        net._tick_event = sim.schedule_at(
            max(next_time, now + min_step), net._tick_cb, name="fluid-tick"
        )

    # ------------------------------------------------------------------ #
    # vectorized ramp math (bit-identical to SlowStartRamp.cap_at /
    # next_increase_after for elapsed >= 0)
    # ------------------------------------------------------------------ #
    def _flow_caps(self, rows: np.ndarray, now: float) -> np.ndarray:
        rtt = self._rtt[rows]
        elapsed = now - self._act[rows]
        k = np.floor(elapsed / rtt + _ROUND_EPS)
        np.minimum(k, self._rtp[rows], out=k)
        window = self._w0[rows] * np.exp2(k)
        caps = np.minimum(window, self._wmax[rows]) / rtt
        caps[~self._has_ramp[rows]] = np.inf
        return caps

    def _next_cap_increase(self, rows: np.ndarray, now: float) -> float:
        ramped = self._has_ramp[rows]
        if not ramped.any():
            return float("inf")
        r = rows[ramped]
        rtt = self._rtt[r]
        k = np.floor((now - self._act[r]) / rtt + _ROUND_EPS) + 1.0
        nxt = self._act[r] + k * rtt
        nxt[k > self._rtp[r]] = np.inf
        return float(nxt.min())

    # ------------------------------------------------------------------ #
    # compaction
    # ------------------------------------------------------------------ #
    def _compact(self) -> None:
        """Drop tombstoned rows, preserving activation order."""
        n = self._n
        keep = self._alive[:n]
        k = int(np.count_nonzero(keep))
        deg = self._indptr[1 : n + 1] - self._indptr[:n]
        nnz_keep = np.repeat(keep, deg)
        new_link_idx = self._link_idx[: self._nnz][nnz_keep]
        new_deg = deg[keep]
        self._indptr[0] = 0
        self._indptr[1 : k + 1] = np.cumsum(new_deg)
        self._nnz = int(new_link_idx.size)
        self._link_idx[: self._nnz] = new_link_idx
        for arr in (
            self._size, self._deliv, self._rate, self._act,
            self._rtt, self._w0, self._wmax, self._rtp,
        ):
            arr[:k] = arr[:n][keep]
        self._has_ramp[:k] = self._has_ramp[:n][keep]
        self._alive[:k] = True
        flows = [f for f in self._flows if f is not None]
        assert len(flows) == k
        self._flows = flows
        for i, f in enumerate(flows):
            self._row_of[f.id] = i
        self._n = k
        self._dead = 0
