"""Sanitizer self-check battery (``repro selfcheck``).

A sanitizer that silently stopped firing is worse than none, so this module
*proves* the instrumentation works in the current installation: every
``QA-R*`` invariant is exercised against a deliberately broken input (the
check must fire) and against a healthy simulation (the check must stay
silent).  All injections run in ``mode="collect"`` on throwaway kernels, so
a self-check never perturbs real state.

This module imports the simulator stack; import it lazily (the ``repro.qa``
package intentionally does not pull it in at import time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

import numpy as np

from repro.qa.sanitize import Sanitizer

__all__ = ["CheckResult", "run_selfcheck", "render_results"]


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one self-check."""

    name: str
    passed: bool
    detail: str


@dataclass
class _StubFlow:
    """Minimal flow-shaped object for feeding the sanitizer directly."""

    id: int
    name: str
    delivered: float
    size: float
    rate: float


def _expect_violation(sanitizer: Sanitizer, code: str, context: str) -> CheckResult:
    codes = [v.code for v in sanitizer.violations]
    if codes and codes[-1] == code:
        return CheckResult(
            name=context, passed=True, detail=f"{code} fired as expected"
        )
    return CheckResult(
        name=context,
        passed=False,
        detail=f"expected {code} to fire, sanitizer recorded {codes!r}",
    )


# --------------------------------------------------------------------------- #
# individual checks
# --------------------------------------------------------------------------- #
def _check_event_monotonicity() -> CheckResult:
    """QA-R001 must catch an event pushed behind the clock's back."""
    from repro.sim.simulator import Simulator

    sanitizer = Sanitizer(mode="collect")
    sim = Simulator(start_time=0.0, sanitizer=sanitizer)
    sim.schedule_at(2.0, lambda: None, name="legitimate")
    # Bypass schedule_at's guard the way only buggy code could: push straight
    # onto the queue once the clock has already passed the event time.
    sim.schedule_at(
        3.0,
        lambda: sim._queue.push(1.0, lambda: None, name="backdated"),  # qa: ignore[QA-S202]
        name="injector",
    )
    sim.run()
    return _expect_violation(sanitizer, "QA-R001", "event-time-monotonic fires")


def _check_flow_conservation() -> CheckResult:
    """QA-R002 must catch a delivered-bytes regression."""
    sanitizer = Sanitizer(mode="collect")
    flow = _StubFlow(id=1, name="stub", delivered=500.0, size=1000.0, rate=10.0)
    sanitizer.check_flow_progress(flow, now=1.0)
    flow.delivered = 400.0  # regression: bytes "undelivered"
    sanitizer.check_flow_progress(flow, now=2.0)
    return _expect_violation(sanitizer, "QA-R002", "flow-byte-conservation fires")


def _check_overdelivery() -> CheckResult:
    """QA-R002 must also catch delivery beyond the requested size."""
    sanitizer = Sanitizer(mode="collect")
    flow = _StubFlow(id=2, name="stub2", delivered=1500.0, size=1000.0, rate=10.0)
    sanitizer.check_flow_progress(flow, now=1.0)
    return _expect_violation(sanitizer, "QA-R002", "flow over-delivery fires")


def _check_link_capacity() -> CheckResult:
    """QA-R004 must catch an oversubscribed link."""
    sanitizer = Sanitizer(mode="collect")
    capacities = np.array([100.0])
    incidence = np.array([[True, True]])
    caps = np.array([np.inf, np.inf])
    rates = np.array([80.0, 80.0])  # 160 > 100: infeasible
    sanitizer.check_allocation(
        0.0, capacities, incidence, caps, rates, ["access:stub"]
    )
    return _expect_violation(sanitizer, "QA-R004", "link-capacity-respected fires")


def _check_allocation_fairness() -> CheckResult:
    """QA-R003 must catch a feasible but non-max-min allocation."""
    sanitizer = Sanitizer(mode="collect")
    capacities = np.array([100.0])
    incidence = np.array([[True, True]])
    caps = np.array([np.inf, np.inf])
    rates = np.array([10.0, 20.0])  # link not full, flow 0 not bottlenecked
    sanitizer.check_allocation(
        0.0, capacities, incidence, caps, rates, ["access:stub"]
    )
    return _expect_violation(sanitizer, "QA-R003", "maxmin-allocation-valid fires")


@dataclass
class _StubOutcome:
    winner: object
    probes: Tuple[object, ...]
    started_at: float
    decided_at: float
    probe_bytes: float


@dataclass
class _StubPath:
    label: str


def _check_probe_accounting() -> CheckResult:
    """QA-R005 must catch a probe phase that ends before it starts."""
    sanitizer = Sanitizer(mode="collect")
    outcome = _StubOutcome(
        winner=_StubPath(label="direct"),
        probes=(),
        started_at=10.0,
        decided_at=9.0,  # decided before started
        probe_bytes=100_000.0,
    )
    sanitizer.check_probe_outcome(outcome, ["direct"])
    return _expect_violation(sanitizer, "QA-R005", "probe-accounting fires")


def _check_fault_window_blackout() -> CheckResult:
    """QA-R006 must catch traffic crossing a registered blackout window."""
    sanitizer = Sanitizer(mode="collect")
    sanitizer.watch_fault_windows({"wan:stub": [(5.0, 15.0)]})
    capacities = np.array([100.0])
    incidence = np.array([[True]])
    caps = np.array([np.inf])
    rates = np.array([50.0])  # link is supposed to be dead at t=10
    sanitizer.check_allocation(10.0, capacities, incidence, caps, rates, ["wan:stub"])
    return _expect_violation(sanitizer, "QA-R006", "fault-window-blackout fires")


@dataclass
class _StubRecoveryEvent:
    time: float
    kind: str
    bytes_received: float


@dataclass
class _StubSessionResult:
    client: str
    server: str
    resource: str
    requested_at: float
    completed_at: float
    remainder_started_at: object
    size: float
    recovery_events: Tuple[object, ...]
    bytes_received: float


def _check_recovery_bytes_monotone() -> CheckResult:
    """QA-R007 must catch a recovery timeline whose byte count regresses."""
    sanitizer = Sanitizer(mode="collect")
    result = _StubSessionResult(
        client="Italy",
        server="eBay",
        resource="/download",
        requested_at=0.0,
        completed_at=100.0,
        remainder_started_at=None,
        size=4.0e6,
        recovery_events=(
            _StubRecoveryEvent(time=10.0, kind="stall", bytes_received=2.0e6),
            _StubRecoveryEvent(time=20.0, kind="failover", bytes_received=1.0e6),
        ),
        bytes_received=4.0e6,
    )
    sanitizer.check_session_result(result)
    return _expect_violation(sanitizer, "QA-R007", "recovery-bytes-monotone fires")


def _check_clean_run() -> CheckResult:
    """A healthy two-flow contention scenario must produce zero violations."""
    from repro.net.link import Link
    from repro.net.route import Route
    from repro.net.trace import CapacityTrace
    from repro.sim.simulator import Simulator
    from repro.tcp.fluid import FluidNetwork

    sanitizer = Sanitizer(mode="raise")
    sim = Simulator(sanitizer=sanitizer)
    net = FluidNetwork(sim)
    shared = Link(
        "access:stub", "stub", "stub",
        CapacityTrace([0.0, 5.0], [1000.0, 400.0]), delay=0.01,
    )
    tail = Link("wan:stub", "src", "stub", CapacityTrace([0.0], [800.0]), delay=0.02)
    route_a = Route(links=(shared, tail))
    route_b = Route(links=(shared,))
    net.start_flow(route_a, 4000.0, name="a")
    net.start_flow(route_b, 2500.0, name="b")
    sim.run()
    if net.completed_count != 2:
        return CheckResult(
            name="clean run stays silent",
            passed=False,
            detail=f"expected 2 completions, got {net.completed_count}",
        )
    if sanitizer.violations:
        return CheckResult(
            name="clean run stays silent",
            passed=False,
            detail=f"unexpected violations: {[v.code for v in sanitizer.violations]}",
        )
    return CheckResult(
        name="clean run stays silent",
        passed=True,
        detail=f"{sanitizer.checks_run} checks, 0 violations",
    )


_CHECKS: Tuple[Callable[[], CheckResult], ...] = (
    _check_event_monotonicity,
    _check_flow_conservation,
    _check_overdelivery,
    _check_link_capacity,
    _check_allocation_fairness,
    _check_probe_accounting,
    _check_fault_window_blackout,
    _check_recovery_bytes_monotone,
    _check_clean_run,
)


def run_selfcheck() -> List[CheckResult]:
    """Run the full battery; a check that raises counts as failed."""
    results: List[CheckResult] = []
    for check in _CHECKS:
        try:
            results.append(check())
        except Exception as exc:  # noqa: BLE001 - report, don't crash the CLI
            results.append(
                CheckResult(
                    name=check.__name__.replace("_check_", "").replace("_", " "),
                    passed=False,
                    detail=f"raised {type(exc).__name__}: {exc}",
                )
            )
    return results


def render_results(results: List[CheckResult]) -> str:
    """Render the battery outcome as aligned terminal text."""
    width = max(len(r.name) for r in results) if results else 0
    lines = [
        f"{'ok' if r.passed else 'FAIL':4s} {r.name:<{width}s}  {r.detail}"
        for r in results
    ]
    n_fail = sum(1 for r in results if not r.passed)
    lines.append(
        f"selfcheck: {len(results) - n_fail}/{len(results)} invariant checks healthy"
    )
    return "\n".join(lines)
