"""Runtime invariant sanitizer for the simulation stack.

Opt in either per-kernel (``Simulator(sanitize=True)``) or process-wide with
the ``REPRO_SANITIZE`` environment variable (``1`` / ``true`` / ``on``).
When active, the event loop, the fluid transport engine and the transfer
session call into one :class:`Sanitizer`, which validates the ``QA-R*``
invariants of :mod:`repro.qa.rules` *read-only*: a sanitized run performs
byte-identical simulation work, it merely observes it.

A violated invariant produces a structured :class:`Violation` diagnostic and
(by default) raises :class:`InvariantViolation` - loudly, at the first
corrupt state, instead of letting a silent accounting bug distort the
reproduction's headline statistics.  ``mode="collect"`` records violations
without raising, which the self-check battery and tests use.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.qa.rules import INVARIANTS
from repro.qa.tolerances import (
    BYTE_CONSERVATION_SLACK,
    CAPACITY_RTOL,
    PROBE_OVERSHOOT_SLACK,
    RATE_ATOL,
)
from repro.sim.errors import SimulationError

__all__ = [
    "Violation",
    "InvariantViolation",
    "Sanitizer",
    "sanitize_enabled_from_env",
]

_ENV_VAR = "REPRO_SANITIZE"
_TRUTHY = {"1", "true", "yes", "on"}


def sanitize_enabled_from_env(environ: Optional[Dict[str, str]] = None) -> bool:
    """True when ``REPRO_SANITIZE`` requests process-wide sanitizing."""
    env = os.environ if environ is None else environ
    return env.get(_ENV_VAR, "").strip().lower() in _TRUTHY


@dataclass(frozen=True)
class Violation:
    """Structured diagnostic for one violated runtime invariant."""

    code: str
    invariant: str
    sim_time: float
    subject: str
    detail: str
    measured: Optional[float] = None
    limit: Optional[float] = None

    def format(self) -> str:
        """Human-readable multi-line rendering."""
        head = (
            f"{self.code} [{self.invariant}] at t={self.sim_time:.9g}: "
            f"{self.detail}"
        )
        lines = [head, f"    subject: {self.subject}"]
        if self.measured is not None or self.limit is not None:
            lines.append(
                f"    measured={self.measured!r} limit={self.limit!r}"
            )
        hint = INVARIANTS[self.code].hint if self.code in INVARIANTS else ""
        if hint:
            lines.append(f"    hint: {hint}")
        return "\n".join(lines)


class InvariantViolation(SimulationError):
    """Raised when a runtime invariant check fails (``mode="raise"``)."""

    def __init__(self, violation: Violation):
        super().__init__(violation.format())
        self.violation = violation


@dataclass
class Sanitizer:
    """Read-only runtime invariant checker.

    Parameters
    ----------
    mode:
        ``"raise"`` (default) raises :class:`InvariantViolation` at the first
        violation; ``"collect"`` records silently in :attr:`violations`.
    """

    mode: str = "raise"
    violations: List[Violation] = field(default_factory=list)
    checks_run: int = 0
    _last_delivered: Dict[int, float] = field(default_factory=dict)
    #: Link name -> blackout [start, end) spans registered by the chaos
    #: subsystem; :meth:`check_allocation` enforces QA-R006 against them.
    fault_windows: Dict[str, List[Any]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.mode not in ("raise", "collect"):
            raise ValueError(f"mode must be 'raise' or 'collect', got {self.mode!r}")

    # ------------------------------------------------------------------ #
    def _report(
        self,
        code: str,
        sim_time: float,
        subject: str,
        detail: str,
        *,
        measured: Optional[float] = None,
        limit: Optional[float] = None,
    ) -> None:
        violation = Violation(
            code=code,
            invariant=INVARIANTS[code].name,
            sim_time=float(sim_time),
            subject=subject,
            detail=detail,
            measured=measured,
            limit=limit,
        )
        self.violations.append(violation)
        if self.mode == "raise":
            raise InvariantViolation(violation)

    # ------------------------------------------------------------------ #
    # QA-R001: event-time monotonicity
    # ------------------------------------------------------------------ #
    def check_event_time(self, now: float, event_time: float, name: str = "") -> None:
        """The event loop is about to run an event; its time must be >= now."""
        self.checks_run += 1
        if event_time < now or math.isnan(event_time):
            self._report(
                "QA-R001",
                now,
                name or "<event>",
                f"event scheduled at t={event_time!r} executed with clock at "
                f"t={now!r} (time would move backwards)",
                measured=event_time,
                limit=now,
            )

    # ------------------------------------------------------------------ #
    # QA-R002: flow byte conservation
    # ------------------------------------------------------------------ #
    def check_flow_progress(self, flow: Any, now: float) -> None:
        """Delivered bytes are monotone, bounded by size; rate is sane."""
        self.checks_run += 1
        delivered = float(flow.delivered)
        size = float(flow.size)
        rate = float(flow.rate)
        name = str(flow.name)
        previous = self._last_delivered.get(flow.id)
        if previous is not None and delivered < previous - BYTE_CONSERVATION_SLACK:
            self._report(
                "QA-R002",
                now,
                name,
                f"delivered bytes decreased from {previous!r} to {delivered!r}",
                measured=delivered,
                limit=previous,
            )
        if delivered > size + BYTE_CONSERVATION_SLACK:
            self._report(
                "QA-R002",
                now,
                name,
                f"delivered {delivered!r} bytes but only {size!r} were requested",
                measured=delivered,
                limit=size,
            )
        if rate < -RATE_ATOL or not math.isfinite(rate):
            self._report(
                "QA-R002",
                now,
                name,
                f"flow rate {rate!r} is negative or non-finite",
                measured=rate,
                limit=0.0,
            )
        self._last_delivered[flow.id] = delivered

    def forget_flow(self, flow_id: int) -> None:
        """Drop progress tracking for a finished flow."""
        self._last_delivered.pop(flow_id, None)

    # ------------------------------------------------------------------ #
    # QA-R006: blackout fault windows
    # ------------------------------------------------------------------ #
    def watch_fault_windows(self, spans_by_link: Dict[str, Any]) -> None:
        """Register blackout spans for QA-R006 enforcement.

        ``spans_by_link`` maps link names to ``(start, end)`` pairs during
        which the link is fully failed (see
        :func:`repro.chaos.faults.blackout_spans`).  Later registrations
        extend earlier ones, so a sanitizer shared across several faulted
        universes accumulates every window it must police.
        """
        for name, spans in spans_by_link.items():
            self.fault_windows.setdefault(str(name), []).extend(
                (float(t0), float(t1)) for t0, t1 in spans
            )

    # ------------------------------------------------------------------ #
    # QA-R003 + QA-R004: allocation validity and link capacity
    # ------------------------------------------------------------------ #
    def check_allocation(
        self,
        now: float,
        capacities: np.ndarray,
        incidence: np.ndarray,
        caps: np.ndarray,
        rates: np.ndarray,
        link_names: Sequence[str],
    ) -> None:
        """Validate a freshly installed rate allocation.

        QA-R006 (blackout fault windows, when any are registered) runs
        first, then QA-R004 (per-link capacity) with a precise per-link
        diagnostic, then QA-R003 runs the full max-min post-condition
        (feasibility + cap-respect + fairness).
        """
        self.checks_run += 1
        load = incidence @ rates if incidence.size else np.zeros(len(link_names))
        if self.fault_windows:
            for i, name in enumerate(link_names):
                spans = self.fault_windows.get(str(name))
                if not spans:
                    continue
                if not any(t0 <= now < t1 for t0, t1 in spans):
                    continue
                slack_i = CAPACITY_RTOL * max(float(capacities[i]), 1.0)
                if capacities[i] > slack_i:
                    self._report(
                        "QA-R006",
                        now,
                        str(name),
                        f"link carries {capacities[i]!r} bytes/s of capacity "
                        "inside a registered blackout fault window",
                        measured=float(capacities[i]),
                        limit=slack_i,
                    )
                    return
                if load[i] > RATE_ATOL:
                    self._report(
                        "QA-R006",
                        now,
                        str(name),
                        f"{load[i]!r} bytes/s of traffic crossed the link "
                        "inside a registered blackout fault window",
                        measured=float(load[i]),
                        limit=RATE_ATOL,
                    )
                    return
        slack = CAPACITY_RTOL * np.maximum(capacities, 1.0)
        over = np.flatnonzero(load > capacities + slack)
        if over.size:
            worst = int(over[np.argmax(load[over] - capacities[over])])
            self._report(
                "QA-R004",
                now,
                str(link_names[worst]),
                f"link load {load[worst]!r} bytes/s exceeds capacity "
                f"{capacities[worst]!r} bytes/s "
                f"({over.size} oversubscribed link(s) total)",
                measured=float(load[worst]),
                limit=float(capacities[worst]),
            )
            return  # the fairness check would only repeat the same failure
        # Local import: repro.tcp pulls in the fluid engine, which imports the
        # simulator; importing it at module scope would create a cycle.
        from repro.tcp.maxmin import verify_maxmin

        if not verify_maxmin(capacities, incidence, rates, caps, rtol=CAPACITY_RTOL):
            self._report(
                "QA-R003",
                now,
                f"{rates.size} flow(s) over {len(link_names)} link(s)",
                "installed rate vector fails the max-min fairness "
                "post-condition (feasible but not cap-respecting or not "
                "max-min fair)",
            )

    # ------------------------------------------------------------------ #
    # QA-R005: probe-phase accounting
    # ------------------------------------------------------------------ #
    def check_probe_outcome(
        self, outcome: Any, candidate_labels: Sequence[str]
    ) -> None:
        """Validate one probe round's bookkeeping."""
        self.checks_run += 1
        now = float(outcome.decided_at)
        if outcome.decided_at < outcome.started_at:
            self._report(
                "QA-R005",
                now,
                "probe-phase",
                f"probe decided at t={outcome.decided_at!r} before it started "
                f"at t={outcome.started_at!r}",
                measured=float(outcome.decided_at),
                limit=float(outcome.started_at),
            )
        if outcome.winner.label not in set(candidate_labels):
            self._report(
                "QA-R005",
                now,
                str(outcome.winner.label),
                f"probe winner {outcome.winner.label!r} is not among the "
                f"candidates {list(candidate_labels)!r}",
            )
        budget = float(outcome.probe_bytes) + PROBE_OVERSHOOT_SLACK
        for probe in outcome.probes:
            moved = float(probe.transfer.flow.delivered)
            if moved > budget:
                self._report(
                    "QA-R005",
                    now,
                    str(probe.label),
                    f"probe moved {moved!r} bytes, exceeding the requested "
                    f"probe size {float(outcome.probe_bytes)!r}",
                    measured=moved,
                    limit=budget,
                )

    def check_session_result(self, result: Any) -> None:
        """Validate a completed session's phase ordering and sizes."""
        self.checks_run += 1
        now = float(result.completed_at)
        if result.completed_at < result.requested_at:
            self._report(
                "QA-R005",
                now,
                f"{result.client}->{result.server}",
                f"session completed at t={result.completed_at!r} before it "
                f"was requested at t={result.requested_at!r}",
                measured=float(result.completed_at),
                limit=float(result.requested_at),
            )
        if result.remainder_started_at is not None and not (
            result.requested_at <= result.remainder_started_at <= result.completed_at
        ):
            self._report(
                "QA-R005",
                now,
                f"{result.client}->{result.server}",
                f"remainder phase start t={result.remainder_started_at!r} "
                f"lies outside the session interval "
                f"[{result.requested_at!r}, {result.completed_at!r}]",
                measured=float(result.remainder_started_at),
            )
        if result.size <= 0.0:
            self._report(
                "QA-R005",
                now,
                str(result.resource),
                f"session recorded a non-positive transfer size {result.size!r}",
                measured=float(result.size),
                limit=0.0,
            )
        # Resilient-protocol post-conditions (fields absent on legacy-shaped
        # results are treated as their defaults).
        events = tuple(getattr(result, "recovery_events", ()) or ())
        prev_time = float(result.requested_at)
        prev_bytes = 0.0
        for event in events:
            # QA-R007: delivered-byte snapshots along the recovery timeline
            # never go backwards, even when overlapping faults interleave
            # stalls, failovers and reissues.
            if event.bytes_received < prev_bytes - BYTE_CONSERVATION_SLACK:
                self._report(
                    "QA-R007",
                    now,
                    f"{result.client}->{result.server}",
                    f"recovery event {event.kind!r} at t={event.time!r} "
                    f"snapshot {event.bytes_received!r} bytes, below the "
                    f"earlier snapshot of {prev_bytes!r}",
                    measured=float(event.bytes_received),
                    limit=prev_bytes,
                )
            prev_bytes = max(prev_bytes, float(event.bytes_received))
            if not (result.requested_at <= event.time <= result.completed_at):
                self._report(
                    "QA-R005",
                    now,
                    f"{result.client}->{result.server}",
                    f"recovery event {event.kind!r} at t={event.time!r} lies "
                    f"outside the session interval "
                    f"[{result.requested_at!r}, {result.completed_at!r}]",
                    measured=float(event.time),
                )
            if event.time < prev_time:
                self._report(
                    "QA-R005",
                    now,
                    f"{result.client}->{result.server}",
                    f"recovery timeline is not time-ordered: {event.kind!r} "
                    f"at t={event.time!r} precedes t={prev_time!r}",
                    measured=float(event.time),
                    limit=prev_time,
                )
            prev_time = float(event.time)
        bytes_received = getattr(result, "bytes_received", None)
        if bytes_received is not None and not (
            0.0 <= bytes_received <= result.size
        ):
            self._report(
                "QA-R005",
                now,
                f"{result.client}->{result.server}",
                f"session reported {bytes_received!r} bytes received for a "
                f"{result.size!r}-byte resource",
                measured=float(bytes_received),
                limit=float(result.size),
            )

    # ------------------------------------------------------------------ #
    def summary(self) -> str:
        """One-line status: checks run and violations found."""
        return (
            f"sanitizer: {self.checks_run} check(s), "
            f"{len(self.violations)} violation(s)"
        )
