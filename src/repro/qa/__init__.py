"""Quality assurance: static lint rules and the runtime invariant sanitizer.

This package enforces the conventions the rest of the library only
*documents*:

* determinism (``repro.util.rng``): every random draw flows from a
  ``SeedBank``-derived generator; no wall clocks inside the simulation;
* unit hygiene (``repro.util.units``): seconds / bytes / bytes-per-second
  internally, Mbps only at the reporting edge;
* simulator safety: event-queue internals are only touched by ``repro.sim``,
  and event times are never compared with ``==``.

Two enforcement halves:

``repro.qa.lint``
    An AST-based linter with project-specific rules (``repro lint``).  Each
    rule has a stable ``QA-*`` code, a fix hint, and per-line suppression via
    ``# qa: ignore[CODE]``.
``repro.qa.sanitize``
    An opt-in runtime sanitizer (``REPRO_SANITIZE=1`` or
    ``Simulator(sanitize=True)``) installing invariant checks in the event
    loop, the fluid transport engine and the transfer session.  Violations
    raise a structured :class:`~repro.qa.sanitize.InvariantViolation` instead
    of silently corrupting a run.

``repro.qa.selfcheck`` (imported lazily: it pulls in the simulator stack)
exercises every runtime invariant against synthetic violations, proving the
instrumentation fires in this installation (``repro selfcheck``).
"""

from repro.qa.lint import Finding, lint_paths, lint_source
from repro.qa.rules import INVARIANTS, RULES, Invariant, Rule
from repro.qa.sanitize import (
    InvariantViolation,
    Sanitizer,
    Violation,
    sanitize_enabled_from_env,
)
from repro.qa.tolerances import (
    BYTE_CONSERVATION_SLACK,
    CAPACITY_RTOL,
    PROBE_OVERSHOOT_SLACK,
)

__all__ = [
    "Rule",
    "Invariant",
    "RULES",
    "INVARIANTS",
    "Finding",
    "lint_paths",
    "lint_source",
    "Sanitizer",
    "Violation",
    "InvariantViolation",
    "sanitize_enabled_from_env",
    "CAPACITY_RTOL",
    "BYTE_CONSERVATION_SLACK",
    "PROBE_OVERSHOOT_SLACK",
]
