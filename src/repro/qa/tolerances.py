"""Numeric tolerances used by the runtime invariant sanitizer.

Each constant documents *why* an invariant is checked with slack instead of
exactly; loosening a check requires widening (and justifying) a constant
here, never an inline literal at the check site.
"""

from __future__ import annotations

__all__ = [
    "CAPACITY_RTOL",
    "BYTE_CONSERVATION_SLACK",
    "RATE_ATOL",
    "PROBE_OVERSHOOT_SLACK",
    "TIME_ORDER_ATOL",
]

#: Relative slack when comparing per-link load against capacity (QA-R003/4).
#: The allocator freezes flows with a 1e-9 relative epsilon and accumulates
#: float rounding across O(F) water-filling iterations; 1e-6 matches the
#: ``verify_maxmin`` default used by the property-based test suite.
CAPACITY_RTOL: float = 1e-6

#: Absolute slack (bytes) on delivered-vs-requested accounting (QA-R002).
#: Mirrors the fluid engine's completion slack: a flow is finalised when
#: ``remaining <= 1e-3`` bytes, so ``delivered`` may legitimately sit within
#: a milli-byte of ``size`` before the completion tick snaps it exact.
BYTE_CONSERVATION_SLACK: float = 1e-3

#: Absolute slack on rate non-negativity (QA-R002).  Rates come straight from
#: ``maxmin_allocate`` which clips at zero, so no slack is actually needed;
#: the constant exists so a future allocator with signed rounding error has a
#: single place to declare it.
RATE_ATOL: float = 0.0

#: Extra bytes a single probe may deliver beyond the requested probe size
#: (QA-R005).  Range requests are rounded to whole bytes and the completion
#: slack above allows a sub-byte overshoot; one full byte bounds both.
PROBE_OVERSHOOT_SLACK: float = 1.0

#: Absolute slack on phase ordering comparisons (QA-R001/R005).  Event times
#: are propagated exactly (never recomputed), so ordering must hold exactly.
TIME_ORDER_ATOL: float = 0.0
